//! Quickstart: the paper's running example (Listing 1) end to end.
//!
//! Builds the stacked-RNN FractalTensor program, walks every stage of the
//! pipeline — ETDG parsing, coarsening, reordering — executes the compiled
//! wavefront schedule, and checks it bit-for-bit against both the eager
//! ADT semantics and the naive interpreter.
//!
//! Run with: `cargo run -p ft-examples --bin quickstart`

use std::collections::HashMap;

use ft_backend::execute;
use ft_core::adt::FractalTensor;
use ft_core::builders::stacked_rnn_program;
use ft_core::interp::run_program;
use ft_core::BufferId;
use ft_etdg::parse_program;
use ft_passes::compile;
use ft_tensor::{max_rel_diff, Tensor};

fn main() {
    let (n, d, l, h) = (4usize, 8usize, 16usize, 64usize);
    println!("Stacked RNN (Listing 1): batch {n}, depth {d}, length {l}, hidden {h}\n");

    // 1. The program.
    let program = stacked_rnn_program(n, d, l, h);
    println!(
        "program '{}': {} nest(s), {} buffer(s)",
        program.name,
        program.nests.len(),
        program.buffers.len()
    );

    // 2. ETDG extraction (Figure 4): four block nodes, depth 2.
    let etdg = parse_program(&program).expect("parse");
    print!("{}", etdg.describe());

    // 3. The full pipeline: coarsening + reordering.
    let compiled = compile(&program).expect("compile");
    println!("\n{}", compiled.summary());
    let r = &compiled.groups[0].reordering;
    println!(
        "hyperplane schedule: {:?} (wavefront over layer + time)",
        r.hyperplane
    );
    println!("reuse dimensions pushed innermost: {:?}", r.reuse_dims);
    println!("transformation matrix T:\n{}", r.t);

    // 4. Inputs and three independent executions.
    let xss = FractalTensor::from_flat(&Tensor::randn(&[n, l, 1, h], 1), 2).expect("xss");
    let ws =
        FractalTensor::from_flat(&Tensor::randn(&[d, h, h], 2).mul_scalar(0.1), 1).expect("ws");
    let mut inputs = HashMap::new();
    inputs.insert(BufferId(0), xss.clone());
    inputs.insert(BufferId(1), ws.clone());

    let interp_out = run_program(&program, &inputs).expect("interpreter");
    let compiled_out = execute(&compiled, &inputs, 8).expect("wavefront executor");

    // Eager ADT semantics, exactly as Listing 1 reads.
    let eager = xss
        .map(|xs| {
            let mut seq = xs.sub()?.clone();
            let mut layers = Vec::new();
            for wi in 0..ws.len() {
                let w = ws.leaf(wi)?;
                let ys = seq.scanl(Tensor::zeros(&[1, h]), |s, x| {
                    x.leaf()?
                        .matmul(w)
                        .and_then(|xw| xw.add(s))
                        .map_err(|e| ft_core::CoreError::Adt(e.to_string()))
                })?;
                layers.push(ys.clone());
                seq = ys;
            }
            FractalTensor::nested(layers)
        })
        .expect("eager semantics");

    let ysss = BufferId(2);
    let a = interp_out[&ysss].to_flat().expect("flatten");
    let b = compiled_out[&ysss].to_flat().expect("flatten");
    let c = eager.to_flat().expect("flatten");
    println!("\nmax relative difference:");
    println!(
        "  interpreter vs compiled wavefront: {:.3e}",
        max_rel_diff(&a, &b)
    );
    println!(
        "  interpreter vs eager ADT:          {:.3e}",
        max_rel_diff(&a, &c)
    );
    assert!(max_rel_diff(&a, &b) < 1e-4);
    assert!(max_rel_diff(&a, &c) < 1e-4);
    println!("\nall three executions agree ✓");
}
