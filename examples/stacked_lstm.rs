//! Stacked LSTM (Listing 2): wavefront parallelism in action.
//!
//! Compiles the Table 6 workload, prints the wavefront profile (how many
//! cells run concurrently at each step — the same-colour cells of the
//! paper's Figure 9), validates numerics on a reduced shape, and compares
//! the simulated baselines of Figure 2.
//!
//! Run with: `cargo run --release -p ft-examples --bin stacked_lstm`

use ft_backend::exec::wavefront_profile;
use ft_backend::execute;
use ft_passes::compile;
use ft_tensor::max_rel_diff;
use ft_workloads::lstm::{self, buffers, LstmShape};
use ft_workloads::Strategy;

fn main() {
    // Numeric validation on a reduced shape.
    let small = LstmShape {
        batch: 4,
        hidden: 16,
        depth: 4,
        seq: 8,
    };
    let program = lstm::program(small);
    let compiled = compile(&program).expect("compile");
    println!(
        "stacked LSTM compiles to {} launch group(s); wavefront steps = {}",
        compiled.groups.len(),
        compiled.groups[0].wavefront_steps()
    );

    println!("\nwavefront width per step (cells executing concurrently):");
    for (step, width) in wavefront_profile(&compiled, 0) {
        println!("  step {step:>2}: {}", "#".repeat(width.min(60)));
    }

    let ins = lstm::inputs(small, 7);
    let got = execute(&compiled, &ins, 8).expect("execute");
    let (h_ref, c_ref) = lstm::reference(
        &ins[&buffers::XSS],
        &ins[&buffers::WSS],
        &ins[&buffers::USS],
        &ins[&buffers::BSS],
        small.hidden,
    );
    let dh = max_rel_diff(
        &got[&buffers::HSSS].to_flat().expect("h"),
        &h_ref.to_flat().expect("h ref"),
    );
    let dc = max_rel_diff(
        &got[&buffers::CSSS].to_flat().expect("c"),
        &c_ref.to_flat().expect("c ref"),
    );
    println!("\ncompiled vs eager reference: max rel diff h = {dh:.2e}, c = {dc:.2e}");
    assert!(dh < 1e-4 && dc < 1e-4);

    // The Figure 2 story at the Table 6 shape, on the A100 model.
    println!("\nsimulated A100 execution at the paper shape (batch 256, depth 32):");
    let paper = LstmShape::paper();
    for strat in Strategy::ALL {
        let r = lstm::simulate(paper, strat);
        println!(
            "  {:<34} {:>10.2} ms  {:>8} kernel launches",
            strat.label(),
            r.ms,
            r.kernels
        );
    }
}
