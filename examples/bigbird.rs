//! BigBird blocked sparse attention (Listing 4): window + global accesses
//! expressed as affine access operators with clamped boundaries.
//!
//! Shows the region split (boundary positions vs interior), validates the
//! compiled output, and reproduces the Table 7 ② traffic ordering.
//!
//! Run with: `cargo run --release -p ft-examples --bin bigbird`

use ft_backend::execute;
use ft_etdg::parse_program;
use ft_passes::compile;
use ft_tensor::max_rel_diff;
use ft_workloads::bigbird::{self, buffers, BigBirdShape};
use ft_workloads::Strategy;

fn main() {
    let s = BigBirdShape {
        heads: 4,
        blocks: 8,
        block: 8,
        dh: 32,
    };
    println!(
        "BigBird: {} heads, {} blocks of {} tokens, window 3 + 2 globals",
        s.heads, s.blocks, s.block
    );

    let program = bigbird::program(s);
    let etdg = parse_program(&program).expect("parse");
    println!("\nregions produced by the boundary split (shifted_slide clamping):");
    for b in &etdg.blocks {
        println!("  {}", b.name);
    }

    let ins = bigbird::inputs(s, 3);
    let compiled = compile(&program).expect("compile");
    let got = execute(&compiled, &ins, 8).expect("execute");
    let expected = bigbird::reference(&ins[&buffers::Q], &ins[&buffers::K], &ins[&buffers::V], s);
    let diff = max_rel_diff(
        &got[&buffers::OUT].to_flat().expect("out"),
        &expected.to_flat().expect("ref"),
    );
    println!("\ncompiled vs eager reference: max rel diff {diff:.2e}");
    assert!(diff < 1e-4);

    println!("\nTable 7 (2) at the official shape — memory traffic on the A100 model:");
    let paper = BigBirdShape::paper();
    for (name, strat) in [
        ("FractalTensor", Strategy::FractalTensor),
        ("Triton", Strategy::BlockTile),
        ("PyTorch", Strategy::Eager),
        ("TVM", Strategy::FusedOp),
    ] {
        if let Some(r) = bigbird::simulate(paper, strat) {
            println!(
                "  {:<16} DRAM {:>7.2} GB   L1 {:>8.2} GB   L2 {:>8.2} GB   ({} kernels)",
                name,
                r.traffic.dram_gb(),
                r.traffic.l1_gb(),
                r.traffic.l2_gb(),
                r.kernels
            );
        }
    }
    println!(
        "\n(the paper's §6.4 reading: deferring window materialization until the\n\
         batched GEMM stages tiles in shared memory removes the gather copies\n\
         every DAG system pays for)"
    );
}
