//! FlashAttention (Listing 3): nested map/reduce with an online-softmax
//! accumulator.
//!
//! Shows the three-way agreement (full softmax, online softmax, compiled
//! FractalTensor program) and the Table 7 ① memory-traffic comparison.
//!
//! Run with: `cargo run --release -p ft-examples --bin flash_attention`

use ft_backend::execute;
use ft_passes::compile;
use ft_tensor::max_rel_diff;
use ft_workloads::attention::{self, buffers, AttnShape};
use ft_workloads::Strategy;

fn main() {
    let s = AttnShape {
        batch: 2,
        heads: 4,
        q_blocks: 4,
        kv_blocks: 8,
        block: 8,
        dh: 32,
    };
    println!(
        "FlashAttention: {}x{} heads, {} query tokens, {} key tokens, dh {}",
        s.batch,
        s.heads,
        s.q_len(),
        s.kv_len(),
        s.dh
    );

    let ins = attention::inputs(s, 5);
    let full =
        attention::reference_full(&ins[&buffers::Q], &ins[&buffers::K], &ins[&buffers::V], s);
    let online =
        attention::reference_online(&ins[&buffers::Q], &ins[&buffers::K], &ins[&buffers::V], s);
    println!(
        "online softmax vs full softmax: max rel diff {:.2e}",
        max_rel_diff(&full.to_flat().expect("f"), &online.to_flat().expect("o"))
    );

    let compiled = compile(&attention::program(s)).expect("compile");
    println!("\n{}", compiled.summary());
    let got = execute(&compiled, &ins, 8).expect("execute");
    let diff = max_rel_diff(
        &got[&buffers::OUT].to_flat().expect("out"),
        &full.to_flat().expect("full"),
    );
    println!("compiled vs full softmax: max rel diff {diff:.2e}");
    assert!(diff < 1e-4);

    println!("\nTable 7 (1) at the official shape — memory traffic on the A100 model:");
    let paper = AttnShape::paper();
    for (name, strat) in [
        ("FractalTensor", Strategy::FractalTensor),
        ("Triton", Strategy::BlockTile),
        ("FlashAttention-2", Strategy::Handcrafted),
        ("CUTLASS", Strategy::FusedOp),
        ("PyTorch (full softmax)", Strategy::Eager),
    ] {
        if let Some(r) = attention::simulate(paper, strat) {
            println!(
                "  {:<24} DRAM {:>7.2} GB   L1 {:>8.2} GB   L2 {:>8.2} GB",
                name,
                r.traffic.dram_gb(),
                r.traffic.l1_gb(),
                r.traffic.l2_gb()
            );
        }
    }
}
