//! Compiler explorer: watch the FractalTensor pipeline transform a program
//! stage by stage, ending with the emitted pseudo-CUDA macro-kernels.
//!
//! Run with: `cargo run -p ft-examples --bin compiler_explorer [workload]`
//! where `workload` is one of `rnn` (default), `lstm`, `dilated`, `grid`,
//! `b2b`, `attention`, `bigbird`.

use ft_backend::emit_program;
use ft_core::builders::stacked_rnn_program;
use ft_core::Program;
use ft_etdg::parse_program;
use ft_passes::lower::{hoist_shared_map, lower_block};
use ft_passes::{coarsen, compile, distance_vectors};

fn pick_program(name: &str) -> Program {
    match name {
        "lstm" => ft_workloads::lstm::program(ft_workloads::lstm::LstmShape {
            batch: 4,
            hidden: 16,
            depth: 4,
            seq: 8,
        }),
        "dilated" => ft_workloads::dilated::program(ft_workloads::dilated::DilatedShape {
            batch: 4,
            hidden: 16,
            depth: 3,
            seq: 16,
        }),
        "grid" => ft_workloads::grid::program(ft_workloads::grid::GridShape {
            batch: 4,
            hidden: 16,
            depth: 3,
            rows: 4,
            cols: 4,
        }),
        "b2b" => ft_workloads::b2b::program(ft_workloads::b2b::B2bShape::tiny()),
        "attention" => ft_workloads::attention::program(ft_workloads::attention::AttnShape::tiny()),
        "bigbird" => ft_workloads::bigbird::program(ft_workloads::bigbird::BigBirdShape::tiny()),
        _ => stacked_rnn_program(4, 4, 8, 16),
    }
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "rnn".into());
    let program = pick_program(&name);
    println!(
        "### stage 0: program '{}' ({} nests)\n",
        program.name,
        program.nests.len()
    );
    for nest in &program.nests {
        let ops: Vec<String> = nest.ops.iter().map(|o| o.to_string()).collect();
        println!(
            "  nest '{}' [{}] extents {:?}, {} reads, {} writes, UDF '{}' ({} stmts)",
            nest.name,
            ops.join(", "),
            nest.extents,
            nest.reads.len(),
            nest.writes.len(),
            nest.udf.name,
            nest.udf.stmts.len()
        );
    }

    println!("\n### stage 1: ETDG (boundary regions, access maps)\n");
    let mut etdg = parse_program(&program).expect("parse");
    print!("{}", etdg.describe());

    println!("\n### stage 2: operation-node lowering on the last region\n");
    let last = ft_etdg::BlockId(etdg.blocks.len() - 1);
    if let Ok(children) = lower_block(&mut etdg, last) {
        println!("  lowered into {} child block(s)", children.len());
        let _ = hoist_shared_map(&mut etdg, last);
        let blk = etdg.block(last);
        let ops: Vec<String> = blk.ops.iter().map(|o| o.to_string()).collect();
        println!(
            "  after hoisting: parent p = [{}], {} child(ren) remain",
            ops.join(", "),
            blk.children.len()
        );
    }

    println!("\n### stage 3: coarsening\n");
    let parsed = parse_program(&program).expect("parse again");
    let (fused, plan) = coarsen(&parsed).expect("coarsen");
    println!(
        "  {} block(s) -> {} launch group(s) ({} copies eliminated)",
        fused.blocks.len(),
        plan.launch_count(),
        plan.copies_eliminated
    );
    for (i, g) in plan.groups.iter().enumerate() {
        let ops: Vec<String> = g.ops.iter().map(|o| o.to_string()).collect();
        println!(
            "  group {i}: {} member(s), p = [{}] ({:?})",
            g.members.len(),
            ops.join(", "),
            g.kind
        );
    }

    println!("\n### stage 4: dependence analysis + reordering\n");
    let compiled = compile(&program).expect("compile");
    for (i, g) in compiled.groups.iter().enumerate() {
        let dists: Vec<Vec<i64>> = g
            .members
            .iter()
            .flat_map(|&m| distance_vectors(&compiled.etdg, m).expect("distances"))
            .collect();
        println!("  group {i}: distance vectors {:?}", dists);
        println!(
            "    hyperplane {:?}, reuse dims {:?}, {} wavefront step(s)",
            g.reordering.hyperplane,
            g.reordering.reuse_dims,
            g.wavefront_steps()
        );
    }

    println!("\n### stage 5: emitted macro-kernels (pseudo-CUDA)\n");
    match emit_program(&compiled, 192 * 1024) {
        Ok(code) => println!("{code}"),
        Err(e) => eprintln!("emission failed: {e}"),
    }
}
