//! Simulator-level consistency: the relative performance claims the paper
//! makes must hold across the sweep ranges the figures plot, and the
//! machine model itself must behave monotonically.

use ft_sim::{GpuConfig, Kernel, Region, SimMachine};
use ft_workloads::{attention, b2b, bigbird, dilated, grid, lstm, Strategy};

#[test]
fn figure2_shape_eager_scales_with_product_wavefront_with_sum() {
    let times: Vec<(f64, f64)> = [1usize, 2, 4, 8, 16, 32]
        .iter()
        .map(|&depth| {
            let s = lstm::LstmShape {
                batch: 64,
                hidden: 64,
                depth,
                seq: 32,
            };
            (
                lstm::simulate(s, Strategy::Eager).ms,
                lstm::simulate(s, Strategy::FractalTensor).ms,
            )
        })
        .collect();
    // Eager time is ~linear in depth (launch-bound); FT grows sub-linearly.
    let eager_ratio = times.last().unwrap().0 / times.first().unwrap().0;
    let ft_ratio = times.last().unwrap().1 / times.first().unwrap().1;
    assert!(eager_ratio > 20.0, "eager ratio {eager_ratio}");
    assert!(ft_ratio < 4.0, "ft ratio {ft_ratio}");
    // And everything is monotone in depth.
    for w in times.windows(2) {
        assert!(w[1].0 >= w[0].0);
        assert!(w[1].1 >= w[0].1);
    }
}

#[test]
fn figure7_fractaltensor_wins_every_workload() {
    // LSTM.
    let s = lstm::LstmShape {
        batch: 64,
        hidden: 64,
        depth: 8,
        seq: 16,
    };
    let ft = lstm::simulate(s, Strategy::FractalTensor).ms;
    for st in [Strategy::Eager, Strategy::FusedOp, Strategy::BlockTile] {
        assert!(ft < lstm::simulate(s, st).ms, "lstm vs {st:?}");
    }
    // Dilated.
    let s = dilated::DilatedShape {
        batch: 64,
        hidden: 64,
        depth: 4,
        seq: 32,
    };
    let ft = dilated::simulate(s, Strategy::FractalTensor).unwrap().ms;
    for st in [Strategy::Eager, Strategy::FusedOp, Strategy::BlockTile] {
        assert!(
            ft < dilated::simulate(s, st).unwrap().ms,
            "dilated vs {st:?}"
        );
    }
    // Grid.
    let s = grid::GridShape {
        batch: 64,
        hidden: 64,
        depth: 4,
        rows: 4,
        cols: 4,
    };
    let ft = grid::simulate(s, Strategy::FractalTensor).unwrap().ms;
    for st in [Strategy::Eager, Strategy::FusedOp, Strategy::BlockTile] {
        assert!(ft < grid::simulate(s, st).unwrap().ms, "grid vs {st:?}");
    }
    // B2B GEMM.
    let s = b2b::B2bShape::paper();
    let ft = b2b::simulate(s, Strategy::FractalTensor).unwrap().ms;
    assert!(ft < b2b::simulate(s, Strategy::Eager).unwrap().ms);
    // Attention: FT at least matches the handcrafted FA-2 kernel.
    let s = attention::AttnShape {
        batch: 4,
        heads: 4,
        q_blocks: 8,
        kv_blocks: 8,
        block: 32,
        dh: 64,
    };
    let ft = attention::simulate(s, Strategy::FractalTensor).unwrap().ms;
    assert!(ft <= attention::simulate(s, Strategy::Handcrafted).unwrap().ms * 1.02);
    // BigBird.
    let s = bigbird::BigBirdShape {
        heads: 8,
        blocks: 16,
        block: 16,
        dh: 64,
    };
    let ft = bigbird::simulate(s, Strategy::FractalTensor).unwrap().ms;
    for st in [Strategy::Eager, Strategy::FusedOp, Strategy::BlockTile] {
        assert!(
            ft < bigbird::simulate(s, st).unwrap().ms,
            "bigbird vs {st:?}"
        );
    }
}

#[test]
fn table7_orderings_hold_at_paper_shapes() {
    // ① FlashAttention: fused methods tie on DRAM; CUTLASS pays the most
    // L1/L2; PyTorch pays the most DRAM.
    let fa = attention::AttnShape::paper();
    let ft = attention::simulate(fa, Strategy::FractalTensor).unwrap();
    let fa2 = attention::simulate(fa, Strategy::Handcrafted).unwrap();
    let cutlass = attention::simulate(fa, Strategy::FusedOp).unwrap();
    let pytorch = attention::simulate(fa, Strategy::Eager).unwrap();
    assert!(ft.traffic.dram_bytes <= fa2.traffic.dram_bytes);
    assert!(ft.traffic.l1_bytes <= fa2.traffic.l1_bytes);
    assert!(cutlass.traffic.l2_bytes > 3 * ft.traffic.l2_bytes);
    assert!(pytorch.traffic.dram_bytes > 10 * ft.traffic.dram_bytes);

    // ② BigBird: FT < Triton < PyTorch < TVM on DRAM, and the FT/Triton
    // ratio lands in the paper's ~44% band (we accept 25-60%).
    let bb = bigbird::BigBirdShape::paper();
    let ft = bigbird::simulate(bb, Strategy::FractalTensor).unwrap();
    let triton = bigbird::simulate(bb, Strategy::BlockTile).unwrap();
    let pytorch = bigbird::simulate(bb, Strategy::Eager).unwrap();
    let tvm = bigbird::simulate(bb, Strategy::FusedOp).unwrap();
    assert!(ft.traffic.dram_bytes < triton.traffic.dram_bytes);
    assert!(triton.traffic.dram_bytes < pytorch.traffic.dram_bytes);
    assert!(pytorch.traffic.dram_bytes < tvm.traffic.dram_bytes);
    let ratio = ft.traffic.dram_bytes as f64 / triton.traffic.dram_bytes as f64;
    assert!((0.25..0.6).contains(&ratio), "FT/Triton DRAM ratio {ratio}");
}

#[test]
fn machine_time_is_additive_and_deterministic() {
    let run = || {
        let mut m = SimMachine::new(GpuConfig::a100());
        let b = m.alloc(1 << 22);
        for _ in 0..50 {
            m.launch(&Kernel {
                name: "k".into(),
                flops: 1 << 20,
                tensor_cores: false,
                reads: vec![Region::whole(b)],
                writes: vec![],
                l1_extra_bytes: 0,
                ctas: 108,
                smem_per_cta: 0,
            });
        }
        (m.elapsed_ms(), m.counters())
    };
    let (t1, c1) = run();
    let (t2, c2) = run();
    assert_eq!(t1, t2, "simulation must be deterministic");
    assert_eq!(c1, c2);
}

#[test]
fn larger_batch_never_reduces_simulated_time() {
    for (a, b) in [(32usize, 64usize), (64, 128), (128, 256)] {
        let mk = |batch| lstm::LstmShape {
            batch,
            hidden: 64,
            depth: 4,
            seq: 8,
        };
        let ta = lstm::simulate(mk(a), Strategy::FractalTensor).ms;
        let tb = lstm::simulate(mk(b), Strategy::FractalTensor).ms;
        assert!(tb >= ta, "batch {a}->{b}: {ta} -> {tb}");
    }
}
