//! Overhead microbenchmark for the sharded probe collector: enabling
//! spans/counters on an 8-thread stacked-RNN run must stay cheap, because
//! each recording thread appends to its own uncontended shard.
//!
//! The sharded design targets ~3% enabled-probe overhead on release
//! builds; this test asserts a looser bound that holds on unoptimized
//! builds and noisy shared runners (run it with `--release` for the
//! strict check, as the CI observability job does). It lives in its own
//! integration-test binary so toggling the global probe state cannot
//! race with unrelated tests in the same process.

use std::collections::HashMap;
use std::time::Instant;

use ft_backend::Executor;
use ft_core::builders::stacked_rnn_program;
use ft_core::{BufferId, FractalTensor};
use ft_passes::compile;
use ft_tensor::Tensor;

/// Minimum over the reps: the standard noise-robust estimator for
/// microbenchmarks — scheduler interference only ever adds time, so the
/// fastest observation is the closest to the true cost.
fn best(xs: Vec<f64>) -> f64 {
    xs.into_iter().fold(f64::INFINITY, f64::min)
}

#[test]
fn enabled_probe_overhead_stays_small_on_8_threads() {
    let (n, d, l, h) = (2usize, 4, 64, 16);
    let program = stacked_rnn_program(n, d, l, h);
    let compiled = compile(&program).unwrap();
    let mut inputs: HashMap<BufferId, FractalTensor> = HashMap::new();
    inputs.insert(
        BufferId(0),
        FractalTensor::from_flat(&Tensor::randn(&[n, l, 1, h], 3), 2).unwrap(),
    );
    inputs.insert(
        BufferId(1),
        FractalTensor::from_flat(&Tensor::randn(&[d, h, h], 4).mul_scalar(0.2), 1).unwrap(),
    );
    let exec = Executor::new().threads(8);

    let time_runs = |reps: usize| -> Vec<f64> {
        (0..reps)
            .map(|_| {
                let t0 = Instant::now();
                exec.run(&compiled, &inputs).unwrap();
                t0.elapsed().as_secs_f64()
            })
            .collect()
    };

    // Warm up: plan, arena, worker pool, page cache.
    ft_probe::builder().enabled(false).install();
    let _ = time_runs(2);

    // Release target is the sharded design's ~3%; allow scheduler noise on
    // top of it, and a much looser bound for unoptimized builds where the
    // per-event record cost is not representative. A burst of interference
    // landing on exactly one side of the comparison can still push one
    // measurement over the bound on a loaded single-core host, so the
    // whole measurement retries before the test fails.
    let bound = if cfg!(debug_assertions) { 0.60 } else { 0.15 };
    let reps = 7;
    let mut last = (f64::NAN, f64::NAN, f64::INFINITY);
    for attempt in 0..3 {
        ft_probe::builder().enabled(false).install();
        let disabled = best(time_runs(reps));

        ft_probe::builder().enabled(true).install();
        let _ = time_runs(1); // first enabled run pays shard registration
        let enabled = best(time_runs(reps));
        let snap = ft_probe::take();
        ft_probe::builder().enabled(false).install();

        assert!(
            !snap.events.is_empty(),
            "enabled runs must actually record spans, else the comparison is vacuous"
        );
        let overhead = enabled / disabled - 1.0;
        eprintln!(
            "probe overhead on 8-thread stacked_rnn (attempt {attempt}): \
             disabled {:.3} ms, enabled {:.3} ms ({:+.2}%)",
            disabled * 1e3,
            enabled * 1e3,
            overhead * 100.0
        );
        if overhead < bound {
            return;
        }
        last = (disabled, enabled, overhead);
    }
    let (disabled, enabled, overhead) = last;
    panic!(
        "enabled-probe overhead {:.1}% exceeds {:.0}% bound on every attempt \
         (last: disabled {:.3} ms, enabled {:.3} ms)",
        overhead * 100.0,
        bound * 100.0,
        disabled * 1e3,
        enabled * 1e3
    );
}
