//! Shape-polymorphic plan parity (DESIGN.md §14).
//!
//! A compiled plan family is symbolic over the outer Map extent: the
//! layout/lifetime pass stores stride/size *formulas* and evaluates them
//! at dispatch. These tests pin the contract that makes that safe to
//! serve:
//!
//! * **Bitwise parity** — a family instantiated at extent `n` must equal
//!   a fresh exact-shape compile of the same program, bit for bit, at
//!   every thread count. CI runs the suite under both `FT_SIMD=scalar`
//!   and the native SIMD path, so the property holds across kernel
//!   backends too.
//! * **One cache entry serves every length** — [`PolyCache`] keys on the
//!   shape-insensitive [`StructKey`]; N distinct-extent programs of one
//!   structure cost one build and N−1 hits.

use std::collections::HashMap;

use ft_backend::Executor;
use ft_core::adt::FractalTensor;
use ft_core::builders::stacked_rnn_program;
use ft_core::{poly_split, BufferId, Program};
use ft_passes::{compile, PolyCache, PolyPlan};
use ft_tensor::Tensor;
use proptest::prelude::*;

type Outputs = HashMap<BufferId, FractalTensor>;

fn rnn_inputs(n: usize, d: usize, l: usize, h: usize, seed: u64) -> Outputs {
    let mut inputs = HashMap::new();
    inputs.insert(
        BufferId(0),
        FractalTensor::from_flat(&Tensor::randn(&[n, l, 1, h], seed), 2).unwrap(),
    );
    inputs.insert(
        BufferId(1),
        FractalTensor::from_flat(&Tensor::randn(&[d, h, h], seed + 1).mul_scalar(0.2), 1).unwrap(),
    );
    inputs
}

fn assert_bitwise_eq(got: &Outputs, want: &Outputs, label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: output buffer sets differ");
    for (id, w) in want {
        let g = got
            .get(id)
            .unwrap_or_else(|| panic!("{label}: missing output {id:?}"));
        let gf = g.to_flat().expect("flatten poly output");
        let wf = w.to_flat().expect("flatten exact output");
        assert_eq!(gf.dims(), wf.dims(), "{label}: dims differ for {id:?}");
        let gb: Vec<u32> = gf.to_vec().iter().map(|v| v.to_bits()).collect();
        let wb: Vec<u32> = wf.to_vec().iter().map(|v| v.to_bits()).collect();
        assert_eq!(gb, wb, "{label}: bit drift in {id:?}");
    }
}

fn family_for(template: &Program) -> PolyPlan {
    PolyPlan::build(template)
        .expect("family build")
        .expect("stacked RNN has a polymorphic outer axis")
}

/// A family built once (at the template extent) and instantiated at a
/// spread of other extents matches a fresh exact-shape compile bit for
/// bit, at 1/2/8 threads.
#[test]
fn poly_instance_bitwise_matches_exact_compile() {
    let (d, l, h) = (2usize, 3, 8);
    let family = family_for(&stacked_rnn_program(2, d, l, h));
    for &n in &[1usize, 2, 3, 5, 8] {
        let exact = compile(&stacked_rnn_program(n, d, l, h)).expect("exact compile");
        let inputs = rnn_inputs(n, d, l, h, 100 + n as u64);
        for &threads in &[1usize, 2, 8] {
            let exec = Executor::new().threads(threads);
            let want = exec.run(&exact, &inputs).expect("exact run");
            let got = exec
                .run_poly(&family, n, &inputs, None)
                .expect("poly instance run");
            assert_bitwise_eq(&got, &want, &format!("n={n} t={threads}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Randomized extent pairs (template extent, dispatch extent): the
    /// instance at the dispatch extent is bitwise-identical to the exact
    /// compile regardless of which extent the family was built from.
    #[test]
    fn poly_parity_over_random_extents(
        template in 1usize..6,
        n in 1usize..9,
        d in 1usize..3,
        l in 2usize..5,
        seed in 0u64..1000,
    ) {
        let h = 8usize;
        let family = family_for(&stacked_rnn_program(template, d, l, h));
        let exact = compile(&stacked_rnn_program(n, d, l, h)).expect("exact compile");
        let inputs = rnn_inputs(n, d, l, h, seed);
        for &threads in &[1usize, 2, 8] {
            let exec = Executor::new().threads(threads);
            let want = exec.run(&exact, &inputs).expect("exact run");
            let got = exec.run_poly(&family, n, &inputs, None).expect("poly run");
            assert_bitwise_eq(&got, &want, &format!("tmpl={template} n={n} t={threads}"));
        }
    }
}

/// One [`PolyCache`] entry serves N distinct outer extents: the first
/// program of a structure builds the family, every other extent hits the
/// same entry (the builder never re-runs), and each request's extent
/// instantiates from the shared family.
#[test]
fn one_cache_entry_serves_many_lengths() {
    let (d, l, h) = (2usize, 3, 8);
    let cache = PolyCache::new();
    let extents = [2usize, 1, 3, 5, 8];
    let mut builds = 0u32;
    for &n in &extents {
        let p = stacked_rnn_program(n, d, l, h);
        let split = poly_split(&p).expect("polymorphic split");
        let (family, hit) = cache
            .get_or_build_with(&p, &split, |prog| {
                builds += 1;
                PolyPlan::build(prog)
                    .map_err(|e| e.to_string())?
                    .ok_or_else(|| "no polymorphic axis".to_string())
            })
            .expect("family lookup");
        assert_eq!(hit, n != extents[0], "only the first extent may miss");
        // Instantiation at this request's extent must succeed from the
        // shared family.
        family.instance(n).expect("instantiate at extent");
    }
    assert_eq!(builds, 1, "one structure must compile exactly once");
    assert_eq!(cache.len(), 1, "one entry serves every length");
    assert_eq!(cache.misses(), 1);
    assert_eq!(cache.hits(), extents.len() as u64 - 1);
}

/// Different structures (inner shape differs) do not collide: the cache
/// holds one entry per structural family, not one global template.
#[test]
fn distinct_structures_get_distinct_entries() {
    let cache = PolyCache::new();
    for (d, l, h) in [(2usize, 3usize, 8usize), (3, 4, 8), (2, 3, 16)] {
        for n in [2usize, 4] {
            let p = stacked_rnn_program(n, d, l, h);
            let split = poly_split(&p).expect("polymorphic split");
            cache
                .get_or_build_with(&p, &split, |prog| {
                    PolyPlan::build(prog)
                        .map_err(|e| e.to_string())?
                        .ok_or_else(|| "no polymorphic axis".to_string())
                })
                .expect("family lookup");
        }
    }
    assert_eq!(cache.len(), 3, "one entry per structural family");
    assert_eq!(cache.misses(), 3);
    assert_eq!(cache.hits(), 3);
}
