//! Thread-count determinism and pool-vs-interpreter parity for the
//! persistent worker-pool executor.
//!
//! The executor's wavefront points are single-assignment, so the order the
//! pool's workers claim chunks — and the order their write batches are
//! applied — must not leak into the numbers. Every workload here is run at
//! several thread counts (including 7, which never divides the step sizes
//! evenly, and 8, which oversubscribes this host) and the outputs compared
//! *bit for bit* against the single-threaded run. The proptest then wires
//! random RNN-family programs through both the pool executor and the naive
//! `ft_core` interpreter.

use std::collections::HashMap;

use ft_backend::{execute, execute_reference};
use ft_core::adt::FractalTensor;
use ft_core::builders::stacked_rnn_program;
use ft_core::expr::UdfBuilder;
use ft_core::interp::run_program;
use ft_core::program::{CarriedInit, Nest, OpKind, Program, Read, Write};
use ft_core::{AccessSpec, AxisExpr, BufferId};
use ft_integration_tests::assert_fractal_close;
use ft_passes::{compile, CompiledProgram};
use ft_tensor::Tensor;
use ft_workloads::{attention, bigbird};
use proptest::prelude::*;

/// Asserts two output maps are bitwise identical (not just close).
fn assert_bitwise_equal(
    a: &HashMap<BufferId, FractalTensor>,
    b: &HashMap<BufferId, FractalTensor>,
    ctx: &str,
) {
    assert_eq!(a.len(), b.len(), "{ctx}: output buffer sets differ");
    for (id, fa) in a {
        let fb = &b[id];
        let va = fa.to_flat().expect("flatten lhs").to_vec();
        let vb = fb.to_flat().expect("flatten rhs").to_vec();
        assert_eq!(
            va.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            vb.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "{ctx}: buffer {id:?} diverged"
        );
    }
}

fn check_thread_determinism(
    compiled: &CompiledProgram,
    inputs: &HashMap<BufferId, FractalTensor>,
    name: &str,
) {
    let baseline = execute(compiled, inputs, 1).unwrap();
    for threads in [2usize, 7, 8] {
        let got = execute(compiled, inputs, threads).unwrap();
        assert_bitwise_equal(&baseline, &got, &format!("{name} threads={threads}"));
    }
    // The reference executor shares the same single-assignment argument.
    let reference = execute_reference(compiled, inputs, 7).unwrap();
    assert_bitwise_equal(&baseline, &reference, &format!("{name} reference"));
}

#[test]
fn stacked_rnn_deterministic_across_thread_counts() {
    let p = stacked_rnn_program(3, 4, 9, 8);
    let xss = FractalTensor::from_flat(&Tensor::randn(&[3, 9, 1, 8], 5), 2).unwrap();
    let ws = FractalTensor::from_flat(&Tensor::randn(&[4, 8, 8], 6).mul_scalar(0.2), 1).unwrap();
    let mut inputs = HashMap::new();
    inputs.insert(BufferId(0), xss);
    inputs.insert(BufferId(1), ws);
    check_thread_determinism(&compile(&p).unwrap(), &inputs, "stacked_rnn");
}

#[test]
fn attention_deterministic_across_thread_counts() {
    let s = attention::AttnShape::tiny();
    let p = attention::program(s);
    let inputs = attention::inputs(s, 17);
    check_thread_determinism(&compile(&p).unwrap(), &inputs, "attention");
}

#[test]
fn bigbird_deterministic_across_thread_counts() {
    let s = bigbird::BigBirdShape::tiny();
    let p = bigbird::program(s);
    let inputs = bigbird::inputs(s, 19);
    check_thread_determinism(&compile(&p).unwrap(), &inputs, "bigbird");
}

/// Randomized RNN-family program: random extents, carried-read stride, and
/// boundary initializer (same family as `randomized_parity.rs`).
fn random_rnn_program(
    n: usize,
    d: usize,
    l: usize,
    h: usize,
    time_stride: usize,
    zero_init_x: bool,
) -> Program {
    let mut p = Program::new("random_rnn_pool");
    let xss = p.input("xss", &[n, l], &[1, h]);
    let ws = p.input("ws", &[d], &[h, h]);
    let ysss = p.output("ysss", &[n, d, l], &[1, h]);

    let mut b = UdfBuilder::new("cell", 3);
    let (x, w, s) = (b.input(0), b.input(1), b.input(2));
    let xw = b.matmul(x, w);
    let sum = b.add(xw, s);
    let y = b.tanh(sum);
    let udf = b.build(&[y]);

    let x_init = if zero_init_x {
        CarriedInit::Zero
    } else {
        CarriedInit::Buffer(
            xss,
            AccessSpec::new(vec![AxisExpr::var(0), AxisExpr::var(2)]),
        )
    };
    p.add_nest(Nest {
        name: "random_rnn_pool".into(),
        ops: vec![OpKind::Map, OpKind::ScanL, OpKind::ScanL],
        extents: vec![n, d, l],
        reads: vec![
            Read::carried(
                ysss,
                AccessSpec::new(vec![
                    AxisExpr::var(0),
                    AxisExpr::shifted(1, -1),
                    AxisExpr::var(2),
                ]),
                x_init,
            ),
            Read::plain(ws, AccessSpec::new(vec![AxisExpr::var(1)])),
            Read::carried(
                ysss,
                AccessSpec::new(vec![
                    AxisExpr::var(0),
                    AxisExpr::var(1),
                    AxisExpr::shifted(2, -(time_stride as i64)),
                ]),
                CarriedInit::Zero,
            ),
        ],
        writes: vec![Write {
            buffer: ysss,
            access: AccessSpec::identity(3),
        }],
        udf,
    })
    .expect("random nest is well-formed");
    p
}

fn rnn_inputs(
    n: usize,
    d: usize,
    l: usize,
    h: usize,
    seed: u64,
) -> HashMap<BufferId, FractalTensor> {
    let mut m = HashMap::new();
    m.insert(
        BufferId(0),
        FractalTensor::from_flat(&Tensor::randn(&[n, l, 1, h], seed), 2).unwrap(),
    );
    m.insert(
        BufferId(1),
        FractalTensor::from_flat(&Tensor::randn(&[d, h, h], seed + 1).mul_scalar(0.3), 1).unwrap(),
    );
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The pool executor agrees with the interpreter at every thread
    /// count, and the thread counts agree with each other bit for bit.
    #[test]
    fn prop_pool_matches_interpreter_across_threads(
        n in 1usize..4,
        d in 1usize..5,
        l in 1usize..7,
        stride in 1usize..4,
        zero_init in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        prop_assume!(stride <= l);
        let h = 4usize;
        let p = random_rnn_program(n, d, l, h, stride, zero_init);
        let ins = rnn_inputs(n, d, l, h, seed);
        let expected = run_program(&p, &ins).unwrap();
        let compiled = compile(&p).unwrap();
        let single = execute(&compiled, &ins, 1).unwrap();
        assert_fractal_close(&single[&BufferId(2)], &expected[&BufferId(2)], 1e-4);
        for threads in [2usize, 7] {
            let got = execute(&compiled, &ins, threads).unwrap();
            assert_bitwise_equal(&single, &got, &format!("random threads={threads}"));
        }
    }
}
