//! Trace-context propagation through the serving pipeline: a fused batch
//! of k requests must yield exactly one attributed completion record per
//! request (shared batch id, per-request queue wait), and a fusion
//! fallback must attribute its legality failure to every affected
//! request.

use std::collections::HashMap;
use std::sync::{Arc, Barrier};

use ft_core::builders::stacked_rnn_program;
use ft_core::{BufferId, FractalTensor};
use ft_obs::{CompletionRecord, CompletionStatus, FuseDecision};
use ft_serve::{Request, Runtime, ServeConfig};
use ft_tensor::Tensor;

const SHAPE: (usize, usize, usize, usize) = (1, 2, 16, 8); // n, d, l, h

fn shared_weights(seed: u64) -> FractalTensor {
    let (_n, d, _l, h) = SHAPE;
    FractalTensor::from_flat(&Tensor::randn(&[d, h, h], seed).mul_scalar(0.2), 1).unwrap()
}

fn inputs(seed: u64, ws: &FractalTensor) -> HashMap<BufferId, FractalTensor> {
    let (n, _d, l, h) = SHAPE;
    let mut m = HashMap::new();
    m.insert(
        BufferId(0),
        FractalTensor::from_flat(&Tensor::randn(&[n, l, 1, h], seed), 2).unwrap(),
    );
    m.insert(BufferId(1), ws.clone());
    m
}

/// Submits `k` requests from `k` threads released by one barrier so the
/// scheduler sees them queued together; returns the submitted ids and
/// the records drained afterwards.
fn burst(
    rt: &Arc<Runtime>,
    k: usize,
    seed0: u64,
    per_thread_ws: bool,
) -> (Vec<u64>, Vec<CompletionRecord>) {
    let (n, d, l, h) = SHAPE;
    let program = Arc::new(stacked_rnn_program(n, d, l, h));
    let barrier = Arc::new(Barrier::new(k));
    let shared = shared_weights(7);
    let ids: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..k as u64)
            .map(|c| {
                let rt = Arc::clone(rt);
                let program = Arc::clone(&program);
                let barrier = Arc::clone(&barrier);
                let ws = if per_thread_ws {
                    // Distinct weights per request: same plan signature,
                    // but batch-fusion legality must reject the group.
                    shared_weights(100 + c)
                } else {
                    shared.clone()
                };
                s.spawn(move || {
                    barrier.wait();
                    let req = Request::new(program, inputs(seed0 + c, &ws)).with_session(c);
                    let ticket = rt.submit_wait(req).unwrap();
                    let id = ticket.request_id();
                    ticket.wait().unwrap();
                    id
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    (ids, rt.take_completions())
}

#[test]
fn fused_batch_yields_one_attributed_record_per_request() {
    let rt = Arc::new(Runtime::new(ServeConfig {
        threads: 2,
        batching: true,
        max_batch: 8,
        ..ServeConfig::default()
    }));
    // Warm the base plan so the timed bursts don't serialize on compile.
    let (n, d, l, h) = SHAPE;
    let program = Arc::new(stacked_rnn_program(n, d, l, h));
    let ws = shared_weights(7);
    rt.submit_wait(Request::new(Arc::clone(&program), inputs(999, &ws)))
        .unwrap()
        .wait()
        .unwrap();
    rt.take_completions();

    let k = 6;
    let mut fused_seen = false;
    for attempt in 0..20u64 {
        let (mut ids, records) = burst(&rt, k, 10_000 * (attempt + 1), false);
        assert_eq!(
            records.len(),
            k,
            "every request must produce exactly one completion record"
        );

        let mut rec_ids: Vec<u64> = records.iter().map(|r| r.ctx.request_id).collect();
        rec_ids.sort_unstable();
        ids.sort_unstable();
        assert_eq!(rec_ids, ids, "records must carry the submitted request ids");

        let sig = &records[0].ctx.plan_sig;
        assert_eq!(sig.len(), 32, "plan signature is 128-bit hex");
        for r in &records {
            assert_eq!(r.status, CompletionStatus::Ok);
            assert_eq!(&r.ctx.plan_sig, sig, "same program, same plan signature");
            assert!(r.ctx.session_id.is_some(), "session id must propagate");
            assert!(r.queue_wait_us >= 0.0);
            assert!(
                r.total_us >= r.exec_us,
                "end-to-end latency contains the launch: total {} < exec {}",
                r.total_us,
                r.exec_us
            );
        }

        // Batch attribution: every fused record names its launch, and the
        // number of records sharing that batch id equals the recorded
        // batch size.
        let mut by_batch: HashMap<u64, Vec<u32>> = HashMap::new();
        for r in &records {
            if let FuseDecision::Fused { size } = r.fuse {
                let id = r
                    .ctx
                    .batch_id
                    .expect("fused record must carry its batch id");
                by_batch.entry(id).or_default().push(size);
            } else {
                assert!(
                    r.ctx.batch_id.is_none(),
                    "unfused record must not claim a batch"
                );
            }
        }
        for (batch_id, sizes) in &by_batch {
            assert!(
                sizes.iter().all(|&s| s as usize == sizes.len()),
                "batch {batch_id}: sizes {sizes:?} disagree with member count {}",
                sizes.len()
            );
            if sizes.len() >= 2 {
                fused_seen = true;
            }
        }
        if fused_seen {
            break;
        }
    }
    assert!(
        fused_seen,
        "a barrier-released burst of {k} same-plan requests never fused in 20 attempts"
    );
    assert_eq!(rt.completions_dropped(), 0);
    rt.shutdown();
}

#[test]
fn fusion_fallback_attributes_the_reason_per_request() {
    let rt = Arc::new(Runtime::new(ServeConfig {
        threads: 2,
        batching: true,
        max_batch: 8,
        ..ServeConfig::default()
    }));
    let k = 4;
    let mut fallback_seen = false;
    for attempt in 0..20u64 {
        let (ids, records) = burst(&rt, k, 20_000 * (attempt + 1), true);
        assert_eq!(records.len(), k);
        for r in &records {
            assert_eq!(
                r.status,
                CompletionStatus::Ok,
                "fallback still serves the request"
            );
            if let FuseDecision::Fallback(reason) = &r.fuse {
                assert!(
                    reason.contains("differs across batch"),
                    "distinct weights must fail shared-input legality, got {reason:?}"
                );
                fallback_seen = true;
            }
        }
        // The runtime-local registry counts the fallback too.
        if fallback_seen {
            let snap = rt.metrics().snapshot();
            assert!(snap.counters["serve.batch_fallbacks"] >= 1);
            let _ = ids;
            break;
        }
    }
    assert!(
        fallback_seen,
        "bursts of same-plan requests with distinct weights never hit the fallback path"
    );
    rt.shutdown();
}

#[test]
fn unbatched_runtime_emits_solo_records() {
    let rt = Arc::new(Runtime::new(ServeConfig {
        threads: 2,
        batching: false,
        ..ServeConfig::default()
    }));
    let (ids, records) = burst(&rt, 3, 1, false);
    assert_eq!(records.len(), 3);
    let mut rec_ids: Vec<u64> = records.iter().map(|r| r.ctx.request_id).collect();
    rec_ids.sort_unstable();
    let mut ids = ids;
    ids.sort_unstable();
    assert_eq!(rec_ids, ids);
    for r in &records {
        assert_eq!(r.fuse, FuseDecision::Solo, "batching off means solo runs");
        assert!(r.ctx.batch_id.is_none());
        assert!(r.exec_us > 0.0, "solo exec time is measured per request");
    }
    assert_eq!(rt.completions_dropped(), 0);
    rt.shutdown();
}
