//! Self-healing serving: chaos tests for the four failure domains.
//!
//! * Scheduler supervision — a panicked dispatch loop fails its in-flight
//!   tickets with typed [`ServeError::SchedulerDown`] (never a hang) and
//!   the supervisor restores service.
//! * Batch fault isolation — a fault on one member of a fused launch
//!   fails only that request; every other member's output is
//!   bitwise-identical to its solo (unbatched) run.
//! * Plan quarantine — a repeatedly-failing plan trips a circuit breaker
//!   ([`ServeError::Quarantined`], no pool time burned) and recovers
//!   through a half-open probe after the cooldown.
//! * Load shedding + stall watchdog — an unmeetable deadline is rejected
//!   at admission ([`ServeError::Shed`]); a wedged launch becomes a typed
//!   [`ExecError::Stalled`] and the poisoned pool is replaced at full
//!   strength.

use std::collections::HashMap;
use std::time::Duration;

use ft_backend::{execute_reference, ExecError};
use ft_core::builders::stacked_rnn_program;
use ft_core::{BufferId, FractalTensor, Program};
use ft_passes::compile;
use ft_serve::{FaultPlan, Request, Runtime, ServeConfig, ServeError};
use ft_tensor::Tensor;

fn rnn_inputs(
    n: usize,
    d: usize,
    l: usize,
    h: usize,
    seed: u64,
) -> HashMap<BufferId, FractalTensor> {
    let mut m = HashMap::new();
    m.insert(
        BufferId(0),
        FractalTensor::from_flat(&Tensor::randn(&[n, l, 1, h], seed), 2).unwrap(),
    );
    m.insert(
        BufferId(1),
        FractalTensor::from_flat(&Tensor::randn(&[d, h, h], seed + 1).mul_scalar(0.2), 1).unwrap(),
    );
    m
}

/// Same shape, but the activations carry a NaN: with the guard on, any
/// execution of these inputs fails typed ([`ExecError::Guard`]).
fn poisoned_inputs(
    n: usize,
    d: usize,
    l: usize,
    h: usize,
    seed: u64,
) -> HashMap<BufferId, FractalTensor> {
    let mut m = rnn_inputs(n, d, l, h, seed);
    let flat = m[&BufferId(0)].to_flat().unwrap();
    let mut v = flat.to_vec();
    v[0] = f32::NAN;
    let nan = Tensor::from_vec(v, flat.dims()).unwrap();
    m.insert(BufferId(0), FractalTensor::from_flat(&nan, 2).unwrap());
    m
}

fn reference(
    p: &Program,
    inputs: &HashMap<BufferId, FractalTensor>,
) -> HashMap<BufferId, FractalTensor> {
    let compiled = compile(p).unwrap();
    execute_reference(&compiled, inputs, 1).unwrap()
}

fn assert_bitwise_equal(
    a: &HashMap<BufferId, FractalTensor>,
    b: &HashMap<BufferId, FractalTensor>,
    ctx: &str,
) {
    assert_eq!(a.len(), b.len(), "{ctx}: output buffer sets differ");
    for (id, fa) in a {
        let va = fa.to_flat().unwrap().to_vec();
        let vb = b[id].to_flat().unwrap().to_vec();
        assert_eq!(
            va.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            vb.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "{ctx}: buffer {id:?} diverged"
        );
    }
}

/// Failure domain 2: one poisoned member of a fused batch fails alone;
/// the other members are re-run solo and their outputs are
/// bitwise-identical to unbatched runs. The bisection cost is metered.
#[test]
fn fused_batch_fault_is_isolated_to_the_poisoned_member() {
    let (n, d, l, h) = (2usize, 2, 3, 8);
    let rt = Runtime::new(ServeConfig {
        threads: 2,
        max_batch: 4,
        guard: Some(true),
        ..ServeConfig::default()
    });

    // Occupy the scheduler with a slower different-signature request so
    // the four test requests queue up and dispatch as one fused group.
    let blocker = stacked_rnn_program(2, 3, 8, 32);
    let blocker_ticket = rt
        .submit_wait(Request::new(blocker.clone(), rnn_inputs(2, 3, 8, 32, 900)))
        .unwrap();

    let p = stacked_rnn_program(n, d, l, h);
    // One shared weight tensor across the batch (fusion requires shared
    // buffers to be identical); only the activations vary per request.
    let ws = FractalTensor::from_flat(&Tensor::randn(&[d, h, h], 41).mul_scalar(0.2), 1).unwrap();
    let with_ws = |mut m: HashMap<BufferId, FractalTensor>| {
        m.insert(BufferId(1), ws.clone());
        m
    };
    let good: Vec<_> = (0..3)
        .map(|i| with_ws(rnn_inputs(n, d, l, h, 40 + i)))
        .collect();
    let bad = with_ws(poisoned_inputs(n, d, l, h, 77));

    let mut tickets = Vec::new();
    for inputs in good.iter().cloned() {
        tickets.push(rt.submit_wait(Request::new(p.clone(), inputs)).unwrap());
    }
    let bad_ticket = rt.submit_wait(Request::new(p.clone(), bad)).unwrap();
    blocker_ticket.wait().unwrap();

    // The poisoned member fails typed; the guard catches the NaN.
    assert!(
        matches!(
            bad_ticket.wait(),
            Err(ServeError::Exec(ExecError::Guard { .. }))
        ),
        "poisoned member must fail with a typed guard error"
    );
    // Every healthy member succeeds, bitwise equal to its solo run.
    for (inputs, t) in good.iter().zip(tickets) {
        let got = t.wait().unwrap();
        assert_bitwise_equal(&got, &reference(&p, inputs), "healthy member");
    }

    let stats = rt.stats();
    assert!(
        stats.batch_bisections >= 1,
        "fused failure must trigger solo-retry isolation, got {stats:?}"
    );
    assert!(stats.retries >= 2, "isolation retries must be metered");
    assert!(stats.batch_fallbacks >= 1);
}

/// Failure domain 1: killing the scheduler mid-burst strands no ticket —
/// every admitted request resolves typed (SchedulerDown for the group
/// that died in flight, Ok for the rest) and the respawned scheduler
/// keeps serving.
#[test]
fn scheduler_death_mid_burst_strands_no_ticket() {
    let (n, d, l, h) = (2usize, 2, 3, 8);
    let rt = Runtime::new(ServeConfig {
        threads: 2,
        max_batch: 4,
        ..ServeConfig::default()
    });
    let p = stacked_rnn_program(n, d, l, h);
    let inputs = rnn_inputs(n, d, l, h, 5);

    // The next dispatch panics after its group is popped — the worst
    // case: those tickets are neither queued nor fulfilled.
    rt.kill_scheduler();
    let tickets: Vec<_> = (0..16)
        .map(|_| {
            rt.submit_wait(Request::new(p.clone(), inputs.clone()))
                .unwrap()
        })
        .collect();

    let mut down = 0usize;
    let mut ok = 0usize;
    for t in tickets {
        match t.wait() {
            Ok(out) => {
                assert_bitwise_equal(&out, &reference(&p, &inputs), "post-restart request");
                ok += 1;
            }
            Err(ServeError::SchedulerDown) => down += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(down >= 1, "the killed dispatch must fail its group typed");
    assert!(ok >= 1, "the respawned scheduler must drain the rest");

    let stats = rt.stats();
    assert!(stats.scheduler_restarts >= 1, "restart must be metered");

    // Service is fully restored for fresh submissions.
    let out = rt.run(&p, inputs.clone()).unwrap();
    assert_bitwise_equal(&out, &reference(&p, &inputs), "post-recovery request");
}

/// Failure domain 3: a plan that keeps failing trips its circuit breaker
/// (requests fail fast with Quarantined, no pool time), and a successful
/// half-open probe after the cooldown closes it again.
#[test]
fn quarantined_plan_fails_fast_then_recovers_via_probe() {
    let (n, d, l, h) = (2usize, 2, 3, 8);
    let rt = Runtime::new(ServeConfig {
        threads: 2,
        batching: false,
        guard: Some(true),
        quarantine_threshold: 3,
        quarantine_cooldown: Duration::from_millis(750),
        ..ServeConfig::default()
    });
    let p = stacked_rnn_program(n, d, l, h);
    let bad = poisoned_inputs(n, d, l, h, 21);
    let good = rnn_inputs(n, d, l, h, 22);

    for _ in 0..3 {
        assert!(
            matches!(
                rt.run(&p, bad.clone()),
                Err(ServeError::Exec(ExecError::Guard { .. }))
            ),
            "poisoned request must fail typed while the breaker is closed"
        );
    }
    // Third consecutive failure tripped the breaker: even a *good*
    // request fails fast now — the plan is suspect, not the inputs.
    assert_eq!(rt.run(&p, good.clone()), Err(ServeError::Quarantined));
    let stats = rt.stats();
    assert_eq!(stats.quarantine_trips, 1);
    assert!(stats.quarantine_rejected >= 1);
    assert_eq!(stats.quarantined_plans, 1);

    // After the cooldown one probe goes through; success closes the
    // breaker and service resumes.
    std::thread::sleep(Duration::from_millis(850));
    let out = rt.run(&p, good.clone()).unwrap();
    assert_bitwise_equal(&out, &reference(&p, &good), "half-open probe");
    let stats = rt.stats();
    assert_eq!(
        stats.quarantined_plans, 0,
        "probe success must close the breaker"
    );
    let out = rt.run(&p, good.clone()).unwrap();
    assert_bitwise_equal(&out, &reference(&p, &good), "post-recovery request");
}

/// Failure domain 4a: admission sheds a request whose deadline is
/// already unmeetable given live latency history — typed Shed, distinct
/// from QueueFull — while generous deadlines are admitted untouched.
#[test]
fn unmeetable_deadline_is_shed_at_admission() {
    let (n, d, l, h) = (2usize, 2, 3, 8);
    let rt = Runtime::new(ServeConfig {
        threads: 1,
        batching: false,
        ..ServeConfig::default()
    });
    let p = stacked_rnn_program(n, d, l, h);
    let inputs = rnn_inputs(n, d, l, h, 31);

    // Build latency history; a cold runtime never sheds.
    for _ in 0..8 {
        rt.run(&p, inputs.clone()).unwrap();
    }

    let err = rt
        .submit(Request::new(p.clone(), inputs.clone()).with_deadline(Duration::from_nanos(1)))
        .unwrap_err();
    match err {
        ServeError::Shed { estimated_us } => assert!(estimated_us > 0),
        other => panic!("expected Shed, got {other}"),
    }
    assert_eq!(rt.stats().shed, 1);

    // A meetable deadline is admitted and served exactly.
    let out = rt
        .submit_wait(Request::new(p.clone(), inputs.clone()).with_deadline(Duration::from_secs(60)))
        .unwrap()
        .wait()
        .unwrap();
    assert_bitwise_equal(&out, &reference(&p, &inputs), "meetable deadline");
}

/// Failure domain 4b: a wedged UDF inside a launch trips the stall
/// watchdog — a typed `ExecError::Stalled`, a replaced pool back at full
/// worker count, and exact service afterwards.
#[test]
fn stalled_launch_is_detected_and_pool_replaced() {
    let (n, d, l, h) = (2usize, 3, 5, 4);
    let rt = Runtime::new(ServeConfig {
        threads: 2,
        batching: false,
        launch_timeout: Some(Duration::from_millis(100)),
        ..ServeConfig::default()
    });
    let p = stacked_rnn_program(n, d, l, h);
    let inputs = rnn_inputs(n, d, l, h, 51);

    // Warm: the plan is cached and the supervised pool serves exactly.
    let out = rt.run(&p, inputs.clone()).unwrap();
    assert_bitwise_equal(&out, &reference(&p, &inputs), "warmup on supervised pool");

    // Wedge the first worker that picks up group 0's first wavefront
    // step for far longer than the watchdog window.
    let lo = compile(&p).unwrap().groups[0]
        .reordering
        .wavefront_range()
        .0;
    rt.inject_exec_fault(FaultPlan::new().stall_at(0, lo, 600));
    assert!(
        matches!(
            rt.run(&p, inputs.clone()),
            Err(ServeError::Exec(ExecError::Stalled { .. }))
        ),
        "wedged launch must surface as a typed stall, not a hang"
    );

    let stats = rt.stats();
    assert!(stats.stalled >= 1, "stall must be metered");
    assert!(
        stats.pool_replacements >= 1,
        "poisoned pool must be replaced"
    );
    assert_eq!(
        stats.pool_workers, 2,
        "replacement pool must be at full worker count"
    );

    // The fresh pool serves the same plan bitwise-exactly.
    let out = rt.run(&p, inputs.clone()).unwrap();
    assert_bitwise_equal(&out, &reference(&p, &inputs), "post-replacement request");
}

/// Worker panics injected straight into the shared pool degrade one
/// request each, never the runtime: later submissions are exact.
#[test]
fn injected_pool_panic_degrades_one_request_not_the_runtime() {
    let (n, d, l, h) = (2usize, 2, 3, 8);
    let rt = Runtime::new(ServeConfig {
        threads: 2,
        batching: false,
        ..ServeConfig::default()
    });
    let p = stacked_rnn_program(n, d, l, h);
    let inputs = rnn_inputs(n, d, l, h, 61);
    rt.run(&p, inputs.clone()).unwrap();

    rt.inject_pool_fault(1, 1);
    match rt.run(&p, inputs.clone()) {
        // The panicked launch surfaces typed...
        Err(ServeError::Exec(_)) => {}
        // ...or the executor's inline fallback salvages the request.
        Ok(out) => assert_bitwise_equal(&out, &reference(&p, &inputs), "salvaged request"),
        Err(e) => panic!("unexpected error class: {e}"),
    }
    let out = rt.run(&p, inputs.clone()).unwrap();
    assert_bitwise_equal(&out, &reference(&p, &inputs), "post-fault request");
}
