//! Property tests over deliberately corrupted programs.
//!
//! Every [`MutationClass`] must be caught by a typed error at *some* layer
//! of construct → compile → verify → guarded execute. No mutation may
//! panic the process, and none may flow through all four layers into a
//! silently wrong answer.

use ft_backend::Executor;
use ft_passes::compile;
use ft_verify::{verify, VerifyError};
use ft_workloads::{mutated_inputs, mutated_program, MutationClass};
use proptest::prelude::*;

#[test]
fn every_mutation_class_is_caught_at_its_expected_layer() {
    for class in MutationClass::ALL {
        let label = class.label();
        let program = match mutated_program(class, 4, 1) {
            Err(_) => {
                // Construction-time rejection is the earliest (and best)
                // outcome; only the structural classes may take it.
                assert!(
                    matches!(
                        class,
                        MutationClass::ShapeMismatch | MutationClass::EmptyDimension
                    ),
                    "{label}: unexpectedly rejected at construction"
                );
                continue;
            }
            Ok(p) => p,
        };
        let compiled = match compile(&program) {
            Err(_) => {
                assert_eq!(
                    class,
                    MutationClass::DependenceCycle,
                    "{label}: unexpectedly rejected at compile"
                );
                continue;
            }
            Ok(c) => c,
        };
        // Whatever survives compilation must be stopped by the verifier
        // before it can execute — currently only the out-of-range offset.
        assert_eq!(class, MutationClass::OutOfRangeOffset, "{label}");
        match verify(&compiled) {
            Err(VerifyError::MapOutOfRange { buffer, .. }) => {
                assert_eq!(buffer, "x", "{label}: wrong buffer named");
            }
            other => panic!("{label}: expected MapOutOfRange, got {other:?}"),
        }
        // Belt and braces: the guarded executor refuses it too.
        let err = Executor::new()
            .threads(2)
            .guard(true)
            .run(&compiled, &mutated_inputs(4, 3))
            .expect_err("guarded executor must refuse the out-of-range read");
        let msg = err.to_string();
        assert!(
            msg.contains("out of range") || msg.contains("range"),
            "{label}: untyped diagnostic: {msg}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized sweep over mutation class, scan length, corruption
    /// magnitude, input seed, and thread count: some layer must error,
    /// and nothing may panic (the proptest harness catches unwinds and
    /// would report them as failures).
    #[test]
    fn prop_mutations_never_escape_the_safety_net(
        class_idx in 0usize..4,
        l in 2usize..9,
        magnitude in 1usize..5,
        seed in 0u64..1000,
        threads in 1usize..5,
    ) {
        let class = MutationClass::ALL[class_idx];
        let Ok(program) = mutated_program(class, l, magnitude) else {
            return Ok(()); // caught at construction
        };
        let Ok(compiled) = compile(&program) else {
            return Ok(()); // caught at compile
        };
        let verified = verify(&compiled);
        let executed = Executor::new()
            .threads(threads)
            .guard(true)
            .run(&compiled, &mutated_inputs(l, seed));
        prop_assert!(
            verified.is_err() || executed.is_err(),
            "{}: l={l} magnitude={magnitude} escaped verify AND guarded execution",
            class.label()
        );
        // The verifier is the compile-time net: whenever the runtime
        // trips on a bad access, the verifier must have flagged the
        // schedule first.
        if executed.is_err() {
            prop_assert!(
                verified.is_err(),
                "{}: runtime failed but verifier passed the schedule",
                class.label()
            );
        }
    }
}
