//! End-to-end pipeline tests: program → ETDG → coarsen → reorder → execute,
//! validated against the interpreter oracle, for the running example across
//! a grid of shapes and thread counts.

use std::collections::HashMap;

use ft_backend::execute;
use ft_core::adt::FractalTensor;
use ft_core::builders::stacked_rnn_program;
use ft_core::interp::run_program;
use ft_core::BufferId;
use ft_integration_tests::assert_fractal_close;
use ft_passes::compile;
use ft_tensor::Tensor;

fn rnn_inputs(
    n: usize,
    d: usize,
    l: usize,
    h: usize,
    seed: u64,
) -> HashMap<BufferId, FractalTensor> {
    let mut m = HashMap::new();
    m.insert(
        BufferId(0),
        FractalTensor::from_flat(&Tensor::randn(&[n, l, 1, h], seed), 2).unwrap(),
    );
    m.insert(
        BufferId(1),
        FractalTensor::from_flat(&Tensor::randn(&[d, h, h], seed + 1).mul_scalar(0.2), 1).unwrap(),
    );
    m
}

#[test]
fn stacked_rnn_shape_grid() {
    for (n, d, l, h) in [
        (1usize, 1usize, 1usize, 4usize),
        (1, 1, 8, 4),
        (1, 8, 1, 4),
        (3, 2, 5, 8),
        (2, 6, 6, 16),
    ] {
        let p = stacked_rnn_program(n, d, l, h);
        let ins = rnn_inputs(n, d, l, h, 7 + (n + d + l) as u64);
        let expected = run_program(&p, &ins).unwrap();
        let compiled = compile(&p).unwrap();
        let got = execute(&compiled, &ins, 4).unwrap();
        assert_fractal_close(&got[&BufferId(2)], &expected[&BufferId(2)], 1e-4);
    }
}

#[test]
fn thread_count_does_not_change_results() {
    let (n, d, l, h) = (2usize, 4, 6, 8);
    let p = stacked_rnn_program(n, d, l, h);
    let ins = rnn_inputs(n, d, l, h, 99);
    let compiled = compile(&p).unwrap();
    let base = execute(&compiled, &ins, 1).unwrap();
    for threads in [2usize, 4, 16] {
        let got = execute(&compiled, &ins, threads).unwrap();
        assert_eq!(got[&BufferId(2)], base[&BufferId(2)]);
    }
}

#[test]
fn degenerate_single_cell_network() {
    // 1x1x1: every region except the all-boundary one is empty; the graph
    // still parses, compiles, and executes.
    let p = stacked_rnn_program(1, 1, 1, 4);
    let g = ft_etdg::parse_program(&p).unwrap();
    assert_eq!(g.blocks.len(), 1, "only the boundary region is non-empty");
    let ins = rnn_inputs(1, 1, 1, 4, 3);
    let compiled = compile(&p).unwrap();
    let got = execute(&compiled, &ins, 2).unwrap();
    let expected = run_program(&p, &ins).unwrap();
    assert_fractal_close(&got[&BufferId(2)], &expected[&BufferId(2)], 1e-5);
}

#[test]
fn emitted_code_covers_every_region() {
    let p = stacked_rnn_program(2, 3, 4, 8);
    let compiled = compile(&p).unwrap();
    let code = ft_backend::emit_program(&compiled, 192 * 1024).unwrap();
    for b in &compiled.etdg.blocks {
        assert!(
            code.contains(&b.name),
            "emitted code must mention region '{}'",
            b.name
        );
    }
}
