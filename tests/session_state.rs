//! Stateful-session integration tests (DESIGN.md §15).
//!
//! A session pins decode state — an RNN hidden stack, a KV cache —
//! server-side and advances it *in place* after every step. These tests
//! pin the contract that makes that safe to serve:
//!
//! * **Bitwise parity** — a K-step decode loop through the serving layer
//!   must equal the one-shot recompute-from-scratch reference bit for
//!   bit, at every thread count (CI also runs this suite under
//!   `FT_GUARD=1` and `FT_SIMD=scalar`).
//! * **Zero copies** — the in-place advance never deep-copies state on
//!   the well-formed path (`serve.state_copies` stays 0).
//! * **Isolation** — interleaved stateless traffic and other sessions
//!   never perturb a session's state; an abusive session is evicted
//!   without quarantining the plan others depend on; eviction returns
//!   the pinned-bytes gauge to baseline.
//! * **One compile per extent** — concurrent `PolyPlan::instance` misses
//!   for the same extent cost exactly one compile (the thundering-herd
//!   regression).

use std::collections::HashMap;
use std::sync::Arc;

use ft_backend::execute_reference;
use ft_core::builders::{rnn_decode_step_program, stacked_rnn_program};
use ft_core::{BufferId, FractalTensor};
use ft_passes::{compile, PolyPlan};
use ft_serve::{
    Request, Runtime, ServeConfig, ServeError, SessionError, SessionSpec, StateBinding, StateOp,
};
use ft_tensor::{assert_allclose, Tensor};
use ft_workloads::decode;

/// RNN decode-step state lives in `hs` (`BufferId(2)`), advanced by the
/// whole-handle carry of `hs_next` (`BufferId(3)`).
const RNN_HS: BufferId = BufferId(2);
const RNN_HS_NEXT: BufferId = BufferId(3);

fn rnn_session_spec(d: usize, h: usize) -> SessionSpec {
    SessionSpec {
        program: Arc::new(rnn_decode_step_program(d, h)),
        bindings: vec![StateBinding {
            state: RNN_HS,
            op: StateOp::Carry {
                output: RNN_HS_NEXT,
            },
        }],
        capacity: 0,
        init: decode::rnn_state_init(d, h),
    }
}

fn rnn_weights(d: usize, h: usize, seed: u64) -> FractalTensor {
    FractalTensor::from_tensors(
        (0..d)
            .map(|j| Tensor::randn(&[h, h], seed + j as u64).mul_scalar(0.2))
            .collect(),
    )
    .unwrap()
}

fn token(h: usize, seed: u64) -> Tensor {
    Tensor::randn(&[1, h], seed)
}

/// Drives `k` decode steps of one RNN session and returns the hidden
/// stack after every step (handles read back through the ticket).
fn run_rnn_session(
    rt: &Runtime,
    session: u64,
    ws: &FractalTensor,
    h: usize,
    k: usize,
    seed: u64,
) -> Vec<FractalTensor> {
    let mut states = Vec::new();
    for t in 0..k {
        let mut inputs = HashMap::new();
        inputs.insert(
            BufferId(0),
            FractalTensor::from_tensors(vec![token(h, seed + t as u64)]).unwrap(),
        );
        inputs.insert(BufferId(1), ws.clone());
        let got = rt.decode_step(session, inputs).unwrap().wait().unwrap();
        states.push(got[&RNN_HS_NEXT].clone());
    }
    states
}

/// The one-shot recompute-from-scratch reference: the full stacked RNN
/// over all `k` tokens through the single-threaded reference executor.
/// `ysss[0][j][t]` is layer `j`'s hidden state after step `t`.
fn rnn_one_shot(d: usize, h: usize, k: usize, ws: &FractalTensor, seed: u64) -> FractalTensor {
    let p = stacked_rnn_program(1, d, k, h);
    let compiled = compile(&p).unwrap();
    let tokens: Vec<Tensor> = (0..k).map(|t| token(h, seed + t as u64)).collect();
    let xss = FractalTensor::nested(vec![FractalTensor::from_tensors(tokens).unwrap()]).unwrap();
    let mut inputs = HashMap::new();
    inputs.insert(BufferId(0), xss);
    inputs.insert(BufferId(1), ws.clone());
    execute_reference(&compiled, &inputs, 1).unwrap()[&BufferId(2)].clone()
}

/// K decode steps through the serving layer are bitwise-identical to the
/// one-shot recompute at every thread count, with zero state copies.
#[test]
fn rnn_session_decode_is_bitwise_at_every_thread_count() {
    let (d, h, k) = (3usize, 8, 5);
    let ws = rnn_weights(d, h, 60);
    let one_shot = rnn_one_shot(d, h, k, &ws, 500);
    for threads in [1usize, 2, 8] {
        let rt = Runtime::new(ServeConfig {
            threads,
            ..ServeConfig::default()
        });
        let session = rt.open_session(rnn_session_spec(d, h)).unwrap();
        let states = run_rnn_session(&rt, session, &ws, h, k, 500);
        for (t, hs) in states.iter().enumerate() {
            for j in 0..d {
                assert_eq!(
                    hs.leaf_at(&[0, j]).unwrap(),
                    one_shot.leaf_at(&[0, j, t]).unwrap(),
                    "threads={threads} step {t} layer {j} diverged from one-shot recompute"
                );
            }
        }
        let stats = rt.stats();
        assert_eq!(stats.decode_steps, k as u64);
        assert_eq!(
            stats.state_copies, 0,
            "in-place carry must not deep-copy state (threads={threads})"
        );
        rt.close_session(session).unwrap();
    }
}

fn attn_session_spec(h: usize, cap: usize) -> SessionSpec {
    use decode::buffers as b;
    SessionSpec {
        program: Arc::new(decode::attention_decode_step_program(h, cap)),
        bindings: vec![
            StateBinding {
                state: b::KC,
                op: StateOp::Append { output: b::K_STEP },
            },
            StateBinding {
                state: b::VC,
                op: StateOp::Append { output: b::V_STEP },
            },
            StateBinding {
                state: b::MASK,
                op: StateOp::AppendFill { value: 0.0 },
            },
        ],
        capacity: cap,
        init: decode::attention_state_init(h, cap),
    }
}

/// The attention decode session — per-step KV append plus mask flip —
/// matches the eager full-softmax-over-history reference at every step,
/// with zero state copies, and the pinned cache itself is inspectable
/// and correct.
#[test]
fn attention_session_matches_eager_reference() {
    use decode::buffers as b;
    let (h, cap, k) = (8usize, 8, 6);
    let rt = Runtime::new(ServeConfig {
        threads: 2,
        ..ServeConfig::default()
    });
    let (wq, wk, wv) = decode::attention_weights(h, 9);
    let session = rt.open_session(attn_session_spec(h, cap)).unwrap();
    let tokens: Vec<Tensor> = (0..k).map(|t| token(h, 900 + t as u64)).collect();
    let (wq_leaf, wk_leaf, wv_leaf) = (
        wq.leaf_at(&[0]).unwrap().clone(),
        wk.leaf_at(&[0]).unwrap().clone(),
        wv.leaf_at(&[0]).unwrap().clone(),
    );
    for t in 0..k {
        let mut inputs = HashMap::new();
        inputs.insert(
            b::X,
            FractalTensor::from_tensors(vec![tokens[t].clone()]).unwrap(),
        );
        inputs.insert(b::WQ, wq.clone());
        inputs.insert(b::WK, wk.clone());
        inputs.insert(b::WV, wv.clone());
        let got = rt.decode_step(session, inputs).unwrap().wait().unwrap();
        let out = got[&b::OUT].leaf_at(&[0]).unwrap().to_contiguous();
        let want = decode::reference_decode_step(&tokens[..=t], &wq_leaf, &wk_leaf, &wv_leaf);
        assert_allclose(&out, &want, 1e-4);
    }
    assert_eq!(rt.session_steps(session).unwrap(), k);

    // The pinned caches are directly inspectable: row t holds token t's
    // projected key; mask rows flip to visible exactly as far as decoded.
    let kc = rt.session_state(session, b::KC).unwrap();
    let mask = rt.session_state(session, b::MASK).unwrap();
    for t in 0..cap {
        let visible = mask.leaf_at(&[0, t]).unwrap().to_contiguous();
        match tokens.get(t) {
            Some(tok) => {
                let want = tok.matmul(&wk_leaf).unwrap();
                assert_allclose(&kc.leaf_at(&[0, t]).unwrap().to_contiguous(), &want, 1e-5);
                assert_eq!(visible, Tensor::zeros(&[1, 1]));
            }
            None => assert_eq!(visible, Tensor::full(&[1, 1], decode::MASKED)),
        }
    }
    let stats = rt.stats();
    assert_eq!(stats.decode_steps, k as u64);
    assert_eq!(
        stats.state_copies, 0,
        "KV append must replace rows in place"
    );
}

/// Two sessions interleaved with stateless one-shot traffic on the same
/// runtime: neither the other session nor the stateless requests may
/// perturb a session's pinned state — both decode loops stay bitwise
/// equal to their solo one-shot references.
#[test]
fn sessions_survive_interleaved_stateless_traffic() {
    let (d, h, k) = (2usize, 8, 4);
    let rt = Runtime::new(ServeConfig {
        threads: 2,
        max_batch: 8,
        ..ServeConfig::default()
    });
    let ws = rnn_weights(d, h, 70);
    let sa = rt.open_session(rnn_session_spec(d, h)).unwrap();
    let sb = rt.open_session(rnn_session_spec(d, h)).unwrap();
    let stateless = Arc::new(stacked_rnn_program(2, d, 3, h));
    let mut a_states = Vec::new();
    let mut b_states = Vec::new();
    for t in 0..k {
        a_states.extend(run_rnn_session(&rt, sa, &ws, h, 1, 1000 + t as u64));
        // Stateless traffic between the two sessions' steps.
        let mut inputs = HashMap::new();
        inputs.insert(
            BufferId(0),
            FractalTensor::from_flat(&Tensor::randn(&[2, 3, 1, h], 77 + t as u64), 2).unwrap(),
        );
        inputs.insert(BufferId(1), ws.clone());
        rt.submit_wait(Request::new(Arc::clone(&stateless), inputs))
            .unwrap()
            .wait()
            .unwrap();
        b_states.extend(run_rnn_session(&rt, sb, &ws, h, 1, 2000 + t as u64));
    }
    for (seed, states) in [(1000u64, &a_states), (2000, &b_states)] {
        // Each step used seed + t with a per-step base of seed + t, so the
        // token sequence is seed, seed+1, … — the same as one k-step run.
        let one_shot = rnn_one_shot(d, h, k, &ws, seed);
        for (t, hs) in states.iter().enumerate() {
            for j in 0..d {
                assert_eq!(
                    hs.leaf_at(&[0, j]).unwrap(),
                    one_shot.leaf_at(&[0, j, t]).unwrap(),
                    "session (seed {seed}) step {t} layer {j} was perturbed"
                );
            }
        }
    }
    assert_eq!(rt.stats().state_copies, 0);
}

/// A session that keeps decoding past its reserved append capacity is
/// struck and evicted — its pinned bytes return to baseline and the
/// *plan* stays healthy: no quarantine trip, and another session on the
/// same program keeps decoding.
#[test]
fn overflowing_session_is_evicted_without_quarantining_the_plan() {
    use decode::buffers as b;
    let (h, cap) = (8usize, 2);
    let rt = Runtime::new(ServeConfig {
        threads: 2,
        quarantine_threshold: 2,
        ..ServeConfig::default()
    });
    let (wq, wk, wv) = decode::attention_weights(h, 9);
    let step_inputs = |seed: u64| {
        let mut inputs = HashMap::new();
        inputs.insert(
            b::X,
            FractalTensor::from_tensors(vec![token(h, seed)]).unwrap(),
        );
        inputs.insert(b::WQ, wq.clone());
        inputs.insert(b::WK, wk.clone());
        inputs.insert(b::WV, wv.clone());
        inputs
    };

    assert_eq!(rt.stats().pinned_bytes, 0);
    let abuser = rt.open_session(attn_session_spec(h, cap)).unwrap();
    let victim = rt.open_session(attn_session_spec(h, cap)).unwrap();
    assert!(rt.stats().pinned_bytes > 0);
    assert_eq!(rt.stats().active_sessions, 2);

    // Fill the abuser's reserved headroom legitimately…
    for t in 0..cap {
        rt.decode_step(abuser, step_inputs(10 + t as u64))
            .unwrap()
            .wait()
            .unwrap();
    }
    // …then hammer past it. Every attempt is a typed session error that
    // strikes the session; the third strike evicts it.
    let mut overflows = 0;
    loop {
        match rt.decode_step(abuser, step_inputs(99)) {
            Err(ServeError::Session(SessionError::Overflow { session, capacity })) => {
                assert_eq!((session, capacity), (abuser, cap));
                overflows += 1;
            }
            Err(ServeError::Session(SessionError::NotFound(_))) => break,
            other => panic!("expected overflow-then-eviction, got {other:?}"),
        }
        assert!(overflows <= 8, "session was never evicted");
    }
    assert_eq!(overflows, 3, "eviction lands on the strike limit");

    let stats = rt.stats();
    assert_eq!(stats.session_evictions, 1);
    assert!(stats.session_errors >= 3);
    assert_eq!(stats.active_sessions, 1);
    assert_eq!(
        stats.quarantine_trips, 0,
        "session errors must never trip the plan's circuit breaker"
    );

    // The plan the abuser hammered still serves the victim.
    rt.decode_step(victim, step_inputs(200))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(rt.stats().quarantine_rejected, 0);

    // Closing the last session returns the pinned-bytes gauge to zero.
    rt.close_session(victim).unwrap();
    let stats = rt.stats();
    assert_eq!(stats.active_sessions, 0);
    assert_eq!(
        stats.pinned_bytes, 0,
        "eviction + close must free pinned state"
    );
}

/// The thundering-herd regression: 8 threads hammering
/// [`PolyPlan::instance`] across 6 extents must cost exactly one compile
/// per distinct extent — the instantiation counter equals actual
/// compiles, not racers.
#[test]
fn concurrent_poly_instance_compiles_once_per_extent() {
    let plan = Arc::new(
        PolyPlan::build(&stacked_rnn_program(4, 2, 3, 8))
            .unwrap()
            .expect("stacked RNN is poly-eligible"),
    );
    assert_eq!(plan.instantiations(), 1, "build primes the template extent");

    let extents: Vec<usize> = (1..=6).collect();
    let handles: Vec<_> = (0..8u64)
        .map(|t| {
            let plan = Arc::clone(&plan);
            let extents = extents.clone();
            std::thread::spawn(move || {
                for round in 0..3usize {
                    for i in 0..extents.len() {
                        // Stagger per-thread visit order so every extent
                        // sees genuinely concurrent first-misses.
                        let l = extents[(i + t as usize + round) % extents.len()];
                        plan.instance(l).unwrap();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    assert_eq!(
        plan.instantiations(),
        extents.len() as u64,
        "each distinct extent must compile exactly once across 8 threads"
    );
    assert_eq!(plan.cached_instances(), extents.len());
}
