//! Failure injection: malformed programs and inputs must be rejected with
//! errors at the right layer — never panics, never silent wrong answers.

use std::collections::HashMap;

use ft_backend::execute;
use ft_core::adt::FractalTensor;
use ft_core::expr::UdfBuilder;
use ft_core::interp::run_program;
use ft_core::program::{CarriedInit, Nest, OpKind, Program, Read, Write};
use ft_core::{AccessSpec, AxisExpr, BufferId};
use ft_passes::compile;
use ft_tensor::Tensor;

fn identity_udf(name: &str) -> ft_core::Udf {
    let mut b = UdfBuilder::new(name, 1);
    let i = b.input(0);
    let o = b.id(i);
    b.build(&[o])
}

/// A write access that maps every iteration to index 0 violates single
/// assignment; the interpreter detects it at the second write.
#[test]
fn non_injective_write_is_caught_at_runtime() {
    let mut p = Program::new("collide");
    let x = p.input("x", &[4], &[1, 2]);
    let y = p.output("y", &[4], &[1, 2]);
    p.add_nest(Nest {
        name: "collide".into(),
        ops: vec![OpKind::Map],
        extents: vec![4],
        reads: vec![Read::plain(x, AccessSpec::identity(1))],
        writes: vec![Write {
            buffer: y,
            access: AccessSpec::new(vec![AxisExpr::constant(0)]),
        }],
        udf: identity_udf("collide"),
    })
    .unwrap();
    let mut ins = HashMap::new();
    ins.insert(
        BufferId(0),
        FractalTensor::from_flat(&Tensor::randn(&[4, 1, 2], 1), 1).unwrap(),
    );
    let err = run_program(&p, &ins);
    assert!(err.is_err());
    assert!(err.unwrap_err().to_string().contains("single-assignment"));
}

/// An uncarried out-of-range read is a program error, not a silent zero.
#[test]
fn out_of_range_read_without_init_is_an_error() {
    let mut p = Program::new("oob");
    let x = p.input("x", &[4], &[1, 2]);
    let y = p.output("y", &[4], &[1, 2]);
    p.add_nest(Nest {
        name: "oob".into(),
        ops: vec![OpKind::Map],
        extents: vec![4],
        reads: vec![Read::plain(
            x,
            AccessSpec::new(vec![AxisExpr::shifted(0, 2)]), // Reads x[t+2]: falls off.
        )],
        writes: vec![Write {
            buffer: y,
            access: AccessSpec::identity(1),
        }],
        udf: identity_udf("oob"),
    })
    .unwrap();
    let mut ins = HashMap::new();
    ins.insert(
        BufferId(0),
        FractalTensor::from_flat(&Tensor::randn(&[4, 1, 2], 1), 1).unwrap(),
    );
    assert!(run_program(&p, &ins).is_err());
}

/// A bidirectional scan over one dimension cannot be scheduled by a single
/// hyperplane; the reorderer must refuse rather than emit a wrong order.
#[test]
fn opposing_scan_directions_on_one_dim_are_rejected() {
    let mut p = Program::new("bidir_conflict");
    let x = p.input("x", &[6], &[1, 2]);
    let y = p.output("y", &[6], &[1, 2]);
    let mut b = UdfBuilder::new("cell", 3);
    let (xi, s1, s2) = (b.input(0), b.input(1), b.input(2));
    let t = b.add(xi, s1);
    let o = b.add(t, s2);
    let udf = b.build(&[o]);
    p.add_nest(Nest {
        name: "bidir_conflict".into(),
        ops: vec![OpKind::ScanL],
        extents: vec![6],
        reads: vec![
            Read::plain(x, AccessSpec::identity(1)),
            // Forward-carried...
            Read::carried(
                y,
                AccessSpec::new(vec![AxisExpr::shifted(0, -1)]),
                CarriedInit::Zero,
            ),
            // ...and backward-carried on the same dim: unsatisfiable.
            Read::carried(
                y,
                AccessSpec::new(vec![AxisExpr::shifted(0, 1)]),
                CarriedInit::Zero,
            ),
        ],
        writes: vec![Write {
            buffer: y,
            access: AccessSpec::identity(1),
        }],
        udf,
    })
    .unwrap();
    let err = compile(&p);
    assert!(err.is_err(), "bidirectional dependence must not compile");
}

/// Wrong leaf shapes on inputs are rejected before any computation.
#[test]
fn executor_rejects_wrong_leaf_shape() {
    let p = ft_core::builders::stacked_rnn_program(2, 2, 2, 4);
    let compiled = compile(&p).unwrap();
    let mut ins = HashMap::new();
    // xss with the wrong hidden width.
    ins.insert(
        BufferId(0),
        FractalTensor::from_flat(&Tensor::randn(&[2, 2, 1, 8], 1), 2).unwrap(),
    );
    ins.insert(
        BufferId(1),
        FractalTensor::from_flat(&Tensor::randn(&[2, 4, 4], 2), 1).unwrap(),
    );
    let r = execute(&compiled, &ins, 1);
    assert!(r.is_err());
}

/// UDF/nest arity mismatches are rejected at construction.
#[test]
fn nest_with_dangling_read_is_rejected() {
    let mut p = Program::new("dangling");
    let x = p.input("x", &[4], &[1, 2]);
    let y = p.output("y", &[4], &[1, 2]);
    let udf = identity_udf("id"); // Takes 1 input...
    let r = p.add_nest(Nest {
        name: "dangling".into(),
        ops: vec![OpKind::Map],
        extents: vec![4],
        reads: vec![
            Read::plain(x, AccessSpec::identity(1)),
            Read::plain(x, AccessSpec::identity(1)), // ...but two reads.
        ],
        writes: vec![Write {
            buffer: y,
            access: AccessSpec::identity(1),
        }],
        udf,
    });
    assert!(r.is_err());
}

/// Access maps referencing nonexistent iteration dims are rejected.
#[test]
fn access_spec_dim_overflow_is_rejected() {
    let mut p = Program::new("dim_overflow");
    let x = p.input("x", &[4], &[1, 2]);
    let y = p.output("y", &[4], &[1, 2]);
    let r = p.add_nest(Nest {
        name: "dim_overflow".into(),
        ops: vec![OpKind::Map],
        extents: vec![4],
        reads: vec![Read::plain(
            x,
            AccessSpec::new(vec![AxisExpr::var(3)]), // Dim 3 of a 1-dim nest.
        )],
        writes: vec![Write {
            buffer: y,
            access: AccessSpec::identity(1),
        }],
        udf: identity_udf("id"),
    });
    assert!(r.is_err());
}

/// The emitter handles multi-group programs (the FlashAttention pipeline's
/// reduce + normalize pair) without losing either group.
#[test]
fn emitter_covers_multi_group_programs() {
    use ft_workloads::attention;
    let compiled = compile(&attention::program(attention::AttnShape::tiny())).unwrap();
    assert_eq!(compiled.groups.len(), 2);
    let code = ft_backend::emit_program(&compiled, 192 * 1024).unwrap();
    assert!(code.contains("group0_kernel"));
    assert!(code.contains("group1_kernel"));
    assert!(code.contains("wavefront loop"));
    assert!(code.contains("fully-parallel launch"));
    // The -inf fill of the running max appears as a fill_tile.
    assert!(
        code.contains("fill_tile(-inf") || code.contains("fill_tile(-3.4"),
        "{code}"
    );
}

/// DOT rendering works for every workload graph.
#[test]
fn dot_rendering_for_all_workloads() {
    use ft_workloads::*;
    for p in [
        lstm::program(lstm::LstmShape::tiny()),
        dilated::program(dilated::DilatedShape::tiny()),
        grid::program(grid::GridShape::tiny()),
        b2b::program(b2b::B2bShape::tiny()),
        attention::program(attention::AttnShape::tiny()),
        bigbird::program(bigbird::BigBirdShape::tiny()),
        retnet::program(retnet::RetNetShape::tiny()),
    ] {
        let g = ft_etdg::parse_program(&p).unwrap();
        let dot = ft_etdg::to_dot(&g);
        assert!(dot.starts_with("digraph"), "{}", p.name);
        assert!(dot.ends_with("}\n"), "{}", p.name);
    }
}
