//! Property-based parity: for *randomized* programs of the RNN family —
//! random extents, random carried-read wiring, random operator directions —
//! the compiled wavefront execution must equal the naive interpreter.
//!
//! This is the strongest whole-pipeline invariant in the repository: any
//! bug in region splitting, coarsening legality, hyperplane construction,
//! Fourier–Motzkin bounds, or the executor's overlay forwarding shows up
//! as a numeric divergence here.

use std::collections::HashMap;

use ft_backend::execute;
use ft_core::adt::FractalTensor;
use ft_core::expr::UdfBuilder;
use ft_core::interp::run_program;
use ft_core::program::{CarriedInit, Nest, OpKind, Program, Read, Write};
use ft_core::{AccessSpec, AxisExpr, BufferId};
use ft_integration_tests::assert_fractal_close;
use ft_passes::compile;
use ft_tensor::Tensor;
use proptest::prelude::*;

/// Builds a randomized 3-level nest over (batch, layers, time) where the
/// carried self-read distance and the boundary initializer vary.
fn random_rnn_program(
    n: usize,
    d: usize,
    l: usize,
    h: usize,
    time_stride: usize,
    zero_init_x: bool,
) -> Program {
    let mut p = Program::new("random_rnn");
    let xss = p.input("xss", &[n, l], &[1, h]);
    let ws = p.input("ws", &[d], &[h, h]);
    let ysss = p.output("ysss", &[n, d, l], &[1, h]);

    let mut b = UdfBuilder::new("cell", 3);
    let (x, w, s) = (b.input(0), b.input(1), b.input(2));
    let xw = b.matmul(x, w);
    let sum = b.add(xw, s);
    let y = b.tanh(sum);
    let udf = b.build(&[y]);

    let x_init = if zero_init_x {
        CarriedInit::Zero
    } else {
        CarriedInit::Buffer(
            xss,
            AccessSpec::new(vec![AxisExpr::var(0), AxisExpr::var(2)]),
        )
    };
    p.add_nest(Nest {
        name: "random_rnn".into(),
        ops: vec![OpKind::Map, OpKind::ScanL, OpKind::ScanL],
        extents: vec![n, d, l],
        reads: vec![
            Read::carried(
                ysss,
                AccessSpec::new(vec![
                    AxisExpr::var(0),
                    AxisExpr::shifted(1, -1),
                    AxisExpr::var(2),
                ]),
                x_init,
            ),
            Read::plain(ws, AccessSpec::new(vec![AxisExpr::var(1)])),
            Read::carried(
                ysss,
                AccessSpec::new(vec![
                    AxisExpr::var(0),
                    AxisExpr::var(1),
                    AxisExpr::shifted(2, -(time_stride as i64)),
                ]),
                CarriedInit::Zero,
            ),
        ],
        writes: vec![Write {
            buffer: ysss,
            access: AccessSpec::identity(3),
        }],
        udf,
    })
    .expect("random nest is well-formed");
    p
}

fn rnn_inputs(
    n: usize,
    d: usize,
    l: usize,
    h: usize,
    seed: u64,
) -> HashMap<BufferId, FractalTensor> {
    let mut m = HashMap::new();
    m.insert(
        BufferId(0),
        FractalTensor::from_flat(&Tensor::randn(&[n, l, 1, h], seed), 2).unwrap(),
    );
    m.insert(
        BufferId(1),
        FractalTensor::from_flat(&Tensor::randn(&[d, h, h], seed + 1).mul_scalar(0.3), 1).unwrap(),
    );
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_compiled_equals_interpreter(
        n in 1usize..4,
        d in 1usize..5,
        l in 1usize..7,
        stride in 1usize..4,
        zero_init in proptest::bool::ANY,
        threads in 1usize..5,
        seed in 0u64..1000,
    ) {
        prop_assume!(stride <= l);
        let h = 4usize;
        let p = random_rnn_program(n, d, l, h, stride, zero_init);
        let ins = rnn_inputs(n, d, l, h, seed);
        let expected = run_program(&p, &ins).unwrap();
        let compiled = compile(&p).unwrap();
        let got = execute(&compiled, &ins, threads).unwrap();
        assert_fractal_close(&got[&BufferId(2)], &expected[&BufferId(2)], 1e-4);
    }

    #[test]
    fn prop_region_count_matches_boundary_structure(
        d in 2usize..5,
        l in 2usize..7,
        stride in 1usize..4,
    ) {
        prop_assume!(stride < l);
        let p = random_rnn_program(2, d, l, 4, stride, true);
        let g = ft_etdg::parse_program(&p).unwrap();
        // Two independent boundary predicates (layer 0, time < stride):
        // exactly four non-empty regions whenever d >= 2 and l > stride.
        prop_assert_eq!(g.blocks.len(), 4);
        // The regions partition the hull.
        for i in 0..2i64 {
            for j in 0..d as i64 {
                for k in 0..l as i64 {
                    let holders = g
                        .blocks
                        .iter()
                        .filter(|b| b.domain.contains(&[i, j, k]))
                        .count();
                    prop_assert_eq!(holders, 1);
                }
            }
        }
    }

    #[test]
    fn prop_wavefront_steps_bounded_by_critical_path(
        d in 1usize..6,
        l in 1usize..8,
    ) {
        let p = random_rnn_program(2, d, l, 4, 1, true);
        let c = compile(&p).unwrap();
        prop_assert_eq!(c.groups.len(), 1);
        // The wavefront length equals the dependence critical path
        // (d-1) + (l-1) + 1.
        prop_assert_eq!(c.groups[0].wavefront_steps(), (d + l - 1) as i64);
    }
}
