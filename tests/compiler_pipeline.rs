//! Structural integration tests of the compiler pipeline: the paper's
//! reported graph/schedule facts hold across workloads, and the pipeline's
//! invariants survive composition.

use ft_core::builders::stacked_rnn_program;
use ft_etdg::parse_program;
use ft_passes::{coarsen, compile, distance_vectors};
use ft_workloads::{attention, b2b, bigbird, dilated, grid, lstm};

#[test]
fn paper_reported_block_counts() {
    // §6.3: stacked LSTM -> 4 block nodes, stacked grid RNN -> 8.
    let lstm_g = parse_program(&lstm::program(lstm::LstmShape::tiny())).unwrap();
    assert_eq!(lstm_g.blocks.len(), 4);
    let grid_g = parse_program(&grid::program(grid::GridShape::tiny())).unwrap();
    assert_eq!(grid_g.blocks.len(), 8);
}

#[test]
fn figure4_metrics_on_running_example() {
    // §4.4: depth 2, dimension 5 for the Listing 1 ETDG at hidden 512.
    let g = parse_program(&stacked_rnn_program(2, 3, 4, 512)).unwrap();
    assert_eq!(g.depth(), 2);
    assert_eq!(g.dimension(), 5);
}

#[test]
fn every_workload_compiles_and_validates() {
    let programs = vec![
        lstm::program(lstm::LstmShape::tiny()),
        dilated::program(dilated::DilatedShape::tiny()),
        grid::program(grid::GridShape::tiny()),
        b2b::program(b2b::B2bShape::tiny()),
        attention::program(attention::AttnShape::tiny()),
        bigbird::program(bigbird::BigBirdShape::tiny()),
    ];
    for p in programs {
        p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        let g = parse_program(&p).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        g.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        let c = compile(&p).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        assert!(!c.groups.is_empty(), "{}", p.name);
        // Every group has a consistent schedule: unimodular transform and
        // at most one sequential dimension (the fully-permutable claim).
        for grp in &c.groups {
            assert!(grp.reordering.t.is_unimodular());
            assert!(grp.reordering.sequential_dims <= 1);
        }
    }
}

#[test]
fn wavefront_step_counts_match_theory() {
    // LSTM: D + L - 1; grid: D + R + C - 2; dilated: L; attention: Nkv.
    let lstm_c = compile(&lstm::program(lstm::LstmShape {
        batch: 2,
        hidden: 4,
        depth: 5,
        seq: 7,
    }))
    .unwrap();
    assert_eq!(lstm_c.groups[0].wavefront_steps(), 11);

    let grid_c = compile(&grid::program(grid::GridShape {
        batch: 1,
        hidden: 4,
        depth: 3,
        rows: 4,
        cols: 5,
    }))
    .unwrap();
    assert_eq!(grid_c.groups[0].wavefront_steps(), 10);

    let dil_c = compile(&dilated::program(dilated::DilatedShape {
        batch: 1,
        hidden: 4,
        depth: 3,
        seq: 12,
    }))
    .unwrap();
    assert_eq!(dil_c.groups[0].wavefront_steps(), 12);

    let attn_c = compile(&attention::program(attention::AttnShape::tiny())).unwrap();
    assert_eq!(attn_c.groups[0].wavefront_steps(), 3);
}

#[test]
fn dependences_never_cross_a_wavefront_step_backwards() {
    // For every workload's every group: each distance vector, pushed
    // through T, advances the sequential dimension by >= 1 (or the group
    // has no dependences at all).
    let programs = vec![
        lstm::program(lstm::LstmShape::tiny()),
        dilated::program(dilated::DilatedShape::tiny()),
        grid::program(grid::GridShape::tiny()),
        attention::program(attention::AttnShape::tiny()),
    ];
    for p in programs {
        let c = compile(&p).unwrap();
        for g in &c.groups {
            for &m in &g.members {
                for delta in distance_vectors(&c.etdg, m).unwrap() {
                    let td = g.reordering.t.matvec(&delta).unwrap();
                    assert!(
                        td[0] >= 1,
                        "{}: distance {delta:?} -> {td:?} not carried",
                        p.name
                    );
                }
            }
        }
    }
}

#[test]
fn coarsening_is_idempotent_on_group_count() {
    // Re-coarsening the fused graph must not find further merges beyond the
    // first pass's fixpoint.
    let p = dilated::program(dilated::DilatedShape::tiny());
    let g = parse_program(&p).unwrap();
    let (fused, plan1) = coarsen(&g).unwrap();
    let (_, plan2) = coarsen(&fused).unwrap();
    assert_eq!(plan1.launch_count(), plan2.launch_count());
}

#[test]
fn launch_counts_shrink_monotonically_through_the_pipeline() {
    for p in [
        lstm::program(lstm::LstmShape::tiny()),
        dilated::program(dilated::DilatedShape::tiny()),
        bigbird::program(bigbird::BigBirdShape::tiny()),
    ] {
        let g = parse_program(&p).unwrap();
        let (_, plan) = coarsen(&g).unwrap();
        assert!(
            plan.launch_count() <= g.blocks.len(),
            "{}: coarsening must not add launches",
            p.name
        );
    }
}
