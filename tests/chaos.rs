//! Fault-injection chaos suite for the wavefront executor.
//!
//! Every injected fault class — a worker panic at each wavefront step, a
//! corrupted access-map offset, NaN poisoning of step outputs — must
//! surface as a typed [`ExecError`] when fallback is off, and as a clean
//! result **bit-identical to the reference executor** plus a degradation
//! report when fallback is on. Zero process aborts across the suite.

use std::collections::HashMap;

use ft_backend::{execute_reference, ExecError, Executor, FaultPlan};
use ft_core::adt::FractalTensor;
use ft_core::builders::stacked_rnn_program;
use ft_core::BufferId;
use ft_etdg::RegionRead;
use ft_passes::{compile, CompiledProgram};
use ft_tensor::Tensor;

struct Chaos {
    compiled: CompiledProgram,
    inputs: HashMap<BufferId, FractalTensor>,
    reference: HashMap<BufferId, FractalTensor>,
}

fn setup() -> Chaos {
    let p = stacked_rnn_program(2, 3, 5, 4);
    let compiled = compile(&p).unwrap();
    let mut inputs = HashMap::new();
    inputs.insert(
        BufferId(0),
        FractalTensor::from_flat(&Tensor::randn(&[2, 5, 1, 4], 11), 2).unwrap(),
    );
    inputs.insert(
        BufferId(1),
        FractalTensor::from_flat(&Tensor::randn(&[3, 4, 4], 12).mul_scalar(0.3), 1).unwrap(),
    );
    let reference = execute_reference(&compiled, &inputs, 1).unwrap();
    Chaos {
        compiled,
        inputs,
        reference,
    }
}

fn assert_bitwise_equal(
    a: &HashMap<BufferId, FractalTensor>,
    b: &HashMap<BufferId, FractalTensor>,
    ctx: &str,
) {
    assert_eq!(a.len(), b.len(), "{ctx}: output buffer sets differ");
    for (id, fa) in a {
        let va = fa.to_flat().unwrap().to_vec();
        let vb = b[id].to_flat().unwrap().to_vec();
        assert_eq!(
            va.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            vb.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "{ctx}: buffer {id:?} diverged from reference"
        );
    }
}

/// The first (member, read) coordinate of group 0 that targets a buffer
/// (fills cannot be corrupted).
fn first_buffer_read(c: &CompiledProgram) -> (usize, usize) {
    for (mi, &m) in c.groups[0].members.iter().enumerate() {
        for (ri, read) in c.etdg.block(m).reads.iter().enumerate() {
            if matches!(read, RegionRead::Buffer { .. }) {
                return (mi, ri);
            }
        }
    }
    panic!("group 0 has no buffer reads");
}

#[test]
fn worker_panic_at_every_step_with_fallback_matches_reference() {
    let c = setup();
    let (lo, hi) = c.compiled.groups[0].reordering.wavefront_range();
    for step in lo..hi {
        let outcome = Executor::new()
            .threads(4)
            .fallback(true)
            .fault_plan(FaultPlan::new().panic_at(0, step))
            .run_report(&c.compiled, &c.inputs)
            .unwrap_or_else(|e| panic!("step {step}: fallback did not repair: {e}"));
        let deg = outcome
            .degraded
            .unwrap_or_else(|| panic!("step {step}: injected panic did not degrade"));
        assert_eq!(deg.group, Some(0), "step {step}");
        assert_eq!(deg.step, Some(step), "step {step}");
        assert!(
            matches!(deg.error, ExecError::WorkerPanic { .. }),
            "step {step}: wrong error class: {}",
            deg.error
        );
        assert_bitwise_equal(
            &outcome.outputs,
            &c.reference,
            &format!("panic at step {step}"),
        );
    }
}

#[test]
fn worker_panic_without_fallback_is_a_typed_error() {
    let c = setup();
    let (lo, _) = c.compiled.groups[0].reordering.wavefront_range();
    // threads=1 exercises the inline caller path, threads=4 the pool path.
    for threads in [1usize, 4] {
        let err = Executor::new()
            .threads(threads)
            .fault_plan(FaultPlan::new().panic_at(0, lo))
            .run(&c.compiled, &c.inputs)
            .expect_err("injected panic must error without fallback");
        match err {
            ExecError::WorkerPanic {
                group,
                step,
                message,
            } => {
                assert_eq!(group, 0);
                assert_eq!(step, lo);
                assert!(
                    message.contains("injected fault"),
                    "payload lost: {message}"
                );
            }
            other => panic!("threads={threads}: expected WorkerPanic, got {other}"),
        }
    }
}

#[test]
fn corrupted_access_map_without_fallback_is_a_typed_error() {
    let c = setup();
    let (mi, ri) = first_buffer_read(&c.compiled);
    for guard in [false, true] {
        let err = Executor::new()
            .threads(2)
            .guard(guard)
            .fault_plan(FaultPlan::new().corrupt_read(0, mi, ri, 10_000))
            .run(&c.compiled, &c.inputs)
            .expect_err("corrupted map must error");
        match (guard, &err) {
            (true, ExecError::Guard { detail, .. }) => {
                assert!(detail.contains("out of range"), "{detail}");
            }
            (false, ExecError::Runtime(_)) | (false, ExecError::Guard { .. }) => {}
            _ => panic!("guard={guard}: unexpected error class: {err}"),
        }
    }
}

#[test]
fn corrupted_access_map_with_fallback_matches_reference() {
    let c = setup();
    let (mi, ri) = first_buffer_read(&c.compiled);
    let outcome = Executor::new()
        .threads(2)
        .guard(true)
        .fallback(true)
        .fault_plan(FaultPlan::new().corrupt_read(0, mi, ri, 10_000))
        .run_report(&c.compiled, &c.inputs)
        .expect("fallback must repair the corrupted map");
    assert!(outcome.degraded.is_some(), "corruption must degrade");
    assert_bitwise_equal(&outcome.outputs, &c.reference, "corrupted map");
}

#[test]
fn nan_poison_with_guard_is_a_typed_error() {
    let c = setup();
    let (lo, _) = c.compiled.groups[0].reordering.wavefront_range();
    let err = Executor::new()
        .threads(2)
        .guard(true)
        .fault_plan(FaultPlan::new().poison_nan_at(0, lo))
        .run(&c.compiled, &c.inputs)
        .expect_err("guard must catch the NaN");
    match err {
        ExecError::Guard { detail, step, .. } => {
            assert!(detail.contains("non-finite"), "{detail}");
            assert_eq!(step, lo);
        }
        other => panic!("expected Guard, got {other}"),
    }
}

#[test]
fn nan_poison_with_guard_and_fallback_matches_reference() {
    let c = setup();
    let (lo, hi) = c.compiled.groups[0].reordering.wavefront_range();
    for step in [lo, (lo + hi) / 2] {
        let outcome = Executor::new()
            .threads(4)
            .guard(true)
            .fallback(true)
            .fault_plan(FaultPlan::new().poison_nan_at(0, step))
            .run_report(&c.compiled, &c.inputs)
            .expect("fallback must repair the poisoned step");
        let deg = outcome.degraded.expect("poison must degrade");
        assert_eq!(deg.step, Some(step));
        assert_bitwise_equal(
            &outcome.outputs,
            &c.reference,
            &format!("NaN at step {step}"),
        );
    }
}

#[test]
fn unpoisoned_run_with_guard_and_fallback_stays_clean() {
    // Guard and fallback must be free when nothing is wrong: no
    // degradation report, outputs bit-identical to the plain run.
    let c = setup();
    let outcome = Executor::new()
        .threads(4)
        .guard(true)
        .fallback(true)
        .run_report(&c.compiled, &c.inputs)
        .unwrap();
    assert!(outcome.degraded.is_none(), "clean run must not degrade");
    assert_bitwise_equal(&outcome.outputs, &c.reference, "clean guarded run");
}

#[test]
fn missing_input_is_not_repaired_by_fallback() {
    // Input errors fail identically on the reference path, so fallback
    // must propagate them instead of looping through a doomed re-run.
    let c = setup();
    let err = Executor::new()
        .threads(2)
        .fallback(true)
        .run(&c.compiled, &HashMap::new())
        .expect_err("missing inputs must stay an error");
    assert!(matches!(err, ExecError::Input(_)), "got {err}");
}

#[test]
fn pool_level_fault_injection_surfaces_with_payload() {
    // The ft-pool hook injects below the executor: the panic payload must
    // still round-trip into the typed error.
    let pool = ft_pool::WorkerPool::new(4);
    pool.inject_fault(1, 1.min(pool.threads() - 1));
    let err = pool
        .try_run(std::sync::Arc::new(|_w| {}))
        .expect_err("injected pool fault must fail the job");
    assert!(
        ft_pool::panic_message(&err).contains("injected pool fault"),
        "payload lost"
    );
    // The fault is one-shot: the pool keeps working afterwards.
    pool.run(std::sync::Arc::new(|_w| {}));
}

#[test]
fn stalled_launch_surfaces_typed_and_poisons_pool() {
    // A wedged UDF (simulated: one worker sleeps far past the watchdog
    // window) must become a typed `ExecError::Stalled`, never an eternal
    // hang; the abandoned pool reports itself poisoned, and a fresh pool
    // serves the same plan bitwise-exactly.
    let c = setup();
    let (lo, _) = c.compiled.groups[0].reordering.wavefront_range();
    let pool = std::sync::Arc::new(ft_pool::WorkerPool::supervised(2));
    let exec = Executor::new()
        .pool(std::sync::Arc::clone(&pool))
        .launch_timeout(Some(std::time::Duration::from_millis(80)))
        .fault_plan(FaultPlan::new().stall_at(0, lo, 600));
    let err = exec
        .run(&c.compiled, &c.inputs)
        .expect_err("wedged launch must fail typed");
    assert!(matches!(err, ExecError::Stalled { .. }), "got {err}");
    assert!(
        pool.is_poisoned(),
        "watchdog must poison the abandoned pool"
    );

    let fresh = Executor::new()
        .pool(std::sync::Arc::new(ft_pool::WorkerPool::supervised(2)))
        .launch_timeout(Some(std::time::Duration::from_millis(500)));
    let outputs = fresh.run(&c.compiled, &c.inputs).unwrap();
    assert_bitwise_equal(&outputs, &c.reference, "post-stall fresh pool");
}
