//! End-to-end checks for the plan-time kernel fusion pass: the stacked
//! RNN's cell math must fuse into a GEMM register-tile epilogue, the
//! fused-away intermediates must allocate zero scratch (asserted through
//! the probe counters the scratch planner emits), and the fused executor
//! must stay bit-for-bit equal to the reference executor and the
//! interpreter in every SIMD mode.

use std::collections::HashMap;
use std::sync::Mutex;

use ft_backend::{execute, execute_reference};
use ft_core::adt::FractalTensor;
use ft_core::builders::stacked_rnn_program;
use ft_core::expr::OpCode;
use ft_core::interp::run_program;
use ft_core::program::BufferId;
use ft_passes::compile;
use ft_probe::MetricsReport;
use ft_simd::EpiOp;
use ft_tensor::Tensor;
use ft_verify::verify;

/// Serializes the tests in this binary: they flip the global SIMD mode
/// and drain the global probe collector, both of which are process-wide.
static LOCK: Mutex<()> = Mutex::new(());

type Inputs = HashMap<BufferId, FractalTensor>;

fn rnn_inputs(n: usize, d: usize, l: usize, h: usize, seed: u64) -> Inputs {
    let mut m = HashMap::new();
    m.insert(
        BufferId(0),
        FractalTensor::from_flat(&Tensor::randn(&[n, l, 1, h], seed), 2).unwrap(),
    );
    m.insert(
        BufferId(1),
        FractalTensor::from_flat(&Tensor::randn(&[d, h, h], seed + 1).mul_scalar(0.2), 1).unwrap(),
    );
    m
}

fn assert_bitwise_eq(got: &Inputs, want: &Inputs, label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: output sets differ");
    for (id, w) in want {
        let g = &got[id];
        let gb: Vec<u32> = g
            .to_flat()
            .unwrap()
            .to_vec()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let wb: Vec<u32> = w
            .to_flat()
            .unwrap()
            .to_vec()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(gb, wb, "{label}: bit drift in {id:?}");
    }
}

#[test]
fn stacked_rnn_cell_fuses_into_gemm_epilogue() {
    let _g = LOCK.lock().unwrap();
    let compiled = compile(&stacked_rnn_program(2, 3, 4, 8)).unwrap();
    // Every region of the cell computes y = x@w + s; fusion must absorb
    // the Add into the GEMM epilogue in each of them.
    let mut fused = 0usize;
    for block in &compiled.etdg.blocks {
        for stmt in &block.udf.stmts {
            if let OpCode::FusedMatMul { epi, .. } = &stmt.op {
                assert_eq!(epi.as_slice(), [EpiOp::Add], "unexpected epilogue");
                fused += 1;
            }
        }
    }
    assert!(fused > 0, "no FusedMatMul in any block UDF");
    // The rewritten UDFs still pass the verifier's legality re-check.
    let report = verify(&compiled).unwrap();
    assert!(report.udfs > 0);
}

#[test]
fn fused_intermediates_allocate_zero_scratch() {
    let _g = LOCK.lock().unwrap();
    ft_probe::enable();
    let _ = ft_probe::take();
    let p = stacked_rnn_program(2, 3, 4, 8);
    let ins = rnn_inputs(2, 3, 4, 8, 11);
    let compiled = compile(&p).unwrap();
    execute(&compiled, &ins, 1).unwrap();
    let report = MetricsReport::from_snapshot(&ft_probe::take());
    let c = |k: &str| report.counters.get(k).copied().unwrap_or(0.0);
    assert!(c("passes.fusion_applied") >= 1.0, "fusion pass never fired");
    // `exec.udf_scratch_elems` counts every statement's output window,
    // outputs included; equality with `exec.udf_output_elems` means the
    // fused-away intermediates allocate exactly zero scratch.
    let scratch = c("exec.udf_scratch_elems");
    let outputs = c("exec.udf_output_elems");
    assert!(outputs > 0.0, "no UDF outputs planned");
    assert_eq!(
        scratch, outputs,
        "fused epilogue intermediates must not allocate scratch"
    );
    // The ft-obs registry mirrors the probe counter for always-on metrics.
    assert!(
        ft_obs::Registry::global()
            .counter("passes.fusion_applied")
            .get()
            >= 1
    );
}

#[test]
fn fused_executor_is_bitwise_stable_in_every_mode() {
    let _g = LOCK.lock().unwrap();
    let p = stacked_rnn_program(3, 3, 5, 16);
    let ins = rnn_inputs(3, 3, 5, 16, 23);
    let compiled = compile(&p).unwrap();
    let saved = ft_simd::mode();
    for mode in [ft_simd::Mode::Scalar, saved] {
        ft_simd::set_mode(mode);
        let exec = execute(&compiled, &ins, 2).unwrap();
        let reference = execute_reference(&compiled, &ins, 1).unwrap();
        let interp = run_program(&p, &ins).unwrap();
        assert_bitwise_eq(&exec, &reference, &format!("exec vs reference ({mode:?})"));
        assert_bitwise_eq(&exec, &interp, &format!("exec vs interp ({mode:?})"));
    }
    ft_simd::set_mode(saved);
}

#[test]
fn fused_and_scalar_modes_agree_within_ulp_budget() {
    let _g = LOCK.lock().unwrap();
    let p = stacked_rnn_program(2, 4, 6, 8);
    let ins = rnn_inputs(2, 4, 6, 8, 31);
    let compiled = compile(&p).unwrap();
    let saved = ft_simd::mode();
    ft_simd::set_mode(ft_simd::Mode::Scalar);
    let scalar = execute(&compiled, &ins, 1).unwrap();
    ft_simd::set_mode(saved);
    let native = execute(&compiled, &ins, 1).unwrap();
    for (id, s) in &scalar {
        let sf = s.to_flat().unwrap();
        let nf = native[id].to_flat().unwrap();
        let diff = ft_tensor::max_rel_diff(&sf, &nf);
        assert!(diff <= 1e-5, "{id:?}: scalar vs native drift {diff}");
    }
}
