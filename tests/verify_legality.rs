//! Schedule-legality checking across the full workload suite.
//!
//! Every schedule the compiler actually emits must verify with zero
//! findings, and hand-built illegal schedules — non-unimodular transforms,
//! hyperplanes that drop a dependence distance, access maps pushed out of
//! their buffer's domain — must be rejected with diagnostics naming the
//! offending group, block, and buffer.

use ft_affine::{AffineMap, IntMat};
use ft_core::builders::stacked_rnn_program;
use ft_core::program::BufferKind;
use ft_core::Program;
use ft_etdg::RegionRead;
use ft_passes::{compile, CompiledProgram};
use ft_verify::{compile_verified, verify, VerifyError};
use ft_workloads::{attention, b2b, bigbird, dilated, grid, lstm, retnet};

fn all_workloads() -> Vec<(&'static str, Program)> {
    vec![
        ("stacked_lstm", lstm::program(lstm::LstmShape::tiny())),
        ("dilated", dilated::program(dilated::DilatedShape::tiny())),
        ("grid", grid::program(grid::GridShape::tiny())),
        ("b2b", b2b::program(b2b::B2bShape::tiny())),
        (
            "attention",
            attention::program(attention::AttnShape::tiny()),
        ),
        ("bigbird", bigbird::program(bigbird::BigBirdShape::tiny())),
        ("retnet", retnet::program(retnet::RetNetShape::tiny())),
    ]
}

#[test]
fn every_workload_schedule_verifies_with_zero_findings() {
    for (name, program) in all_workloads() {
        let (compiled, report) =
            compile_verified(&program).unwrap_or_else(|e| panic!("{name}: schedule rejected: {e}"));
        assert!(!compiled.groups.is_empty(), "{name}: no groups");
        assert_eq!(report.groups, compiled.groups.len(), "{name}");
        assert!(report.maps > 0, "{name}: no access maps checked");
        assert!(report.points > 0, "{name}: no domain points enumerated");
    }
}

#[test]
fn tiny_workload_domains_are_checked_exhaustively() {
    // At tiny() shapes every workload fits under the verifier's point
    // cap, so the report must claim complete (not sampled) coverage —
    // which is what entitles the chaos suite to trust UnwrittenRead.
    for (name, program) in all_workloads() {
        let (_, report) = compile_verified(&program).unwrap();
        assert!(report.complete, "{name}: expected exhaustive enumeration");
    }
}

fn compiled_rnn() -> CompiledProgram {
    compile(&stacked_rnn_program(2, 3, 5, 4)).unwrap()
}

#[test]
fn zeroed_transform_is_rejected_naming_the_group() {
    let mut c = compiled_rnn();
    let d = c.groups[0].reordering.t.rows();
    c.groups[0].reordering.t = IntMat::zeros(d, d);
    let err = verify(&c).expect_err("singular transform must be rejected");
    assert!(matches!(err, VerifyError::NotUnimodular { group: 0, .. }));
    let msg = err.to_string();
    assert!(msg.contains("group 0"), "{msg}");
}

#[test]
fn reversed_hyperplane_drops_every_distance() {
    // Negating row 0 of T keeps it unimodular (|det| flips sign only) but
    // turns every carried distance's dot product negative — the scheduling
    // hyperplane now runs *against* the dependences. The stored inverse is
    // kept consistent (negate column 0) so the uncarried distance is the
    // only possible finding.
    let mut c = compiled_rnn();
    let baseline = verify(&c).unwrap();
    assert!(baseline.distances >= 1, "test needs a carried group");
    let r = &mut c.groups[0].reordering;
    let d = r.t.rows();
    for col in 0..d {
        let v = r.t.row(0)[col];
        r.t.set(0, col, -v);
    }
    for row in 0..d {
        let v = r.t_inv.row(row)[0];
        r.t_inv.set(row, 0, -v);
    }
    match verify(&c) {
        Err(VerifyError::UncarriedDistance { group: 0, dot, .. }) => {
            assert!(dot < 1, "reversed hyperplane cannot carry: dot={dot}");
        }
        other => panic!("expected UncarriedDistance, got {other:?}"),
    }
}

#[test]
fn out_of_range_map_in_a_workload_names_group_and_buffer() {
    // Corrupt an input-buffer read inside the attention schedule (two
    // launch groups) and check the diagnostic pins the right group.
    let mut c = compile(&attention::program(attention::AttnShape::tiny())).unwrap();
    assert!(c.groups.len() >= 2, "attention should fuse into 2+ groups");
    let inputs: Vec<bool> = c
        .etdg
        .buffers
        .iter()
        .map(|b| b.kind == BufferKind::Input)
        .collect();
    // Search from the last group backwards for a member that reads an
    // input buffer (input reads carry no dependence, so the corrupted
    // range is the only possible finding).
    let (target_group, member) = (0..c.groups.len())
        .rev()
        .find_map(|gi| {
            c.groups[gi]
                .members
                .iter()
                .copied()
                .find(|m| {
                    c.etdg.block(*m).reads.iter().any(
                        |rd| matches!(rd, RegionRead::Buffer { buffer, .. } if inputs[buffer.0]),
                    )
                })
                .map(|m| (gi, m))
        })
        .expect("some group reads an input buffer");
    let read = c.etdg.blocks[member.0]
        .reads
        .iter_mut()
        .find_map(|rd| match rd {
            RegionRead::Buffer { buffer, map } if inputs[buffer.0] => Some(map),
            _ => None,
        })
        .unwrap();
    let mut off = read.offset().to_vec();
    off[0] += 1_000_000;
    *read = AffineMap::new(read.matrix().clone(), off).unwrap();
    match verify(&c) {
        Err(VerifyError::MapOutOfRange { group, buffer, .. }) => {
            assert_eq!(group, Some(target_group), "wrong group named");
            assert!(!buffer.is_empty(), "buffer name missing");
        }
        other => panic!("expected MapOutOfRange, got {other:?}"),
    }
}

#[test]
fn verifier_stats_reach_the_probe() {
    ft_probe::enable();
    let _ = ft_probe::take();
    verify(&compiled_rnn()).unwrap();
    let snap = ft_probe::take();
    for needed in ["verify.groups", "verify.maps", "verify.points"] {
        let v = snap.counters.get(needed).copied().unwrap_or(0.0);
        assert!(v > 0.0, "missing or zero counter {needed}");
    }
    assert!(
        snap.events.iter().any(|e| e.name == "legality_check"),
        "verify span missing from the trace"
    );
}
