//! Parity across all six workloads: eager reference == interpreter ==
//! compiled wavefront executor, on small but non-trivial shapes.

use ft_backend::execute;
use ft_core::interp::run_program;
use ft_integration_tests::assert_fractal_close;
use ft_passes::compile;
use ft_workloads::{attention, b2b, bigbird, dilated, grid, lstm};

#[test]
fn lstm_three_way_parity() {
    let s = lstm::LstmShape {
        batch: 3,
        hidden: 8,
        depth: 4,
        seq: 6,
    };
    let p = lstm::program(s);
    let ins = lstm::inputs(s, 101);
    let interp = run_program(&p, &ins).unwrap();
    let compiled = compile(&p).unwrap();
    let exec = execute(&compiled, &ins, 4).unwrap();
    let (h_ref, c_ref) = lstm::reference(
        &ins[&lstm::buffers::XSS],
        &ins[&lstm::buffers::WSS],
        &ins[&lstm::buffers::USS],
        &ins[&lstm::buffers::BSS],
        s.hidden,
    );
    assert_fractal_close(&interp[&lstm::buffers::HSSS], &h_ref, 1e-4);
    assert_fractal_close(&exec[&lstm::buffers::HSSS], &h_ref, 1e-4);
    assert_fractal_close(&exec[&lstm::buffers::CSSS], &c_ref, 1e-4);
}

#[test]
fn dilated_three_way_parity() {
    let s = dilated::DilatedShape {
        batch: 2,
        hidden: 8,
        depth: 4,
        seq: 17,
    };
    let p = dilated::program(s);
    let ins = dilated::inputs(s, 103);
    let out_id = dilated::buffers::layer(s.depth - 1);
    let interp = run_program(&p, &ins).unwrap();
    let compiled = compile(&p).unwrap();
    let exec = execute(&compiled, &ins, 4).unwrap();
    let expected = dilated::reference(
        &ins[&dilated::buffers::XSS],
        &ins[&dilated::buffers::WX],
        &ins[&dilated::buffers::WH],
        s,
    );
    assert_fractal_close(&interp[&out_id], &expected, 1e-4);
    assert_fractal_close(&exec[&out_id], &expected, 1e-4);
}

#[test]
fn grid_three_way_parity() {
    let s = grid::GridShape {
        batch: 2,
        hidden: 6,
        depth: 3,
        rows: 3,
        cols: 4,
    };
    let p = grid::program(s);
    let ins = grid::inputs(s, 105);
    let interp = run_program(&p, &ins).unwrap();
    let compiled = compile(&p).unwrap();
    let exec = execute(&compiled, &ins, 4).unwrap();
    let expected = grid::reference(
        &ins[&grid::buffers::XSS],
        &ins[&grid::buffers::W],
        &ins[&grid::buffers::U1],
        &ins[&grid::buffers::U2],
        s,
    );
    assert_fractal_close(&interp[&grid::buffers::HSSS], &expected, 1e-4);
    assert_fractal_close(&exec[&grid::buffers::HSSS], &expected, 1e-4);
}

#[test]
fn b2b_three_way_parity() {
    let s = b2b::B2bShape {
        batch: 4,
        m: 8,
        k: 6,
        p: 5,
        n: 7,
    };
    let prog = b2b::program(s);
    let ins = b2b::inputs(s, 107);
    let interp = run_program(&prog, &ins).unwrap();
    let compiled = compile(&prog).unwrap();
    let exec = execute(&compiled, &ins, 4).unwrap();
    let expected = b2b::reference(
        &ins[&b2b::buffers::A],
        &ins[&b2b::buffers::B0],
        &ins[&b2b::buffers::B1],
    );
    assert_fractal_close(&interp[&b2b::buffers::OUT], &expected, 1e-3);
    assert_fractal_close(&exec[&b2b::buffers::OUT], &expected, 1e-3);
}

#[test]
fn attention_three_way_parity() {
    let s = attention::AttnShape {
        batch: 2,
        heads: 3,
        q_blocks: 3,
        kv_blocks: 4,
        block: 4,
        dh: 8,
    };
    let p = attention::program(s);
    let ins = attention::inputs(s, 109);
    let interp = run_program(&p, &ins).unwrap();
    let compiled = compile(&p).unwrap();
    let exec = execute(&compiled, &ins, 4).unwrap();
    let expected = attention::reference_full(
        &ins[&attention::buffers::Q],
        &ins[&attention::buffers::K],
        &ins[&attention::buffers::V],
        s,
    );
    assert_fractal_close(&interp[&attention::buffers::OUT], &expected, 1e-4);
    assert_fractal_close(&exec[&attention::buffers::OUT], &expected, 1e-4);
}

#[test]
fn bigbird_three_way_parity() {
    let s = bigbird::BigBirdShape {
        heads: 3,
        blocks: 6,
        block: 4,
        dh: 12,
    };
    let p = bigbird::program(s);
    let ins = bigbird::inputs(s, 111);
    let interp = run_program(&p, &ins).unwrap();
    let compiled = compile(&p).unwrap();
    let exec = execute(&compiled, &ins, 4).unwrap();
    let expected = bigbird::reference(
        &ins[&bigbird::buffers::Q],
        &ins[&bigbird::buffers::K],
        &ins[&bigbird::buffers::V],
        s,
    );
    assert_fractal_close(&interp[&bigbird::buffers::OUT], &expected, 1e-4);
    assert_fractal_close(&exec[&bigbird::buffers::OUT], &expected, 1e-4);
}
