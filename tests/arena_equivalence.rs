//! Bitwise equivalence of the arena executor against the scoped-thread
//! reference executor, across all six workloads and thread counts — plus
//! the zero-clone guarantees the plan-time memory layout exists to provide.
//!
//! "Bitwise" is literal: the arena path stages UDF results in flat `f32`
//! scratch and copies them, so every output bit must match what the
//! tensor-per-leaf reference executor produces. Any drift means a kernel
//! in `ft_tensor::slices` diverged from its `Tensor` counterpart or an
//! access resolved to the wrong arena offset.

use std::collections::HashMap;

use ft_backend::{execute_reference, ExecError, Executor};
use ft_core::adt::FractalTensor;
use ft_core::program::{BufferId, Program};
use ft_passes::{compile, CompiledProgram};
use ft_verify::verify;
use ft_workloads::{attention, b2b, bigbird, dilated, grid, lstm};
use proptest::prelude::*;

type Inputs = HashMap<BufferId, FractalTensor>;

/// Asserts two output maps are bit-for-bit identical.
fn assert_bitwise_eq(got: &Inputs, want: &Inputs, label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: output buffer sets differ");
    for (id, w) in want {
        let g = got
            .get(id)
            .unwrap_or_else(|| panic!("{label}: missing output {id:?}"));
        let gf = g.to_flat().expect("flatten arena output");
        let wf = w.to_flat().expect("flatten reference output");
        assert_eq!(gf.dims(), wf.dims(), "{label}: dims differ for {id:?}");
        let gb: Vec<u32> = gf.to_vec().iter().map(|v| v.to_bits()).collect();
        let wb: Vec<u32> = wf.to_vec().iter().map(|v| v.to_bits()).collect();
        assert_eq!(gb, wb, "{label}: bit drift in {id:?}");
    }
}

/// The core check: for each thread count, the arena executor (guard off
/// and guard on) reproduces the reference executor bit-for-bit, the
/// schedule+layout pass verification, and no leaf is ever cloned.
fn check_workload(name: &str, program: &Program, inputs: &Inputs) {
    let compiled: CompiledProgram = compile(program).expect("compile");
    verify(&compiled).expect("schedule and layout must verify");
    for &threads in &[1usize, 2, 8] {
        let want = execute_reference(&compiled, inputs, threads).expect("reference");
        let exec = Executor::new().threads(threads);
        let got = exec.run(&compiled, inputs).expect("arena executor");
        assert_bitwise_eq(&got, &want, &format!("{name} t={threads}"));
        let stats = exec.arena_stats();
        assert_eq!(
            stats.leaf_clones, 0,
            "{name} t={threads}: extern leaves must be borrowed, never cloned"
        );
        assert!(
            stats.leaf_borrows > 0 || inputs.is_empty(),
            "{name} t={threads}: runs must record their leaf borrows"
        );

        let guarded = Executor::new()
            .threads(threads)
            .guard(true)
            .run(&compiled, inputs)
            .expect("guarded arena executor");
        assert_bitwise_eq(&guarded, &want, &format!("{name} t={threads} guard"));
    }
}

#[test]
fn lstm_is_bitwise_equivalent() {
    let s = lstm::LstmShape {
        batch: 3,
        hidden: 8,
        depth: 4,
        seq: 6,
    };
    check_workload("lstm", &lstm::program(s), &lstm::inputs(s, 101));
}

#[test]
fn dilated_is_bitwise_equivalent() {
    let s = dilated::DilatedShape {
        batch: 2,
        hidden: 8,
        depth: 4,
        seq: 17,
    };
    check_workload("dilated", &dilated::program(s), &dilated::inputs(s, 103));
}

#[test]
fn grid_is_bitwise_equivalent() {
    let s = grid::GridShape {
        batch: 2,
        hidden: 6,
        depth: 3,
        rows: 3,
        cols: 4,
    };
    check_workload("grid", &grid::program(s), &grid::inputs(s, 105));
}

#[test]
fn b2b_is_bitwise_equivalent() {
    let s = b2b::B2bShape {
        batch: 4,
        m: 8,
        k: 6,
        p: 5,
        n: 7,
    };
    check_workload("b2b", &b2b::program(s), &b2b::inputs(s, 107));
}

#[test]
fn attention_is_bitwise_equivalent() {
    let s = attention::AttnShape {
        batch: 2,
        heads: 3,
        q_blocks: 3,
        kv_blocks: 4,
        block: 4,
        dh: 8,
    };
    check_workload(
        "attention",
        &attention::program(s),
        &attention::inputs(s, 109),
    );
}

#[test]
fn bigbird_is_bitwise_equivalent() {
    let s = bigbird::BigBirdShape {
        heads: 3,
        blocks: 6,
        block: 4,
        dh: 12,
    };
    check_workload("bigbird", &bigbird::program(s), &bigbird::inputs(s, 111));
}

#[test]
fn arena_is_reused_across_runs_on_one_executor() {
    let s = lstm::LstmShape {
        batch: 2,
        hidden: 6,
        depth: 3,
        seq: 5,
    };
    let compiled = compile(&lstm::program(s)).expect("compile");
    let ins = lstm::inputs(s, 113);
    let exec = Executor::new().threads(2);
    for _ in 0..4 {
        exec.run(&compiled, &ins).expect("run");
    }
    let stats = exec.arena_stats();
    assert_eq!(stats.acquires, 4);
    assert!(
        stats.reused >= 3,
        "after warmup every run must reuse the pooled arena, got {stats:?}"
    );
    assert_eq!(stats.leaf_clones, 0);
}

#[test]
fn guarded_run_reports_typed_errors_not_corruption() {
    // Sanity for the guard path the bitwise tests exercise on success:
    // a missing input still fails typed on the arena path.
    let s = b2b::B2bShape {
        batch: 2,
        m: 4,
        k: 3,
        p: 3,
        n: 4,
    };
    let compiled = compile(&b2b::program(s)).expect("compile");
    let err = Executor::new()
        .guard(true)
        .run(&compiled, &HashMap::new())
        .expect_err("missing inputs must fail");
    match err {
        ExecError::Input(m) => assert!(m.contains("missing input"), "got: {m}"),
        other => panic!("expected Input error, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Lifetime-reuse safety: over random stacked-LSTM shapes the layout
    /// planner may overlap dead intermediates' arena ranges, and whatever
    /// it decides, (a) the plan passes the verifier's layout check and
    /// (b) the arena executor stays bit-identical to the reference
    /// executor — reused ranges never leak one buffer's values into
    /// another's reads.
    #[test]
    fn random_shapes_reuse_arena_ranges_safely(
        batch in 1usize..4,
        hidden in 1usize..10,
        depth in 1usize..4,
        seq in 1usize..7,
        threads in 1usize..5,
        seed in 0u64..1000,
    ) {
        let s = lstm::LstmShape { batch, hidden, depth, seq };
        let compiled = compile(&lstm::program(s)).expect("compile");
        verify(&compiled).expect("layout must verify");
        let ins = lstm::inputs(s, seed);
        let want = execute_reference(&compiled, &ins, threads).expect("reference");
        let exec = Executor::new().threads(threads);
        let got = exec.run(&compiled, &ins).expect("arena executor");
        assert_bitwise_eq(&got, &want, "proptest lstm");
        prop_assert_eq!(exec.arena_stats().leaf_clones, 0);
    }
}
