//! Shared helpers for the cross-crate integration tests.

#![forbid(unsafe_code)]

use ft_core::adt::FractalTensor;
use ft_tensor::max_rel_diff;

/// Asserts two FractalTensors agree within `tol` after flattening.
pub fn assert_fractal_close(a: &FractalTensor, b: &FractalTensor, tol: f32) {
    assert_eq!(a.prog_dims(), b.prog_dims(), "programmable dims differ");
    let fa = a.to_flat().expect("flatten lhs");
    let fb = b.to_flat().expect("flatten rhs");
    let diff = max_rel_diff(&fa, &fb);
    assert!(diff <= tol, "max rel diff {diff} exceeds {tol}");
}
