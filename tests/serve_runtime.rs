//! Serving-runtime integration tests: plan-cache reuse across renamed
//! workloads, multi-threaded submission exactness, deadline isolation.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use ft_backend::execute_reference;
use ft_core::builders::stacked_rnn_program;
use ft_core::{BufferId, FractalTensor, Program};
use ft_passes::compile;
use ft_serve::{Request, Runtime, ServeConfig, ServeError};
use ft_tensor::Tensor;
use ft_workloads::lstm;

fn rnn_inputs(
    n: usize,
    d: usize,
    l: usize,
    h: usize,
    seed: u64,
) -> HashMap<BufferId, FractalTensor> {
    let mut m = HashMap::new();
    m.insert(
        BufferId(0),
        FractalTensor::from_flat(&Tensor::randn(&[n, l, 1, h], seed), 2).unwrap(),
    );
    m.insert(
        BufferId(1),
        FractalTensor::from_flat(&Tensor::randn(&[d, h, h], seed + 1).mul_scalar(0.2), 1).unwrap(),
    );
    m
}

fn reference(
    p: &Program,
    inputs: &HashMap<BufferId, FractalTensor>,
) -> HashMap<BufferId, FractalTensor> {
    let compiled = compile(p).unwrap();
    execute_reference(&compiled, inputs, 1).unwrap()
}

/// The regression for the plan-cache keying bug: the signature must be
/// name-insensitive, so the *same* LSTM workload built twice with different
/// buffer and nest names compiles exactly once.
#[test]
fn renamed_lstm_workload_compiles_once() {
    let shape = lstm::LstmShape {
        batch: 2,
        hidden: 8,
        depth: 2,
        seq: 3,
    };
    let first = lstm::program(shape);
    let mut renamed = first.clone();
    renamed.name = "stacked_lstm_v2".into();
    for (i, b) in renamed.buffers.iter_mut().enumerate() {
        b.name = format!("tenant_b_buf{i}");
    }
    for (i, n) in renamed.nests.iter_mut().enumerate() {
        n.name = format!("tenant_b_nest{i}");
    }
    let inputs = lstm::inputs(shape, 11);

    let rt = Runtime::new(ServeConfig {
        threads: 2,
        ..ServeConfig::default()
    });
    let a = rt.run(&first, inputs.clone()).unwrap();
    let b = rt.run(&renamed, inputs.clone()).unwrap();
    assert_eq!(a, b, "same structure + same inputs must agree exactly");

    let stats = rt.stats();
    assert_eq!(
        stats.cache_misses, 1,
        "renamed resubmission must reuse the cached plan, not recompile"
    );
    assert!(stats.cache_hits >= 1);
    assert_eq!(stats.cached_plans, 1);
}

/// Eight OS threads hammer one shared runtime with the same plan; every
/// output must be bitwise identical to the single-threaded reference
/// executor on that request's inputs.
#[test]
fn eight_threads_share_one_runtime_exactly() {
    let (n, d, l, h) = (2usize, 3, 4, 8);
    let rt = Arc::new(Runtime::new(ServeConfig {
        threads: 4,
        max_batch: 8,
        ..ServeConfig::default()
    }));
    let program = Arc::new(stacked_rnn_program(n, d, l, h));

    let handles: Vec<_> = (0..8u64)
        .map(|t| {
            let rt = Arc::clone(&rt);
            let program = Arc::clone(&program);
            std::thread::spawn(move || {
                for round in 0..3u64 {
                    let inputs = rnn_inputs(n, d, l, h, 100 * t + round);
                    let got = rt
                        .submit_wait(Request::new(Arc::clone(&program), inputs.clone()))
                        .unwrap()
                        .wait()
                        .unwrap();
                    assert_eq!(
                        got,
                        reference(&program, &inputs),
                        "thread {t} round {round} diverged from the reference executor"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let stats = rt.stats();
    assert_eq!(stats.completed, 24);
    // One base plan plus at most one fused variant per batch width 2..=8.
    assert!(
        stats.cache_misses <= 8,
        "24 same-structure requests should share plans; got {} compiles",
        stats.cache_misses
    );
}

/// A deadline-expired request returns `ServeError::Deadline` and leaves the
/// pool healthy: the next request on the same runtime is exact.
#[test]
fn deadline_does_not_poison_the_runtime() {
    let (n, d, l, h) = (2usize, 2, 3, 8);
    let rt = Runtime::new(ServeConfig {
        threads: 2,
        ..ServeConfig::default()
    });
    let p = stacked_rnn_program(n, d, l, h);
    let inputs = rnn_inputs(n, d, l, h, 42);

    let expired = rt
        .submit_wait(Request::new(p.clone(), inputs.clone()).with_deadline(Duration::ZERO))
        .unwrap()
        .wait();
    assert_eq!(expired, Err(ServeError::Deadline));

    let got = rt.run(&p, inputs.clone()).unwrap();
    assert_eq!(got, reference(&p, &inputs));
}
