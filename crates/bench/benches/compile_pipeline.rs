//! Wall-clock cost of the compiler itself: parsing, coarsening and
//! reordering each evaluation workload — the "compile once, launch many"
//! budget.

use criterion::{criterion_group, criterion_main, Criterion};
use ft_passes::compile;
use std::hint::black_box;

fn bench_compile_each_workload(c: &mut Criterion) {
    use ft_workloads::*;
    let cases: Vec<(&str, ft_core::Program)> = vec![
        (
            "stacked_rnn",
            ft_core::builders::stacked_rnn_program(8, 8, 16, 64),
        ),
        ("stacked_lstm", lstm::program(lstm::LstmShape::tiny())),
        (
            "dilated_rnn",
            dilated::program(dilated::DilatedShape::tiny()),
        ),
        ("grid_rnn", grid::program(grid::GridShape::tiny())),
        ("b2b_gemm", b2b::program(b2b::B2bShape::tiny())),
        (
            "flash_attention",
            attention::program(attention::AttnShape::tiny()),
        ),
        ("bigbird", bigbird::program(bigbird::BigBirdShape::tiny())),
    ];
    let mut g = c.benchmark_group("compile");
    for (name, program) in &cases {
        g.bench_function(name, |bench| {
            bench.iter(|| black_box(compile(program).expect("compiles")));
        });
    }
    g.finish();
}

fn bench_parse_vs_full_pipeline(c: &mut Criterion) {
    let program = ft_core::builders::stacked_rnn_program(16, 16, 32, 64);
    c.bench_function("parse_only_rnn_16x16x32", |bench| {
        bench.iter(|| black_box(ft_etdg::parse_program(&program).expect("parses")));
    });
    c.bench_function("full_pipeline_rnn_16x16x32", |bench| {
        bench.iter(|| black_box(compile(&program).expect("compiles")));
    });
}

criterion_group!(
    benches,
    bench_compile_each_workload,
    bench_parse_vs_full_pipeline
);
criterion_main!(benches);
