//! Wall-clock benchmarks of the tensor substrate's hot kernels (the inner
//! loops every executor spends its time in).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ft_tensor::{OnlineSoftmax, Tensor};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    for &n in &[64usize, 128, 256] {
        let a = Tensor::randn(&[n, n], 1);
        let b = Tensor::randn(&[n, n], 2);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b).unwrap()));
        });
    }
    g.finish();
}

fn bench_matmul_transb(c: &mut Criterion) {
    let a = Tensor::randn(&[128, 128], 3);
    let b = Tensor::randn(&[128, 128], 4);
    c.bench_function("matmul_transb_128", |bench| {
        bench.iter(|| black_box(a.matmul_transb(&b).unwrap()));
    });
}

fn bench_softmax(c: &mut Criterion) {
    let x = Tensor::randn(&[128, 512], 5);
    c.bench_function("softmax_rows_128x512", |bench| {
        bench.iter(|| black_box(x.softmax_rows().unwrap()));
    });
}

fn bench_online_softmax(c: &mut Criterion) {
    let q = Tensor::randn(&[32, 64], 6);
    let k = Tensor::randn(&[256, 64], 7);
    let v = Tensor::randn(&[256, 64], 8);
    c.bench_function("online_softmax_8_blocks", |bench| {
        bench.iter(|| {
            let mut st = OnlineSoftmax::new(32, 64);
            for blk in 0..8 {
                let ks = k
                    .slice(0, blk * 32, (blk + 1) * 32)
                    .unwrap()
                    .to_contiguous();
                let vs = v
                    .slice(0, blk * 32, (blk + 1) * 32)
                    .unwrap()
                    .to_contiguous();
                let s = q.matmul_transb(&ks).unwrap();
                st.step(&s, &vs).unwrap();
            }
            black_box(st.finish().unwrap())
        });
    });
}

fn bench_elementwise(c: &mut Criterion) {
    let x = Tensor::randn(&[256, 256], 9);
    c.bench_function("tanh_256x256", |bench| {
        bench.iter(|| black_box(x.tanh()));
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_matmul_transb,
    bench_softmax,
    bench_online_softmax,
    bench_elementwise
);
criterion_main!(benches);
