//! Real wall-clock comparison on the CPU backend: the naive lexicographic
//! interpreter versus the compiled wavefront executor at several thread
//! counts — the schedule-level speedup measured on actual hardware rather
//! than the A100 model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ft_backend::execute;
use ft_core::builders::stacked_rnn_program;
use ft_core::interp::run_program;
use ft_passes::compile;
use std::hint::black_box;

fn rnn_setup(
    n: usize,
    d: usize,
    l: usize,
    h: usize,
) -> (
    ft_core::Program,
    std::collections::HashMap<ft_core::BufferId, ft_core::FractalTensor>,
) {
    let p = stacked_rnn_program(n, d, l, h);
    let mut ins = std::collections::HashMap::new();
    ins.insert(
        ft_core::BufferId(0),
        ft_core::FractalTensor::from_flat(&ft_tensor::Tensor::randn(&[n, l, 1, h], 1), 2)
            .expect("xss"),
    );
    ins.insert(
        ft_core::BufferId(1),
        ft_core::FractalTensor::from_flat(
            &ft_tensor::Tensor::randn(&[d, h, h], 2).mul_scalar(0.1),
            1,
        )
        .expect("ws"),
    );
    (p, ins)
}

fn bench_interp_vs_wavefront(c: &mut Criterion) {
    let (p, ins) = rnn_setup(4, 8, 16, 64);
    let compiled = compile(&p).expect("compiles");
    let mut g = c.benchmark_group("stacked_rnn_4x8x16_h64");
    g.sample_size(10);
    g.bench_function("interpreter", |bench| {
        bench.iter(|| black_box(run_program(&p, &ins).expect("runs")));
    });
    for &threads in &[1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("wavefront", threads),
            &threads,
            |bench, &t| {
                bench.iter(|| black_box(execute(&compiled, &ins, t).expect("runs")));
            },
        );
    }
    g.finish();
}

fn bench_lstm_executor(c: &mut Criterion) {
    use ft_workloads::lstm;
    let s = lstm::LstmShape {
        batch: 4,
        hidden: 32,
        depth: 6,
        seq: 12,
    };
    let p = lstm::program(s);
    let ins = lstm::inputs(s, 1);
    let compiled = compile(&p).expect("compiles");
    let mut g = c.benchmark_group("stacked_lstm_4x6x12_h32");
    g.sample_size(10);
    g.bench_function("interpreter", |bench| {
        bench.iter(|| black_box(run_program(&p, &ins).expect("runs")));
    });
    g.bench_function("wavefront_8_threads", |bench| {
        bench.iter(|| black_box(execute(&compiled, &ins, 8).expect("runs")));
    });
    g.finish();
}

criterion_group!(benches, bench_interp_vs_wavefront, bench_lstm_executor);
criterion_main!(benches);
