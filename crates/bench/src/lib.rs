//! # ft-bench
//!
//! The figure/table regeneration harness for the paper's evaluation (§6).
//!
//! One binary per artifact:
//!
//! * `fig2_rnn_depth` — Figure 2: stacked-RNN time vs stack depth across
//!   baselines,
//! * `fig7_end_to_end` — Figure 7: end-to-end time for all six workloads
//!   at several shapes, plus the §6.2 speedup summary,
//! * `fig8_rnn_scaling` — Figure 8: RNN scaling with hidden/batch, sequence
//!   length, and depth for the three RNN variants,
//! * `table7_memory_traffic` — Table 7: DRAM/L1/L2 bytes for FlashAttention
//!   and BigBird across methods.
//!
//! Each binary prints a plain-text table (and `--json` machine-readable
//! rows) regenerating the corresponding artifact's *shape*: which method
//! wins, by roughly what factor, and where the crossovers sit. Absolute
//! numbers come from the `ft-sim` A100 model, not silicon.
//!
//! Criterion benches (`benches/`) measure real wall-clock time of the CPU
//! backend against the naive interpreter on reduced shapes.

#![forbid(unsafe_code)]

use ft_workloads::{SimReport, Strategy};

/// One table row: a label plus a value per strategy (`None` = the paper's
/// "NST" — not supported).
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (shape or depth).
    pub label: String,
    /// One entry per strategy in [`Strategy::ALL`] order.
    pub cells: Vec<Option<SimReport>>,
}

/// Renders rows as an aligned text table of milliseconds.
pub fn render_ms_table(title: &str, rows: &[Row]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "== {title} ==");
    let _ = write!(s, "{:<28}", "shape");
    for strat in Strategy::ALL {
        let _ = write!(s, "{:>16}", strat.short());
    }
    let _ = writeln!(s);
    for row in rows {
        let _ = write!(s, "{:<28}", row.label);
        for cell in &row.cells {
            match cell {
                Some(r) => {
                    let _ = write!(s, "{:>16.3}", r.ms);
                }
                None => {
                    let _ = write!(s, "{:>16}", "NST");
                }
            }
        }
        let _ = writeln!(s);
    }
    s
}

/// Speedup of the FractalTensor column over the best non-FT baseline.
pub fn ft_speedup(row: &Row) -> Option<f64> {
    let ft = row.cells.last()?.as_ref()?.ms;
    let best_baseline = row.cells[..row.cells.len() - 1]
        .iter()
        .flatten()
        .map(|r| r.ms)
        .fold(f64::INFINITY, f64::min);
    if best_baseline.is_finite() && ft > 0.0 {
        Some(best_baseline / ft)
    } else {
        None
    }
}

/// Serializes rows as JSON lines (used to build `EXPERIMENTS.md`).
///
/// Row shape is defined here; the line framing is [`ft_probe::json_lines`],
/// the same serializer `trace_report` uses, so every machine-readable
/// artifact in the repo agrees.
pub fn render_json(experiment: &str, rows: &[Row]) -> String {
    let json_rows = rows.iter().flat_map(|row| {
        Strategy::ALL
            .iter()
            .zip(&row.cells)
            .filter_map(move |(strat, cell)| {
                cell.as_ref().map(|r| {
                    serde_json::json!({
                        "experiment": experiment,
                        "shape": &row.label,
                        "strategy": strat.short(),
                        "ms": r.ms,
                        "dram_gb": r.traffic.dram_gb(),
                        "l2_gb": r.traffic.l2_gb(),
                        "l1_gb": r.traffic.l1_gb(),
                        "kernels": r.kernels,
                    })
                })
            })
    });
    ft_probe::json_lines(json_rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_sim::TrafficCounters;

    fn report(ms: f64) -> SimReport {
        SimReport {
            ms,
            traffic: TrafficCounters::default(),
            kernels: 1,
        }
    }

    #[test]
    fn table_rendering_includes_nst() {
        let rows = vec![Row {
            label: "d=4".into(),
            cells: vec![
                Some(report(10.0)),
                None,
                Some(report(4.0)),
                None,
                Some(report(2.0)),
            ],
        }];
        let t = render_ms_table("fig", &rows);
        assert!(t.contains("NST"));
        assert!(t.contains("10.000"));
    }

    #[test]
    fn speedup_vs_best_baseline() {
        let row = Row {
            label: "x".into(),
            cells: vec![
                Some(report(10.0)),
                Some(report(6.0)),
                None,
                Some(report(4.0)),
                Some(report(2.0)),
            ],
        };
        assert!((ft_speedup(&row).unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn json_rows_parse_back() {
        let rows = vec![Row {
            label: "d=4".into(),
            cells: vec![Some(report(1.0)), None, None, None, Some(report(0.5))],
        }];
        let out = render_json("fig2", &rows);
        for line in out.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert_eq!(v["experiment"], "fig2");
        }
    }
}
