//! Figure 7: end-to-end execution time for all six DNN workloads at
//! several shapes, against every baseline, plus the §6.2 speedup summary
//! (the paper reports up to 5.44x, ~1.97x average over best baselines).
//!
//! Usage: `cargo run --release -p ft-bench --bin fig7_end_to_end [--json]`

use ft_bench::{ft_speedup, render_json, render_ms_table, Row};
use ft_workloads::Strategy;
use ft_workloads::{attention, b2b, bigbird, dilated, grid, lstm};

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let mut all_speedups: Vec<f64> = Vec::new();
    let mut max_speedup = 0.0f64;

    let mut emit = |title: &str, experiment: &str, rows: Vec<Row>| {
        if json {
            print!("{}", render_json(experiment, &rows));
        } else {
            print!("{}", render_ms_table(title, &rows));
            for row in &rows {
                if let Some(s) = ft_speedup(row) {
                    println!("  {}: FT speedup {s:.2}x", row.label);
                    all_speedups.push(s);
                    max_speedup = max_speedup.max(s);
                }
            }
            println!();
        }
    };

    // (a) Stacked LSTM (Table 6: batch 256, depth 32).
    let mut rows = Vec::new();
    for (h, l) in [(256usize, 64usize), (512, 64), (1024, 32)] {
        let s = lstm::LstmShape {
            batch: 256,
            hidden: h,
            depth: 32,
            seq: l,
        };
        rows.push(Row {
            label: format!("h={h} L={l}"),
            cells: Strategy::ALL
                .iter()
                .map(|&st| Some(lstm::simulate(s, st)))
                .collect(),
        });
    }
    emit("Figure 7(a): stacked LSTM [ms]", "fig7_lstm", rows);

    // (b) Stacked dilated RNN (dilations 1..32 = 6 layers).
    let mut rows = Vec::new();
    for (h, l) in [(256usize, 64usize), (256, 128), (1024, 64)] {
        let s = dilated::DilatedShape {
            batch: 256,
            hidden: h,
            depth: 6,
            seq: l,
        };
        rows.push(Row {
            label: format!("h={h} L={l}"),
            cells: Strategy::ALL
                .iter()
                .map(|&st| dilated::simulate(s, st))
                .collect(),
        });
    }
    emit(
        "Figure 7(b): stacked dilated RNN [ms]",
        "fig7_dilated",
        rows,
    );

    // (c) Stacked grid RNN (depth 32).
    let mut rows = Vec::new();
    for (h, g) in [(256usize, 8usize), (256, 16), (1024, 8)] {
        let s = grid::GridShape {
            batch: 256,
            hidden: h,
            depth: 32,
            rows: g,
            cols: g,
        };
        rows.push(Row {
            label: format!("h={h} grid={g}x{g}"),
            cells: Strategy::ALL
                .iter()
                .map(|&st| grid::simulate(s, st))
                .collect(),
        });
    }
    emit("Figure 7(c): stacked grid RNN [ms]", "fig7_grid", rows);

    // (d) Back-to-back GEMMs (K = P = 64).
    let mut rows = Vec::new();
    for (batch, m) in [(64usize, 512usize), (128, 512), (64, 2048)] {
        let s = b2b::B2bShape {
            batch,
            m,
            k: 64,
            p: 64,
            n: 64,
        };
        rows.push(Row {
            label: format!("batch={batch} M={m}"),
            cells: Strategy::ALL
                .iter()
                .map(|&st| b2b::simulate(s, st))
                .collect(),
        });
    }
    emit("Figure 7(d): back-to-back GEMMs [ms]", "fig7_b2b", rows);

    // (e) FlashAttention (official shape).
    let mut rows = Vec::new();
    for (ql, kl) in [(2048usize, 4096usize), (1024, 2048), (4096, 4096)] {
        let s = attention::AttnShape {
            batch: 32,
            heads: 16,
            q_blocks: ql / 32,
            kv_blocks: kl / 32,
            block: 32,
            dh: 128,
        };
        rows.push(Row {
            label: format!("Lq={ql} Lkv={kl}"),
            cells: Strategy::ALL
                .iter()
                .map(|&st| attention::simulate(s, st))
                .collect(),
        });
    }
    emit("Figure 7(e): FlashAttention [ms]", "fig7_attention", rows);

    // (f) BigBird (official shape).
    let mut rows = Vec::new();
    for (heads, nb) in [(16usize, 64usize), (16, 128), (32, 64)] {
        let s = bigbird::BigBirdShape {
            heads,
            blocks: nb,
            block: 32,
            dh: 512,
        };
        rows.push(Row {
            label: format!("heads={heads} blocks={nb}"),
            cells: Strategy::ALL
                .iter()
                .map(|&st| bigbird::simulate(s, st))
                .collect(),
        });
    }
    emit("Figure 7(f): BigBird [ms]", "fig7_bigbird", rows);

    if !json {
        let avg = all_speedups.iter().sum::<f64>() / all_speedups.len().max(1) as f64;
        println!("== §6.2 summary ==");
        println!(
            "FractalTensor speedup over the best baseline: max {max_speedup:.2}x, \
             average {avg:.2}x across {} configurations",
            all_speedups.len()
        );
        println!("(paper reports up to 5.44x and 1.97x average on A100 silicon)");
    }
}
