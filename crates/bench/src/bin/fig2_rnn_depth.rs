//! Figure 2: stacked-RNN execution time as the stack depth N grows.
//!
//! The paper's observation: only the handcrafted cuDNN implementation (and
//! FractalTensor) grow mildly with depth, because they schedule the whole
//! network as one wavefront; every DAG-based system (PyTorch, TensorFlow,
//! TVM) pays per-cell kernel chains and slows down sharply.
//!
//! Usage: `cargo run --release -p ft-bench --bin fig2_rnn_depth [--json]`

use ft_bench::{ft_speedup, render_json, render_ms_table, Row};
use ft_workloads::lstm::{simulate, LstmShape};
use ft_workloads::Strategy;

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let mut rows = Vec::new();
    for depth in [1usize, 2, 4, 8, 16, 32] {
        let shape = LstmShape {
            batch: 256,
            hidden: 256,
            depth,
            seq: 64,
        };
        rows.push(Row {
            label: format!("depth={depth}"),
            cells: Strategy::ALL
                .iter()
                .map(|&s| Some(simulate(shape, s)))
                .collect(),
        });
    }
    if json {
        print!("{}", render_json("fig2", &rows));
        return;
    }
    print!(
        "{}",
        render_ms_table(
            "Figure 2: stacked RNN (LSTM) time [ms] vs stack depth (batch 256, hidden 256, seq 64)",
            &rows
        )
    );
    println!();
    for row in &rows {
        if let Some(s) = ft_speedup(row) {
            println!(
                "  {}: FractalTensor speedup over best baseline = {s:.2}x",
                row.label
            );
        }
    }
    let shallow = rows.first().expect("rows");
    let deep = rows.last().expect("rows");
    let growth = |idx: usize| {
        deep.cells[idx].as_ref().expect("cell").ms / shallow.cells[idx].as_ref().expect("cell").ms
    };
    println!();
    println!(
        "growth depth 1 -> 32:  eager {:.1}x,  fractaltensor {:.1}x  (paper: DAG systems scale \
         with D*L, wavefronts with D+L)",
        growth(0),
        growth(4)
    );
}
