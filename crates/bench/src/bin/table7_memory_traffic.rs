//! Table 7: total bytes of access to GPU DRAM, L1, and L2 for
//! ① FlashAttention and ② BigBird, per method.
//!
//! The paper's key readings:
//! * FlashAttention: all fused implementations hit ~4 GB of DRAM; CUTLASS
//!   pays 3–4x more L1/L2 traffic than FractalTensor/Triton/FA-2.
//! * BigBird: FractalTensor's deferred access materialization cuts DRAM to
//!   ~44% of the best baseline (Triton), with PyTorch ~4x and TVM ~9x
//!   worse — and TVM's L1/L2 exploding from repeated rescans.
//!
//! Usage: `cargo run --release -p ft-bench --bin table7_memory_traffic`

use ft_workloads::{attention, bigbird, SimReport, Strategy};

fn print_table(title: &str, rows: &[(&str, Option<SimReport>)]) {
    println!("== {title} ==");
    println!(
        "{:<24}{:>16}{:>16}{:>16}{:>12}",
        "method", "DRAM (GB)", "L1 (GB)", "L2 (GB)", "kernels"
    );
    for (name, rep) in rows {
        match rep {
            Some(r) => println!(
                "{:<24}{:>16.2}{:>16.2}{:>16.2}{:>12}",
                name,
                r.traffic.dram_gb(),
                r.traffic.l1_gb(),
                r.traffic.l2_gb(),
                r.kernels
            ),
            None => println!("{name:<24}{:>16}", "NST"),
        }
    }
    println!();
}

fn main() {
    // ① FlashAttention at the official shape (Listing 3).
    let fa = attention::AttnShape::paper();
    print_table(
        "Table 7 (1): FlashAttention memory traffic (A100 model)",
        &[
            (
                "FractalTensor",
                attention::simulate(fa, Strategy::FractalTensor),
            ),
            ("Triton", attention::simulate(fa, Strategy::BlockTile)),
            (
                "FlashAttention-2",
                attention::simulate(fa, Strategy::Handcrafted),
            ),
            ("CUTLASS", attention::simulate(fa, Strategy::FusedOp)),
            (
                "PyTorch (full softmax)",
                attention::simulate(fa, Strategy::Eager),
            ),
        ],
    );

    // ② BigBird at the official shape (Listing 4).
    let bb = bigbird::BigBirdShape::paper();
    print_table(
        "Table 7 (2): BigBird memory traffic (A100 model)",
        &[
            (
                "FractalTensor",
                bigbird::simulate(bb, Strategy::FractalTensor),
            ),
            ("Triton", bigbird::simulate(bb, Strategy::BlockTile)),
            ("PyTorch", bigbird::simulate(bb, Strategy::Eager)),
            ("TVM", bigbird::simulate(bb, Strategy::FusedOp)),
        ],
    );

    // Ratios mirroring the paper's headline (§6.4): FT's DRAM/L1/L2 as a
    // fraction of the best baseline (Triton).
    let ft = bigbird::simulate(bb, Strategy::FractalTensor).expect("ft");
    let triton = bigbird::simulate(bb, Strategy::BlockTile).expect("triton");
    println!(
        "BigBird FT vs Triton: DRAM {:.1}%, L1 {:.1}%, L2 {:.1}%  (paper: 43.8%, 47.2%, 43.5%)",
        100.0 * ft.traffic.dram_bytes as f64 / triton.traffic.dram_bytes as f64,
        100.0 * ft.traffic.l1_bytes as f64 / triton.traffic.l1_bytes as f64,
        100.0 * ft.traffic.l2_bytes as f64 / triton.traffic.l2_bytes as f64,
    );
}
