//! Serving-runtime benchmark: plan-cache setup amortization and dynamic
//! batching throughput under concurrent load.
//!
//! ```text
//! cargo run --release -p ft-bench --bin bench_serve            # full run
//! cargo run --release -p ft-bench --bin bench_serve -- --smoke # tiny load
//! cargo run --release -p ft-bench --bin bench_serve -- --json  # print JSON
//! cargo run --release -p ft-bench --bin bench_serve -- --out results/BENCH_serve.json
//! cargo run --release -p ft-bench --bin bench_serve -- --metrics-out target/obs
//! ```
//!
//! `--metrics-out DIR` flushes the merged observability registries
//! (runtime-local `serve.*` plus global `exec.*`/`pool.*`/`passes.*`)
//! after every load configuration: one JSON row is appended per config to
//! `DIR/metrics.jsonl` and `DIR/metrics.prom` is rewritten in Prometheus
//! text format (the final rewrite reflects the last configuration).
//!
//! The workload is a *narrow* stacked RNN (one sequence per request,
//! depth 2, seq 256): its wavefront never exceeds the depth, so at 8
//! worker threads an unbatched launch leaves most of the pool idle and
//! pays the fixed per-wavefront-step synchronization cost for almost no
//! parallel work. Batching K same-plan requests widens the outer `map` to
//! K sequences, filling the pool and amortizing the step cost K-fold — the
//! serving-side version of the paper's nested-parallelism argument.
//! Closed-loop client threads submit through one shared
//! [`ft_serve::Runtime`]; we sweep worker threads × {batched, unbatched}
//! and report throughput, latency percentiles, and realized batch sizes,
//! plus the cold-compile vs cached-plan setup cost.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use ft_core::builders::stacked_rnn_program;
use ft_core::{BufferId, FractalTensor, Program};
use ft_serve::{Request, Runtime, ServeConfig};
use ft_tensor::Tensor;
use serde_json::{json, Value};

const THREADS: &[usize] = &[1, 2, 4, 8];
const SHAPE: (usize, usize, usize, usize) = (1, 2, 256, 16); // n, d, l, h

struct LoadRow {
    threads: usize,
    batched: bool,
    clients: usize,
    requests: u64,
    throughput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    mean_batch: f64,
    /// Arena acquisitions during the timed (post-warmup) section.
    arena_acquires: u64,
    /// Arena growths during the timed section — zero means the runtime
    /// served the whole load allocation-free.
    arena_grows_after_warmup: u64,
    /// Leaf clones over the runtime's lifetime (must stay zero).
    leaf_clones: u64,
}

fn request_inputs(seed: u64, shared_ws: &FractalTensor) -> HashMap<BufferId, FractalTensor> {
    let (n, _d, l, h) = SHAPE;
    let mut m = HashMap::new();
    m.insert(
        BufferId(0),
        FractalTensor::from_flat(&Tensor::randn(&[n, l, 1, h], seed), 2).unwrap(),
    );
    // Shared weights: identical across requests, as in real serving — and a
    // precondition for fusing the batch.
    m.insert(BufferId(1), shared_ws.clone());
    m
}

fn shared_weights() -> FractalTensor {
    let (_n, d, _l, h) = SHAPE;
    FractalTensor::from_flat(&Tensor::randn(&[d, h, h], 8).mul_scalar(0.2), 1).unwrap()
}

/// Closed-loop load: `clients` threads each submit `per_client` requests
/// back to back through one shared runtime.
fn run_load(
    threads: usize,
    batched: bool,
    clients: usize,
    per_client: usize,
    program: &Arc<Program>,
    ws: &FractalTensor,
    metrics: Option<&ft_obs::ExporterConfig>,
) -> LoadRow {
    let rt = Arc::new(Runtime::new(ServeConfig {
        threads,
        batching: batched,
        max_batch: 8,
        ..ServeConfig::default()
    }));
    // Warm the plan cache (including fused variants) so the timed section
    // measures serving, not compilation.
    std::thread::scope(|s| {
        for c in 0..clients {
            let rt = Arc::clone(&rt);
            let program = Arc::clone(program);
            let inputs = request_inputs(1000 + c as u64, ws);
            s.spawn(move || {
                rt.submit_wait(Request::new(program, inputs))
                    .unwrap()
                    .wait()
                    .unwrap();
            });
        }
    });
    let warm = rt.stats();

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let rt = Arc::clone(&rt);
            let program = Arc::clone(program);
            let ws = ws.clone();
            s.spawn(move || {
                for r in 0..per_client {
                    let inputs = request_inputs((c * per_client + r) as u64, &ws);
                    rt.submit_wait(Request::new(Arc::clone(&program), inputs))
                        .unwrap()
                        .wait()
                        .unwrap();
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = rt.stats();
    if let Some(cfg) = metrics {
        let rt_reg = rt.metrics();
        if let Err(e) = ft_obs::flush(&[rt_reg.as_ref(), ft_obs::Registry::global()], cfg) {
            eprintln!("metrics flush failed: {e}");
        }
    }

    let requests = (clients * per_client) as u64;
    let timed_batches = stats.batches - warm.batches;
    let timed_batched_requests = stats.batched_requests - warm.batched_requests;
    let mean_batch = if timed_batches > 0 {
        timed_batched_requests as f64 / timed_batches as f64
    } else {
        0.0
    };
    let row = LoadRow {
        threads,
        batched,
        clients,
        requests,
        throughput_rps: requests as f64 / elapsed,
        // Percentiles include the warm-up requests; with per_client >> 1
        // the steady state dominates.
        p50_ms: stats.latency_p50_us / 1e3,
        p99_ms: stats.latency_p99_us / 1e3,
        mean_batch,
        arena_acquires: stats.arena_acquires - warm.arena_acquires,
        arena_grows_after_warmup: stats.arena_grows - warm.arena_grows,
        leaf_clones: stats.leaf_clones,
    };
    eprintln!(
        "threads={} {:9} clients={} {:6.0} req/s   p50 {:7.3} ms   p99 {:7.3} ms   mean batch {:.2}   arena grows {}",
        row.threads,
        if batched { "batched" } else { "unbatched" },
        row.clients,
        row.throughput_rps,
        row.p50_ms,
        row.p99_ms,
        row.mean_batch,
        row.arena_grows_after_warmup
    );
    row
}

/// Per-request setup cost: cold compile+verify vs cached-plan lookup, both
/// measured by the runtime itself.
fn measure_setup(program: &Arc<Program>, ws: &FractalTensor, resubmissions: usize) -> (f64, f64) {
    let rt = Runtime::new(ServeConfig {
        threads: 2,
        batching: false,
        ..ServeConfig::default()
    });
    for i in 0..=resubmissions {
        rt.submit_wait(Request::new(
            Arc::clone(program),
            request_inputs(i as u64, ws),
        ))
        .unwrap()
        .wait()
        .unwrap();
    }
    let stats = rt.stats();
    (stats.cold_setup_mean_us, stats.cached_setup_mean_us)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_out = args.iter().any(|a| a == "--json");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let metrics_cfg = args
        .iter()
        .position(|a| a == "--metrics-out")
        .and_then(|i| args.get(i + 1))
        .map(|dir| {
            let dir = std::path::PathBuf::from(dir);
            ft_obs::ExporterConfig {
                jsonl_path: Some(dir.join("metrics.jsonl")),
                prom_path: Some(dir.join("metrics.prom")),
                ..ft_obs::ExporterConfig::default()
            }
        });

    let (n, d, l, h) = SHAPE;
    let program = Arc::new(stacked_rnn_program(n, d, l, h));
    let ws = shared_weights();

    let (cold_us, cached_us) = measure_setup(&program, &ws, if smoke { 10 } else { 50 });
    let setup_speedup = if cached_us > 0.0 {
        cold_us / cached_us
    } else {
        0.0
    };
    eprintln!(
        "setup: cold compile+verify {cold_us:9.1} us   cached lookup {cached_us:7.2} us   ({setup_speedup:.0}x)"
    );

    let threads: &[usize] = if smoke { &[2] } else { THREADS };
    let clients = 8;
    let per_client = if smoke { 6 } else { 40 };
    let mut rows = Vec::new();
    for &t in threads {
        for batched in [false, true] {
            rows.push(run_load(
                t,
                batched,
                clients,
                per_client,
                &program,
                &ws,
                metrics_cfg.as_ref(),
            ));
        }
    }

    let batched_vs_unbatched: Option<f64> = {
        let at = |t: usize, b: bool| {
            rows.iter()
                .find(|r| r.threads == t && r.batched == b)
                .map(|r| r.throughput_rps)
        };
        let t = *threads.last().unwrap_or(&2);
        match (at(t, true), at(t, false)) {
            (Some(yes), Some(no)) if no > 0.0 => Some(yes / no),
            _ => None,
        }
    };
    if let Some(x) = batched_vs_unbatched {
        eprintln!(
            "batched vs unbatched throughput at {} threads: {x:.2}x",
            threads.last().unwrap_or(&2)
        );
    }

    let load: Vec<Value> = rows
        .iter()
        .map(|r| {
            json!({
                "threads": r.threads as u64,
                "mode": if r.batched { "batched" } else { "unbatched" },
                "clients": r.clients as u64,
                "requests": r.requests,
                "throughput_rps": r.throughput_rps,
                "p50_ms": r.p50_ms,
                "p99_ms": r.p99_ms,
                "mean_batch": r.mean_batch,
                "arena_acquires": r.arena_acquires,
                "arena_grows_after_warmup": r.arena_grows_after_warmup,
                "leaf_clones": r.leaf_clones,
            })
        })
        .collect();
    let setup = json!({
        "cold_compile_verify_us": cold_us,
        "cached_lookup_us": cached_us,
        "speedup": setup_speedup,
    });
    let report = json!({
        "bench": "serve",
        "smoke": smoke,
        "workload": format!("stacked_rnn n={n} d={d} l={l} h={h} (per request)"),
        "host_parallelism": std::thread::available_parallelism()
            .map(|v| v.get() as u64)
            .unwrap_or(1),
        "setup": setup,
        "batched_vs_unbatched_throughput": batched_vs_unbatched.unwrap_or(0.0),
        "load": load,
    });
    let rendered = serde_json::to_string_pretty(&report).unwrap();
    if let Some(path) = out {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).unwrap();
            }
        }
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("wrote {path}");
    }
    if json_out {
        println!("{rendered}");
    }
}
