//! Serving-runtime benchmark: plan-cache setup amortization and dynamic
//! batching throughput under concurrent load.
//!
//! ```text
//! cargo run --release -p ft-bench --bin bench_serve            # full run
//! cargo run --release -p ft-bench --bin bench_serve -- --smoke # tiny load
//! cargo run --release -p ft-bench --bin bench_serve -- --json  # print JSON
//! cargo run --release -p ft-bench --bin bench_serve -- --out results/BENCH_serve.json
//! cargo run --release -p ft-bench --bin bench_serve -- --metrics-out target/obs
//! ```
//!
//! `--metrics-out DIR` flushes the merged observability registries
//! (runtime-local `serve.*` plus global `exec.*`/`pool.*`/`passes.*`)
//! after every load configuration: one JSON row is appended per config to
//! `DIR/metrics.jsonl` and `DIR/metrics.prom` is rewritten in Prometheus
//! text format (the final rewrite reflects the last configuration).
//!
//! The workload is a *narrow* stacked RNN (one sequence per request,
//! depth 2, seq 256): its wavefront never exceeds the depth, so at 8
//! worker threads an unbatched launch leaves most of the pool idle and
//! pays the fixed per-wavefront-step synchronization cost for almost no
//! parallel work. Batching K same-plan requests widens the outer `map` to
//! K sequences, filling the pool and amortizing the step cost K-fold — the
//! serving-side version of the paper's nested-parallelism argument.
//! Closed-loop client threads submit through one shared
//! [`ft_serve::Runtime`]; we sweep worker threads × {batched, unbatched}
//! and report throughput, latency percentiles, and realized batch sizes,
//! plus the cold-compile vs cached-plan setup cost.
//!
//! The `mixed_length` scenario serves multi-tenant mixed-length traffic:
//! six closed-loop tenants, each with a stable characteristic request
//! width (outer extents 3..=8, one per tenant — a single factor-of-4
//! length bucket), pre-generated inputs, and a deliberately step-bound
//! shape (depth 1, seq 1024, hidden 2).
//! Concurrent traffic therefore always mixes lengths *across* sources —
//! exact-signature batching can only fuse within one tenant, so per-shape
//! serving (poly off: one verified compile per distinct length and fused
//! width) runs every request solo, while the shape-polymorphic runtime
//! (poly on: a single verified family, dispatch-time stride/size
//! evaluation) fuses ragged batches across tenants by length bucket. Each
//! mode runs three times and the median-throughput run is reported.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ft_core::builders::{rnn_decode_step_program, stacked_rnn_program};
use ft_core::{BufferId, FractalTensor, Program};
use ft_etdg::RegionRead;
use ft_serve::{
    FaultPlan, Request, Runtime, ServeConfig, ServeError, SessionSpec, StateBinding, StateOp,
};
use ft_tensor::Tensor;
use ft_workloads::decode;
use serde_json::{json, Value};

const THREADS: &[usize] = &[1, 2, 4, 8];
const SHAPE: (usize, usize, usize, usize) = (1, 2, 256, 16); // n, d, l, h
/// (d, l, h) for the mixed-length scenario's request family.
const MIXED_DLH: (usize, usize, usize) = (1, 1024, 2);

struct LoadRow {
    threads: usize,
    batched: bool,
    clients: usize,
    requests: u64,
    throughput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    mean_batch: f64,
    /// Arena acquisitions during the timed (post-warmup) section.
    arena_acquires: u64,
    /// Arena growths during the timed section — zero means the runtime
    /// served the whole load allocation-free.
    arena_grows_after_warmup: u64,
    /// Leaf clones over the runtime's lifetime (must stay zero).
    leaf_clones: u64,
    /// Robustness counters (zero on the clean load sweeps; the chaos and
    /// overload scenarios are where they move).
    shed: u64,
    retried: u64,
    quarantined: u64,
}

fn request_inputs(seed: u64, shared_ws: &FractalTensor) -> HashMap<BufferId, FractalTensor> {
    let (n, _d, l, h) = SHAPE;
    let mut m = HashMap::new();
    m.insert(
        BufferId(0),
        FractalTensor::from_flat(&Tensor::randn(&[n, l, 1, h], seed), 2).unwrap(),
    );
    // Shared weights: identical across requests, as in real serving — and a
    // precondition for fusing the batch.
    m.insert(BufferId(1), shared_ws.clone());
    m
}

fn shared_weights() -> FractalTensor {
    let (_n, d, _l, h) = SHAPE;
    FractalTensor::from_flat(&Tensor::randn(&[d, h, h], 8).mul_scalar(0.2), 1).unwrap()
}

/// Closed-loop load: `clients` threads each submit `per_client` requests
/// back to back through one shared runtime.
fn run_load(
    threads: usize,
    batched: bool,
    clients: usize,
    per_client: usize,
    program: &Arc<Program>,
    ws: &FractalTensor,
    metrics: Option<&ft_obs::ExporterConfig>,
) -> LoadRow {
    let rt = Arc::new(
        Runtime::try_new(ServeConfig {
            threads,
            batching: batched,
            max_batch: 8,
            ..ServeConfig::default()
        })
        .expect("serve runtime construction"),
    );
    // Warm the plan cache (including fused variants) so the timed section
    // measures serving, not compilation.
    std::thread::scope(|s| {
        for c in 0..clients {
            let rt = Arc::clone(&rt);
            let program = Arc::clone(program);
            let inputs = request_inputs(1000 + c as u64, ws);
            s.spawn(move || {
                rt.submit_wait(Request::new(program, inputs))
                    .unwrap()
                    .wait()
                    .unwrap();
            });
        }
    });
    let warm = rt.stats();

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let rt = Arc::clone(&rt);
            let program = Arc::clone(program);
            let ws = ws.clone();
            s.spawn(move || {
                for r in 0..per_client {
                    let inputs = request_inputs((c * per_client + r) as u64, &ws);
                    rt.submit_wait(Request::new(Arc::clone(&program), inputs))
                        .unwrap()
                        .wait()
                        .unwrap();
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = rt.stats();
    if let Some(cfg) = metrics {
        let rt_reg = rt.metrics();
        if let Err(e) = ft_obs::flush(&[rt_reg.as_ref(), ft_obs::Registry::global()], cfg) {
            eprintln!("metrics flush failed: {e}");
        }
    }

    let requests = (clients * per_client) as u64;
    let timed_batches = stats.batches - warm.batches;
    let timed_batched_requests = stats.batched_requests - warm.batched_requests;
    let mean_batch = if timed_batches > 0 {
        timed_batched_requests as f64 / timed_batches as f64
    } else {
        0.0
    };
    let row = LoadRow {
        threads,
        batched,
        clients,
        requests,
        throughput_rps: requests as f64 / elapsed,
        // Percentiles include the warm-up requests; with per_client >> 1
        // the steady state dominates.
        p50_ms: stats.latency_p50_us / 1e3,
        p99_ms: stats.latency_p99_us / 1e3,
        mean_batch,
        arena_acquires: stats.arena_acquires - warm.arena_acquires,
        arena_grows_after_warmup: stats.arena_grows - warm.arena_grows,
        leaf_clones: stats.leaf_clones,
        shed: stats.shed,
        retried: stats.retries,
        quarantined: stats.quarantine_rejected,
    };
    eprintln!(
        "threads={} {:9} clients={} {:6.0} req/s   p50 {:7.3} ms   p99 {:7.3} ms   mean batch {:.2}   arena grows {}",
        row.threads,
        if batched { "batched" } else { "unbatched" },
        row.clients,
        row.throughput_rps,
        row.p50_ms,
        row.p99_ms,
        row.mean_batch,
        row.arena_grows_after_warmup
    );
    row
}

/// Per-request setup cost: cold compile+verify vs cached-plan lookup, both
/// measured by the runtime itself.
fn measure_setup(program: &Arc<Program>, ws: &FractalTensor, resubmissions: usize) -> (f64, f64) {
    let rt = Runtime::try_new(ServeConfig {
        threads: 2,
        batching: false,
        ..ServeConfig::default()
    })
    .expect("serve runtime construction");
    for i in 0..=resubmissions {
        rt.submit_wait(Request::new(
            Arc::clone(program),
            request_inputs(i as u64, ws),
        ))
        .unwrap()
        .wait()
        .unwrap();
    }
    let stats = rt.stats();
    (stats.cold_setup_mean_us, stats.cached_setup_mean_us)
}

/// The first (member, read) coordinate of group 0 that reads a buffer —
/// the target for corrupt-read fault injection (fills can't be
/// corrupted).
fn first_buffer_read(c: &ft_passes::CompiledProgram) -> (usize, usize) {
    for (mi, &m) in c.groups[0].members.iter().enumerate() {
        for (ri, read) in c.etdg.block(m).reads.iter().enumerate() {
            if matches!(read, RegionRead::Buffer { .. }) {
                return (mi, ri);
            }
        }
    }
    (0, 0)
}

/// Inputs with a NaN in the activations: with the guard on, execution
/// fails typed — the NaN-poison fault class.
fn poisoned_inputs(seed: u64, ws: &FractalTensor) -> HashMap<BufferId, FractalTensor> {
    let (n, _d, l, h) = SHAPE;
    let mut v = Tensor::randn(&[n, l, 1, h], seed).to_vec();
    v[0] = f32::NAN;
    let nan = Tensor::from_vec(v, &[n, l, 1, h]).unwrap();
    let mut m = HashMap::new();
    m.insert(BufferId(0), FractalTensor::from_flat(&nan, 2).unwrap());
    m.insert(BufferId(1), ws.clone());
    m
}

/// Chaos under load: ~1% injected faults (worker panics, NaN poison,
/// corrupt reads, one stall, one scheduler kill) plus a dedicated
/// poison plan that trips quarantine. Every admitted ticket must resolve
/// to a typed outcome — the scenario *counts* resolutions rather than
/// trusting them — and the pool must end at full worker strength.
fn run_chaos(smoke: bool) -> Value {
    let threads = 4usize;
    let clients = 4usize;
    let per_client = if smoke { 40 } else { 150 };
    let fault_every = if smoke { 20 } else { 100 };
    let rt = Arc::new(
        Runtime::try_new(ServeConfig {
            threads,
            max_batch: 8,
            guard: Some(true),
            quarantine_threshold: 4,
            quarantine_cooldown: Duration::from_millis(300),
            launch_timeout: Some(Duration::from_millis(500)),
            ..ServeConfig::default()
        })
        .expect("serve runtime construction"),
    );
    let (n, d, l, h) = SHAPE;
    let program = Arc::new(stacked_rnn_program(n, d, l, h));
    let ws = shared_weights();
    let compiled = ft_passes::compile(&program).expect("chaos workload compiles");
    let step_lo = compiled.groups[0].reordering.wavefront_range().0;
    let (member, read) = first_buffer_read(&compiled);

    // Warm the plan (and the fused variants) before the storm.
    rt.submit_wait(Request::new(Arc::clone(&program), request_inputs(1, &ws)))
        .unwrap()
        .wait()
        .unwrap();

    let submitted = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let resolved = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let ok = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let failed_typed = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let rt = Arc::clone(&rt);
            let program = Arc::clone(&program);
            let ws = ws.clone();
            let (submitted, resolved, ok, failed_typed) = (
                Arc::clone(&submitted),
                Arc::clone(&resolved),
                Arc::clone(&ok),
                Arc::clone(&failed_typed),
            );
            s.spawn(move || {
                for r in 0..per_client {
                    let i = c * per_client + r;
                    // ~1% fault mix, rotated deterministically.
                    let inputs = if i % fault_every == 1 {
                        match (i / fault_every) % 3 {
                            0 => {
                                rt.inject_pool_fault(1, 1);
                                request_inputs(i as u64, &ws)
                            }
                            1 => poisoned_inputs(i as u64, &ws),
                            _ => {
                                rt.inject_exec_fault(
                                    FaultPlan::new().corrupt_read(0, member, read, 7),
                                );
                                request_inputs(i as u64, &ws)
                            }
                        }
                    } else {
                        request_inputs(i as u64, &ws)
                    };
                    // One scheduler kill, mid-run.
                    if c == 0 && r == per_client / 2 {
                        rt.kill_scheduler();
                    }
                    submitted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let outcome = rt
                        .submit_wait(Request::new(Arc::clone(&program), inputs))
                        .unwrap()
                        .wait();
                    resolved.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    match outcome {
                        Ok(_) => {
                            ok.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Err(_) => {
                            failed_typed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        // A dedicated poison plan (different signature): consecutive
        // guard failures trip its breaker without starving the main
        // plan, then a clean request after the cooldown recovers it.
        {
            let rt = Arc::clone(&rt);
            s.spawn(move || {
                let poison_prog = Arc::new(stacked_rnn_program(1, 2, 32, 16));
                let pws =
                    FractalTensor::from_flat(&Tensor::randn(&[2, 16, 16], 5).mul_scalar(0.2), 1)
                        .unwrap();
                let bad = |seed: u64| {
                    let mut v = Tensor::randn(&[1, 32, 1, 16], seed).to_vec();
                    v[0] = f32::NAN;
                    let nan = Tensor::from_vec(v, &[1, 32, 1, 16]).unwrap();
                    let mut m = HashMap::new();
                    m.insert(BufferId(0), FractalTensor::from_flat(&nan, 2).unwrap());
                    m.insert(BufferId(1), pws.clone());
                    m
                };
                for seed in 0..7u64 {
                    let _ = rt
                        .submit_wait(Request::new(Arc::clone(&poison_prog), bad(seed)))
                        .unwrap()
                        .wait();
                }
                std::thread::sleep(Duration::from_millis(400));
                let mut good = HashMap::new();
                good.insert(
                    BufferId(0),
                    FractalTensor::from_flat(&Tensor::randn(&[1, 32, 1, 16], 9), 2).unwrap(),
                );
                good.insert(BufferId(1), pws.clone());
                let _ = rt
                    .submit_wait(Request::new(Arc::clone(&poison_prog), good))
                    .unwrap()
                    .wait();
            });
        }
    });
    // Wedged-launch phase, after the storm so no concurrent fault arm can
    // overwrite the one-shot plan: the stall sleeps past the launch
    // timeout, the watchdog poisons the pool, the request fails typed,
    // and the next request runs on a freshly spawned full-width pool.
    {
        submitted.fetch_add(2, std::sync::atomic::Ordering::Relaxed);
        rt.inject_exec_fault(FaultPlan::new().stall_at(0, step_lo, 2_000));
        let wedged = rt
            .submit_wait(Request::new(
                Arc::clone(&program),
                request_inputs(9_001, &ws),
            ))
            .unwrap()
            .wait();
        resolved.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        match wedged {
            Ok(_) => {
                ok.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            Err(_) => {
                failed_typed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
        let after = rt
            .submit_wait(Request::new(
                Arc::clone(&program),
                request_inputs(9_002, &ws),
            ))
            .unwrap()
            .wait();
        resolved.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        match after {
            Ok(_) => {
                ok.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            Err(_) => {
                failed_typed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = rt.stats();
    let submitted = submitted.load(std::sync::atomic::Ordering::Relaxed);
    let resolved = resolved.load(std::sync::atomic::Ordering::Relaxed);
    let hung = submitted.saturating_sub(resolved);
    eprintln!(
        "chaos: {} req in {:.2}s   ok {}   typed failures {}   hung {}   restarts {}   \
         quarantine trips {}   bisections {}   retries {}   stalled {}   pool {}/{} workers",
        submitted,
        elapsed,
        ok.load(std::sync::atomic::Ordering::Relaxed),
        failed_typed.load(std::sync::atomic::Ordering::Relaxed),
        hung,
        stats.scheduler_restarts,
        stats.quarantine_trips,
        stats.batch_bisections,
        stats.retries,
        stats.stalled,
        stats.pool_workers,
        threads,
    );
    json!({
        "requests": submitted,
        "resolved": resolved,
        "hung_tickets": hung,
        "ok": ok.load(std::sync::atomic::Ordering::Relaxed),
        "failed_typed": failed_typed.load(std::sync::atomic::Ordering::Relaxed),
        "throughput_rps": submitted as f64 / elapsed,
        "scheduler_restarts": stats.scheduler_restarts,
        "quarantine_trips": stats.quarantine_trips,
        "quarantined": stats.quarantine_rejected,
        "shed": stats.shed,
        "retried": stats.retries,
        "batch_bisections": stats.batch_bisections,
        "stalled": stats.stalled,
        "pool_replacements": stats.pool_replacements,
        "pool_workers_end": stats.pool_workers as u64,
        "pool_workers_expected": threads as u64,
    })
}

/// One mixed-length serving mode: `clients` closed-loop threads rotate
/// over the outer-extent distribution. The timed section deliberately
/// starts cold — paying (or not paying) per-shape compile+verify is
/// exactly what the scenario measures.
fn mixed_length_mode(
    poly: bool,
    extents: &[usize],
    clients: usize,
    per_client: usize,
) -> (Value, f64) {
    // Deliberately more step-bound than SHAPE (longer sequence, narrower
    // hidden): per-wavefront-step work is small, so launch cost is
    // dominated by the fixed per-step synchronization that fusion
    // amortizes across batch members.
    let (d, l, h) = MIXED_DLH;
    let ws = FractalTensor::from_flat(&Tensor::randn(&[d, h, h], 8).mul_scalar(0.2), 1).unwrap();
    let programs: Vec<Arc<Program>> = extents
        .iter()
        .map(|&n| Arc::new(stacked_rnn_program(n, d, l, h)))
        .collect();
    let rt = Arc::new(
        Runtime::try_new(ServeConfig {
            threads: 8,
            max_batch: 16,
            poly,
            ..ServeConfig::default()
        })
        .expect("serve runtime construction"),
    );
    // Pre-generate every request's inputs before the clock starts: input
    // tensor construction is the client's cost, not the serving system's,
    // and on a small host generating tensors inside the timed loop would
    // serialize with the scheduler and mask the serving-path difference
    // under measurement.
    let work: Vec<Vec<(usize, HashMap<BufferId, FractalTensor>)>> = (0..clients)
        .map(|c| {
            (0..per_client)
                .map(|r| {
                    // Multi-tenant length mix: each client is one tenant
                    // with a stable characteristic request width (tenants
                    // rarely change payload shape request to request), so
                    // concurrent traffic always mixes lengths ACROSS
                    // sources. Exact-signature batching can only ever fuse
                    // within one tenant; ragged fusion works across all of
                    // them.
                    let _ = r;
                    let which = c % extents.len();
                    let n = extents[which];
                    let mut inputs = HashMap::new();
                    inputs.insert(
                        BufferId(0),
                        FractalTensor::from_flat(
                            &Tensor::randn(&[n, l, 1, h], (c * per_client + r) as u64),
                            2,
                        )
                        .unwrap(),
                    );
                    inputs.insert(BufferId(1), ws.clone());
                    (which, inputs)
                })
                .collect()
        })
        .collect();
    // Each client keeps a small window of requests in flight (as real
    // serving clients do): a fused launch completes many requests at
    // once, and without pipelining the queue would drain to empty after
    // every batch, measuring client wakeup latency instead of serving
    // throughput.
    const PIPELINE: usize = 1;
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for reqs in work {
            let rt = Arc::clone(&rt);
            let programs = programs.clone();
            s.spawn(move || {
                let mut inflight = std::collections::VecDeque::new();
                for (which, inputs) in reqs {
                    inflight.push_back(
                        rt.submit_wait(Request::new(Arc::clone(&programs[which]), inputs))
                            .unwrap(),
                    );
                    if inflight.len() >= PIPELINE {
                        inflight.pop_front().unwrap().wait().unwrap();
                    }
                }
                for t in inflight {
                    t.wait().unwrap();
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = rt.stats();
    let requests = (clients * per_client) as u64;
    let throughput = requests as f64 / elapsed;
    let mean_batch = if stats.batches > 0 {
        stats.batched_requests as f64 / stats.batches as f64
    } else {
        0.0
    };
    eprintln!(
        "mixed-length {:9} {:6.0} req/s   plans {}   compiles {}   batches {}   mean batch {:.2}   ragged fb {}",
        if poly { "ragged" } else { "per-shape" },
        throughput,
        stats.cached_plans,
        stats.cache_misses,
        stats.batches,
        mean_batch,
        stats.batch_ragged_fallbacks,
    );
    (
        json!({
            "throughput_rps": throughput,
            "p50_ms": stats.latency_p50_us / 1e3,
            "p99_ms": stats.latency_p99_us / 1e3,
            "plan_cache_entries": stats.cached_plans,
            "compiles": stats.cache_misses,
            "batches": stats.batches,
            "mean_batch": mean_batch,
            "ragged_fallbacks": stats.batch_ragged_fallbacks,
        }),
        throughput,
    )
}

/// Mixed-length (ragged) serving scenario — the shape-rigidity fix under a
/// realistic length distribution. Requests draw their outer extent from
/// `EXTENTS`; "per_shape" (poly off) compiles and verifies one exact plan
/// per distinct length *and per fused batch width*, and can only fuse
/// equal-length requests; "ragged" (poly on) builds one verified symbolic
/// family, instantiates it per dispatched total extent by evaluating the
/// stride/size formulas, and fuses across nearby lengths (power-of-two
/// buckets).
///
/// Requests are *narrow* (outer extents 1..=8 against an 8-thread pool),
/// so an unfused launch leaves most workers idle — the regime where
/// batching matters. Per-shape batching can only fuse requests whose
/// lengths match *exactly*, and with eight lengths interleaved such
/// matches are scarce at the queue head; ragged bucketing fuses across
/// nearby lengths, so the same traffic fills the pool.
fn run_mixed_length(smoke: bool) -> Value {
    let extents: Vec<usize> = (3..=8).collect();
    let clients = 6usize;
    let per_client = if smoke { 4 } else { 40 };
    // Median of three alternating repetitions per mode: single runs on a
    // shared host jitter by 10-20%, and a committed headline ratio should
    // not be one draw from that distribution.
    let reps = if smoke { 1 } else { 3 };
    let mut per_shape_runs = Vec::new();
    let mut ragged_runs = Vec::new();
    for _ in 0..reps {
        per_shape_runs.push(mixed_length_mode(false, &extents, clients, per_client));
        ragged_runs.push(mixed_length_mode(true, &extents, clients, per_client));
    }
    let median = |mut runs: Vec<(Value, f64)>| -> (Value, f64) {
        runs.sort_by(|a, b| a.1.total_cmp(&b.1));
        runs.swap_remove(runs.len() / 2)
    };
    let (per_shape, per_shape_rps) = median(per_shape_runs);
    let (ragged, ragged_rps) = median(ragged_runs);
    let ratio = if per_shape_rps > 0.0 {
        ragged_rps / per_shape_rps
    } else {
        0.0
    };
    eprintln!("mixed-length ragged vs per-shape throughput (median of {reps}): {ratio:.2}x");
    let distribution = json!({
        "min": extents[0] as u64,
        "max": *extents.last().unwrap() as u64,
        "distinct": extents.len() as u64,
    });
    json!({
        "outer_extents": distribution,
        "clients": clients as u64,
        "requests": (clients * per_client) as u64,
        "reps": reps as u64,
        "ragged": ragged,
        "per_shape": per_shape,
        "ragged_vs_per_shape_throughput": ratio,
    })
}

/// One overload measurement: open-loop submits paced at `offered_rps`,
/// every request carrying `deadline`; goodput counts only completions
/// that finished within their deadline.
fn overload_run(
    shedding: bool,
    offered_rps: f64,
    total: usize,
    deadline: Duration,
    program: &Arc<Program>,
    ws: &FractalTensor,
) -> Value {
    let rt = Runtime::try_new(ServeConfig {
        threads: 4,
        max_batch: 8,
        queue_capacity: 8192,
        shedding,
        ..ServeConfig::default()
    })
    .expect("serve runtime construction");
    // Warm: cache the plan and build the latency history the shedding
    // estimator predicts from.
    for i in 0..8 {
        rt.submit_wait(Request::new(
            Arc::clone(program),
            request_inputs(7_000 + i, ws),
        ))
        .unwrap()
        .wait()
        .unwrap();
    }
    let _ = rt.take_completions(); // timed section starts clean

    let interval = Duration::from_secs_f64(1.0 / offered_rps);
    let deadline_us = deadline.as_secs_f64() * 1e6;
    let mut tickets = Vec::with_capacity(total);
    let mut shed_at_admission = 0u64;
    let mut records = Vec::with_capacity(total);
    let t0 = Instant::now();
    for i in 0..total {
        match rt.submit(
            Request::new(Arc::clone(program), request_inputs(i as u64, ws)).with_deadline(deadline),
        ) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Shed { .. }) => shed_at_admission += 1,
            Err(e) => panic!("unexpected admission error: {e}"),
        }
        if tickets.len() % 512 == 0 {
            records.extend(rt.take_completions()); // keep the ring bounded
        }
        // Open-loop pacing: the next arrival doesn't wait for this one.
        let next = t0 + interval.mul_f64((i + 1) as f64);
        if let Some(sleep) = next.checked_duration_since(Instant::now()) {
            std::thread::sleep(sleep);
        }
    }
    for t in tickets {
        let _ = t.wait();
    }
    let elapsed = t0.elapsed().as_secs_f64();
    records.extend(rt.take_completions());

    let mut on_time = 0u64;
    let mut late_ok = 0u64;
    let mut missed = 0u64;
    for r in &records {
        match r.status {
            ft_obs::CompletionStatus::Ok if r.total_us <= deadline_us => on_time += 1,
            ft_obs::CompletionStatus::Ok => late_ok += 1,
            _ => missed += 1,
        }
    }
    let goodput = on_time as f64 / elapsed;
    eprintln!(
        "overload shed={:5} offered {:7.0} rps   goodput {:7.0} rps   on-time {}   late {}   \
         missed {}   shed {}",
        shedding, offered_rps, goodput, on_time, late_ok, missed, shed_at_admission
    );
    json!({
        "shedding": shedding,
        "offered_rps": offered_rps,
        "goodput_rps": goodput,
        "on_time": on_time,
        "late_ok": late_ok,
        "deadline_missed": missed,
        "shed": shed_at_admission,
    })
}

/// Overload scenario: measure capacity closed-loop, then offer 2x that
/// rate open-loop with a per-request deadline, shedding off vs on. The
/// report compares on-deadline goodput against the at-capacity run.
fn run_overload(smoke: bool) -> Value {
    let (n, d, l, h) = SHAPE;
    let program = Arc::new(stacked_rnn_program(n, d, l, h));
    let ws = shared_weights();

    // Capacity probe: closed-loop clients, no deadline.
    let rt = Runtime::try_new(ServeConfig {
        threads: 4,
        max_batch: 8,
        ..ServeConfig::default()
    })
    .expect("serve runtime construction");
    let clients = 8usize;
    let per_client = if smoke { 10 } else { 30 };
    let rt = Arc::new(rt);
    std::thread::scope(|s| {
        for c in 0..clients {
            let rt = Arc::clone(&rt);
            let program = Arc::clone(&program);
            let inputs = request_inputs(6_000 + c as u64, &ws);
            s.spawn(move || {
                rt.submit_wait(Request::new(program, inputs))
                    .unwrap()
                    .wait()
                    .unwrap();
            });
        }
    });
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let rt = Arc::clone(&rt);
            let program = Arc::clone(&program);
            let ws = ws.clone();
            s.spawn(move || {
                for r in 0..per_client {
                    let inputs = request_inputs((c * per_client + r) as u64, &ws);
                    rt.submit_wait(Request::new(Arc::clone(&program), inputs))
                        .unwrap()
                        .wait()
                        .unwrap();
                }
            });
        }
    });
    let capacity_rps = (clients * per_client) as f64 / t0.elapsed().as_secs_f64();
    let p50_us = rt.stats().latency_p50_us;
    drop(rt);
    // A deadline the at-capacity run comfortably meets, but that an
    // unshed 2x backlog blows through.
    let deadline = Duration::from_secs_f64((p50_us * 8.0).max(4_000.0) / 1e6);
    eprintln!(
        "overload: capacity {:.0} rps   p50 {:.2} ms   deadline {:.2} ms",
        capacity_rps,
        p50_us / 1e3,
        deadline.as_secs_f64() * 1e3
    );

    let duration = if smoke { 1.0 } else { 2.5 };
    // Pace the baseline slightly below the closed-loop capacity estimate:
    // an open-loop arrival stream at exactly 100% has unbounded expected
    // queue growth, which would make the "healthy" reference itself miss
    // deadlines on a noisy host.
    let baseline_rps = 0.9 * capacity_rps;
    let at_capacity_total = ((baseline_rps * duration) as usize).clamp(50, 1_200);
    let overload_total = ((2.0 * capacity_rps * duration) as usize).clamp(100, 2_400);
    let baseline = overload_run(
        true,
        baseline_rps,
        at_capacity_total,
        deadline,
        &program,
        &ws,
    );
    let unshed = overload_run(
        false,
        2.0 * capacity_rps,
        overload_total,
        deadline,
        &program,
        &ws,
    );
    let shed = overload_run(
        true,
        2.0 * capacity_rps,
        overload_total,
        deadline,
        &program,
        &ws,
    );
    let ratio = |v: &Value| {
        let g = v["goodput_rps"].as_f64().unwrap_or(0.0);
        let b = baseline["goodput_rps"].as_f64().unwrap_or(0.0);
        if b > 0.0 {
            g / b
        } else {
            0.0
        }
    };
    json!({
        "capacity_rps": capacity_rps,
        "deadline_ms": deadline.as_secs_f64() * 1e3,
        "at_capacity": baseline.clone(),
        "overload_2x_unshed": unshed.clone(),
        "overload_2x_shed": shed.clone(),
        "shed_goodput_vs_at_capacity": ratio(&shed),
        "unshed_goodput_vs_at_capacity": ratio(&unshed),
    })
}

/// (depth, hidden) of the RNN decode step the session scenario serves.
/// Small enough that per-launch overhead dominates a solo step — exactly
/// the regime continuous batching exists to amortize.
const SESSION_DH: (usize, usize) = (2, 16);

/// One mode of the stateful-session scenario: `sessions` client threads
/// each drive their own pinned-state decode loop on a shared runtime.
/// `continuous` fuses concurrent decode steps from different sessions
/// into one wavefront launch per tick (the continuous-batching path);
/// solo mode dispatches every step alone.
fn session_mode(continuous: bool, sessions: usize, warmup: usize, steps: usize) -> Value {
    let (d, h) = SESSION_DH;
    let rt = Arc::new(
        Runtime::try_new(ServeConfig {
            threads: 4,
            batching: continuous,
            max_batch: sessions.max(8),
            ..ServeConfig::default()
        })
        .expect("serve runtime construction"),
    );
    let program = Arc::new(rnn_decode_step_program(d, h));
    let ws = FractalTensor::from_flat(&Tensor::randn(&[d, h, h], 8).mul_scalar(0.2), 1).unwrap();
    let ids: Vec<u64> = (0..sessions)
        .map(|_| {
            rt.open_session(SessionSpec {
                program: Arc::clone(&program),
                bindings: vec![StateBinding {
                    state: BufferId(2),
                    op: StateOp::Carry {
                        output: BufferId(3),
                    },
                }],
                capacity: 0,
                init: decode::rnn_state_init(d, h),
            })
            .expect("open session")
        })
        .collect();

    // One closed-loop driver keeps every session in flight at once: each
    // round submits the next decode step for all sessions, then waits the
    // round's futures. Continuous batching fuses the in-flight steps into
    // one wavefront launch per round; solo dispatch pays one launch per
    // session per round. Tokens are pre-generated so the timed loop
    // measures serving, not client-side RNG.
    let tokens: Vec<Vec<FractalTensor>> = (0..sessions)
        .map(|c| {
            (0..warmup + steps)
                .map(|t| {
                    FractalTensor::from_tensors(vec![Tensor::randn(
                        &[1, h],
                        (c * 10_000 + t) as u64,
                    )])
                    .unwrap()
                })
                .collect()
        })
        .collect();
    let round = |t: usize| {
        let futures: Vec<_> = ids
            .iter()
            .enumerate()
            .map(|(c, &sid)| {
                let mut inputs = HashMap::with_capacity(2);
                inputs.insert(BufferId(0), tokens[c][t].clone());
                inputs.insert(BufferId(1), ws.clone());
                rt.decode_step(sid, inputs).unwrap()
            })
            .collect();
        for f in futures {
            f.wait().unwrap();
        }
    };
    for t in 0..warmup {
        round(t);
    }
    let warm = rt.stats();
    let start = Instant::now();
    for t in 0..steps {
        round(warmup + t);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = rt.stats();
    let pinned_bytes = stats.pinned_bytes;
    for sid in ids {
        rt.close_session(sid).unwrap();
    }

    let tokens = (sessions * steps) as u64;
    let timed_batches = stats.batches - warm.batches;
    let timed_batched = stats.batched_requests - warm.batched_requests;
    let row = json!({
        "mode": if continuous { "continuous" } else { "solo" },
        "sessions": sessions as u64,
        "steps_per_session": steps as u64,
        "tokens": tokens,
        "tokens_per_sec": tokens as f64 / elapsed,
        "p50_ms": stats.latency_p50_us / 1e3,
        "p99_ms": stats.latency_p99_us / 1e3,
        "mean_batch": if timed_batches > 0 {
            timed_batched as f64 / timed_batches as f64
        } else {
            0.0
        },
        // The in-place advance contract: zero deep copies per decode step
        // once the plan cache is warm (CI gates on this staying 0).
        "state_copies_after_warmup": stats.state_copies - warm.state_copies,
        "pinned_bytes": pinned_bytes,
        "pinned_bytes_after_close": rt.stats().pinned_bytes,
        "decode_steps": stats.decode_steps,
        "cache_misses_after_warmup": stats.cache_misses - warm.cache_misses,
        "batch_fallbacks_after_warmup": stats.batch_fallbacks - warm.batch_fallbacks,
        "retries_after_warmup": stats.retries - warm.retries,
    });
    eprintln!(
        "sessions {:10} n={sessions} {:8.0} tok/s   p50 {:7.3} ms   mean batch {:.2}   state copies {}",
        if continuous { "continuous" } else { "solo" },
        row["tokens_per_sec"].as_f64().unwrap_or(0.0),
        stats.latency_p50_us / 1e3,
        row["mean_batch"].as_f64().unwrap_or(0.0),
        stats.state_copies - warm.state_copies,
    );
    row
}

/// Stateful-session scenario: steady-state autoregressive decode across
/// concurrent pinned-state sessions, continuous batching vs solo
/// dispatch. The headline ratio is the serving win the session layer
/// exists for; the zero state-copies counter is the in-place contract.
fn run_sessions(smoke: bool) -> Value {
    let sessions = 16;
    let warmup = if smoke { 4 } else { 8 };
    let steps = if smoke { 24 } else { 96 };
    // Each mode runs three times and the median-throughput run is
    // reported — a single rep is too noisy to gate on.
    let reps = 3;
    let median = |mode: bool| {
        let mut rows: Vec<Value> = (0..reps)
            .map(|_| session_mode(mode, sessions, warmup, steps))
            .collect();
        rows.sort_by(|a, b| {
            let ta = a["tokens_per_sec"].as_f64().unwrap_or(0.0);
            let tb = b["tokens_per_sec"].as_f64().unwrap_or(0.0);
            ta.partial_cmp(&tb).unwrap_or(std::cmp::Ordering::Equal)
        });
        rows.swap_remove(reps / 2)
    };
    let continuous = median(true);
    let solo = median(false);
    let ratio = match (
        continuous["tokens_per_sec"].as_f64(),
        solo["tokens_per_sec"].as_f64(),
    ) {
        (Some(yes), Some(no)) if no > 0.0 => yes / no,
        _ => 0.0,
    };
    eprintln!("continuous vs solo decode throughput: {ratio:.2}x");
    json!({
        "workload": format!(
            "rnn_decode_step d={} h={} (per step)",
            SESSION_DH.0, SESSION_DH.1
        ),
        "continuous": continuous,
        "solo": solo,
        "continuous_vs_solo_tokens_per_sec": ratio,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_out = args.iter().any(|a| a == "--json");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let metrics_cfg = args
        .iter()
        .position(|a| a == "--metrics-out")
        .and_then(|i| args.get(i + 1))
        .map(|dir| {
            let dir = std::path::PathBuf::from(dir);
            ft_obs::ExporterConfig {
                jsonl_path: Some(dir.join("metrics.jsonl")),
                prom_path: Some(dir.join("metrics.prom")),
                ..ft_obs::ExporterConfig::default()
            }
        });

    let (n, d, l, h) = SHAPE;
    let program = Arc::new(stacked_rnn_program(n, d, l, h));
    let ws = shared_weights();

    let (cold_us, cached_us) = measure_setup(&program, &ws, if smoke { 10 } else { 50 });
    let setup_speedup = if cached_us > 0.0 {
        cold_us / cached_us
    } else {
        0.0
    };
    eprintln!(
        "setup: cold compile+verify {cold_us:9.1} us   cached lookup {cached_us:7.2} us   ({setup_speedup:.0}x)"
    );

    let threads: &[usize] = if smoke { &[2] } else { THREADS };
    let clients = 8;
    let per_client = if smoke { 6 } else { 40 };
    let mut rows = Vec::new();
    for &t in threads {
        for batched in [false, true] {
            rows.push(run_load(
                t,
                batched,
                clients,
                per_client,
                &program,
                &ws,
                metrics_cfg.as_ref(),
            ));
        }
    }

    let batched_vs_unbatched: Option<f64> = {
        let at = |t: usize, b: bool| {
            rows.iter()
                .find(|r| r.threads == t && r.batched == b)
                .map(|r| r.throughput_rps)
        };
        let t = *threads.last().unwrap_or(&2);
        match (at(t, true), at(t, false)) {
            (Some(yes), Some(no)) if no > 0.0 => Some(yes / no),
            _ => None,
        }
    };
    if let Some(x) = batched_vs_unbatched {
        eprintln!(
            "batched vs unbatched throughput at {} threads: {x:.2}x",
            threads.last().unwrap_or(&2)
        );
    }

    let load: Vec<Value> = rows
        .iter()
        .map(|r| {
            json!({
                "threads": r.threads as u64,
                "mode": if r.batched { "batched" } else { "unbatched" },
                "clients": r.clients as u64,
                "requests": r.requests,
                "throughput_rps": r.throughput_rps,
                "p50_ms": r.p50_ms,
                "p99_ms": r.p99_ms,
                "mean_batch": r.mean_batch,
                "arena_acquires": r.arena_acquires,
                "arena_grows_after_warmup": r.arena_grows_after_warmup,
                "leaf_clones": r.leaf_clones,
                "shed": r.shed,
                "retried": r.retried,
                "quarantined": r.quarantined,
            })
        })
        .collect();
    let mixed_length = run_mixed_length(smoke);
    let sessions = run_sessions(smoke);
    let chaos = run_chaos(smoke);
    let overload = run_overload(smoke);

    let setup = json!({
        "cold_compile_verify_us": cold_us,
        "cached_lookup_us": cached_us,
        "speedup": setup_speedup,
    });
    let report = json!({
        "bench": "serve",
        "smoke": smoke,
        "workload": format!("stacked_rnn n={n} d={d} l={l} h={h} (per request)"),
        "host_parallelism": std::thread::available_parallelism()
            .map(|v| v.get() as u64)
            .unwrap_or(1),
        "setup": setup,
        "batched_vs_unbatched_throughput": batched_vs_unbatched.unwrap_or(0.0),
        "load": load,
        "mixed_length": mixed_length,
        "sessions": sessions,
        "chaos": chaos,
        "overload": overload,
    });
    let rendered = serde_json::to_string_pretty(&report).unwrap();
    if let Some(path) = out {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).unwrap();
            }
        }
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("wrote {path}");
    }
    if json_out {
        println!("{rendered}");
    }
}
