//! `bench_compare`: the perf-regression gate. Diffs a current bench
//! report against a committed baseline and fails (exit 1) when a
//! headline metric regresses by more than the threshold.
//!
//! ```text
//! cargo run --release -p ft-bench --bin bench_compare -- \
//!     --baseline BENCH_exec.json --current target/BENCH_exec.json --threshold 0.15
//! cargo run --release -p ft-bench --bin bench_compare -- --self-test
//! ```
//!
//! Only *ratio* metrics are gated — quantities that divide out the host's
//! absolute speed and should reproduce across machines:
//!
//! * `exec` reports: per-row `speedup` (pooled executor vs reference
//!   interpreter), matched on `(workload, threads)`.
//! * `serve` reports: `setup.speedup` (cold compile+verify vs cached plan
//!   lookup) and `batched_vs_unbatched_throughput`.
//!
//! Rows present only in the baseline (e.g. a full baseline diffed against
//! a `--smoke` run) are reported as skipped, not failed; the gate demands
//! at least one comparable metric so an empty intersection cannot pass
//! vacuously. Absolute times (`gemm` ms, raw rps) are intentionally not
//! gated. `--self-test` verifies the gate itself: it injects a synthetic
//! ~20% regression in-process and asserts detection at the 15% threshold,
//! and asserts that an unchanged report passes.

use serde_json::Value;

/// One comparable metric extracted from a report pair.
#[derive(Debug, Clone)]
struct MetricCmp {
    name: String,
    baseline: f64,
    current: f64,
    /// Compare on `log10` of the values instead of linearly. Used for
    /// metrics whose headline claim is an order of magnitude (plan-cache
    /// setup amortization, where the cached-lookup denominator is a few
    /// microseconds and linear run-to-run noise spans several x).
    log_scale: bool,
}

impl MetricCmp {
    /// Fractional change, positive = improvement (all gated metrics are
    /// higher-is-better ratios).
    fn change(&self) -> f64 {
        if self.baseline <= 0.0 || self.current <= 0.0 {
            return 0.0;
        }
        if self.log_scale {
            let b = self.baseline.log10();
            if b.abs() < f64::EPSILON {
                return 0.0;
            }
            self.current.log10() / b - 1.0
        } else {
            self.current / self.baseline - 1.0
        }
    }
}

/// Extracts the gated metrics common to both reports, plus the names of
/// baseline metrics the current report is missing (skipped).
fn extract(baseline: &Value, current: &Value) -> Result<(Vec<MetricCmp>, Vec<String>), String> {
    let kind = baseline["bench"].as_str().unwrap_or("");
    if current["bench"].as_str().unwrap_or("") != kind {
        return Err(format!(
            "bench kind mismatch: baseline {:?} vs current {:?}",
            baseline["bench"], current["bench"]
        ));
    }
    let mut metrics = Vec::new();
    let mut skipped = Vec::new();
    match kind {
        "exec" => {
            let rows = |v: &Value| -> Vec<(String, u64, f64)> {
                v["exec"]
                    .as_array()
                    .map(|rows| {
                        rows.iter()
                            .filter_map(|r| {
                                Some((
                                    r["workload"].as_str()?.to_string(),
                                    r["threads"].as_u64()?,
                                    r["speedup"].as_f64()?,
                                ))
                            })
                            .collect()
                    })
                    .unwrap_or_default()
            };
            let cur = rows(current);
            for (workload, threads, base_speedup) in rows(baseline) {
                let name = format!("exec.speedup[{workload}, threads={threads}]");
                match cur.iter().find(|(w, t, _)| *w == workload && *t == threads) {
                    Some(&(_, _, cur_speedup)) => metrics.push(MetricCmp {
                        name,
                        baseline: base_speedup,
                        current: cur_speedup,
                        log_scale: false,
                    }),
                    None => skipped.push(name),
                }
            }
            // Per-kernel SIMD speedup from the roofline sweep: the ratio of
            // the native-mode rate over the scalar rate for the same kernel.
            // Same-machine ratio, so it divides out absolute host speed; a
            // scalar-only host produces no native rows and the kernels are
            // skipped rather than failed.
            let simd = |v: &Value| -> Vec<(String, f64)> {
                let rows = v["roofline"].as_array().cloned().unwrap_or_default();
                let rate = |kernel: &str, want_scalar: bool| -> Option<f64> {
                    rows.iter()
                        .find(|r| {
                            r["kernel"].as_str() == Some(kernel)
                                && (r["mode"].as_str() == Some("scalar")) == want_scalar
                        })
                        .and_then(|r| r["rate"].as_f64())
                        .filter(|x| *x > 0.0)
                };
                let mut seen = Vec::new();
                let mut out = Vec::new();
                for r in &rows {
                    let Some(kernel) = r["kernel"].as_str() else {
                        continue;
                    };
                    if seen.iter().any(|k| k == kernel) {
                        continue;
                    }
                    seen.push(kernel.to_string());
                    if let (Some(s), Some(n)) = (rate(kernel, true), rate(kernel, false)) {
                        out.push((kernel.to_string(), n / s));
                    }
                }
                out
            };
            let cur_simd = simd(current);
            for (kernel, base_ratio) in simd(baseline) {
                let name = format!("exec.simd_speedup[{kernel}]");
                match cur_simd.iter().find(|(k, _)| *k == kernel) {
                    Some(&(_, cur_ratio)) => metrics.push(MetricCmp {
                        name,
                        baseline: base_ratio,
                        current: cur_ratio,
                        log_scale: false,
                    }),
                    None => skipped.push(name),
                }
            }
        }
        "serve" => {
            let pairs = [
                // Setup amortization is gated on its order of magnitude:
                // the cached-lookup denominator is single-digit µs, so the
                // linear ratio swings several x between identical runs.
                ("serve.setup.speedup", &["setup", "speedup"][..], true),
                (
                    "serve.batched_vs_unbatched_throughput",
                    &["batched_vs_unbatched_throughput"][..],
                    false,
                ),
                // Ragged cross-tenant fusion vs per-shape compilation on the
                // mixed-length scenario. Absent from baselines older than the
                // shape-polymorphic runtime; those skip the pair.
                (
                    "serve.mixed_length.ragged_vs_per_shape",
                    &["mixed_length", "ragged_vs_per_shape_throughput"][..],
                    false,
                ),
                // Steady-state decode throughput win from fusing concurrent
                // session steps into one wavefront launch per tick. Absent
                // from baselines older than stateful sessions; those skip
                // the pair.
                (
                    "serve.sessions.continuous_vs_solo",
                    &["sessions", "continuous_vs_solo_tokens_per_sec"][..],
                    false,
                ),
            ];
            for (name, path, log_scale) in pairs {
                let dig = |mut v: &Value| -> Option<f64> {
                    for k in path {
                        v = &v[*k];
                    }
                    v.as_f64().filter(|x| *x > 0.0)
                };
                match (dig(baseline), dig(current)) {
                    (Some(b), Some(c)) => metrics.push(MetricCmp {
                        name: name.to_string(),
                        baseline: b,
                        current: c,
                        log_scale,
                    }),
                    (Some(_), None) => skipped.push(name.to_string()),
                    _ => {}
                }
            }
        }
        other => return Err(format!("unknown bench kind {other:?}")),
    }
    Ok((metrics, skipped))
}

/// Runs the gate over one report pair. Returns the regressed metrics.
fn compare(baseline: &Value, current: &Value, threshold: f64) -> Result<Vec<MetricCmp>, String> {
    let (metrics, skipped) = extract(baseline, current)?;
    if metrics.is_empty() {
        return Err("no comparable metrics between baseline and current".to_string());
    }
    let mut regressed = Vec::new();
    for m in &metrics {
        let change = m.change();
        let verdict = if change < -threshold {
            regressed.push(m.clone());
            "REGRESSED"
        } else if change > threshold {
            "improved"
        } else {
            "ok"
        };
        println!(
            "  {:58} baseline {:9.3}  current {:9.3}  {:+6.1}%{} {}",
            m.name,
            m.baseline,
            m.current,
            change * 100.0,
            if m.log_scale { " (log10)" } else { "" },
            verdict
        );
    }
    for name in &skipped {
        println!("  {name:58} (missing from current run; skipped)");
    }
    Ok(regressed)
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_compare: cannot read {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("bench_compare: bad JSON {path}: {e}"))
}

/// Gate self-test: the injected regression must trip the gate and the
/// unchanged report must pass — proving the gate can actually fail.
fn self_test() -> bool {
    let parse =
        |s: &str| -> Value { serde_json::from_str(s).expect("self-test fixture is valid JSON") };
    let exec_base = parse(
        r#"{"bench": "exec", "exec": [
            {"workload": "stacked_rnn d=8 l=64", "threads": 8, "speedup": 3.8},
            {"workload": "attention tiny", "threads": 4, "speedup": 2.5}],
            "roofline": [
            {"kernel": "gemm 256", "mode": "scalar", "rate": 4.0},
            {"kernel": "gemm 256", "mode": "avx2", "rate": 6.0},
            {"kernel": "tanh", "mode": "scalar", "rate": 1.0},
            {"kernel": "tanh", "mode": "avx2", "rate": 10.0}]}"#,
    );
    // ~21% regression on one row: must be detected at threshold 0.15.
    let exec_regressed = parse(
        r#"{"bench": "exec", "exec": [
            {"workload": "stacked_rnn d=8 l=64", "threads": 8, "speedup": 3.0},
            {"workload": "attention tiny", "threads": 4, "speedup": 2.5}],
            "roofline": [
            {"kernel": "gemm 256", "mode": "scalar", "rate": 4.0},
            {"kernel": "gemm 256", "mode": "avx2", "rate": 6.0},
            {"kernel": "tanh", "mode": "scalar", "rate": 1.0},
            {"kernel": "tanh", "mode": "avx2", "rate": 10.0}]}"#,
    );
    // Kernel-level SIMD collapse (10x -> 5x tanh) with the end-to-end rows
    // unchanged: the per-kernel gate must catch what the aggregate hides.
    let exec_kernel_regressed = parse(
        r#"{"bench": "exec", "exec": [
            {"workload": "stacked_rnn d=8 l=64", "threads": 8, "speedup": 3.8},
            {"workload": "attention tiny", "threads": 4, "speedup": 2.5}],
            "roofline": [
            {"kernel": "gemm 256", "mode": "scalar", "rate": 4.0},
            {"kernel": "gemm 256", "mode": "avx2", "rate": 6.0},
            {"kernel": "tanh", "mode": "scalar", "rate": 1.0},
            {"kernel": "tanh", "mode": "avx2", "rate": 5.0}]}"#,
    );
    // Scalar-only host: no native roofline rows. The kernels must be
    // skipped (host difference, not a regression).
    let exec_scalar_host = parse(
        r#"{"bench": "exec", "exec": [
            {"workload": "stacked_rnn d=8 l=64", "threads": 8, "speedup": 3.8},
            {"workload": "attention tiny", "threads": 4, "speedup": 2.5}],
            "roofline": [
            {"kernel": "gemm 256", "mode": "scalar", "rate": 4.0},
            {"kernel": "tanh", "mode": "scalar", "rate": 1.0}]}"#,
    );
    let serve_base = parse(
        r#"{"bench": "serve", "setup": {"speedup": 300.0},
            "batched_vs_unbatched_throughput": 2.0}"#,
    );
    // 20% regression on the batching headline: must be detected.
    let serve_regressed = parse(
        r#"{"bench": "serve", "setup": {"speedup": 300.0},
            "batched_vs_unbatched_throughput": 1.6}"#,
    );
    // Within-noise dip: must pass. The setup speedup is compared in log
    // space — 300 -> 200 is a -33% linear drop but only a -7% exponent
    // change, which is exactly why the jitter-prone metric is gated on
    // its order of magnitude.
    let serve_noisy = parse(
        r#"{"bench": "serve", "setup": {"speedup": 200.0},
            "batched_vs_unbatched_throughput": 1.9}"#,
    );
    // Amortization collapse (300x -> 2x): must trip even the log gate.
    let serve_collapsed = parse(
        r#"{"bench": "serve", "setup": {"speedup": 2.0},
            "batched_vs_unbatched_throughput": 2.0}"#,
    );
    // Report with the mixed-length ragged-fusion headline. Compared
    // against `serve_base` (which predates the field) the pair must be
    // skipped, not treated as a regression or an error.
    let serve_ragged = parse(
        r#"{"bench": "serve", "setup": {"speedup": 300.0},
            "batched_vs_unbatched_throughput": 2.0,
            "mixed_length": {"ragged_vs_per_shape_throughput": 2.6}}"#,
    );
    // 35% collapse of the ragged-fusion ratio: must be detected.
    let serve_ragged_regressed = parse(
        r#"{"bench": "serve", "setup": {"speedup": 300.0},
            "batched_vs_unbatched_throughput": 2.0,
            "mixed_length": {"ragged_vs_per_shape_throughput": 1.7}}"#,
    );

    let mut ok = true;
    let mut check = |label: &str, want_regressions: bool, got: Result<Vec<MetricCmp>, String>| {
        let pass = match &got {
            Ok(regs) => regs.is_empty() != want_regressions,
            Err(_) => false,
        };
        println!(
            "self-test {:40} {}",
            label,
            if pass { "ok" } else { "FAILED" }
        );
        if !pass {
            ok = false;
        }
    };

    println!("exec: unchanged report");
    let r = compare(&exec_base, &exec_base, 0.15);
    check("exec unchanged passes", false, r);
    println!("exec: 21% speedup regression injected");
    let r = compare(&exec_base, &exec_regressed, 0.15);
    check("exec 21% regression detected", true, r);
    println!("exec: per-kernel SIMD speedup collapse injected");
    let r = compare(&exec_base, &exec_kernel_regressed, 0.15);
    check("exec kernel simd collapse detected", true, r);
    println!("exec: scalar-only host (no native roofline rows)");
    let r = compare(&exec_base, &exec_scalar_host, 0.15);
    check("exec scalar host kernels skipped", false, r);
    println!("serve: unchanged report");
    let r = compare(&serve_base, &serve_base, 0.15);
    check("serve unchanged passes", false, r);
    println!("serve: 20% batching regression injected");
    let r = compare(&serve_base, &serve_regressed, 0.15);
    check("serve 20% regression detected", true, r);
    println!("serve: noise-scale dip within threshold");
    let r = compare(&serve_base, &serve_noisy, 0.15);
    check("serve noise-scale dip tolerated", false, r);
    println!("serve: setup amortization collapse");
    let r = compare(&serve_base, &serve_collapsed, 0.15);
    check("serve amortization collapse detected", true, r);
    println!("serve: baseline predates mixed-length ratio");
    let r = compare(&serve_base, &serve_ragged, 0.15);
    check("serve old baseline skips ragged pair", false, r);
    println!("serve: ragged fusion collapse injected");
    let r = compare(&serve_ragged, &serve_ragged_regressed, 0.15);
    check("serve ragged collapse detected", true, r);
    println!("empty intersection");
    let empty = parse(r#"{"bench": "exec", "exec": []}"#);
    let pass = compare(&empty, &empty, 0.15).is_err();
    println!(
        "self-test {:40} {}",
        "empty intersection rejected",
        if pass { "ok" } else { "FAILED" }
    );
    ok && pass
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--self-test") {
        if self_test() {
            println!("bench_compare self-test: all checks passed");
            std::process::exit(0);
        }
        eprintln!("bench_compare self-test: FAILED");
        std::process::exit(1);
    }

    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let baseline_path = flag("--baseline").unwrap_or_else(|| {
        eprintln!("usage: bench_compare --baseline BASE.json --current CUR.json [--threshold 0.15] | --self-test");
        std::process::exit(2);
    });
    let current_path = flag("--current").unwrap_or_else(|| {
        eprintln!("usage: bench_compare --baseline BASE.json --current CUR.json [--threshold 0.15] | --self-test");
        std::process::exit(2);
    });
    let threshold: f64 = flag("--threshold")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.15);

    println!(
        "bench_compare: {baseline_path} vs {current_path} (threshold {:.0}%)",
        threshold * 100.0
    );
    let baseline = load(&baseline_path);
    let current = load(&current_path);
    match compare(&baseline, &current, threshold) {
        Ok(regressed) if regressed.is_empty() => {
            println!("gate: PASS");
        }
        Ok(regressed) => {
            eprintln!(
                "gate: FAIL — {} metric(s) regressed more than {:.0}%:",
                regressed.len(),
                threshold * 100.0
            );
            for m in regressed {
                eprintln!(
                    "  {}: {:.3} -> {:.3} ({:+.1}%)",
                    m.name,
                    m.baseline,
                    m.current,
                    m.change() * 100.0
                );
            }
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("gate: FAIL — {e}");
            std::process::exit(1);
        }
    }
}
