//! End-to-end observability artifact generator.
//!
//! Runs one workload through the full stack — compile pipeline, wavefront
//! executor, and the simulator strategy sweep — with the `ft-probe`
//! collector enabled, then writes:
//!
//! * `trace.json` — a Chrome/Perfetto trace (open in
//!   <https://ui.perfetto.dev>): pipeline-pass spans, per-launch-group and
//!   per-wavefront-step executor spans with worker busy/idle tracks, and
//!   per-kernel roofline events on the simulated-time process track,
//! * `metrics.json` — the flat counter/span-aggregate report,
//! * one JSON line per simulated strategy on stdout (shared
//!   [`ft_probe::json_lines`] framing).
//!
//! Usage:
//!
//! ```text
//! FT_TRACE=1 cargo run --release -p ft-bench --bin trace_report -- stacked_lstm [out_dir]
//! ```
//!
//! The binary is the trace tool, so it also enables the probe itself —
//! `FT_TRACE=1` is honored but not required. Workloads: `stacked_lstm`,
//! `dilated`, `grid`, `b2b`, `attention`, `bigbird`, `retnet`, or `all`.
//! Shapes are the reduced `tiny()` configurations so the CPU execution
//! stays fast; simulator counters still reflect the full strategy sweep.

use std::collections::HashMap;

use ft_backend::execute;
use ft_core::adt::FractalTensor;
use ft_core::{BufferId, Program};
use ft_passes::compile;
use ft_probe::{chrome_trace, MetricsReport};
use ft_workloads::{attention, b2b, bigbird, dilated, grid, lstm, retnet};
use ft_workloads::{SimReport, Strategy};

const WORKLOADS: &[&str] = &[
    "stacked_lstm",
    "dilated",
    "grid",
    "b2b",
    "attention",
    "bigbird",
    "retnet",
    "serve",
];
const THREADS: usize = 4;
const SEED: u64 = 7;

fn main() {
    let mut args = std::env::args().skip(1);
    let workload = args.next().unwrap_or_else(|| "stacked_lstm".to_string());
    let out_dir = args.next().unwrap_or_else(|| "target/trace".to_string());

    let names: Vec<&str> = if workload == "all" {
        WORKLOADS.to_vec()
    } else if WORKLOADS.contains(&workload.as_str()) {
        vec![workload.as_str()]
    } else {
        eprintln!(
            "unknown workload '{workload}'; expected one of {} or 'all'",
            WORKLOADS.join(", ")
        );
        std::process::exit(2);
    };

    // This binary *is* the trace tool: enable the probe regardless of
    // FT_TRACE, and start from a drained collector.
    ft_probe::enable();
    let _ = ft_probe::take();

    let mut sim_rows = Vec::new();
    for name in &names {
        if let Err(e) = run_workload(name, &mut sim_rows) {
            eprintln!("workload '{name}' failed: {e}");
            std::process::exit(1);
        }
    }

    let snap = ft_probe::take();
    let trace = chrome_trace(&snap);
    let mut report = MetricsReport::from_snapshot(&snap)
        .with_meta("workload", workload.as_str())
        .with_meta("threads", THREADS as u64)
        .with_meta("shape", "tiny");

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {out_dir}: {e}");
        std::process::exit(1);
    }
    let trace_path = format!("{out_dir}/trace.json");
    let metrics_path = format!("{out_dir}/metrics.json");
    report = report.with_meta("trace_file", trace_path.as_str());
    let trace_text = serde_json::to_string_pretty(&trace).expect("serialize trace");
    let metrics_text = serde_json::to_string_pretty(&report.to_json()).expect("serialize metrics");
    let wrote = std::fs::write(&trace_path, trace_text)
        .and_then(|()| std::fs::write(&metrics_path, metrics_text));
    if let Err(e) = wrote {
        eprintln!("cannot write artifacts under {out_dir}: {e}");
        std::process::exit(1);
    }

    print!("{}", ft_probe::json_lines(sim_rows));
    eprintln!(
        "wrote {trace_path} ({} events) and {metrics_path} ({} counters, {} span names)",
        snap.events.len(),
        report.counters.len(),
        report.spans.len()
    );
    let fusion = |k: &str| report.counters.get(k).copied().unwrap_or(0.0);
    eprintln!(
        "fusion: applied {} rejected {} tmp elems saved {}",
        fusion("passes.fusion_applied"),
        fusion("passes.fusion_rejected"),
        fusion("passes.fusion_tmp_elems_saved"),
    );
}

/// Compiles, executes, and strategy-sweeps one workload under the probe.
fn run_workload(name: &str, sim_rows: &mut Vec<serde_json::Value>) -> Result<(), String> {
    match name {
        "stacked_lstm" => {
            let s = lstm::LstmShape::tiny();
            trace_one(name, lstm::program(s), lstm::inputs(s, SEED), |strat| {
                Some(lstm::simulate(s, strat))
            })
        }
        "dilated" => {
            let s = dilated::DilatedShape::tiny();
            trace_one(
                name,
                dilated::program(s),
                dilated::inputs(s, SEED),
                |strat| dilated::simulate(s, strat),
            )
        }
        "grid" => {
            let s = grid::GridShape::tiny();
            trace_one(name, grid::program(s), grid::inputs(s, SEED), |strat| {
                grid::simulate(s, strat)
            })
        }
        "b2b" => {
            let s = b2b::B2bShape::tiny();
            trace_one(name, b2b::program(s), b2b::inputs(s, SEED), |strat| {
                b2b::simulate(s, strat)
            })
        }
        "attention" => {
            let s = attention::AttnShape::tiny();
            trace_one(
                name,
                attention::program(s),
                attention::inputs(s, SEED),
                |strat| attention::simulate(s, strat),
            )
        }
        "bigbird" => {
            let s = bigbird::BigBirdShape::tiny();
            trace_one(
                name,
                bigbird::program(s),
                bigbird::inputs(s, SEED),
                |strat| bigbird::simulate(s, strat),
            )
        }
        "retnet" => {
            let s = retnet::RetNetShape::tiny();
            trace_one(name, retnet::program(s), retnet::inputs(s, SEED), |strat| {
                retnet::simulate(s, strat)
            })
        }
        "serve" => trace_serve().map(|()| Vec::new()),
        other => Err(format!("unhandled workload '{other}'")),
    }
    .map(|rows| sim_rows.extend(rows))
}

/// A short serving session under the probe: concurrent same-plan requests
/// through one runtime, so the `serve.*` queue-depth / batch-size /
/// latency / setup counters (plus `passes.plan_cache_*`) land in
/// metrics.json next to the executor's.
fn trace_serve() -> Result<(), String> {
    use ft_core::builders::stacked_rnn_program;
    use ft_serve::{Request, Runtime, ServeConfig};
    use ft_tensor::Tensor;
    use std::sync::Arc;

    let mut wspan = ft_probe::span("trace", "workload");
    wspan.field("workload", "serve");

    let (n, d, l, h) = (1usize, 2, 32, 16);
    let program = Arc::new(stacked_rnn_program(n, d, l, h));
    let ws = FractalTensor::from_flat(&Tensor::randn(&[d, h, h], SEED).mul_scalar(0.2), 1)
        .map_err(|e| format!("weights: {e}"))?;
    let rt = Runtime::try_new(ServeConfig {
        threads: THREADS,
        max_batch: 4,
        ..ServeConfig::default()
    })
    .map_err(|e| format!("serve runtime: {e}"))?;
    let mut tickets = Vec::new();
    for round in 0..8u64 {
        let xss = FractalTensor::from_flat(&Tensor::randn(&[n, l, 1, h], SEED + round), 2)
            .map_err(|e| format!("inputs: {e}"))?;
        let mut inputs = HashMap::new();
        inputs.insert(BufferId(0), xss);
        inputs.insert(BufferId(1), ws.clone());
        tickets.push(
            rt.submit_wait(Request::new(Arc::clone(&program), inputs))
                .map_err(|e| format!("submit: {e}"))?,
        );
    }
    for t in tickets {
        t.wait().map_err(|e| format!("serve: {e}"))?;
    }
    let stats = rt.stats();
    wspan.field("completed", stats.completed);
    wspan.field("batches", stats.batches);
    Ok(())
}

/// Compile + execute + simulate one workload; returns the per-strategy
/// JSON rows for stdout.
fn trace_one(
    name: &str,
    program: Program,
    inputs: HashMap<BufferId, FractalTensor>,
    simulate: impl Fn(Strategy) -> Option<SimReport>,
) -> Result<Vec<serde_json::Value>, String> {
    let mut wspan = ft_probe::span("trace", "workload");
    wspan.field("workload", name);

    let compiled = compile(&program).map_err(|e| format!("compile: {e}"))?;
    // Legality check between compile and execute; its span and `verify.*`
    // counters land in trace.json / metrics.json alongside the executor's.
    let vreport = ft_verify::verify(&compiled).map_err(|e| format!("verify: {e}"))?;
    wspan.field("verify_maps", vreport.maps);
    wspan.field("verify_points", vreport.points);
    let outputs = execute(&compiled, &inputs, THREADS).map_err(|e| format!("execute: {e}"))?;
    wspan.field("outputs", outputs.len());

    let mut rows = Vec::new();
    for strat in Strategy::ALL {
        let mut sspan = ft_probe::span("trace", "simulate");
        sspan.field("workload", name);
        sspan.field("strategy", strat.short());
        if let Some(r) = simulate(strat) {
            rows.push(serde_json::json!({
                "workload": name,
                "strategy": strat.short(),
                "ms": r.ms,
                "dram_gb": r.traffic.dram_gb(),
                "l2_gb": r.traffic.l2_gb(),
                "l1_gb": r.traffic.l1_gb(),
                "kernels": r.kernels,
            }));
        }
    }
    Ok(rows)
}
