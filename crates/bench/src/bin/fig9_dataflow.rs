//! Figure 9: the dataflow structure of the three RNN variants — which
//! cells can execute in parallel (the paper draws them in matching
//! colours; we print each cell's wavefront step number).
//!
//! For each variant the map is derived from the *actual compiled
//! schedule*: a cell's number is the wavefront step its iteration point
//! lands on after the unimodular transform, so equal numbers = concurrent
//! execution.
//!
//! Usage: `cargo run -p ft-bench --bin fig9_dataflow`

use ft_passes::compile;
use ft_workloads::{dilated, grid, lstm};

/// Maps an original iteration point to its wavefront step.
fn step_of(r: &ft_passes::Reordering, t: &[i64]) -> i64 {
    if r.sequential_dims == 0 {
        return 0;
    }
    r.hyperplane.iter().zip(t.iter()).map(|(a, x)| a * x).sum()
}

fn main() {
    // (a) Stacked RNN/LSTM: the (layer, step) anti-diagonal wavefront.
    let s = lstm::LstmShape {
        batch: 1,
        hidden: 4,
        depth: 6,
        seq: 10,
    };
    let c = compile(&lstm::program(s)).expect("lstm compiles");
    let r = &c.groups[0].reordering;
    println!("Figure 9(a): stacked RNN — wavefront step of cell (layer, time)");
    println!("(equal numbers run concurrently; the anti-diagonals of the paper's colouring)\n");
    print!("        ");
    for t in 0..s.seq {
        print!("{t:>4}");
    }
    println!("   <- time");
    for d in 0..s.depth as i64 {
        print!("layer {d}:");
        for l in 0..s.seq as i64 {
            print!("{:>4}", step_of(r, &[0, d, l]));
        }
        println!();
    }

    // (b) Dilated RNN: all layers advance together each time step (the
    // compiled group pipelines the whole stack through one point).
    let s = dilated::DilatedShape {
        batch: 1,
        hidden: 4,
        depth: 4,
        seq: 10,
    };
    let c = compile(&dilated::program(s)).expect("dilated compiles");
    let r = &c.groups[0].reordering;
    println!("\nFigure 9(b): dilated RNN — wavefront step of cell (layer, time)");
    println!("(all layers share a step: the stack pipelines through each time step)\n");
    print!("        ");
    for t in 0..s.seq {
        print!("{t:>4}");
    }
    println!("   <- time");
    for d in 0..s.depth {
        print!("layer {d}:");
        for l in 0..s.seq as i64 {
            print!("{:>4}", step_of(r, &[0, l]));
        }
        println!("   (dilation {})", s.dilation(d));
    }

    // (c) Grid RNN: the 3-D wavefront over (layer, row, col); print one
    // layer's grid.
    let s = grid::GridShape {
        batch: 1,
        hidden: 4,
        depth: 3,
        rows: 6,
        cols: 8,
    };
    let c = compile(&grid::program(s)).expect("grid compiles");
    let r = &c.groups[0].reordering;
    println!("\nFigure 9(c): grid RNN — wavefront step of cell (row, col) in layers 0 and 2");
    for layer in [0i64, 2] {
        println!("\n  layer {layer}:");
        for i in 0..s.rows as i64 {
            print!("   ");
            for j in 0..s.cols as i64 {
                print!("{:>4}", step_of(r, &[0, layer, i, j]));
            }
            println!();
        }
    }
    println!(
        "\ntotal grid wavefront steps: {} (= depth + rows + cols - 2)",
        c.groups[0].wavefront_steps()
    );
}
