//! Executor benchmark: the arena-backed worker-pool executor (guard off
//! and guard on) vs the pre-pool per-step-spawn reference executor, plus
//! the packed GEMM kernels. Each row also records the arena pool's reuse
//! counters so regressions in the zero-copy path (leaf clones, arena
//! growth after warm-up) show up next to the timings.
//!
//! ```text
//! cargo run --release -p ft-bench --bin bench_exec            # full run
//! cargo run --release -p ft-bench --bin bench_exec -- --smoke # RNN only, 2 reps
//! cargo run --release -p ft-bench --bin bench_exec -- --json  # print JSON
//! cargo run --release -p ft-bench --bin bench_exec -- --out results/BENCH_exec.json
//! ```
//!
//! Workloads: the stacked RNN from the paper's §2 running example
//! (depth 8, seq 64 — the acceptance workload), plus tiny attention and
//! BigBird programs for schedule diversity. Each executor runs at thread
//! counts 1/2/4/8; wall-clock is the mean over `reps` after one warm-up.

use std::collections::HashMap;
use std::time::Instant;

use ft_backend::{execute_reference, Executor};
use ft_core::builders::stacked_rnn_program;
use ft_core::{BufferId, FractalTensor};
use ft_passes::{compile, CompiledProgram};
use ft_tensor::Tensor;
use ft_workloads::{attention, bigbird};
use serde_json::{json, Value};

const THREADS: &[usize] = &[1, 2, 4, 8];

struct ExecRow {
    workload: String,
    threads: usize,
    pool_ms: f64,
    guard_ms: f64,
    reference_ms: f64,
    arena_reused: u64,
    arena_grows: u64,
    leaf_clones: u64,
}

struct GemmRow {
    kernel: String,
    shape: [usize; 3],
    ms: f64,
}

/// One roofline measurement: a kernel pinned to a SIMD mode, with its
/// achieved rate in GFLOP/s (compute kernels) or GB/s (streaming kernels).
struct RooflineRow {
    kernel: String,
    mode: String,
    ms: f64,
    rate: f64,
    unit: &'static str,
}

struct Workload {
    name: String,
    compiled: CompiledProgram,
    inputs: HashMap<BufferId, FractalTensor>,
}

fn stacked_rnn() -> Workload {
    let (n, d, l, h) = (4usize, 8usize, 64usize, 32usize);
    let program = stacked_rnn_program(n, d, l, h);
    let xss = FractalTensor::from_flat(&Tensor::randn(&[n, l, 1, h], 7), 2).unwrap();
    let ws = FractalTensor::from_flat(&Tensor::randn(&[d, h, h], 8).mul_scalar(0.2), 1).unwrap();
    let mut inputs = HashMap::new();
    inputs.insert(BufferId(0), xss);
    inputs.insert(BufferId(1), ws);
    Workload {
        name: format!("stacked_rnn d={d} l={l}"),
        compiled: compile(&program).unwrap(),
        inputs,
    }
}

fn attention_tiny() -> Workload {
    let s = attention::AttnShape::tiny();
    let program = attention::program(s);
    Workload {
        name: "attention tiny".into(),
        compiled: compile(&program).unwrap(),
        inputs: attention::inputs(s, 11),
    }
}

fn bigbird_tiny() -> Workload {
    let s = bigbird::BigBirdShape::tiny();
    let program = bigbird::program(s);
    Workload {
        name: "bigbird tiny".into(),
        compiled: compile(&program).unwrap(),
        inputs: bigbird::inputs(s, 13),
    }
}

fn time_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f(); // Warm-up.
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e3 / reps as f64
}

fn bench_workload(w: &Workload, reps: usize, rows: &mut Vec<ExecRow>) {
    for &threads in THREADS {
        // One executor per thread count so the warm-up primes the arena
        // pool and the timed reps run allocation-free — the steady state
        // a resident runtime sees.
        let exec = Executor::new().threads(threads);
        let pool_ms = time_ms(reps, || {
            std::hint::black_box(exec.run(&w.compiled, &w.inputs).unwrap());
        });
        let stats = exec.arena_stats();
        let guarded = Executor::new().threads(threads).guard(true);
        let guard_ms = time_ms(reps, || {
            std::hint::black_box(guarded.run(&w.compiled, &w.inputs).unwrap());
        });
        let reference_ms = time_ms(reps, || {
            std::hint::black_box(execute_reference(&w.compiled, &w.inputs, threads).unwrap());
        });
        eprintln!(
            "{:24} threads={threads}  arena {pool_ms:8.3} ms   guard {guard_ms:8.3} ms \
             ({:+5.1}%)   reference {reference_ms:8.3} ms   ({:.2}x)",
            w.name,
            (guard_ms / pool_ms - 1.0) * 100.0,
            reference_ms / pool_ms
        );
        rows.push(ExecRow {
            workload: w.name.clone(),
            threads,
            pool_ms,
            guard_ms,
            reference_ms,
            arena_reused: stats.reused,
            arena_grows: stats.grows,
            leaf_clones: stats.leaf_clones,
        });
    }
}

fn bench_gemm(reps: usize, rows: &mut Vec<GemmRow>) {
    let (m, k, n) = (512usize, 512usize, 512usize);
    let a = Tensor::randn(&[m, k], 1);
    let b = Tensor::randn(&[k, n], 2);
    let bt = Tensor::randn(&[n, k], 3);
    let ms = time_ms(reps, || {
        std::hint::black_box(a.matmul(&b).unwrap());
    });
    eprintln!("matmul                   {m}x{k}x{n}  {ms:8.3} ms");
    rows.push(GemmRow {
        kernel: "matmul".into(),
        shape: [m, k, n],
        ms,
    });
    let ms = time_ms(reps, || {
        std::hint::black_box(a.matmul_transb(&bt).unwrap());
    });
    eprintln!("matmul_transb            {m}x{k}x{n}  {ms:8.3} ms");
    rows.push(GemmRow {
        kernel: "matmul_transb".into(),
        shape: [m, k, n],
        ms,
    });
    let pool = ft_pool::WorkerPool::new(ft_pool::default_threads());
    let ms = time_ms(reps, || {
        std::hint::black_box(a.matmul_mt(&b, &pool).unwrap());
    });
    eprintln!(
        "matmul_mt ({}T)           {m}x{k}x{n}  {ms:8.3} ms",
        pool.threads()
    );
    rows.push(GemmRow {
        kernel: format!("matmul_mt t={}", pool.threads()),
        shape: [m, k, n],
        ms,
    });
}

/// Per-kernel roofline: times each ft-simd-routed kernel under scalar and
/// the detected native mode, reporting GFLOP/s for the GEMMs and GB/s for
/// the streaming elementwise/transcendental kernels. The scalar rows are
/// the baseline the SIMD speedup is read against.
fn bench_roofline(reps: usize, rows: &mut Vec<RooflineRow>) {
    use ft_tensor::slices;

    let native = ft_simd::mode();
    let modes: &[ft_simd::Mode] = if native == ft_simd::Mode::Scalar {
        &[ft_simd::Mode::Scalar]
    } else {
        &[ft_simd::Mode::Scalar, native]
    };

    let (m, k, n) = (256usize, 256, 256);
    let a = Tensor::randn(&[m, k], 21).to_vec();
    let b = Tensor::randn(&[k, n], 22).to_vec();
    let bias = Tensor::randn(&[m, n], 23).to_vec();
    let mut c = vec![0.0f32; m * n];
    let gemm_flops = 2.0 * (m * k * n) as f64;

    let len = 1usize << 20;
    let x = Tensor::randn(&[len], 24).to_vec();
    let y = Tensor::randn(&[len], 25).to_vec();
    let mut z = vec![0.0f32; len];

    for &mode in modes {
        ft_simd::set_mode(mode);
        let mode_name = format!("{mode:?}").to_lowercase();
        let mut push = |kernel: &str, ms: f64, work: f64, unit: &'static str| {
            let rate = work / (ms * 1e6);
            eprintln!("roofline {kernel:18} [{mode_name:6}]  {ms:8.3} ms  {rate:8.2} {unit}");
            rows.push(RooflineRow {
                kernel: kernel.into(),
                mode: mode_name.clone(),
                ms,
                rate,
                unit,
            });
        };

        let ms = time_ms(reps, || slices::matmul(&a, &b, m, k, n, &mut c));
        push("gemm", ms, gemm_flops, "GFLOP/s");
        let ms = time_ms(reps, || {
            slices::matmul_epi(
                &a,
                &b,
                m,
                k,
                n,
                &mut c,
                &[ft_simd::EpiOp::Add, ft_simd::EpiOp::Tanh],
                &[&bias],
            )
        });
        push("gemm_epi<add,tanh>", ms, gemm_flops, "GFLOP/s");

        // Streaming kernels: bytes moved = (reads + writes) * 4.
        let ms = time_ms(reps, || slices::add_into(&x, &y, &mut z));
        push("add", ms, (3 * 4 * len) as f64, "GB/s");
        let ms = time_ms(reps, || slices::exp_into(&x, &mut z));
        push("exp", ms, (2 * 4 * len) as f64, "GB/s");
        let ms = time_ms(reps, || slices::sigmoid_into(&x, &mut z));
        push("sigmoid", ms, (2 * 4 * len) as f64, "GB/s");
        let ms = time_ms(reps, || slices::tanh_into(&x, &mut z));
        push("tanh", ms, (2 * 4 * len) as f64, "GB/s");
        let ms = time_ms(reps, || slices::softmax_rows(&x, len / 1024, 1024, &mut z));
        push("softmax_rows", ms, (2 * 4 * len) as f64, "GB/s");
    }
    ft_simd::set_mode(native);

    // The headline per-kernel SIMD speedup, scalar -> native.
    if modes.len() == 2 {
        let half = rows.len() / 2;
        for i in 0..half {
            let (s, v) = (&rows[i], &rows[half + i]);
            if s.kernel == v.kernel {
                eprintln!(
                    "roofline {:18} {} speedup {:.2}x over scalar",
                    s.kernel,
                    v.mode,
                    s.ms / v.ms
                );
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args.iter().any(|a| a == "--json");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let reps = if smoke { 2 } else { 5 };

    let mut workloads = vec![stacked_rnn()];
    if !smoke {
        workloads.push(attention_tiny());
        workloads.push(bigbird_tiny());
    }

    let mut exec_rows = Vec::new();
    for w in &workloads {
        bench_workload(w, reps, &mut exec_rows);
    }
    let mut gemm_rows = Vec::new();
    bench_gemm(reps, &mut gemm_rows);
    let mut roofline_rows = Vec::new();
    bench_roofline(reps, &mut roofline_rows);

    let exec: Vec<Value> = exec_rows
        .iter()
        .map(|r| {
            json!({
                "workload": r.workload.as_str(),
                "threads": r.threads as u64,
                "pool_ms": r.pool_ms,
                "guard_ms": r.guard_ms,
                "guard_overhead": r.guard_ms / r.pool_ms - 1.0,
                "reference_ms": r.reference_ms,
                "speedup": r.reference_ms / r.pool_ms,
                "arena_reused": r.arena_reused,
                "arena_grows": r.arena_grows,
                "leaf_clones": r.leaf_clones,
            })
        })
        .collect();
    let gemm: Vec<Value> = gemm_rows
        .iter()
        .map(|r| {
            json!({
                "kernel": r.kernel.as_str(),
                "shape": &[r.shape[0] as u64, r.shape[1] as u64, r.shape[2] as u64][..],
                "ms": r.ms,
            })
        })
        .collect();
    let roofline: Vec<Value> = roofline_rows
        .iter()
        .map(|r| {
            json!({
                "kernel": r.kernel.as_str(),
                "mode": r.mode.as_str(),
                "ms": r.ms,
                "rate": r.rate,
                "unit": r.unit,
            })
        })
        .collect();
    let report = json!({
        "bench": "exec",
        "smoke": smoke,
        "reps": reps as u64,
        "simd_mode": format!("{:?}", ft_simd::mode()).to_lowercase(),
        "host_parallelism": std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1),
        "exec": exec,
        "gemm": gemm,
        "roofline": roofline,
    });
    let rendered = serde_json::to_string_pretty(&report).unwrap();
    if let Some(path) = out {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).unwrap();
            }
        }
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("wrote {path}");
    }
    if json {
        println!("{rendered}");
    }
}
