//! Ablation study over the compiler's design choices: what each pipeline
//! stage individually buys on the stacked-LSTM workload (and the tile
//! library's shape selection). These isolate the contributions the paper
//! attributes to coarsening (§5.1), reordering (§5.2), and access
//! materialization (§5.3).
//!
//! Usage: `cargo run --release -p ft-bench --bin ablation`

use ft_sim::{GpuConfig, Region, SimMachine, TileConfig};
use ft_workloads::lstm::{simulate, LstmShape};
use ft_workloads::Strategy;

fn main() {
    let shape = LstmShape::paper();
    println!("ablation workload: stacked LSTM, batch 256, hidden 256, depth 32, seq 64\n");

    // Ablation 1: coarsening (fused wavefront) vs per-cell launch structure.
    // BlockTile is exactly "reordering without coarsening": each cell is
    // optimally tiled, but every cell is its own launch.
    println!("== ablation 1: width-wise coarsening ==");
    let without = simulate(shape, Strategy::BlockTile);
    let with = simulate(shape, Strategy::FractalTensor);
    println!(
        "  without coarsening (per-cell kernels): {:>10.2} ms, {:>7} launches",
        without.ms, without.kernels
    );
    println!(
        "  with coarsening (wavefront groups):    {:>10.2} ms, {:>7} launches",
        with.ms, with.kernels
    );
    println!(
        "  -> {:.1}x from fusing {} cells into {} wavefront steps\n",
        without.ms / with.ms,
        shape.depth * shape.seq,
        shape.depth + shape.seq - 1
    );

    // Ablation 2: reordering (the wavefront itself). Without the unimodular
    // transform, the fused group would still have to run its (layer, step)
    // loops sequentially — equivalent to one fused kernel per cell in
    // *sequence*, i.e. the same launch count as FT but with wavefront width
    // 1. We model that by scaling FT's per-step width to 1.
    println!("== ablation 2: access reordering (the wavefront transform) ==");
    let steps_seq = (shape.depth * shape.seq) as f64;
    let steps_wave = (shape.depth + shape.seq - 1) as f64;
    println!(
        "  sequential (no transform): {:>7.0} dependent steps",
        steps_seq
    );
    println!(
        "  wavefront  (hyperplane):   {:>7.0} dependent steps",
        steps_wave
    );
    println!(
        "  -> {:.1}x shorter critical path; measured end-to-end gain is \
         bounded by compute (see ablation 1)\n",
        steps_seq / steps_wave
    );

    // Ablation 3: data-reuse staging (weights resident vs re-fetched).
    println!("== ablation 3: reuse staging (weight-stationary wavefront) ==");
    let cudnn_like = simulate(shape, Strategy::Handcrafted);
    println!(
        "  re-fetch weights per step (cuDNN-like): {:>10.2} ms, DRAM {:>7.3} GB",
        cudnn_like.ms,
        cudnn_like.traffic.dram_gb()
    );
    println!(
        "  stage weights per layer (FT, null-space reuse): {:>4.2} ms, DRAM {:>7.3} GB\n",
        with.ms,
        with.traffic.dram_gb()
    );

    // Ablation 4: tile-shape selection (§5.3's library).
    println!("== ablation 4: tile library shape selection (4096^3 GEMM) ==");
    let cfg = GpuConfig::a100();
    for tile in [
        TileConfig::new(16, 16, 16),
        TileConfig::new(32, 32, 32),
        TileConfig::new(64, 64, 32),
        TileConfig::new(128, 128, 32),
    ] {
        let mut m = SimMachine::new(cfg.clone());
        let a = m.alloc(4096 * 4096 * 4);
        let b = m.alloc(4096 * 4096 * 4);
        let c = m.alloc(4096 * 4096 * 4);
        let k = ft_sim::gemm_kernel(
            "mm",
            4096,
            4096,
            4096,
            Region::whole(a),
            Region::whole(b),
            Region::whole(c),
            tile,
            true,
        );
        m.launch(&k);
        println!(
            "  tile {:>3}x{:<3}: {:>9.3} ms, L2 {:>8.2} GB, DRAM {:>6.2} GB",
            tile.tm,
            tile.tn,
            m.elapsed_ms(),
            m.counters().l2_gb(),
            m.counters().dram_gb()
        );
    }
    let selected = TileConfig::select(4096, 4096, cfg.smem_per_sm_bytes);
    println!(
        "  library selects {}x{}x{} (largest tile fitting {} KiB smem)\n",
        selected.tm,
        selected.tn,
        selected.tk,
        cfg.smem_per_sm_bytes / 1024
    );

    // Ablation 5: boundary-region splitting vs predication. Regions add
    // launches only when they cannot merge; for the LSTM all four regions
    // merge back into one group — zero cost, versus per-iteration branch
    // divergence for predication.
    println!("== ablation 5: region splitting ==");
    let compiled =
        ft_passes::compile(&ft_workloads::lstm::program(LstmShape::tiny())).expect("compiles");
    println!(
        "  4 boundary regions -> {} launch group(s) after coarsening \
         (the conditionals cost no extra launches)",
        compiled.groups.len()
    );
}
