//! `ft-top`: a live terminal view of the serving runtime's observability
//! registries — the `top(1)` of the FractalTensor serve path.
//!
//! ```text
//! cargo run --release -p ft-bench --bin ft_top                  # demo load, refresh 1s
//! cargo run --release -p ft-bench --bin ft_top -- --ticks 5     # stop after 5 frames
//! cargo run --release -p ft-bench --bin ft_top -- --interval-ms 250
//! cargo run --release -p ft-bench --bin ft_top -- --follow target/obs/metrics.jsonl
//! ```
//!
//! Demo mode spins an in-process [`ft_serve::Runtime`] plus closed-loop
//! client threads, then samples the runtime-local registry (`serve.*`)
//! merged with the global one (`exec.*`, `pool.*`, `passes.*`) every
//! interval. `--follow FILE` instead tails the last row of an exporter's
//! `metrics.jsonl` (see `bench_serve --metrics-out` or
//! [`ft_obs::Exporter`]), so it can watch a process it isn't linked into.
//!
//! Each frame shows request throughput (delta of `serve.completed`),
//! exact-bucket latency percentiles, the point-in-time queue depth gauge,
//! the realized batch-size distribution, worker busy/idle share over the
//! interval, arena high-water/growth, and the session row (active
//! sessions, pinned state bytes, decode tokens/sec) — the signals the
//! dynamic batcher's behavior is legible from.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ft_core::builders::stacked_rnn_program;
use ft_core::{BufferId, FractalTensor};
use ft_obs::RegistrySnapshot;
use ft_serve::{Request, Runtime, ServeConfig};
use ft_tensor::Tensor;
use serde_json::Value;

/// Demo workload: narrow stacked RNN, one short sequence per request.
const SHAPE: (usize, usize, usize, usize) = (1, 2, 64, 16); // n, d, l, h

/// One histogram's summary, uniform across both data sources.
#[derive(Debug, Clone, Default)]
struct HistView {
    count: u64,
    mean: f64,
    p50: f64,
    p95: f64,
    p99: f64,
}

/// One frame's worth of metric state, from either a live registry
/// snapshot or a parsed `metrics.jsonl` row.
#[derive(Debug, Clone, Default)]
struct View {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    hists: BTreeMap<String, HistView>,
    /// `(upper_bound, count)` of the batch-size histogram; only available
    /// from live snapshots (the JSONL row carries quantiles, not buckets).
    batch_buckets: Vec<(f64, u64)>,
}

impl View {
    fn from_snapshot(snap: &RegistrySnapshot) -> View {
        let mut v = View {
            counters: snap.counters.clone(),
            gauges: snap.gauges.clone(),
            ..View::default()
        };
        for (name, h) in &snap.hists {
            v.hists.insert(
                name.clone(),
                HistView {
                    count: h.count,
                    mean: h.mean(),
                    p50: h.quantile(0.50),
                    p95: h.quantile(0.95),
                    p99: h.quantile(0.99),
                },
            );
        }
        if let Some(h) = snap.hists.get("serve.batch_size") {
            v.batch_buckets = h.nonzero_buckets();
        }
        v
    }

    fn from_json_row(row: &Value) -> View {
        let mut v = View::default();
        if let Some(obj) = row["counters"].as_object() {
            for (k, val) in obj {
                if let Some(n) = val.as_u64() {
                    v.counters.insert(k.clone(), n);
                }
            }
        }
        if let Some(obj) = row["gauges"].as_object() {
            for (k, val) in obj {
                if let Some(n) = val.as_i64() {
                    v.gauges.insert(k.clone(), n);
                }
            }
        }
        if let Some(obj) = row["histograms"].as_object() {
            for (k, h) in obj {
                v.hists.insert(
                    k.clone(),
                    HistView {
                        count: h["count"].as_u64().unwrap_or(0),
                        mean: h["mean"].as_f64().unwrap_or(0.0),
                        p50: h["p50"].as_f64().unwrap_or(0.0),
                        p95: h["p95"].as_f64().unwrap_or(0.0),
                        p99: h["p99"].as_f64().unwrap_or(0.0),
                    },
                );
            }
        }
        v
    }

    fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    fn hist(&self, name: &str) -> HistView {
        self.hists.get(name).cloned().unwrap_or_default()
    }
}

fn delta(now: &View, prev: &View, name: &str) -> u64 {
    now.counter(name).saturating_sub(prev.counter(name))
}

fn render(now: &View, prev: &View, dt: f64, source: &str, frame: String) {
    // Clear screen, home cursor. Harmless when redirected to a file.
    print!("\x1b[2J\x1b[H");
    println!("ft-top — FractalTensor serving runtime   [{source}]   {frame}");
    println!();

    let completed = delta(now, prev, "serve.completed");
    let rps = if dt > 0.0 { completed as f64 / dt } else { 0.0 };
    println!(
        "  requests   {:8.1} rps    completed {:<8} failed {:<4} deadline {:<4} rejected {}",
        rps,
        now.counter("serve.completed"),
        now.counter("serve.failed"),
        now.counter("serve.deadline_expired"),
        now.counter("serve.rejected"),
    );

    let lat = now.hist("serve.latency_us");
    println!(
        "  latency    p50 {:8.3} ms   p95 {:8.3} ms   p99 {:8.3} ms   (n={})",
        lat.p50 / 1e3,
        lat.p95 / 1e3,
        lat.p99 / 1e3,
        lat.count,
    );
    let qw = now.hist("serve.queue_wait_us");
    println!(
        "  queue      depth {:<5} wait p50 {:8.3} ms   p99 {:8.3} ms",
        now.gauge("serve.queue_depth"),
        qw.p50 / 1e3,
        qw.p99 / 1e3,
    );

    let batches = now.counter("serve.batches");
    let bh = now.hist("serve.batch_size");
    println!(
        "  batching   batches {:<6} fused reqs {:<6} fallbacks {:<4} ragged fb {:<4} mean batch {:.2}",
        batches,
        now.counter("serve.batched_requests"),
        now.counter("serve.batch_fallbacks"),
        now.counter("serve.batch_ragged_fallback"),
        bh.mean,
    );
    if !now.batch_buckets.is_empty() {
        let peak = now
            .batch_buckets
            .iter()
            .map(|&(_, n)| n)
            .max()
            .unwrap_or(1)
            .max(1);
        println!("  batch size distribution (bucket upper bound → launches):");
        for &(le, n) in &now.batch_buckets {
            let width = ((n as f64 / peak as f64) * 30.0).ceil() as usize;
            println!("    ≤{:6.1}  {:30}  {}", le, "█".repeat(width), n);
        }
    }

    let busy = delta(now, prev, "exec.worker_busy_us") as f64;
    let idle = delta(now, prev, "exec.worker_idle_us") as f64;
    let busy_pct = if busy + idle > 0.0 {
        100.0 * busy / (busy + idle)
    } else {
        0.0
    };
    println!(
        "  workers    {:<3} threads   busy {:5.1}%   idle {:5.1}%   wavefront steps {}",
        now.gauge("exec.workers"),
        busy_pct,
        100.0 - busy_pct,
        now.counter("exec.wavefront_steps"),
    );
    println!(
        "  arena      high-water {:<4} grows {:<4} reused {:<6} acquires {}",
        now.gauge("exec.arena_high_water"),
        now.counter("exec.arena_grows"),
        now.counter("exec.arena_reused"),
        now.counter("exec.arena_acquires"),
    );
    println!(
        "  plan cache hits {:<6} misses {:<4}   leaf borrows {}",
        now.counter("passes.plan_cache_hits"),
        now.counter("passes.plan_cache_misses"),
        now.counter("exec.leaf_borrows"),
    );
    println!(
        "  fusion     applied {:<5} rejected {:<4} tmp elems saved {}",
        now.counter("passes.fusion_applied"),
        now.counter("passes.fusion_rejected"),
        now.counter("passes.fusion_tmp_elems_saved"),
    );
    println!(
        "  health     restarts {:<3} shed {:<5} retries {:<5} bisections {:<4} stalled {}",
        now.counter("serve.scheduler_restarts"),
        now.counter("serve.shed"),
        now.counter("serve.retries"),
        now.counter("serve.batch_bisections"),
        now.counter("serve.stalled"),
    );
    println!(
        "  quarantine plans {:<3} trips {:<4} rejected {:<5} probes {}",
        now.gauge("serve.quarantined_plans"),
        now.counter("serve.quarantine_trips"),
        now.counter("serve.quarantine_rejected"),
        now.counter("serve.quarantine_probes"),
    );
    let decoded = delta(now, prev, "serve.decode_steps");
    let tps = if dt > 0.0 { decoded as f64 / dt } else { 0.0 };
    println!(
        "  sessions   active {:<4} pinned {:<9} B  {:8.1} tok/s   state copies {:<4} evictions {}",
        now.gauge("serve.sessions_active"),
        now.gauge("serve.pinned_bytes"),
        tps,
        now.counter("serve.state_copies"),
        now.counter("serve.session_evictions"),
    );
    println!(
        "  pool       workers {:<3} spawn failures {:<3} replacements {}",
        now.gauge("pool.workers"),
        now.counter("pool.spawn_failures"),
        now.counter("serve.pool_replacements"),
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
}

fn demo_inputs(seed: u64, ws: &FractalTensor) -> HashMap<BufferId, FractalTensor> {
    let (n, _d, l, h) = SHAPE;
    let mut m = HashMap::new();
    m.insert(
        BufferId(0),
        FractalTensor::from_flat(&Tensor::randn(&[n, l, 1, h], seed), 2).unwrap(),
    );
    m.insert(BufferId(1), ws.clone());
    m
}

/// Demo mode: an in-process runtime plus closed-loop clients, sampled live.
fn run_demo(ticks: u64, interval: Duration) {
    let (n, d, l, h) = SHAPE;
    let program = Arc::new(stacked_rnn_program(n, d, l, h));
    let ws = FractalTensor::from_flat(&Tensor::randn(&[d, h, h], 8).mul_scalar(0.2), 1).unwrap();

    let threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(2)
        .min(4);
    let rt = Arc::new(
        Runtime::try_new(ServeConfig {
            threads,
            batching: true,
            max_batch: 8,
            ..ServeConfig::default()
        })
        .expect("ft-top demo runtime construction"),
    );
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        for c in 0..4u64 {
            let rt = Arc::clone(&rt);
            let program = Arc::clone(&program);
            let ws = ws.clone();
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut seed = c * 1_000_000;
                while !stop.load(Ordering::Relaxed) {
                    seed += 1;
                    let req =
                        Request::new(Arc::clone(&program), demo_inputs(seed, &ws)).with_session(c);
                    match rt.submit_wait(req) {
                        Ok(ticket) => {
                            let _ = ticket.wait();
                        }
                        Err(_) => break,
                    }
                }
            });
        }

        let mut prev = View::default();
        let mut prev_t = Instant::now();
        let mut tick = 0u64;
        loop {
            std::thread::sleep(interval);
            let mut snap = rt.metrics().snapshot();
            snap.merge(&ft_obs::Registry::global().snapshot());
            let now = View::from_snapshot(&snap);
            let dt = prev_t.elapsed().as_secs_f64();
            tick += 1;
            let frame = if ticks > 0 {
                format!("frame {tick}/{ticks}")
            } else {
                format!("frame {tick}")
            };
            render(&now, &prev, dt, "demo", frame);
            // Drain completion records so the bounded trace ring never
            // reports drops during long demo runs.
            let drained = rt.take_completions().len();
            println!("  completions drained this frame: {drained}");
            prev = now;
            prev_t = Instant::now();
            if ticks > 0 && tick >= ticks {
                break;
            }
        }
        stop.store(true, Ordering::Relaxed);
    });
    rt.shutdown();
}

/// Follow mode: re-read the last rows of an exporter's `metrics.jsonl`.
fn run_follow(path: &str, ticks: u64, interval: Duration) {
    let mut prev = View::default();
    let mut prev_ms: u64 = 0;
    let mut tick = 0u64;
    loop {
        let text = std::fs::read_to_string(path).unwrap_or_default();
        let last = text.lines().rev().find(|l| !l.trim().is_empty());
        if let Some(line) = last {
            if let Ok(row) = serde_json::from_str::<Value>(line) {
                let now_ms = row["ts_unix_ms"].as_u64().unwrap_or(0);
                let dt = if prev_ms > 0 && now_ms > prev_ms {
                    (now_ms - prev_ms) as f64 / 1e3
                } else {
                    interval.as_secs_f64()
                };
                let now = View::from_json_row(&row);
                tick += 1;
                let frame = if ticks > 0 {
                    format!("frame {tick}/{ticks}")
                } else {
                    format!("frame {tick}")
                };
                render(&now, &prev, dt, path, frame);
                prev = now;
                prev_ms = now_ms;
            }
        } else {
            eprintln!("ft-top: waiting for rows in {path} ...");
        }
        if ticks > 0 && tick >= ticks {
            break;
        }
        std::thread::sleep(interval);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let ticks: u64 = flag("--ticks").and_then(|v| v.parse().ok()).unwrap_or(0);
    let interval_ms: u64 = flag("--interval-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let interval = Duration::from_millis(interval_ms.max(10));

    match flag("--follow") {
        Some(path) => run_follow(&path, ticks, interval),
        None => run_demo(ticks, interval),
    }
}
