//! Figure 8: RNN performance scaling for the three RNN variants across the
//! paper's four sweeps — hidden size (middle vs large model), batch size,
//! sequence length (32/64/128), and depth (1–32 stacked/grid, 1–6 dilated).
//!
//! The hypothesis under test (§6.3): an optimizer that finds the maximal
//! exploitable data parallelism should *not* scale linearly with depth.
//!
//! Usage: `cargo run --release -p ft-bench --bin fig8_rnn_scaling [--json]`

use ft_bench::{render_json, render_ms_table, Row};
use ft_workloads::Strategy;
use ft_workloads::{dilated, grid, lstm};

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let mut out = String::new();
    let mut emit = |title: &str, experiment: &str, rows: Vec<Row>| {
        if json {
            out.push_str(&render_json(experiment, &rows));
        } else {
            out.push_str(&render_ms_table(title, &rows));
            out.push('\n');
        }
    };

    // Sweep 1: depth scaling, middle (h=256) and large (h=1024) models.
    for (model, h) in [("middle", 256usize), ("large", 1024)] {
        let mut rows = Vec::new();
        for depth in [1usize, 4, 8, 12, 16, 20, 24, 28, 32] {
            let s = lstm::LstmShape {
                batch: 256,
                hidden: h,
                depth,
                seq: 64,
            };
            rows.push(Row {
                label: format!("depth={depth}"),
                cells: Strategy::ALL
                    .iter()
                    .map(|&st| Some(lstm::simulate(s, st)))
                    .collect(),
            });
        }
        emit(
            &format!("Figure 8: stacked LSTM depth sweep ({model} model, hidden {h}) [ms]"),
            &format!("fig8_lstm_depth_{model}"),
            rows,
        );
    }

    // Sweep 2: sequence length 32 / 64 / 128.
    let mut rows = Vec::new();
    for seq in [32usize, 64, 128] {
        let s = lstm::LstmShape {
            batch: 256,
            hidden: 256,
            depth: 32,
            seq,
        };
        rows.push(Row {
            label: format!("seq={seq}"),
            cells: Strategy::ALL
                .iter()
                .map(|&st| Some(lstm::simulate(s, st)))
                .collect(),
        });
    }
    emit(
        "Figure 8: stacked LSTM sequence-length sweep [ms]",
        "fig8_lstm_seq",
        rows,
    );

    // Sweep 3: batch / hidden (local data parallelism inside the cell).
    let mut rows = Vec::new();
    for (batch, h) in [(64usize, 256usize), (256, 256), (256, 1024), (1024, 256)] {
        let s = lstm::LstmShape {
            batch,
            hidden: h,
            depth: 8,
            seq: 64,
        };
        rows.push(Row {
            label: format!("batch={batch} h={h}"),
            cells: Strategy::ALL
                .iter()
                .map(|&st| Some(lstm::simulate(s, st)))
                .collect(),
        });
    }
    emit(
        "Figure 8: stacked LSTM batch/hidden sweep [ms]",
        "fig8_lstm_bh",
        rows,
    );

    // Sweep 4: dilated RNN depth 1..6 (dilation growth limits stacking).
    let mut rows = Vec::new();
    for depth in 1usize..=6 {
        let s = dilated::DilatedShape {
            batch: 256,
            hidden: 256,
            depth,
            seq: 64,
        };
        rows.push(Row {
            label: format!("layers={depth}"),
            cells: Strategy::ALL
                .iter()
                .map(|&st| dilated::simulate(s, st))
                .collect(),
        });
    }
    emit(
        "Figure 8: dilated RNN depth sweep (dilation 2^d) [ms]",
        "fig8_dilated_depth",
        rows,
    );

    // Sweep 5: grid RNN depth 1..32.
    let mut rows = Vec::new();
    for depth in [1usize, 4, 8, 16, 24, 32] {
        let s = grid::GridShape {
            batch: 256,
            hidden: 256,
            depth,
            rows: 8,
            cols: 8,
        };
        rows.push(Row {
            label: format!("depth={depth}"),
            cells: Strategy::ALL
                .iter()
                .map(|&st| grid::simulate(s, st))
                .collect(),
        });
    }
    emit(
        "Figure 8: grid RNN depth sweep [ms]",
        "fig8_grid_depth",
        rows,
    );

    print!("{out}");
}
