//! Parsing `ft-core` programs into ETDGs.
//!
//! The central move (paper §6.3): an aggregate operator's first step reads
//! its initializer instead of the carried value, so a depth-`d` nest with
//! `k` carried reads hides `2^k` distinct data-flow behaviours behind
//! conditionals. The parser makes them explicit — it splits the iteration
//! domain into up to `2^k` *regions* and emits one block node per
//! (non-empty) region, each with unconditional access maps. Figure 4's
//! `region₀…₃` for the running example, the 4 block nodes of the stacked
//! LSTM and the 8 of the grid RNN all fall out of this construction.

use ft_affine::{Constraint, ConstraintSet};
use ft_core::program::{CarriedInit, Program, Read};
use ft_core::AccessSpec;

use crate::graph::{BlockNode, BufId, BufferNode, Etdg, EtdgError, RegionRead, RegionWrite};
use crate::Result;

/// Which side of the buffer a carried access can fall off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BoundarySide {
    /// Access index can be negative: boundary at small `t_dim`.
    Low,
    /// Access index can exceed the extent: boundary at large `t_dim`.
    High,
}

/// A split predicate: read `read_idx` is out-of-range exactly when iteration
/// dim `dim` is on the boundary side of `threshold`.
#[derive(Debug, Clone)]
struct SplitPredicate {
    read_idx: usize,
    dim: usize,
    side: BoundarySide,
    /// For `Low`: in-range iff `t_dim >= threshold`.
    /// For `High`: in-range iff `t_dim <= threshold`.
    threshold: i64,
}

/// Extracts the ETDG from a validated program.
///
/// # Examples
///
/// ```
/// use ft_core::builders::stacked_rnn_program;
/// use ft_etdg::parse_program;
///
/// let etdg = parse_program(&stacked_rnn_program(2, 3, 4, 512)).unwrap();
/// // Figure 4: four regions; §4.4: depth 2, dimension 5.
/// assert_eq!(etdg.blocks.len(), 4);
/// assert_eq!(etdg.depth(), 2);
/// assert_eq!(etdg.dimension(), 5);
/// ```
pub fn parse_program(program: &Program) -> Result<Etdg> {
    program
        .validate()
        .map_err(|e| EtdgError::Parse(e.to_string()))?;
    let buffers: Vec<BufferNode> = program
        .buffers
        .iter()
        .map(|d| BufferNode {
            name: d.name.clone(),
            dims: d.dims.clone(),
            leaf_shape: d.leaf_shape.clone(),
            kind: d.kind,
        })
        .collect();

    let mut etdg = Etdg {
        name: program.name.clone(),
        buffers,
        blocks: Vec::new(),
    };

    for (ni, nest) in program.nests.iter().enumerate() {
        let preds = split_predicates(program, nest)?;
        let hull = ConstraintSet::from_box(
            &vec![0i64; nest.depth()],
            &nest.extents.iter().map(|&e| e as i64).collect::<Vec<_>>(),
        )?;
        // Enumerate regions: bit b of `mask` set means predicate b is on its
        // *interior* side. All-boundary first, fully interior last, matching
        // the paper's region numbering.
        let nregions = 1usize << preds.len();
        for mask in 0..nregions {
            let mut domain = hull.clone();
            for (b, p) in preds.iter().enumerate() {
                let interior = mask & (1 << b) != 0;
                let mut coeffs = vec![0i64; nest.depth()];
                match (p.side, interior) {
                    (BoundarySide::Low, true) => {
                        // t_dim >= threshold.
                        coeffs[p.dim] = 1;
                        domain.push(Constraint::new(coeffs, -p.threshold));
                    }
                    (BoundarySide::Low, false) => {
                        // t_dim <= threshold - 1.
                        coeffs[p.dim] = -1;
                        domain.push(Constraint::new(coeffs, p.threshold - 1));
                    }
                    (BoundarySide::High, true) => {
                        // t_dim <= threshold.
                        coeffs[p.dim] = -1;
                        domain.push(Constraint::new(coeffs, p.threshold));
                    }
                    (BoundarySide::High, false) => {
                        // t_dim >= threshold + 1.
                        coeffs[p.dim] = 1;
                        domain.push(Constraint::new(coeffs, -(p.threshold + 1)));
                    }
                }
            }
            if domain.is_empty()? {
                continue;
            }
            let reads = region_reads(program, nest, &preds, mask)?;
            let writes = nest
                .writes
                .iter()
                .map(|w| {
                    Ok(RegionWrite {
                        buffer: BufId(w.buffer.0),
                        map: w
                            .access
                            .to_affine_map(nest.depth())
                            .map_err(|e| EtdgError::Parse(e.to_string()))?,
                    })
                })
                .collect::<Result<Vec<_>>>()?;
            let region_no = etdg.blocks.iter().filter(|b| b.src_nest == ni).count();
            etdg.blocks.push(BlockNode {
                name: format!("{}/region{}", nest.name, region_no),
                ops: nest.ops.clone(),
                extents: nest.extents.clone(),
                domain,
                reads,
                writes,
                udf: nest.udf.clone(),
                children: Vec::new(),
                parent: None,
                src_nest: ni,
            });
        }
    }
    etdg.validate()?;
    Ok(etdg)
}

/// Finds the boundary predicate of each carried read.
fn split_predicates(program: &Program, nest: &ft_core::Nest) -> Result<Vec<SplitPredicate>> {
    let mut preds = Vec::new();
    for (ri, read) in nest.reads.iter().enumerate() {
        if read.init.is_none() {
            continue;
        }
        if let Some(p) = boundary_of(program, nest, ri, read)? {
            preds.push(p);
        }
    }
    Ok(preds)
}

fn boundary_of(
    program: &Program,
    nest: &ft_core::Nest,
    ri: usize,
    read: &Read,
) -> Result<Option<SplitPredicate>> {
    let buf = program.buffer(read.buffer);
    let mut found: Option<SplitPredicate> = None;
    for (axis_no, axis) in read.access.axes.iter().enumerate() {
        let extent = buf.dims[axis_no] as i64;
        // Range of the axis value over the rectangular hull.
        let (mut lo, mut hi) = (axis.offset, axis.offset);
        for &(dim, coeff) in &axis.terms {
            let ext = nest.extents[dim] as i64;
            if coeff >= 0 {
                hi += coeff * (ext - 1);
            } else {
                lo += coeff * (ext - 1);
            }
        }
        let below = lo < 0;
        let above = hi > extent - 1;
        if !below && !above {
            continue;
        }
        if below && above {
            return Err(EtdgError::Parse(format!(
                "{}: read {ri} axis {axis_no} can fall off both ends; split \
                 the nest manually",
                nest.name
            )));
        }
        // A splittable boundary must be a single-term axis with positive
        // stride so the in-range condition is a half-space on one dim.
        if axis.terms.len() != 1 || axis.terms[0].1 <= 0 {
            return Err(EtdgError::Parse(format!(
                "{}: read {ri} axis {axis_no} has a non-splittable boundary \
                 access",
                nest.name
            )));
        }
        let (dim, stride) = axis.terms[0];
        let pred = if below {
            // stride*t + offset >= 0  <=>  t >= ceil(-offset / stride).
            let threshold = (-axis.offset).div_euclid(stride)
                + i64::from((-axis.offset).rem_euclid(stride) != 0);
            SplitPredicate {
                read_idx: ri,
                dim,
                side: BoundarySide::Low,
                threshold,
            }
        } else {
            // stride*t + offset <= extent-1  <=>  t <= floor((extent-1-offset)/stride).
            SplitPredicate {
                read_idx: ri,
                dim,
                side: BoundarySide::High,
                threshold: (extent - 1 - axis.offset).div_euclid(stride),
            }
        };
        if found.is_some() {
            return Err(EtdgError::Parse(format!(
                "{}: read {ri} has boundaries on two axes; unsupported",
                nest.name
            )));
        }
        found = Some(pred);
    }
    Ok(found)
}

/// Builds the region's reads: interior reads use the carried access map,
/// boundary reads use their initializer.
fn region_reads(
    program: &Program,
    nest: &ft_core::Nest,
    preds: &[SplitPredicate],
    mask: usize,
) -> Result<Vec<RegionRead>> {
    let d = nest.depth();
    let spec_to_map = |spec: &AccessSpec| {
        spec.to_affine_map(d)
            .map_err(|e| EtdgError::Parse(e.to_string()))
    };
    let mut out = Vec::with_capacity(nest.reads.len());
    for (ri, read) in nest.reads.iter().enumerate() {
        let boundary_here = preds
            .iter()
            .enumerate()
            .any(|(b, p)| p.read_idx == ri && mask & (1 << b) == 0);
        if boundary_here {
            match read.init.as_ref().expect("predicate implies carried read") {
                CarriedInit::Zero => out.push(RegionRead::Fill {
                    value: 0.0,
                    leaf_shape: program.buffer(read.buffer).leaf_shape.clone(),
                }),
                CarriedInit::Fill(v) => out.push(RegionRead::Fill {
                    value: *v,
                    leaf_shape: program.buffer(read.buffer).leaf_shape.clone(),
                }),
                CarriedInit::Buffer(b, spec) => out.push(RegionRead::Buffer {
                    buffer: BufId(b.0),
                    map: spec_to_map(spec)?,
                }),
            }
        } else {
            out.push(RegionRead::Buffer {
                buffer: BufId(read.buffer.0),
                map: spec_to_map(&read.access)?,
            });
        }
    }
    Ok(out)
}

/// Parses a single-nest program and returns both the graph and the id of
/// the fully-interior region (the last region of the nest) — a convenience
/// for the pass tests that study `region₃` of the running example.
pub fn parse_with_interior(program: &Program) -> Result<(Etdg, crate::graph::BlockId)> {
    let etdg = parse_program(program)?;
    let last = crate::graph::BlockId(etdg.blocks.len() - 1);
    Ok((etdg, last))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_affine::AffineMap;
    use ft_core::builders::stacked_rnn_program;
    use ft_core::expr::UdfBuilder;
    use ft_core::{AxisExpr, Nest, OpKind, Read as CoreRead, Write};

    #[test]
    fn running_example_produces_four_regions() {
        // Figure 4: the depth-3 (map, scanl, scanl) nest splits into
        // region0..3 on the two scan boundaries.
        let p = stacked_rnn_program(2, 3, 4, 8);
        let g = parse_program(&p).unwrap();
        assert_eq!(g.blocks.len(), 4);
        assert_eq!(g.buffers.len(), 3);
        // All regions share the operator vector (map, scanl, scanl).
        for b in &g.blocks {
            assert_eq!(b.ops, vec![OpKind::Map, OpKind::ScanL, OpKind::ScanL]);
        }
    }

    #[test]
    fn running_example_depth_and_dimension() {
        // §4.4: "The depth of the ETDG is 2 and the dimension is 5."
        let p = stacked_rnn_program(2, 3, 4, 512);
        let g = parse_program(&p).unwrap();
        assert_eq!(g.depth(), 2);
        assert_eq!(g.dimension(), 5);
    }

    #[test]
    fn region3_access_maps_match_figure4() {
        let (n, d, l, h) = (2i64, 3i64, 4i64, 8);
        let p = stacked_rnn_program(n as usize, d as usize, l as usize, h);
        let g = parse_program(&p).unwrap();
        let region3 = &g.blocks[3];
        // Interior region: both scans carried. Range constraints are
        // [0,N) x [1,D) x [1,L) (Figure 4's table).
        assert!(region3.domain.contains(&[0, 1, 1]));
        assert!(region3.domain.contains(&[n - 1, d - 1, l - 1]));
        assert!(!region3.domain.contains(&[0, 0, 1]));
        assert!(!region3.domain.contains(&[0, 1, 0]));
        // e12: read ysss at (i, j-1, k): identity matrix, offset [0,-1,0].
        let e12 = region3.reads[0].map().unwrap();
        assert_eq!(e12.offset(), &[0, -1, 0]);
        assert_eq!(e12.apply(&[1, 2, 3]).unwrap(), vec![1, 1, 3]);
        // e14: read ws at (j): single-row projection onto the layer dim.
        let e14 = region3.reads[1].map().unwrap();
        assert_eq!(e14.apply(&[1, 2, 3]).unwrap(), vec![2]);
        // e13: read ysss at (i, j, k-1): identity, offset [0,0,-1].
        let e13 = region3.reads[2].map().unwrap();
        assert_eq!(e13.offset(), &[0, 0, -1]);
        // e15: write ysss at (i, j, k): exact identity.
        let e15 = &region3.writes[0].map;
        assert_eq!(e15, &AffineMap::identity(3));
    }

    #[test]
    fn region0_reads_inputs_and_zeros() {
        let p = stacked_rnn_program(2, 3, 4, 8);
        let g = parse_program(&p).unwrap();
        let region0 = &g.blocks[0];
        // (d = 0, l = 0): x comes from xss, s is zeros.
        assert!(region0.domain.contains(&[1, 0, 0]));
        assert!(!region0.domain.contains(&[1, 1, 0]));
        match &region0.reads[0] {
            RegionRead::Buffer { buffer, .. } => {
                assert_eq!(g.buffer(*buffer).name, "xss");
            }
            other => panic!("expected xss read, got {other:?}"),
        }
        assert!(matches!(region0.reads[2], RegionRead::Fill { .. }));
    }

    #[test]
    fn regions_partition_the_hull() {
        let (n, d, l) = (2usize, 3usize, 4usize);
        let p = stacked_rnn_program(n, d, l, 8);
        let g = parse_program(&p).unwrap();
        // Every point of the hull belongs to exactly one region.
        for i in 0..n as i64 {
            for j in 0..d as i64 {
                for k in 0..l as i64 {
                    let holders = g
                        .blocks
                        .iter()
                        .filter(|b| b.domain.contains(&[i, j, k]))
                        .count();
                    assert_eq!(holders, 1, "point ({i},{j},{k})");
                }
            }
        }
    }

    /// A three-carried-read nest (grid-RNN shaped: depth plus two grid
    /// directions): 2^3 = 8 regions — the §6.3 count for the stacked grid
    /// RNN.
    #[test]
    fn three_carried_reads_give_eight_regions() {
        let (n, d, gi, gj) = (2usize, 2usize, 3usize, 3usize);
        let h = 4usize;
        let mut p = Program::new("grid_like");
        let xss = p.input("xss", &[n, gi, gj], &[1, h]);
        let ws = p.input("ws", &[d], &[h, h]);
        let out = p.output("out", &[n, d, gi, gj], &[1, h]);
        let mut b = UdfBuilder::new("cell", 5);
        let (x, w, s1, s2) = (b.input(0), b.input(1), b.input(2), b.input(3));
        let _ = b.input(4);
        let xw = b.matmul(x, w);
        let t = b.add(xw, s1);
        let y = b.add(t, s2);
        let udf = b.build(&[y]);
        p.add_nest(Nest {
            name: "grid_like".into(),
            ops: vec![OpKind::Map, OpKind::ScanL, OpKind::ScanL, OpKind::ScanL],
            extents: vec![n, d, gi, gj],
            reads: vec![
                // Previous layer's output.
                CoreRead::carried(
                    out,
                    AccessSpec::new(vec![
                        AxisExpr::var(0),
                        AxisExpr::shifted(1, -1),
                        AxisExpr::var(2),
                        AxisExpr::var(3),
                    ]),
                    CarriedInit::Buffer(
                        xss,
                        AccessSpec::new(vec![AxisExpr::var(0), AxisExpr::var(2), AxisExpr::var(3)]),
                    ),
                ),
                CoreRead::plain(ws, AccessSpec::new(vec![AxisExpr::var(1)])),
                // Grid state along i.
                CoreRead::carried(
                    out,
                    AccessSpec::new(vec![
                        AxisExpr::var(0),
                        AxisExpr::var(1),
                        AxisExpr::shifted(2, -1),
                        AxisExpr::var(3),
                    ]),
                    CarriedInit::Zero,
                ),
                // Grid state along j.
                CoreRead::carried(
                    out,
                    AccessSpec::new(vec![
                        AxisExpr::var(0),
                        AxisExpr::var(1),
                        AxisExpr::var(2),
                        AxisExpr::shifted(3, -1),
                    ]),
                    CarriedInit::Zero,
                ),
                // A plain re-read of the input keeps the UDF arity at 5 and
                // exercises mixed plain/carried reads.
                CoreRead::plain(
                    xss,
                    AccessSpec::new(vec![AxisExpr::var(0), AxisExpr::var(2), AxisExpr::var(3)]),
                ),
            ],
            writes: vec![Write {
                buffer: out,
                access: AccessSpec::identity(4),
            }],
            udf,
        })
        .unwrap();
        let g = parse_program(&p).unwrap();
        assert_eq!(g.blocks.len(), 8);
    }

    #[test]
    fn strided_carried_read_splits_at_dilation() {
        // Dilated-RNN-like: the scan reads l - 4 (dilation 4), so the
        // boundary region is t_l < 4, the interior t_l >= 4.
        let (n, l, h) = (2usize, 10usize, 4usize);
        let mut p = Program::new("dilated_like");
        let xs = p.input("xs", &[n, l], &[1, h]);
        let w = p.input("w", &[1], &[h, h]);
        let ys = p.output("ys", &[n, l], &[1, h]);
        let mut b = UdfBuilder::new("cell", 3);
        let (x, wt, s) = (b.input(0), b.input(1), b.input(2));
        let xw = b.matmul(x, wt);
        let y = b.add(xw, s);
        let udf = b.build(&[y]);
        p.add_nest(Nest {
            name: "dilated_like".into(),
            ops: vec![OpKind::Map, OpKind::ScanL],
            extents: vec![n, l],
            reads: vec![
                CoreRead::plain(
                    xs,
                    AccessSpec::new(vec![AxisExpr::var(0), AxisExpr::var(1)]),
                ),
                CoreRead::plain(w, AccessSpec::new(vec![AxisExpr::constant(0)])),
                CoreRead::carried(
                    ys,
                    AccessSpec::new(vec![AxisExpr::var(0), AxisExpr::shifted(1, -4)]),
                    CarriedInit::Zero,
                ),
            ],
            writes: vec![Write {
                buffer: ys,
                access: AccessSpec::identity(2),
            }],
            udf,
        })
        .unwrap();
        let g = parse_program(&p).unwrap();
        assert_eq!(g.blocks.len(), 2);
        let boundary = &g.blocks[0];
        let interior = &g.blocks[1];
        assert!(boundary.domain.contains(&[0, 3]));
        assert!(!boundary.domain.contains(&[0, 4]));
        assert!(interior.domain.contains(&[0, 4]));
        assert!(!interior.domain.contains(&[0, 3]));
    }

    #[test]
    fn scanr_boundary_is_high_side() {
        // A right scan reads l + 1; the boundary region is l = L-1.
        let (n, l, h) = (2usize, 5usize, 4usize);
        let mut p = Program::new("scanr_like");
        let xs = p.input("xs", &[n, l], &[1, h]);
        let ys = p.output("ys", &[n, l], &[1, h]);
        let mut b = UdfBuilder::new("cell", 2);
        let (x, s) = (b.input(0), b.input(1));
        let y = b.add(x, s);
        let udf = b.build(&[y]);
        p.add_nest(Nest {
            name: "scanr_like".into(),
            ops: vec![OpKind::Map, OpKind::ScanR],
            extents: vec![n, l],
            reads: vec![
                CoreRead::plain(
                    xs,
                    AccessSpec::new(vec![AxisExpr::var(0), AxisExpr::var(1)]),
                ),
                CoreRead::carried(
                    ys,
                    AccessSpec::new(vec![AxisExpr::var(0), AxisExpr::shifted(1, 1)]),
                    CarriedInit::Zero,
                ),
            ],
            writes: vec![Write {
                buffer: ys,
                access: AccessSpec::identity(2),
            }],
            udf,
        })
        .unwrap();
        let g = parse_program(&p).unwrap();
        assert_eq!(g.blocks.len(), 2);
        let boundary = &g.blocks[0];
        assert!(boundary.domain.contains(&[0, l as i64 - 1]));
        assert!(!boundary.domain.contains(&[0, 0]));
    }

    #[test]
    fn validation_and_topo_order() {
        let p = stacked_rnn_program(2, 3, 4, 8);
        let g = parse_program(&p).unwrap();
        assert!(g.validate().is_ok());
        let order = g.topo_order().unwrap();
        assert_eq!(order.len(), 4);
        // Writers and readers are linked correctly.
        let ysss = BufId(2);
        assert_eq!(g.writers_of(ysss).len(), 4);
        assert!(!g.readers_of(ysss).is_empty());
        // A describe string mentions the graph's block count.
        assert!(g.describe().contains("4 block node(s)"));
    }

    use ft_core::{AccessSpec, CarriedInit, Program};
}
