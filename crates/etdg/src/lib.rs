//! # ft-etdg
//!
//! The Extended Task Dependence Graph (SOSP 2024, §4.4): a nested
//! multi-dimensional dataflow IR giving the compiler a holistic view of
//! parallelism and dependencies across every control and data nesting
//! level.
//!
//! The four ETDG elements of the paper's Table 2 map onto:
//!
//! * **Buffer node** ([`BufferNode`]) — an addressable FractalTensor
//!   instance with the single-assignment property,
//! * **Block node** ([`BlockNode`]) — a `d`-dimensional control node
//!   `Γ_d = (t⃗_d, 𝒫_d, G_T, p⃗_d)` for a perfect compute-operator nest,
//! * **Operation node** ([`ft_core::Udf`] statements) — user-defined tensor
//!   math attached at block leaves (lowered to child blocks by
//!   `ft-passes`),
//! * **Access map** ([`ft_affine::AffineMap`] on every edge) — the
//!   quasi-affine `i = M·t + o` annotation.
//!
//! [`parse::parse_program`] extracts an ETDG from an `ft-core`
//! [`ft_core::Program`]. Aggregate operators' "first step differs"
//! conditionals are translated into separate data-parallel block nodes —
//! one per boundary region — writing *disjoint* parts of the output buffer
//! node, exactly as Figure 4's `region₀…₃` does for the running example
//! (and §6.3's counts: stacked LSTM → 4 block nodes, grid RNN → 8).

#![forbid(unsafe_code)]

pub mod dot;
pub mod graph;
pub mod parse;

pub use dot::to_dot;
pub use graph::{
    sample_points, BlockId, BlockNode, BufId, BufferNode, Etdg, EtdgError, RegionRead, RegionWrite,
};
pub use parse::parse_program;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, EtdgError>;
