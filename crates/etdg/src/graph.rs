//! ETDG node and graph types, structural validation, and the depth/dimension
//! metrics of §4.4.

use ft_affine::{AffineMap, ConstraintSet};
use ft_core::{BufferKind, OpKind, Udf};
use ft_tensor::Shape;

use crate::Result;

/// Errors from ETDG construction and validation.
#[derive(Debug, Clone, PartialEq)]
pub enum EtdgError {
    /// Parse-time structural error.
    Parse(String),
    /// A validation rule of §4.4 was violated.
    Invalid(String),
    /// Propagated affine-arithmetic error.
    Affine(String),
}

impl std::fmt::Display for EtdgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EtdgError::Parse(m) => write!(f, "ETDG parse error: {m}"),
            EtdgError::Invalid(m) => write!(f, "ETDG validation error: {m}"),
            EtdgError::Affine(m) => write!(f, "ETDG affine error: {m}"),
        }
    }
}

impl std::error::Error for EtdgError {}

impl From<ft_affine::AffineError> for EtdgError {
    fn from(e: ft_affine::AffineError) -> Self {
        EtdgError::Affine(e.to_string())
    }
}

/// Identifies a buffer node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufId(pub usize);

/// Identifies a block node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub usize);

/// A buffer node `Λ_m`: an addressable instance of a FractalTensor.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferNode {
    /// Name from the source program.
    pub name: String,
    /// Programmable dimension extents (the index range constraints `Θ`).
    pub dims: Vec<usize>,
    /// Static leaf shape.
    pub leaf_shape: Shape,
    /// Input/output/intermediate role.
    pub kind: BufferKind,
}

impl BufferNode {
    /// Number of programmable dimensions (`m` without the static dims).
    pub fn prog_rank(&self) -> usize {
        self.dims.len()
    }

    /// True when an index vector lies in `dom(Λ_m)`.
    pub fn in_domain(&self, idx: &[i64]) -> bool {
        idx.len() == self.dims.len()
            && idx
                .iter()
                .zip(self.dims.iter())
                .all(|(&i, &d)| i >= 0 && (i as usize) < d)
    }
}

/// One read of a block node: a buffer through an access map, or implicit
/// zeros (a boundary region whose carried state initializer is `0`).
#[derive(Debug, Clone, PartialEq)]
pub enum RegionRead {
    /// Read `buffer[map(t)]`.
    Buffer {
        /// The buffer node read.
        buffer: BufId,
        /// The access map annotation.
        map: AffineMap,
    },
    /// The UDF input is a constant-filled leaf of the given shape
    /// (zeros for `scanl 0`, `-inf` for a running max, ...).
    Fill {
        /// The fill value.
        value: f32,
        /// Leaf shape of the synthesized tensor.
        leaf_shape: Shape,
    },
}

impl RegionRead {
    /// The buffer read, if any.
    pub fn buffer(&self) -> Option<BufId> {
        match self {
            RegionRead::Buffer { buffer, .. } => Some(*buffer),
            RegionRead::Fill { .. } => None,
        }
    }

    /// The access map, if this is a buffer read.
    pub fn map(&self) -> Option<&AffineMap> {
        match self {
            RegionRead::Buffer { map, .. } => Some(map),
            RegionRead::Fill { .. } => None,
        }
    }
}

/// One write of a block node.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionWrite {
    /// The buffer node written.
    pub buffer: BufId,
    /// The access map annotation.
    pub map: AffineMap,
}

/// A block node `Γ_d = (t⃗_d, 𝒫_d, G_T, p⃗_d)`.
///
/// The iteration vector `t⃗_d` ranges over the iteration domain
/// ([`BlockNode::domain`]); each dimension is associated with one array
/// compute operator ([`BlockNode::ops`], the paper's `p⃗_d`); `G_T` is the
/// attached UDF (operation nodes) plus any lowered child blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockNode {
    /// Diagnostic name, e.g. `stacked_rnn/region3`.
    pub name: String,
    /// Operator per iteration dimension, outermost first (`p⃗_d`).
    pub ops: Vec<OpKind>,
    /// Rectangular hull of the iteration domain (extents per dim).
    pub extents: Vec<usize>,
    /// The exact iteration domain `𝒫_d` (may carve boundary regions out of
    /// the hull).
    pub domain: ConstraintSet,
    /// Reads, in UDF input order.
    pub reads: Vec<RegionRead>,
    /// Writes, in UDF output order.
    pub writes: Vec<RegionWrite>,
    /// The attached operation nodes.
    pub udf: Udf,
    /// Lowered child block nodes (filled by the lowering pass).
    pub children: Vec<BlockId>,
    /// Enclosing block, if this is a child.
    pub parent: Option<BlockId>,
    /// Index of the source nest in the original program.
    pub src_nest: usize,
}

impl BlockNode {
    /// Dimensionality `d` of the block node.
    pub fn dims(&self) -> usize {
        self.ops.len()
    }

    /// The iteration dims carrying dependencies (aggregate operators).
    pub fn aggregate_dims(&self) -> Vec<usize> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_aggregate())
            .map(|(i, _)| i)
            .collect()
    }
}

/// The Extended Task Dependence Graph `G = (V, E, 𝒜)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Etdg {
    /// Program name.
    pub name: String,
    /// All buffer nodes.
    pub buffers: Vec<BufferNode>,
    /// All block nodes (roots are those with `parent == None`).
    pub blocks: Vec<BlockNode>,
}

impl Etdg {
    /// The buffer node for an id.
    pub fn buffer(&self, id: BufId) -> &BufferNode {
        &self.buffers[id.0]
    }

    /// The block node for an id.
    pub fn block(&self, id: BlockId) -> &BlockNode {
        &self.blocks[id.0]
    }

    /// Root block ids (no parent), in creation order.
    pub fn roots(&self) -> Vec<BlockId> {
        (0..self.blocks.len())
            .map(BlockId)
            .filter(|&b| self.blocks[b.0].parent.is_none())
            .collect()
    }

    /// The block nodes writing a buffer.
    pub fn writers_of(&self, buf: BufId) -> Vec<BlockId> {
        (0..self.blocks.len())
            .map(BlockId)
            .filter(|&b| self.blocks[b.0].writes.iter().any(|w| w.buffer == buf))
            .collect()
    }

    /// The block nodes reading a buffer.
    pub fn readers_of(&self, buf: BufId) -> Vec<BlockId> {
        (0..self.blocks.len())
            .map(BlockId)
            .filter(|&b| {
                self.blocks[b.0]
                    .reads
                    .iter()
                    .any(|r| r.buffer() == Some(buf))
            })
            .collect()
    }

    /// **Depth of the ETDG** (§4.4): block-node nesting levels along the
    /// longest root-to-leaf path, counting an unlowered UDF with at least
    /// one non-trivial operation node as one extra level (the paper's
    /// Figure 4 running example has depth 2: the region blocks plus the
    /// `y = x@w + s` operation level).
    pub fn depth(&self) -> usize {
        self.roots()
            .into_iter()
            .map(|r| self.block_depth(r))
            .max()
            .unwrap_or(0)
    }

    fn block_depth(&self, id: BlockId) -> usize {
        let b = &self.blocks[id.0];
        // A lowered child *is* its operation node — its control dims already
        // account for the math — so only unlowered root-level blocks get the
        // +1 operation level for their opaque UDF.
        let udf_level =
            usize::from(b.parent.is_none() && b.children.is_empty() && !b.udf.stmts.is_empty());
        let child = b
            .children
            .iter()
            .map(|&c| self.block_depth(c))
            .max()
            .unwrap_or(udf_level);
        1 + child
    }

    /// **Dimension of the ETDG** (§4.4): the sum of block-node dimensions
    /// along the longest root-to-leaf path. Unlowered UDFs contribute their
    /// intrinsic static dimensionality (e.g. a `[1,512] @ [512,512]` matmul
    /// contributes 2: one reduction and one parallel dim).
    pub fn dimension(&self) -> usize {
        self.roots()
            .into_iter()
            .map(|r| self.block_dimension(r))
            .max()
            .unwrap_or(0)
    }

    fn block_dimension(&self, id: BlockId) -> usize {
        let b = &self.blocks[id.0];
        let child = if b.children.is_empty() {
            self.udf_intrinsic_dims(id)
        } else {
            b.children
                .iter()
                .map(|&c| self.block_dimension(c))
                .max()
                .unwrap_or(0)
        };
        b.dims() + child
    }

    /// Maximum intrinsic (static-shape) dimensionality over the UDF's
    /// operation nodes, dropping extent-1 dims.
    fn udf_intrinsic_dims(&self, id: BlockId) -> usize {
        let b = &self.blocks[id.0];
        let in_shapes: Vec<Shape> = b
            .reads
            .iter()
            .map(|r| match r {
                RegionRead::Buffer { buffer, .. } => self.buffer(*buffer).leaf_shape.clone(),
                RegionRead::Fill { leaf_shape, .. } => leaf_shape.clone(),
            })
            .collect();
        let Ok(shapes) = b.udf.infer_shapes(&in_shapes) else {
            return 0;
        };
        let mut max_dims = 0usize;
        for (stmt, out_shape) in b.udf.stmts.iter().zip(shapes.stmts.iter()) {
            let mut dims: usize = out_shape.dims().iter().filter(|&&d| d > 1).count();
            if stmt.op.is_compute_intensive() {
                dims += 1; // The contracted (reduction) dimension.
            }
            max_dims = max_dims.max(dims);
        }
        max_dims
    }

    /// Validates the five structural conditions of §4.4:
    /// nesting sanity, root existence, access-map annotation arity,
    /// single assignment (disjoint writer regions), and acyclicity of the
    /// producer→consumer relation between *different* buffers.
    pub fn validate(&self) -> Result<()> {
        // Condition 2: each node has at most one parent; children agree.
        for (i, b) in self.blocks.iter().enumerate() {
            for &c in &b.children {
                if self.blocks[c.0].parent != Some(BlockId(i)) {
                    return Err(EtdgError::Invalid(format!(
                        "child {} of block {} has inconsistent parent",
                        c.0, i
                    )));
                }
            }
            // Condition 4: access-map arity matches buffer rank and block
            // dims.
            for r in &b.reads {
                if let RegionRead::Buffer { buffer, map } = r {
                    let buf = self.buffer(*buffer);
                    if map.data_dims() != buf.prog_rank() || map.iter_dims() != b.dims() {
                        return Err(EtdgError::Invalid(format!(
                            "block '{}': read map is {}x{}, expected {}x{}",
                            b.name,
                            map.data_dims(),
                            map.iter_dims(),
                            buf.prog_rank(),
                            b.dims()
                        )));
                    }
                }
            }
            for w in &b.writes {
                let buf = self.buffer(w.buffer);
                if w.map.data_dims() != buf.prog_rank() || w.map.iter_dims() != b.dims() {
                    return Err(EtdgError::Invalid(format!(
                        "block '{}': write map is {}x{}, expected {}x{}",
                        b.name,
                        w.map.data_dims(),
                        w.map.iter_dims(),
                        buf.prog_rank(),
                        b.dims()
                    )));
                }
                if self.buffer(w.buffer).kind == BufferKind::Input {
                    return Err(EtdgError::Invalid(format!(
                        "block '{}' writes input buffer '{}'",
                        b.name, buf.name
                    )));
                }
            }
        }
        // Condition 3: at least one root buffer (an input) unless there are
        // no blocks at all.
        if !self.blocks.is_empty() && !self.buffers.iter().any(|b| b.kind == BufferKind::Input) {
            return Err(EtdgError::Invalid("no root (input) buffer node".into()));
        }
        self.check_single_assignment()?;
        self.check_acyclic()?;
        Ok(())
    }

    /// Single assignment: regions writing the same buffer must have
    /// pairwise-disjoint iteration domains when their write maps coincide;
    /// for differing injective maps the images are checked pointwise on a
    /// bounded sample.
    fn check_single_assignment(&self) -> Result<()> {
        for buf in 0..self.buffers.len() {
            let writers = self.writers_of(BufId(buf));
            for (ai, &a) in writers.iter().enumerate() {
                for &b in writers.iter().skip(ai + 1) {
                    let (ba, bb) = (&self.blocks[a.0], &self.blocks[b.0]);
                    let wa = ba
                        .writes
                        .iter()
                        .find(|w| w.buffer == BufId(buf))
                        .expect("writer");
                    let wb = bb
                        .writes
                        .iter()
                        .find(|w| w.buffer == BufId(buf))
                        .expect("writer");
                    if wa.map == wb.map && ba.extents == bb.extents {
                        // Same map: domains must be disjoint.
                        let mut joint = ba.domain.clone();
                        for c in bb.domain.constraints() {
                            joint.push(c.clone());
                        }
                        if !joint.is_empty()? {
                            return Err(EtdgError::Invalid(format!(
                                "blocks '{}' and '{}' write overlapping parts of '{}'",
                                ba.name, bb.name, self.buffers[buf].name
                            )));
                        }
                    } else {
                        // Different maps or hulls: sample-check image overlap.
                        let pa = sample_points(&ba.domain, &ba.extents, 512);
                        let pb = sample_points(&bb.domain, &bb.extents, 512);
                        let imgs_a: std::collections::HashSet<Vec<i64>> =
                            pa.iter().filter_map(|t| wa.map.apply(t).ok()).collect();
                        for t in &pb {
                            if let Ok(img) = wb.map.apply(t) {
                                if imgs_a.contains(&img) {
                                    return Err(EtdgError::Invalid(format!(
                                        "blocks '{}' and '{}' write overlapping parts of '{}'",
                                        ba.name, bb.name, self.buffers[buf].name
                                    )));
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Condition 5: no cycles in the cross-buffer producer→consumer
    /// relation. Blocks originating from the *same nest* (the boundary
    /// regions of one aggregate operator) all read and write distinct,
    /// non-overlapping instances of the same buffer node — the paper's SSA
    /// buffer-instance argument — so edges inside a nest group are governed
    /// by the element-level dependence analysis (`ft-passes`), not by this
    /// graph-level check.
    fn check_acyclic(&self) -> Result<()> {
        let n = self.blocks.len();
        // Edge a -> b when a writes a buffer that b reads, across nests.
        let mut adj = vec![Vec::new(); n];
        for (ai, a) in self.blocks.iter().enumerate() {
            for w in &a.writes {
                for reader in self.readers_of(w.buffer) {
                    if reader.0 != ai && self.blocks[reader.0].src_nest != a.src_nest {
                        adj[ai].push(reader.0);
                    }
                }
            }
        }
        // DFS cycle detection.
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks = vec![Mark::White; n];
        fn dfs(v: usize, adj: &[Vec<usize>], marks: &mut [Mark]) -> bool {
            marks[v] = Mark::Grey;
            for &w in &adj[v] {
                match marks[w] {
                    Mark::Grey => return false,
                    Mark::White => {
                        if !dfs(w, adj, marks) {
                            return false;
                        }
                    }
                    Mark::Black => {}
                }
            }
            marks[v] = Mark::Black;
            true
        }
        for v in 0..n {
            if marks[v] == Mark::White && !dfs(v, &adj, &mut marks) {
                return Err(EtdgError::Invalid(format!(
                    "cycle through block '{}'",
                    self.blocks[v].name
                )));
            }
        }
        Ok(())
    }

    /// Topological order of root blocks (producers before consumers).
    pub fn topo_order(&self) -> Result<Vec<BlockId>> {
        self.check_acyclic()?;
        let roots = self.roots();
        let mut order: Vec<BlockId> = Vec::new();
        let mut placed = vec![false; self.blocks.len()];
        // Kahn-style: repeatedly place blocks whose cross-buffer producers
        // are all placed.
        loop {
            let mut progressed = false;
            for &r in &roots {
                if placed[r.0] {
                    continue;
                }
                let ready = self.blocks[r.0].reads.iter().all(|read| match read {
                    RegionRead::Buffer { buffer, .. } => self
                        .writers_of(*buffer)
                        .iter()
                        .all(|&w| w == r || placed[w.0] || self.same_nest_group(w, r)),
                    RegionRead::Fill { .. } => true,
                });
                if ready {
                    order.push(r);
                    placed[r.0] = true;
                    progressed = true;
                }
            }
            if order.len() == roots.len() {
                return Ok(order);
            }
            if !progressed {
                // Regions of one nest may mutually read each other's output
                // buffer; fall back to source order for the remainder.
                for &r in &roots {
                    if !placed[r.0] {
                        order.push(r);
                        placed[r.0] = true;
                    }
                }
                return Ok(order);
            }
        }
    }

    fn same_nest_group(&self, a: BlockId, b: BlockId) -> bool {
        self.blocks[a.0].src_nest == self.blocks[b.0].src_nest
    }

    /// A human-readable multi-line description (used by examples/docs).
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "ETDG '{}': {} buffer node(s), {} block node(s), depth {}, dimension {}",
            self.name,
            self.buffers.len(),
            self.blocks.len(),
            self.depth(),
            self.dimension()
        );
        for (i, b) in self.buffers.iter().enumerate() {
            let _ = writeln!(
                s,
                "  buffer {} '{}' dims {:?} leaf {:?} ({:?})",
                i,
                b.name,
                b.dims,
                b.leaf_shape.dims(),
                b.kind
            );
        }
        for (i, blk) in self.blocks.iter().enumerate() {
            let ops: Vec<String> = blk.ops.iter().map(|o| o.to_string()).collect();
            let _ = writeln!(
                s,
                "  block {} '{}' p=[{}] extents {:?} reads {} writes {}",
                i,
                blk.name,
                ops.join(", "),
                blk.extents,
                blk.reads.len(),
                blk.writes.len()
            );
        }
        s
    }
}

/// Samples up to `limit` points of a domain (exhaustive when small).
pub fn sample_points(domain: &ConstraintSet, extents: &[usize], limit: usize) -> Vec<Vec<i64>> {
    let total: usize = extents.iter().product();
    let mut pts = Vec::new();
    let stride = (total / limit.max(1)).max(1);
    let mut idx = 0usize;
    while idx < total && pts.len() < limit {
        let mut t = Vec::with_capacity(extents.len());
        let mut rem = idx;
        for &e in extents.iter().rev() {
            t.push((rem % e) as i64);
            rem /= e;
        }
        t.reverse();
        if domain.contains(&t) {
            pts.push(t);
        }
        idx += stride;
    }
    pts
}
