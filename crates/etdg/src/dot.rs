//! Graphviz DOT rendering of an ETDG — the Figure 4-style picture.

use crate::graph::{Etdg, RegionRead};

/// Renders the graph in DOT format: buffer nodes as boxes, block nodes as
/// rounded records listing their operator vector, and access-map-annotated
/// edges (read edges into the block, write edges out).
pub fn to_dot(etdg: &Etdg) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", etdg.name);
    let _ = writeln!(s, "  rankdir=TB;");
    let _ = writeln!(s, "  node [fontname=\"monospace\"];");
    for (i, b) in etdg.buffers.iter().enumerate() {
        let _ = writeln!(
            s,
            "  buf{i} [shape=box, label=\"{}\\n{:?} of {:?}\", style=filled, \
             fillcolor=\"{}\"];",
            b.name,
            b.dims,
            b.leaf_shape.dims(),
            match b.kind {
                ft_core::BufferKind::Input => "lightblue",
                ft_core::BufferKind::Output => "lightgreen",
                ft_core::BufferKind::Intermediate => "lightgrey",
            }
        );
    }
    for (i, blk) in etdg.blocks.iter().enumerate() {
        let ops: Vec<String> = blk.ops.iter().map(|o| o.to_string()).collect();
        let _ = writeln!(
            s,
            "  blk{i} [shape=Mrecord, label=\"{}|p = [{}]\"];",
            blk.name.replace('/', "\\n"),
            ops.join(", ")
        );
        for (ri, read) in blk.reads.iter().enumerate() {
            match read {
                RegionRead::Buffer { buffer, map } => {
                    let _ = writeln!(
                        s,
                        "  buf{} -> blk{i} [label=\"in{ri}: o={:?}\"];",
                        buffer.0,
                        map.offset()
                    );
                }
                RegionRead::Fill { value, .. } => {
                    let _ = writeln!(s, "  fill{i}_{ri} [shape=plaintext, label=\"{value}\"];");
                    let _ = writeln!(s, "  fill{i}_{ri} -> blk{i} [style=dotted];");
                }
            }
        }
        for w in &blk.writes {
            let _ = writeln!(
                s,
                "  blk{i} -> buf{} [label=\"o={:?}\"];",
                w.buffer.0,
                w.map.offset()
            );
        }
        if let Some(parent) = blk.parent {
            let _ = writeln!(
                s,
                "  blk{} -> blk{i} [style=dashed, label=\"child\"];",
                parent.0
            );
        }
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;
    use ft_core::builders::stacked_rnn_program;

    #[test]
    fn dot_output_names_all_nodes() {
        let g = parse_program(&stacked_rnn_program(2, 3, 4, 8)).unwrap();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph"));
        for b in &g.buffers {
            assert!(dot.contains(&b.name), "missing buffer {}", b.name);
        }
        assert!(dot.contains("region0"));
        assert!(dot.contains("region3"));
        // The scan self-read offsets appear as edge labels.
        assert!(dot.contains("[0, -1, 0]"));
        assert!(dot.contains("[0, 0, -1]"));
        // Zero fills render as dotted inputs.
        assert!(dot.contains("style=dotted"));
    }
}
