//! [`OwnedBlocks`]: a claim-once partition of one output buffer into
//! disjoint mutable blocks, so pool workers write results **in place** —
//! no per-block staging vector, no lock, no second copy. This is the
//! primitive behind the multi-threaded GEMM's row-panel fan-out.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// A zero-initialized `f32` buffer split into fixed-size blocks that
/// workers claim exactly once each and write through without
/// synchronization.
///
/// Safety model: a block index can be claimed by at most one thread
/// (atomic swap), claims hand out non-overlapping windows, and
/// [`OwnedBlocks::take`] refuses to release the buffer while any claim
/// guard is alive or after the buffer was already taken.
pub struct OwnedBlocks {
    data: UnsafeCell<Vec<f32>>,
    /// Base pointer captured at construction; the `Vec` is never resized,
    /// so it stays valid until `take` steals the buffer.
    ptr: *mut f32,
    len: usize,
    block: usize,
    claimed: Vec<AtomicBool>,
    outstanding: AtomicUsize,
    closed: AtomicBool,
}

// SAFETY: all mutation goes through disjoint claimed windows (one claimer
// per block, enforced by `claimed`) or through `take`, which refuses to
// run while guards are outstanding.
unsafe impl Send for OwnedBlocks {}
unsafe impl Sync for OwnedBlocks {}

/// Exclusive view of one claimed block; derefs to `&mut [f32]`.
pub struct BlockGuard<'a> {
    owner: &'a OwnedBlocks,
    ptr: *mut f32,
    len: usize,
}

impl OwnedBlocks {
    /// Allocates a zeroed buffer of `len` floats split into blocks of
    /// `block_elems` (the last block may be shorter).
    pub fn new(len: usize, block_elems: usize) -> Arc<Self> {
        assert!(block_elems > 0, "block size must be positive");
        let mut data = vec![0.0f32; len];
        let ptr = data.as_mut_ptr();
        let nblocks = len.div_ceil(block_elems);
        Arc::new(OwnedBlocks {
            data: UnsafeCell::new(data),
            ptr,
            len,
            block: block_elems,
            claimed: (0..nblocks).map(|_| AtomicBool::new(false)).collect(),
            outstanding: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
        })
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.claimed.len()
    }

    /// Claims block `idx`, returning its window exactly once; `None` if
    /// the block was already claimed or the buffer already taken.
    pub fn claim(&self, idx: usize) -> Option<BlockGuard<'_>> {
        if idx >= self.claimed.len() || self.claimed[idx].swap(true, Ordering::AcqRel) {
            return None;
        }
        // Register the guard *before* checking `closed`: `take` closes
        // first and then reads `outstanding`, so either it sees our
        // registration, or we see `closed` and back out.
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        if self.closed.load(Ordering::SeqCst) {
            self.outstanding.fetch_sub(1, Ordering::SeqCst);
            return None;
        }
        let start = idx * self.block;
        let len = self.block.min(self.len - start);
        Some(BlockGuard {
            owner: self,
            // SAFETY: `start + len <= self.len` and the window is
            // exclusively ours by the `claimed` swap above.
            ptr: unsafe { self.ptr.add(start) },
            len,
        })
    }

    /// Steals the finished buffer. Returns `None` if any claim guard is
    /// still alive (results would be torn) or the buffer was already
    /// taken. Intended to be called after the worker barrier.
    pub fn take(&self) -> Option<Vec<f32>> {
        if self.closed.swap(true, Ordering::SeqCst) {
            return None;
        }
        if self.outstanding.load(Ordering::SeqCst) != 0 {
            // A guard is alive; reopen so the caller can retry later.
            self.closed.store(false, Ordering::SeqCst);
            return None;
        }
        // SAFETY: closed is set and no guards are outstanding, so no
        // other reference into the buffer exists.
        Some(std::mem::take(unsafe { &mut *self.data.get() }))
    }
}

impl std::ops::Deref for BlockGuard<'_> {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        // SAFETY: window is exclusively claimed and in bounds.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl std::ops::DerefMut for BlockGuard<'_> {
    fn deref_mut(&mut self) -> &mut [f32] {
        // SAFETY: window is exclusively claimed and in bounds.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }
}

impl Drop for BlockGuard<'_> {
    fn drop(&mut self) {
        self.owner.outstanding.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_partition_and_take() {
        let blocks = OwnedBlocks::new(10, 4);
        assert_eq!(blocks.num_blocks(), 3);
        {
            let mut b0 = blocks.claim(0).unwrap();
            let mut b2 = blocks.claim(2).unwrap();
            assert_eq!(b0.len(), 4);
            assert_eq!(b2.len(), 2); // ragged last block
            b0.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
            b2.copy_from_slice(&[9.0, 10.0]);
            assert!(blocks.claim(0).is_none(), "double claim must fail");
            assert!(blocks.take().is_none(), "take with live guards must fail");
        }
        {
            let mut b1 = blocks.claim(1).unwrap();
            b1.copy_from_slice(&[5.0, 6.0, 7.0, 8.0]);
        }
        let v = blocks.take().unwrap();
        assert_eq!(v, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]);
        assert!(blocks.take().is_none(), "second take must fail");
        assert!(blocks.claim(1).is_none(), "claim after take must fail");
    }

    #[test]
    fn concurrent_claims_are_exclusive() {
        let blocks = OwnedBlocks::new(64, 8);
        let claims = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for idx in 0..blocks.num_blocks() {
                        if let Some(mut g) = blocks.claim(idx) {
                            g.fill(idx as f32);
                            claims.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(claims.load(Ordering::Relaxed), 8);
        let v = blocks.take().unwrap();
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, (i / 8) as f32);
        }
    }
}
