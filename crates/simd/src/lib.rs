//! # ft-simd
//!
//! Portable SIMD kernel layer: the single home of every vectorized (and
//! every `unsafe`) inner loop in the FractalTensor reproduction. The
//! crates above it (`ft-tensor`, `ft-backend`) keep `#![forbid(unsafe_code)]`
//! and route their hot slices through the safe entry points here.
//!
//! ## Backend dispatch
//!
//! A [`Mode`] is resolved **once** at startup from the `FT_SIMD`
//! environment variable and CPU feature detection (see [`mode`]):
//!
//! | `FT_SIMD` | backend |
//! |-----------|---------|
//! | unset / `auto` | best supported: AVX2+FMA → SSE4.1 → scalar (x86_64), NEON (aarch64) |
//! | `scalar` | plain Rust loops, bit-identical to the pre-SIMD code |
//! | `sse` | SSE4.1 128-bit transcendentals, no FMA |
//! | `avx2` | AVX2 + FMA 256-bit kernels |
//! | `neon` | NEON 128-bit kernels with FMA (aarch64 only) |
//!
//! An unsupported request falls back down the same ladder — kernels verify
//! CPU capability before executing vector code, so a forged [`Mode`] can
//! never fault. Every kernel takes the mode as an explicit argument: call
//! sites hoist one [`mode()`] load per operation, and the parity suite can
//! exercise every backend in one process without racing on a global.
//!
//! ## Numeric contract
//!
//! * **Scalar mode reproduces the pre-SIMD code bitwise** — same ops, same
//!   order, `std` transcendentals.
//! * **Exact elementwise ops** (`add/sub/mul/div/max/scale/neg/relu/copy`)
//!   are bitwise identical in *every* mode: IEEE-754 lane ops equal the
//!   scalar ops element-for-element regardless of vector width.
//! * **GEMM** preserves the k-accumulation order in every mode. SSE mode is
//!   bitwise identical to scalar (mul+add, two roundings); AVX2/NEON fuse
//!   the multiply-add into a single rounding per element, which is the only
//!   arithmetic difference (documented FMA contraction, no reassociation).
//! * **Transcendentals** (`exp`/`sigmoid`/`tanh`) use a degree-6 polynomial
//!   (Cephes `expf` coefficients) in vector modes, with documented ulp
//!   bounds vs the `f64`-evaluated reference (see [`math`]): ≤ 4 ulp for
//!   `exp` on `[-87.3, 88.0]`, ≤ 8 ulp for `sigmoid`/`tanh`. The *scalar
//!   tail* of every vector kernel evaluates the **same** polynomial with
//!   the same rounding (via `f32::mul_add` in FMA modes), so an element's
//!   bit pattern does not depend on whether it landed in a vector lane or
//!   a ragged tail — kernels may therefore be applied row-wise or
//!   buffer-wise interchangeably.
//! * **Reductions** (row sum/max, softmax max+sum, dot) stay strictly
//!   sequential in every mode: no reassociation, identical bits everywhere.
//!
//! Within one process exactly one mode is active, so every execution path
//! (arena executor, interpreter, reference semantics) sees the same kernels
//! and path-vs-path bitwise parity holds in every mode.
//!
//! ## What lives here
//!
//! * [`math`] — vectorized `exp` / `sigmoid` / `tanh` / `silu` / softmax.
//! * elementwise kernels ([`add_into`], [`mul_assign`], …).
//! * GEMM primitives: the 4×8 register-tile [`gemm_ukr`] used by the packed
//!   kernel, [`madd`] (axpy), and [`small_gemm_epi`] — the per-point
//!   product with the fused epilogue applied in the register tile.
//! * [`EpiOp`] / [`apply_epi`] — the epilogue micro-ops the plan-time
//!   fusion pass (ft-passes) attaches to GEMMs and elementwise chains.
//! * [`OwnedBlocks`] — a claim-once disjoint-block view over one output
//!   buffer, letting pool workers write results in place without locks or
//!   copies (used by `matmul_mt`).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

use std::sync::atomic::{AtomicU8, Ordering};

mod blocks;
mod epi;
mod kernels;
pub mod math;
#[cfg(target_arch = "aarch64")]
mod neon;
mod scalar;
#[cfg(target_arch = "x86_64")]
mod x86;

pub use blocks::{BlockGuard, OwnedBlocks};
pub use epi::{apply_epi, operand_count, EpiOp};
pub use kernels::*;

/// Microkernel register-block height (rows of A per panel).
pub const MR: usize = 4;
/// Microkernel register-block width (columns of B per panel).
pub const NR: usize = 8;

/// A SIMD backend. See the crate docs for the dispatch and numeric
/// contract of each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Plain Rust loops; bit-identical to the pre-SIMD scalar code.
    Scalar,
    /// SSE4.1 128-bit vectors, no FMA (x86_64).
    #[cfg(target_arch = "x86_64")]
    Sse,
    /// AVX2 + FMA 256-bit vectors (x86_64).
    #[cfg(target_arch = "x86_64")]
    Avx2,
    /// NEON 128-bit vectors with FMA (aarch64).
    #[cfg(target_arch = "aarch64")]
    Neon,
}

impl Mode {
    /// Whether this backend's transcendental polynomials (and scalar
    /// tails) contract multiply-add into one rounding.
    pub fn fused(self) -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            matches!(self, Mode::Avx2)
        }
        #[cfg(target_arch = "aarch64")]
        {
            matches!(self, Mode::Neon)
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            false
        }
    }

    /// Whether the current CPU can execute this backend.
    pub fn supported(self) -> bool {
        match self {
            Mode::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Mode::Sse => std::arch::is_x86_feature_detected!("sse4.1"),
            #[cfg(target_arch = "x86_64")]
            Mode::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "aarch64")]
            Mode::Neon => std::arch::is_aarch64_feature_detected!("neon"),
        }
    }

    /// Short lowercase name (`"scalar"`, `"sse"`, `"avx2"`, `"neon"`).
    pub fn name(self) -> &'static str {
        match self {
            Mode::Scalar => "scalar",
            #[cfg(target_arch = "x86_64")]
            Mode::Sse => "sse",
            #[cfg(target_arch = "x86_64")]
            Mode::Avx2 => "avx2",
            #[cfg(target_arch = "aarch64")]
            Mode::Neon => "neon",
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            Mode::Scalar => 1,
            #[cfg(target_arch = "x86_64")]
            Mode::Sse => 2,
            #[cfg(target_arch = "x86_64")]
            Mode::Avx2 => 3,
            #[cfg(target_arch = "aarch64")]
            Mode::Neon => 4,
        }
    }

    fn from_u8(v: u8) -> Option<Mode> {
        match v {
            1 => Some(Mode::Scalar),
            #[cfg(target_arch = "x86_64")]
            2 => Some(Mode::Sse),
            #[cfg(target_arch = "x86_64")]
            3 => Some(Mode::Avx2),
            #[cfg(target_arch = "aarch64")]
            4 => Some(Mode::Neon),
            _ => None,
        }
    }
}

/// The process-wide mode: 0 = unresolved, otherwise `Mode::to_u8`.
static MODE: AtomicU8 = AtomicU8::new(0);

/// Best backend the CPU supports.
fn detect() -> Mode {
    #[cfg(target_arch = "x86_64")]
    {
        if Mode::Avx2.supported() {
            return Mode::Avx2;
        }
        if Mode::Sse.supported() {
            return Mode::Sse;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if Mode::Neon.supported() {
            return Mode::Neon;
        }
    }
    Mode::Scalar
}

fn resolve_from_env() -> Mode {
    let requested = std::env::var("FT_SIMD").unwrap_or_default();
    let m = match requested.to_ascii_lowercase().as_str() {
        "scalar" | "off" | "0" => Mode::Scalar,
        #[cfg(target_arch = "x86_64")]
        "sse" => Mode::Sse,
        #[cfg(target_arch = "x86_64")]
        "avx2" => Mode::Avx2,
        #[cfg(target_arch = "aarch64")]
        "neon" => Mode::Neon,
        _ => detect(),
    };
    if m.supported() {
        m
    } else {
        detect()
    }
}

/// The process-wide SIMD mode, resolved once from `FT_SIMD` + CPU feature
/// detection on first use. Call sites hoist one load per kernel batch and
/// pass the mode down explicitly.
pub fn mode() -> Mode {
    match Mode::from_u8(MODE.load(Ordering::Relaxed)) {
        Some(m) => m,
        None => {
            let m = resolve_from_env();
            // A concurrent first call may race; both resolve identically.
            MODE.store(m.to_u8(), Ordering::Relaxed);
            m
        }
    }
}

/// Overrides the process-wide mode. Intended for parity tests and the
/// per-kernel speedup benchmark; production code resolves via [`mode`].
/// Unsupported modes are ignored (the CPU cannot execute them).
pub fn set_mode(m: Mode) {
    if m.supported() {
        MODE.store(m.to_u8(), Ordering::Relaxed);
    }
}

/// Human-readable description of the resolved backend and why, for logs
/// and bench reports (e.g. `"avx2 (detected: avx2+fma)"`).
pub fn describe() -> String {
    let m = mode();
    let forced = std::env::var("FT_SIMD").ok().filter(|v| !v.is_empty());
    match forced {
        Some(v) => format!("{} (FT_SIMD={v})", m.name()),
        None => format!("{} (auto-detected)", m.name()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_always_supported() {
        assert!(Mode::Scalar.supported());
        assert!(!Mode::Scalar.fused());
    }

    #[test]
    fn mode_roundtrips_through_u8() {
        for m in [
            Mode::Scalar,
            #[cfg(target_arch = "x86_64")]
            Mode::Sse,
            #[cfg(target_arch = "x86_64")]
            Mode::Avx2,
        ] {
            assert_eq!(Mode::from_u8(m.to_u8()), Some(m));
        }
        assert_eq!(Mode::from_u8(0), None);
        assert_eq!(Mode::from_u8(99), None);
    }

    #[test]
    fn set_mode_ignores_unsupported() {
        let before = mode();
        set_mode(before); // no-op round trip keeps the resolved mode
        assert_eq!(mode(), before);
    }

    #[test]
    fn detect_is_supported() {
        assert!(detect().supported());
    }
}
