//! Scalar reference kernels.
//!
//! Two families live here:
//!
//! * the **scalar-mode** kernels — plain Rust loops that reproduce the
//!   pre-SIMD code bitwise (`std` transcendentals, mul+add GEMM), and
//! * the **polynomial** transcendentals ([`exp_fma`] / [`exp_nofma`] and
//!   friends) that evaluate the exact per-lane operation sequence of the
//!   vector backends, so ragged tails are bitwise identical to lanes.

/// Cephes `expf` range-reduction and polynomial constants. The polynomial
/// approximates `exp(r)` as `1 + r + r²·P(r)` for `r ∈ [-½ln2, ½ln2]`.
pub(crate) mod poly {
    /// `log2(e)`.
    pub const LOG2E: f32 = std::f32::consts::LOG2_E;
    /// High part of `ln 2` (exact in 11 bits, so `n·LN2_HI` is exact).
    #[allow(clippy::excessive_precision)] // written as the exact 11-bit value
    pub const LN2_HI: f32 = 0.693_359_375;
    /// Low correction part of `ln 2`.
    pub const LN2_LO: f32 = -2.121_944_4e-4;
    /// Inputs above this overflow `f32` (`ln(f32::MAX)` rounded down).
    pub const EXP_HI: f32 = 88.722_83;
    /// Inputs below this underflow to the smallest normal.
    pub const EXP_LO: f32 = -87.336_55;
    /// Polynomial coefficients, highest degree first.
    pub const C: [f32; 6] = [
        1.987_569_2e-4,
        1.398_2e-3,
        8.333_452e-3,
        4.166_579_6e-2,
        1.666_666_5e-1,
        5.000_000_3e-1,
    ];
    /// Below this |x|, `tanh` uses a direct minimax polynomial — the
    /// `1 - 2/(exp(2|x|)+1)` identity cancels catastrophically near 0.
    pub const TANH_SMALL: f32 = 0.625;
    /// Cephes `tanhf` small-argument coefficients, highest degree first:
    /// `tanh(x) = x + x·z·P(z)` with `z = x²` for `|x| < TANH_SMALL`.
    #[allow(clippy::excessive_precision)] // Cephes coefficients verbatim
    pub const TANH_C: [f32; 5] = [
        -5.704_988_7e-3,
        2.063_908_9e-2,
        -5.373_971_6e-2,
        1.333_144_2e-1,
        -3.333_328_2e-1,
    ];
}

use poly::*;

/// Scale `y` by `2^n` via exponent-bit arithmetic; `n ∈ [-126, 127]`.
#[inline(always)]
fn ldexp(y: f32, n: f32) -> f32 {
    y * f32::from_bits((((n as i32) + 127) << 23) as u32)
}

/// Polynomial `exp` with fused multiply-adds: the per-lane operation
/// sequence of the AVX2/NEON backends. ≤ 4 ulp on `[-87.3, 88.0]`;
/// saturates to `+inf` above [`poly::EXP_HI`] and to `exp(EXP_LO)`
/// (≈ 1.2e-38) below [`poly::EXP_LO`]; NaN propagates.
#[inline]
pub fn exp_fma(x: f32) -> f32 {
    if x.is_nan() {
        return x;
    }
    if x > EXP_HI {
        return f32::INFINITY;
    }
    let xc = x.clamp(EXP_LO, EXP_HI);
    let n = (xc * LOG2E).round_ties_even().min(127.0);
    let r = (-n).mul_add(LN2_HI, xc);
    let r = (-n).mul_add(LN2_LO, r);
    let p = C[0];
    let p = p.mul_add(r, C[1]);
    let p = p.mul_add(r, C[2]);
    let p = p.mul_add(r, C[3]);
    let p = p.mul_add(r, C[4]);
    let p = p.mul_add(r, C[5]);
    let y = p.mul_add(r * r, r) + 1.0;
    ldexp(y, n)
}

/// Polynomial `exp` without FMA: the per-lane operation sequence of the
/// SSE backend (mul + add, two roundings per step). Same bounds as
/// [`exp_fma`].
#[inline]
pub fn exp_nofma(x: f32) -> f32 {
    if x.is_nan() {
        return x;
    }
    if x > EXP_HI {
        return f32::INFINITY;
    }
    let xc = x.clamp(EXP_LO, EXP_HI);
    let n = (xc * LOG2E).round_ties_even().min(127.0);
    let r = xc - n * LN2_HI;
    let r = r - n * LN2_LO;
    let p = C[0];
    let p = p * r + C[1];
    let p = p * r + C[2];
    let p = p * r + C[3];
    let p = p * r + C[4];
    let p = p * r + C[5];
    let y = (p * (r * r) + r) + 1.0;
    ldexp(y, n)
}

/// `1 / (1 + exp(-x))` built on [`exp_fma`].
#[inline]
pub fn sigmoid_fma(x: f32) -> f32 {
    1.0 / (1.0 + exp_fma(-x))
}

/// `1 / (1 + exp(-x))` built on [`exp_nofma`].
#[inline]
pub fn sigmoid_nofma(x: f32) -> f32 {
    1.0 / (1.0 + exp_nofma(-x))
}

/// Polynomial `tanh` built on [`exp_fma`]: the small-argument minimax
/// polynomial below [`poly::TANH_SMALL`] (the exp identity cancels near
/// 0), `sign(x) · (1 - 2 / (exp(2|x|) + 1))` above. Exact at 0
/// (±0 → ±0) and saturates to ±1.
#[inline]
pub fn tanh_fma(x: f32) -> f32 {
    let ax = f32::from_bits(x.to_bits() & 0x7fff_ffff);
    // Both branches compute the magnitude from |x| and restore the sign
    // bit at the end, so ±0 and odd symmetry are exact.
    let m = if ax < TANH_SMALL {
        let z = x * x;
        let mut p = TANH_C[0];
        for &c in &TANH_C[1..] {
            p = p.mul_add(z, c);
        }
        (p * z).mul_add(ax, ax)
    } else {
        let e = exp_fma(2.0 * ax);
        1.0 - 2.0 / (e + 1.0)
    };
    f32::from_bits(m.to_bits() | (x.to_bits() & 0x8000_0000))
}

/// [`tanh_fma`] without FMA (SSE lane sequence).
#[inline]
pub fn tanh_nofma(x: f32) -> f32 {
    let ax = f32::from_bits(x.to_bits() & 0x7fff_ffff);
    let m = if ax < TANH_SMALL {
        let z = x * x;
        let mut p = TANH_C[0];
        for &c in &TANH_C[1..] {
            p = p * z + c;
        }
        (p * z) * ax + ax
    } else {
        let e = exp_nofma(2.0 * ax);
        1.0 - 2.0 / (e + 1.0)
    };
    f32::from_bits(m.to_bits() | (x.to_bits() & 0x8000_0000))
}

/// `x · sigmoid(x)` built on [`sigmoid_fma`].
#[inline]
pub fn silu_fma(x: f32) -> f32 {
    x * sigmoid_fma(x)
}

/// `x · sigmoid(x)` built on [`sigmoid_nofma`].
#[inline]
pub fn silu_nofma(x: f32) -> f32 {
    x * sigmoid_nofma(x)
}

/// Scalar-mode `sigmoid`: the pre-SIMD definition, bitwise.
#[inline]
pub fn sigmoid_std(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Scalar-mode `silu`.
#[inline]
pub fn silu_std(x: f32) -> f32 {
    x * sigmoid_std(x)
}

/// Scalar 4×8 microkernel: `acc += apᵀ · bp` over one k-block, mul+add
/// per element (two roundings) — the pre-SIMD accumulation, bitwise.
pub fn gemm_ukr(ap: &[f32], bp: &[f32], acc: &mut [[f32; crate::NR]; crate::MR]) {
    for (a_col, b_row) in ap.chunks_exact(crate::MR).zip(bp.chunks_exact(crate::NR)) {
        for (row, &aik) in acc.iter_mut().zip(a_col.iter()) {
            for (d, &bv) in row.iter_mut().zip(b_row.iter()) {
                *d += aik * bv;
            }
        }
    }
}

/// Scalar axpy: `dst += a · x`, mul+add per element.
pub fn madd(dst: &mut [f32], a: f32, x: &[f32]) {
    for (d, &v) in dst.iter_mut().zip(x) {
        *d += a * v;
    }
}

/// Scalar i-k-j small product: `c += a @ b` over row-major slices, with
/// the pre-SIMD zero-skip (an `a` zero contributes nothing, even against
/// non-finite `b`).
pub fn small_gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, c: &mut [f32]) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (kk, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (cv, bv) in c_row.iter_mut().zip(b_row) {
                *cv += aik * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ulp distance between `x` and the correctly rounded `f64` oracle.
    fn ulp_err(x: f32, oracle: f64) -> f64 {
        let exact = oracle as f32;
        if x == exact {
            return 0.0;
        }
        (exact.to_bits() as i64 - x.to_bits() as i64).unsigned_abs() as f64
    }

    #[test]
    fn exp_poly_ulp_bound() {
        // Dense sweep of the documented range: both polynomial variants
        // stay within 4 ulp of the f64-evaluated reference.
        let mut worst: f64 = 0.0;
        let mut x = -87.3f32;
        while x < 88.0 {
            let oracle = (x as f64).exp();
            worst = worst.max(ulp_err(exp_fma(x), oracle));
            worst = worst.max(ulp_err(exp_nofma(x), oracle));
            x += 0.0173;
        }
        assert!(worst <= 4.0, "exp poly worst error {worst} ulp");
    }

    #[test]
    fn sigmoid_tanh_ulp_bound() {
        let mut worst_sig: f64 = 0.0;
        let mut worst_th: f64 = 0.0;
        let mut arg_sig = 0.0f32;
        let mut arg_th = 0.0f32;
        let mut x = -30.0f32;
        while x < 30.0 {
            let sig = 1.0 / (1.0 + (-(x as f64)).exp());
            let th = (x as f64).tanh();
            for v in [sigmoid_fma(x), sigmoid_nofma(x)] {
                let e = ulp_err(v, sig);
                if e > worst_sig {
                    worst_sig = e;
                    arg_sig = x;
                }
            }
            for v in [tanh_fma(x), tanh_nofma(x)] {
                let e = ulp_err(v, th);
                if e > worst_th {
                    worst_th = e;
                    arg_th = x;
                }
            }
            x += 0.00917;
        }
        eprintln!(
            "worst sigmoid {worst_sig} ulp at {arg_sig}; worst tanh {worst_th} ulp at {arg_th}"
        );
        assert!(
            worst_sig <= 8.0 && worst_th <= 8.0,
            "sigmoid worst {worst_sig} ulp at {arg_sig}, tanh worst {worst_th} ulp at {arg_th}"
        );
    }

    #[test]
    fn exp_edge_cases() {
        for f in [exp_fma, exp_nofma] {
            assert_eq!(f(0.0), 1.0);
            assert_eq!(f(f32::INFINITY), f32::INFINITY);
            assert_eq!(f(200.0), f32::INFINITY);
            assert_eq!(f(f32::NEG_INFINITY), f(poly::EXP_LO));
            assert!(f(f32::NAN).is_nan());
            assert!(f(-200.0) > 0.0 && f(-200.0) < 1.3e-38);
        }
    }

    #[test]
    fn tanh_edge_cases() {
        for f in [tanh_fma, tanh_nofma] {
            assert_eq!(f(0.0).to_bits(), 0.0f32.to_bits());
            assert_eq!(f(-0.0).to_bits(), (-0.0f32).to_bits());
            assert_eq!(f(50.0), 1.0);
            assert_eq!(f(-50.0), -1.0);
            assert!(f(f32::NAN).is_nan());
        }
    }

    #[test]
    fn sigmoid_saturates() {
        for f in [sigmoid_fma, sigmoid_nofma, sigmoid_std] {
            assert_eq!(f(100.0), 1.0);
            assert_eq!(f(-100.0), 0.0);
            assert!((f(0.0) - 0.5).abs() < 1e-7);
        }
    }
}
