//! aarch64 NEON backend (128-bit lanes, FMA).
//!
//! Mirrors the AVX2 backend at width 4: the transcendental cores evaluate
//! the same fused polynomial as [`crate::scalar::exp_fma`] operation for
//! operation, and GEMM fuses the multiply-add with the same k order.
//! Exact elementwise ops need no intrinsics here — NEON is the aarch64
//! baseline, so the scalar fallback loops already autovectorize.

#![allow(unsafe_code)]

use core::arch::aarch64::*;

use crate::scalar::{self, poly::*};

/// Lane-parallel [`scalar::exp_fma`] over one 128-bit vector.
#[inline]
#[target_feature(enable = "neon")]
unsafe fn vexp_neon(x: float32x4_t) -> float32x4_t {
    let nan_mask = vmvnq_u32(vceqq_f32(x, x));
    let hi_mask = vcgtq_f32(x, vdupq_n_f32(EXP_HI));
    let xc = vminq_f32(vmaxq_f32(x, vdupq_n_f32(EXP_LO)), vdupq_n_f32(EXP_HI));
    let n = vrndnq_f32(vmulq_f32(xc, vdupq_n_f32(LOG2E)));
    let n = vminq_f32(n, vdupq_n_f32(127.0));
    let r = vfmsq_f32(xc, n, vdupq_n_f32(LN2_HI));
    let r = vfmsq_f32(r, n, vdupq_n_f32(LN2_LO));
    let mut p = vdupq_n_f32(C[0]);
    for &c in &C[1..] {
        p = vfmaq_f32(vdupq_n_f32(c), p, r);
    }
    let rr = vmulq_f32(r, r);
    let y = vaddq_f32(vfmaq_f32(r, p, rr), vdupq_n_f32(1.0));
    let scale = vreinterpretq_f32_s32(vshlq_n_s32::<23>(vaddq_s32(
        vcvtq_s32_f32(n),
        vdupq_n_s32(127),
    )));
    let y = vmulq_f32(y, scale);
    let y = vbslq_f32(hi_mask, vdupq_n_f32(f32::INFINITY), y);
    vbslq_f32(nan_mask, x, y)
}

/// Lane-parallel [`scalar::sigmoid_fma`].
#[inline]
#[target_feature(enable = "neon")]
unsafe fn vsigmoid_neon(x: float32x4_t) -> float32x4_t {
    let one = vdupq_n_f32(1.0);
    vdivq_f32(one, vaddq_f32(one, vexp_neon(vnegq_f32(x))))
}

/// Lane-parallel [`scalar::tanh_fma`]: small-argument polynomial lanes
/// blended with the exp-identity lanes on `|x| < TANH_SMALL`.
#[inline]
#[target_feature(enable = "neon")]
unsafe fn vtanh_neon(x: float32x4_t) -> float32x4_t {
    let two = vdupq_n_f32(2.0);
    let one = vdupq_n_f32(1.0);
    let ax = vabsq_f32(x);
    let e = vexp_neon(vmulq_f32(two, ax));
    let big = vsubq_f32(one, vdivq_f32(two, vaddq_f32(e, one)));
    let z = vmulq_f32(x, x);
    let mut p = vdupq_n_f32(TANH_C[0]);
    for &c in &TANH_C[1..] {
        p = vfmaq_f32(vdupq_n_f32(c), p, z);
    }
    let small = vfmaq_f32(ax, vmulq_f32(p, z), ax);
    let small_mask = vcltq_f32(ax, vdupq_n_f32(TANH_SMALL));
    let m = vbslq_f32(small_mask, small, big);
    let sign = vandq_u32(vreinterpretq_u32_f32(x), vdupq_n_u32(0x8000_0000));
    vreinterpretq_f32_u32(vorrq_u32(vreinterpretq_u32_f32(m), sign))
}

/// Lane-parallel [`scalar::silu_fma`].
#[inline]
#[target_feature(enable = "neon")]
unsafe fn vsilu_neon(x: float32x4_t) -> float32x4_t {
    vmulq_f32(x, vsigmoid_neon(x))
}

macro_rules! transcendental_ip_neon {
    ($name:ident, $vec:ident, $tail:path) => {
        /// In-place transcendental: NEON lanes + bitwise-identical tail.
        #[target_feature(enable = "neon")]
        pub unsafe fn $name(dst: &mut [f32]) {
            let mut chunks = dst.chunks_exact_mut(4);
            for c in &mut chunks {
                let v = vld1q_f32(c.as_ptr());
                vst1q_f32(c.as_mut_ptr(), $vec(v));
            }
            for d in chunks.into_remainder() {
                *d = $tail(*d);
            }
        }
    };
}

transcendental_ip_neon!(exp_ip_neon, vexp_neon, scalar::exp_fma);
transcendental_ip_neon!(sigmoid_ip_neon, vsigmoid_neon, scalar::sigmoid_fma);
transcendental_ip_neon!(tanh_ip_neon, vtanh_neon, scalar::tanh_fma);
transcendental_ip_neon!(silu_ip_neon, vsilu_neon, scalar::silu_fma);

/// 4×8 register-tile microkernel with fused multiply-add; k order matches
/// the scalar kernel.
#[target_feature(enable = "neon")]
pub unsafe fn gemm_ukr_neon(ap: &[f32], bp: &[f32], acc: &mut [[f32; crate::NR]; crate::MR]) {
    let mut c: [[float32x4_t; 2]; 4] = [
        [
            vld1q_f32(acc[0].as_ptr()),
            vld1q_f32(acc[0].as_ptr().add(4)),
        ],
        [
            vld1q_f32(acc[1].as_ptr()),
            vld1q_f32(acc[1].as_ptr().add(4)),
        ],
        [
            vld1q_f32(acc[2].as_ptr()),
            vld1q_f32(acc[2].as_ptr().add(4)),
        ],
        [
            vld1q_f32(acc[3].as_ptr()),
            vld1q_f32(acc[3].as_ptr().add(4)),
        ],
    ];
    for (a_col, b_row) in ap.chunks_exact(crate::MR).zip(bp.chunks_exact(crate::NR)) {
        let b0 = vld1q_f32(b_row.as_ptr());
        let b1 = vld1q_f32(b_row.as_ptr().add(4));
        for (row, &aik) in c.iter_mut().zip(a_col.iter()) {
            row[0] = vfmaq_n_f32(row[0], b0, aik);
            row[1] = vfmaq_n_f32(row[1], b1, aik);
        }
    }
    for (dst, row) in acc.iter_mut().zip(c.iter()) {
        vst1q_f32(dst.as_mut_ptr(), row[0]);
        vst1q_f32(dst.as_mut_ptr().add(4), row[1]);
    }
}

/// Axpy `dst += a · x`: fused lanes, `mul_add` tail (bitwise == lanes).
#[target_feature(enable = "neon")]
pub unsafe fn madd_neon(dst: &mut [f32], a: f32, x: &[f32]) {
    let mut dc = dst.chunks_exact_mut(4);
    let mut xc = x.chunks_exact(4);
    for (d, s) in (&mut dc).zip(&mut xc) {
        let v = vfmaq_n_f32(vld1q_f32(d.as_ptr()), vld1q_f32(s.as_ptr()), a);
        vst1q_f32(d.as_mut_ptr(), v);
    }
    for (d, &v) in dc.into_remainder().iter_mut().zip(xc.remainder()) {
        *d = a.mul_add(v, *d);
    }
}
