//! x86_64 backends: AVX2+FMA (256-bit) and SSE4.1 (128-bit, no FMA).
//!
//! Every function here is `unsafe` with a `#[target_feature]` contract;
//! the safe dispatch wrappers in [`crate::kernels`] verify CPU support
//! before calling in. Exact elementwise kernels are written as plain
//! loops inside a `target_feature` function — the autovectorizer emits
//! full-width IEEE lane ops, so results are bitwise identical to the
//! scalar fallback. Transcendentals and GEMM use explicit intrinsics;
//! their ragged tails call the matching polynomial variants in
//! [`crate::scalar`], which are bitwise identical to the lanes.

#![allow(unsafe_code)]

use core::arch::x86_64::*;

use crate::scalar::{self, poly::*};
use crate::EpiOp;

// ---------------------------------------------------------------------------
// Exact elementwise kernels (AVX2 autovectorized; bitwise == scalar).
// ---------------------------------------------------------------------------

macro_rules! binary_into {
    ($name:ident, $op:expr) => {
        /// `dst[i] = op(a[i], b[i])` with AVX2 lanes; bitwise == scalar.
        #[target_feature(enable = "avx2")]
        pub unsafe fn $name(dst: &mut [f32], a: &[f32], b: &[f32]) {
            let f = $op;
            for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
                *d = f(x, y);
            }
        }
    };
}

binary_into!(add_into_avx2, |x: f32, y: f32| x + y);
binary_into!(sub_into_avx2, |x: f32, y: f32| x - y);
binary_into!(mul_into_avx2, |x: f32, y: f32| x * y);
binary_into!(div_into_avx2, |x: f32, y: f32| x / y);
binary_into!(max_into_avx2, f32::max);

macro_rules! binary_assign {
    ($name:ident, $op:expr) => {
        /// `dst[i] = op(dst[i], rhs[i])` with AVX2 lanes; bitwise == scalar.
        #[target_feature(enable = "avx2")]
        pub unsafe fn $name(dst: &mut [f32], rhs: &[f32]) {
            let f = $op;
            for (d, &y) in dst.iter_mut().zip(rhs) {
                *d = f(*d, y);
            }
        }
    };
}

binary_assign!(add_assign_avx2, |x: f32, y: f32| x + y);
binary_assign!(sub_assign_avx2, |x: f32, y: f32| x - y);
binary_assign!(rsub_assign_avx2, |x: f32, y: f32| y - x);
binary_assign!(mul_assign_avx2, |x: f32, y: f32| x * y);
binary_assign!(div_assign_avx2, |x: f32, y: f32| x / y);
binary_assign!(rdiv_assign_avx2, |x: f32, y: f32| y / x);
binary_assign!(max_assign_avx2, f32::max);

macro_rules! unary_ip {
    ($name:ident, $op:expr) => {
        /// `dst[i] = op(dst[i])` with AVX2 lanes; bitwise == scalar.
        #[target_feature(enable = "avx2")]
        pub unsafe fn $name(dst: &mut [f32]) {
            let f = $op;
            for d in dst.iter_mut() {
                *d = f(*d);
            }
        }
    };
}

unary_ip!(neg_ip_avx2, |x: f32| -x);
unary_ip!(relu_ip_avx2, |x: f32| x.max(0.0));

/// `dst[i] *= c` with AVX2 lanes; bitwise == scalar.
#[target_feature(enable = "avx2")]
pub unsafe fn scale_ip_avx2(dst: &mut [f32], c: f32) {
    for d in dst.iter_mut() {
        *d *= c;
    }
}

/// `dst[i] += c` with AVX2 lanes; bitwise == scalar.
#[target_feature(enable = "avx2")]
pub unsafe fn add_scalar_ip_avx2(dst: &mut [f32], c: f32) {
    for d in dst.iter_mut() {
        *d += c;
    }
}

// ---------------------------------------------------------------------------
// AVX2 transcendental cores.
// ---------------------------------------------------------------------------

/// Polynomial `exp` over one 256-bit vector: the lane-parallel version of
/// [`scalar::exp_fma`], operation for operation.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn vexp256(x: __m256) -> __m256 {
    let nan_mask = _mm256_cmp_ps::<_CMP_UNORD_Q>(x, x);
    let hi_mask = _mm256_cmp_ps::<_CMP_GT_OQ>(x, _mm256_set1_ps(EXP_HI));
    let xc = _mm256_min_ps(
        _mm256_max_ps(x, _mm256_set1_ps(EXP_LO)),
        _mm256_set1_ps(EXP_HI),
    );
    let n = _mm256_round_ps::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(_mm256_mul_ps(
        xc,
        _mm256_set1_ps(LOG2E),
    ));
    let n = _mm256_min_ps(n, _mm256_set1_ps(127.0));
    let r = _mm256_fnmadd_ps(n, _mm256_set1_ps(LN2_HI), xc);
    let r = _mm256_fnmadd_ps(n, _mm256_set1_ps(LN2_LO), r);
    let mut p = _mm256_set1_ps(C[0]);
    for &c in &C[1..] {
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(c));
    }
    let rr = _mm256_mul_ps(r, r);
    let y = _mm256_add_ps(_mm256_fmadd_ps(p, rr, r), _mm256_set1_ps(1.0));
    let scale = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
        _mm256_cvtps_epi32(n),
        _mm256_set1_epi32(127),
    )));
    let y = _mm256_mul_ps(y, scale);
    let y = _mm256_blendv_ps(y, _mm256_set1_ps(f32::INFINITY), hi_mask);
    _mm256_blendv_ps(y, x, nan_mask)
}

/// Lane-parallel [`scalar::sigmoid_fma`].
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn vsigmoid256(x: __m256) -> __m256 {
    let neg = _mm256_xor_ps(x, _mm256_set1_ps(-0.0));
    let one = _mm256_set1_ps(1.0);
    _mm256_div_ps(one, _mm256_add_ps(one, vexp256(neg)))
}

/// Lane-parallel [`scalar::tanh_fma`]: small-argument polynomial lanes
/// blended with the exp-identity lanes on `|x| < TANH_SMALL`.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn vtanh256(x: __m256) -> __m256 {
    let sign = _mm256_set1_ps(-0.0);
    let ax = _mm256_andnot_ps(sign, x);
    let two = _mm256_set1_ps(2.0);
    let one = _mm256_set1_ps(1.0);
    let e = vexp256(_mm256_mul_ps(two, ax));
    let big = _mm256_sub_ps(one, _mm256_div_ps(two, _mm256_add_ps(e, one)));
    let z = _mm256_mul_ps(x, x);
    let mut p = _mm256_set1_ps(TANH_C[0]);
    for &c in &TANH_C[1..] {
        p = _mm256_fmadd_ps(p, z, _mm256_set1_ps(c));
    }
    let small = _mm256_fmadd_ps(_mm256_mul_ps(p, z), ax, ax);
    let small_mask = _mm256_cmp_ps::<_CMP_LT_OQ>(ax, _mm256_set1_ps(TANH_SMALL));
    let m = _mm256_blendv_ps(big, small, small_mask);
    _mm256_or_ps(m, _mm256_and_ps(sign, x))
}

/// Lane-parallel [`scalar::silu_fma`].
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn vsilu256(x: __m256) -> __m256 {
    _mm256_mul_ps(x, vsigmoid256(x))
}

macro_rules! transcendental_ip_avx2 {
    ($name:ident, $vec:ident, $tail:path) => {
        /// In-place transcendental: AVX2 lanes + bitwise-identical tail.
        #[target_feature(enable = "avx2", enable = "fma")]
        pub unsafe fn $name(dst: &mut [f32]) {
            let mut chunks = dst.chunks_exact_mut(8);
            for c in &mut chunks {
                let v = _mm256_loadu_ps(c.as_ptr());
                _mm256_storeu_ps(c.as_mut_ptr(), $vec(v));
            }
            for d in chunks.into_remainder() {
                *d = $tail(*d);
            }
        }
    };
}

transcendental_ip_avx2!(exp_ip_avx2, vexp256, scalar::exp_fma);
transcendental_ip_avx2!(sigmoid_ip_avx2, vsigmoid256, scalar::sigmoid_fma);
transcendental_ip_avx2!(tanh_ip_avx2, vtanh256, scalar::tanh_fma);
transcendental_ip_avx2!(silu_ip_avx2, vsilu256, scalar::silu_fma);

// ---------------------------------------------------------------------------
// SSE4.1 transcendental cores (no FMA: mul + add, two roundings).
// ---------------------------------------------------------------------------

/// Polynomial `exp` over one 128-bit vector: the lane-parallel version of
/// [`scalar::exp_nofma`], operation for operation.
#[inline]
#[target_feature(enable = "sse4.1")]
unsafe fn vexp128(x: __m128) -> __m128 {
    let nan_mask = _mm_cmpunord_ps(x, x);
    let hi_mask = _mm_cmpgt_ps(x, _mm_set1_ps(EXP_HI));
    let xc = _mm_min_ps(_mm_max_ps(x, _mm_set1_ps(EXP_LO)), _mm_set1_ps(EXP_HI));
    let n = _mm_round_ps::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(_mm_mul_ps(
        xc,
        _mm_set1_ps(LOG2E),
    ));
    let n = _mm_min_ps(n, _mm_set1_ps(127.0));
    let r = _mm_sub_ps(xc, _mm_mul_ps(n, _mm_set1_ps(LN2_HI)));
    let r = _mm_sub_ps(r, _mm_mul_ps(n, _mm_set1_ps(LN2_LO)));
    let mut p = _mm_set1_ps(C[0]);
    for &c in &C[1..] {
        p = _mm_add_ps(_mm_mul_ps(p, r), _mm_set1_ps(c));
    }
    let rr = _mm_mul_ps(r, r);
    let y = _mm_add_ps(_mm_add_ps(_mm_mul_ps(p, rr), r), _mm_set1_ps(1.0));
    let scale = _mm_castsi128_ps(_mm_slli_epi32::<23>(_mm_add_epi32(
        _mm_cvtps_epi32(n),
        _mm_set1_epi32(127),
    )));
    let y = _mm_mul_ps(y, scale);
    let y = _mm_blendv_ps(y, _mm_set1_ps(f32::INFINITY), hi_mask);
    _mm_blendv_ps(y, x, nan_mask)
}

/// Lane-parallel [`scalar::sigmoid_nofma`].
#[inline]
#[target_feature(enable = "sse4.1")]
unsafe fn vsigmoid128(x: __m128) -> __m128 {
    let neg = _mm_xor_ps(x, _mm_set1_ps(-0.0));
    let one = _mm_set1_ps(1.0);
    _mm_div_ps(one, _mm_add_ps(one, vexp128(neg)))
}

/// Lane-parallel [`scalar::tanh_nofma`]: small-argument polynomial lanes
/// blended with the exp-identity lanes on `|x| < TANH_SMALL`.
#[inline]
#[target_feature(enable = "sse4.1")]
unsafe fn vtanh128(x: __m128) -> __m128 {
    let sign = _mm_set1_ps(-0.0);
    let ax = _mm_andnot_ps(sign, x);
    let two = _mm_set1_ps(2.0);
    let one = _mm_set1_ps(1.0);
    let e = vexp128(_mm_mul_ps(two, ax));
    let big = _mm_sub_ps(one, _mm_div_ps(two, _mm_add_ps(e, one)));
    let z = _mm_mul_ps(x, x);
    let mut p = _mm_set1_ps(TANH_C[0]);
    for &c in &TANH_C[1..] {
        p = _mm_add_ps(_mm_mul_ps(p, z), _mm_set1_ps(c));
    }
    let small = _mm_add_ps(_mm_mul_ps(_mm_mul_ps(p, z), ax), ax);
    let small_mask = _mm_cmplt_ps(ax, _mm_set1_ps(TANH_SMALL));
    let m = _mm_blendv_ps(big, small, small_mask);
    _mm_or_ps(m, _mm_and_ps(sign, x))
}

/// Lane-parallel [`scalar::silu_nofma`].
#[inline]
#[target_feature(enable = "sse4.1")]
unsafe fn vsilu128(x: __m128) -> __m128 {
    _mm_mul_ps(x, vsigmoid128(x))
}

macro_rules! transcendental_ip_sse {
    ($name:ident, $vec:ident, $tail:path) => {
        /// In-place transcendental: SSE4.1 lanes + bitwise-identical tail.
        #[target_feature(enable = "sse4.1")]
        pub unsafe fn $name(dst: &mut [f32]) {
            let mut chunks = dst.chunks_exact_mut(4);
            for c in &mut chunks {
                let v = _mm_loadu_ps(c.as_ptr());
                _mm_storeu_ps(c.as_mut_ptr(), $vec(v));
            }
            for d in chunks.into_remainder() {
                *d = $tail(*d);
            }
        }
    };
}

transcendental_ip_sse!(exp_ip_sse, vexp128, scalar::exp_nofma);
transcendental_ip_sse!(sigmoid_ip_sse, vsigmoid128, scalar::sigmoid_nofma);
transcendental_ip_sse!(tanh_ip_sse, vtanh128, scalar::tanh_nofma);
transcendental_ip_sse!(silu_ip_sse, vsilu128, scalar::silu_nofma);

// ---------------------------------------------------------------------------
// GEMM primitives (AVX2 + FMA).
// ---------------------------------------------------------------------------

/// 4×8 register-tile microkernel: `acc += apᵀ · bp` over one k-block with
/// one FMA (single rounding) per element per k. k order matches scalar.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn gemm_ukr_avx2(ap: &[f32], bp: &[f32], acc: &mut [[f32; crate::NR]; crate::MR]) {
    let mut c0 = _mm256_loadu_ps(acc[0].as_ptr());
    let mut c1 = _mm256_loadu_ps(acc[1].as_ptr());
    let mut c2 = _mm256_loadu_ps(acc[2].as_ptr());
    let mut c3 = _mm256_loadu_ps(acc[3].as_ptr());
    for (a_col, b_row) in ap.chunks_exact(crate::MR).zip(bp.chunks_exact(crate::NR)) {
        let bv = _mm256_loadu_ps(b_row.as_ptr());
        c0 = _mm256_fmadd_ps(_mm256_set1_ps(a_col[0]), bv, c0);
        c1 = _mm256_fmadd_ps(_mm256_set1_ps(a_col[1]), bv, c1);
        c2 = _mm256_fmadd_ps(_mm256_set1_ps(a_col[2]), bv, c2);
        c3 = _mm256_fmadd_ps(_mm256_set1_ps(a_col[3]), bv, c3);
    }
    _mm256_storeu_ps(acc[0].as_mut_ptr(), c0);
    _mm256_storeu_ps(acc[1].as_mut_ptr(), c1);
    _mm256_storeu_ps(acc[2].as_mut_ptr(), c2);
    _mm256_storeu_ps(acc[3].as_mut_ptr(), c3);
}

/// Axpy `dst += a · x`: FMA lanes, `mul_add` tail (bitwise == lanes).
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn madd_avx2(dst: &mut [f32], a: f32, x: &[f32]) {
    let av = _mm256_set1_ps(a);
    let mut dc = dst.chunks_exact_mut(8);
    let mut xc = x.chunks_exact(8);
    for (d, s) in (&mut dc).zip(&mut xc) {
        let v = _mm256_fmadd_ps(av, _mm256_loadu_ps(s.as_ptr()), _mm256_loadu_ps(d.as_ptr()));
        _mm256_storeu_ps(d.as_mut_ptr(), v);
    }
    for (d, &v) in dc.into_remainder().iter_mut().zip(xc.remainder()) {
        *d = a.mul_add(v, *d);
    }
}

/// Applies one epilogue micro-op to a 256-bit register holding
/// `dst[off..off + 8]`. `extra` is the full operand buffer for binary ops.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn epi_vec256(v: __m256, op: EpiOp, extra: Option<&[f32]>, off: usize) -> __m256 {
    let ld = |e: Option<&[f32]>| {
        debug_assert!(e.is_some());
        match e {
            Some(s) => _mm256_loadu_ps(s.as_ptr().add(off)),
            None => _mm256_setzero_ps(),
        }
    };
    match op {
        EpiOp::Add => _mm256_add_ps(v, ld(extra)),
        EpiOp::Sub => _mm256_sub_ps(v, ld(extra)),
        EpiOp::RSub => _mm256_sub_ps(ld(extra), v),
        EpiOp::Mul => _mm256_mul_ps(v, ld(extra)),
        EpiOp::Div => _mm256_div_ps(v, ld(extra)),
        EpiOp::RDiv => _mm256_div_ps(ld(extra), v),
        EpiOp::Max => {
            // Matches `f32::max` when at most one operand is NaN.
            let e = ld(extra);
            let m = _mm256_max_ps(v, e);
            let v_nan = _mm256_cmp_ps::<_CMP_UNORD_Q>(v, v);
            let e_nan = _mm256_cmp_ps::<_CMP_UNORD_Q>(e, e);
            let m = _mm256_blendv_ps(m, e, v_nan);
            _mm256_blendv_ps(m, v, e_nan)
        }
        EpiOp::Scale(c) => _mm256_mul_ps(v, _mm256_set1_ps(c)),
        EpiOp::AddScalar(c) => _mm256_add_ps(v, _mm256_set1_ps(c)),
        EpiOp::Neg => _mm256_xor_ps(v, _mm256_set1_ps(-0.0)),
        EpiOp::Relu => _mm256_max_ps(v, _mm256_setzero_ps()),
        EpiOp::Exp => vexp256(v),
        EpiOp::Sigmoid => vsigmoid256(v),
        EpiOp::Tanh => vtanh256(v),
        EpiOp::Silu => vsilu256(v),
    }
}

/// Small (unpacked) product with the epilogue applied in the register
/// tile: for each output row, full 8-wide column blocks accumulate `a @ b`
/// with broadcast-FMA over k, then run the epilogue micro-ops on the
/// accumulator registers before storing. The ragged column tail uses
/// `mul_add` + the scalar polynomial tails, bitwise identical to the
/// lanes. `c` must be zero-initialized; `extras` are full `[m, n]`
/// buffers consumed in `ops` order.
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
pub unsafe fn small_gemm_epi_avx2(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    c: &mut [f32],
    ops: &[EpiOp],
    extras: &[&[f32]],
) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let row0 = i * n;
        let mut j = 0usize;
        while j + 8 <= n {
            let mut acc = _mm256_loadu_ps(c.as_ptr().add(row0 + j));
            for (kk, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let bv = _mm256_loadu_ps(b.as_ptr().add(kk * n + j));
                acc = _mm256_fmadd_ps(_mm256_set1_ps(aik), bv, acc);
            }
            let mut ei = 0usize;
            for &op in ops {
                let extra = if op.takes_operand() {
                    ei += 1;
                    Some(extras[ei - 1])
                } else {
                    None
                };
                acc = epi_vec256(acc, op, extra, row0 + j);
            }
            _mm256_storeu_ps(c.as_mut_ptr().add(row0 + j), acc);
            j += 8;
        }
        if j < n {
            let tail = &mut c[row0 + j..row0 + n];
            for (kk, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n + j..kk * n + n];
                for (d, &bv) in tail.iter_mut().zip(b_row) {
                    *d = aik.mul_add(bv, *d);
                }
            }
            crate::epi::apply_epi_range(crate::Mode::Avx2, tail, ops, extras, row0 + j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avx2() -> bool {
        crate::Mode::Avx2.supported()
    }
    fn sse() -> bool {
        crate::Mode::Sse.supported()
    }

    #[test]
    fn vexp_lanes_match_scalar_poly_bitwise() {
        if !avx2() {
            return;
        }
        let xs: Vec<f32> = (-400..400).map(|i| i as f32 * 0.25).collect();
        let mut got = xs.clone();
        unsafe { exp_ip_avx2(&mut got) };
        for (x, g) in xs.iter().zip(&got) {
            assert_eq!(
                g.to_bits(),
                scalar::exp_fma(*x).to_bits(),
                "lane/tail divergence at x={x}"
            );
        }
    }

    #[test]
    fn vexp_sse_lanes_match_scalar_poly_bitwise() {
        if !sse() {
            return;
        }
        let xs: Vec<f32> = (-400..400).map(|i| i as f32 * 0.25).collect();
        let mut got = xs.clone();
        unsafe { exp_ip_sse(&mut got) };
        for (x, g) in xs.iter().zip(&got) {
            assert_eq!(g.to_bits(), scalar::exp_nofma(*x).to_bits());
        }
    }

    #[test]
    fn gemm_ukr_avx2_matches_fma_order() {
        if !avx2() {
            return;
        }
        let kc = 7;
        let ap: Vec<f32> = (0..kc * 4).map(|i| (i as f32 * 0.37).sin()).collect();
        let bp: Vec<f32> = (0..kc * 8).map(|i| (i as f32 * 0.11).cos()).collect();
        let mut acc = [[0.1f32; 8]; 4];
        let mut want = acc;
        unsafe { gemm_ukr_avx2(&ap, &bp, &mut acc) };
        // FMA oracle: same k order, single rounding per step.
        for (a_col, b_row) in ap.chunks_exact(4).zip(bp.chunks_exact(8)) {
            for (row, &aik) in want.iter_mut().zip(a_col.iter()) {
                for (d, &bv) in row.iter_mut().zip(b_row.iter()) {
                    *d = aik.mul_add(bv, *d);
                }
            }
        }
        assert_eq!(acc, want);
    }
}
