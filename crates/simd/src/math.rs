//! Vectorized transcendental math: `exp`, `sigmoid`, `tanh`, `silu`,
//! and row-wise softmax, with documented accuracy bounds.
//!
//! ## Polynomial
//!
//! Vector modes evaluate `exp` by range reduction `x = n·ln 2 + r`
//! (two-term `ln 2` split, round-to-nearest-even `n`, clamped to
//! `[-87.34, 88.72]`) followed by a degree-6 polynomial in `r` with the
//! Cephes `expf` coefficients. `sigmoid` and `tanh` derive from that
//! `exp` core:
//!
//! * `sigmoid(x) = 1 / (1 + exp(-x))`
//! * `tanh(x)    = sign(x) · (1 − 2 / (exp(2|x|) + 1))`
//! * `silu(x)    = x · sigmoid(x)`
//!
//! FMA-class modes (AVX2, NEON) contract each polynomial multiply-add
//! into a single rounding; SSE evaluates the same sequence with separate
//! multiply and add.
//!
//! ## Ulp bounds (vs the `f64`-evaluated reference)
//!
//! | kernel | domain | bound |
//! |---------|----------------|-------|
//! | `exp` | `[-87.3, 88.0]` | ≤ 4 ulp |
//! | `sigmoid` | all finite | ≤ 8 ulp |
//! | `tanh` | all finite | ≤ 8 ulp |
//!
//! On `(88.02, 88.72]` the `n ≤ 127` exponent clamp trades a few more ulp
//! for overflow safety; above `88.72` the result is `+inf` exactly.
//! `NaN` propagates, `tanh(±0) = ±0` bitwise, and saturation to `±1`
//! (`tanh`) / `{0, 1}` (`sigmoid`) is exact.
//!
//! ## Tail policy
//!
//! The scalar tail of every vector kernel evaluates the *same* polynomial
//! with the same rounding (`f32::mul_add` in FMA modes), so an element's
//! bits never depend on whether it landed in a vector lane or a ragged
//! tail. Scalar mode bypasses the polynomial entirely and applies the
//! `std` definitions bitwise. Softmax keeps its row-max and denominator
//! reductions strictly sequential in every mode.

pub use crate::kernels::{
    exp32, exp_ip, sigmoid32, sigmoid_ip, silu32, silu_ip, softmax_rows, tanh32, tanh_ip,
};
