//! Safe, mode-dispatched kernel entry points.
//!
//! Every function takes the [`Mode`](crate::Mode) explicitly — call sites
//! hoist one [`mode()`](crate::mode) load per operation batch, and the
//! parity suite can exercise every backend without mutating process
//! state. A mode the CPU cannot execute silently degrades to the scalar
//! fallback, so a forged `Mode` can never fault.

use crate::epi::{apply_epi, operand_count};
use crate::{scalar, EpiOp, Mode, MR, NR};

#[cfg(target_arch = "aarch64")]
use crate::neon;
#[cfg(target_arch = "x86_64")]
use crate::x86;

// ---------------------------------------------------------------------------
// Exact elementwise kernels: bitwise identical in every mode.
// ---------------------------------------------------------------------------

macro_rules! binary_into {
    ($name:ident, $avx2:ident, $op:expr, $doc:literal) => {
        #[doc = $doc]
        #[doc = " Bitwise identical in every mode."]
        pub fn $name(mode: Mode, dst: &mut [f32], a: &[f32], b: &[f32]) {
            assert!(dst.len() == a.len() && dst.len() == b.len());
            match mode {
                #[cfg(target_arch = "x86_64")]
                Mode::Avx2 if Mode::Avx2.supported() => unsafe { x86::$avx2(dst, a, b) },
                _ => {
                    let f = $op;
                    for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
                        *d = f(x, y);
                    }
                }
            }
        }
    };
}

binary_into!(
    add_into,
    add_into_avx2,
    |x: f32, y: f32| x + y,
    "`dst = a + b`."
);
binary_into!(
    sub_into,
    sub_into_avx2,
    |x: f32, y: f32| x - y,
    "`dst = a - b`."
);
binary_into!(
    mul_into,
    mul_into_avx2,
    |x: f32, y: f32| x * y,
    "`dst = a * b`."
);
binary_into!(
    div_into,
    div_into_avx2,
    |x: f32, y: f32| x / y,
    "`dst = a / b`."
);
binary_into!(max_into, max_into_avx2, f32::max, "`dst = max(a, b)`.");

macro_rules! binary_assign {
    ($name:ident, $avx2:ident, $op:expr, $doc:literal) => {
        #[doc = $doc]
        #[doc = " Bitwise identical in every mode."]
        pub fn $name(mode: Mode, dst: &mut [f32], rhs: &[f32]) {
            assert_eq!(dst.len(), rhs.len());
            match mode {
                #[cfg(target_arch = "x86_64")]
                Mode::Avx2 if Mode::Avx2.supported() => unsafe { x86::$avx2(dst, rhs) },
                _ => {
                    let f = $op;
                    for (d, &y) in dst.iter_mut().zip(rhs) {
                        *d = f(*d, y);
                    }
                }
            }
        }
    };
}

binary_assign!(
    add_assign,
    add_assign_avx2,
    |x: f32, y: f32| x + y,
    "`dst += rhs`."
);
binary_assign!(
    sub_assign,
    sub_assign_avx2,
    |x: f32, y: f32| x - y,
    "`dst -= rhs`."
);
binary_assign!(
    rsub_assign,
    rsub_assign_avx2,
    |x: f32, y: f32| y - x,
    "`dst = rhs - dst`."
);
binary_assign!(
    mul_assign,
    mul_assign_avx2,
    |x: f32, y: f32| x * y,
    "`dst *= rhs`."
);
binary_assign!(
    div_assign,
    div_assign_avx2,
    |x: f32, y: f32| x / y,
    "`dst /= rhs`."
);
binary_assign!(
    rdiv_assign,
    rdiv_assign_avx2,
    |x: f32, y: f32| y / x,
    "`dst = rhs / dst`."
);
binary_assign!(
    max_assign,
    max_assign_avx2,
    f32::max,
    "`dst = max(dst, rhs)`."
);

/// `dst *= c`. Bitwise identical in every mode.
pub fn scale_ip(mode: Mode, dst: &mut [f32], c: f32) {
    match mode {
        #[cfg(target_arch = "x86_64")]
        Mode::Avx2 if Mode::Avx2.supported() => unsafe { x86::scale_ip_avx2(dst, c) },
        _ => {
            for d in dst.iter_mut() {
                *d *= c;
            }
        }
    }
}

/// `dst += c`. Bitwise identical in every mode.
pub fn add_scalar_ip(mode: Mode, dst: &mut [f32], c: f32) {
    match mode {
        #[cfg(target_arch = "x86_64")]
        Mode::Avx2 if Mode::Avx2.supported() => unsafe { x86::add_scalar_ip_avx2(dst, c) },
        _ => {
            for d in dst.iter_mut() {
                *d += c;
            }
        }
    }
}

/// `dst = -dst`. Bitwise identical in every mode.
pub fn neg_ip(mode: Mode, dst: &mut [f32]) {
    match mode {
        #[cfg(target_arch = "x86_64")]
        Mode::Avx2 if Mode::Avx2.supported() => unsafe { x86::neg_ip_avx2(dst) },
        _ => {
            for d in dst.iter_mut() {
                *d = -*d;
            }
        }
    }
}

/// `dst = max(dst, 0)`. Bitwise identical in every mode.
pub fn relu_ip(mode: Mode, dst: &mut [f32]) {
    match mode {
        #[cfg(target_arch = "x86_64")]
        Mode::Avx2 if Mode::Avx2.supported() => unsafe { x86::relu_ip_avx2(dst) },
        _ => {
            for d in dst.iter_mut() {
                *d = d.max(0.0);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Transcendentals: vector polynomial per mode, std in scalar mode.
// ---------------------------------------------------------------------------

macro_rules! transcendental_ip {
    ($name:ident, $avx2:ident, $sse:ident, $neon:ident, $std:expr, $doc:literal) => {
        #[doc = $doc]
        #[doc = " Scalar mode applies the `std` definition bitwise; vector"]
        #[doc = " modes apply the documented polynomial (see crate docs)."]
        pub fn $name(mode: Mode, dst: &mut [f32]) {
            match mode {
                #[cfg(target_arch = "x86_64")]
                Mode::Avx2 if Mode::Avx2.supported() => unsafe { x86::$avx2(dst) },
                #[cfg(target_arch = "x86_64")]
                Mode::Sse if Mode::Sse.supported() => unsafe { x86::$sse(dst) },
                #[cfg(target_arch = "aarch64")]
                Mode::Neon if Mode::Neon.supported() => unsafe { neon::$neon(dst) },
                _ => {
                    let f = $std;
                    for d in dst.iter_mut() {
                        *d = f(*d);
                    }
                }
            }
        }
    };
}

transcendental_ip!(
    exp_ip,
    exp_ip_avx2,
    exp_ip_sse,
    exp_ip_neon,
    f32::exp,
    "In-place `exp`."
);
transcendental_ip!(
    sigmoid_ip,
    sigmoid_ip_avx2,
    sigmoid_ip_sse,
    sigmoid_ip_neon,
    scalar::sigmoid_std,
    "In-place logistic sigmoid."
);
transcendental_ip!(
    tanh_ip,
    tanh_ip_avx2,
    tanh_ip_sse,
    tanh_ip_neon,
    f32::tanh,
    "In-place `tanh`."
);
transcendental_ip!(
    silu_ip,
    silu_ip_avx2,
    silu_ip_sse,
    silu_ip_neon,
    scalar::silu_std,
    "In-place SiLU (`x * sigmoid(x)`)."
);

/// Scalar `exp` under `mode`'s numeric contract: `std` in scalar mode,
/// the polynomial (FMA or not) elsewhere — bitwise identical to the
/// vector lanes of the same mode.
pub fn exp32(mode: Mode, x: f32) -> f32 {
    match mode {
        Mode::Scalar => x.exp(),
        #[cfg(target_arch = "x86_64")]
        Mode::Sse => scalar::exp_nofma(x),
        #[cfg(target_arch = "x86_64")]
        Mode::Avx2 => scalar::exp_fma(x),
        #[cfg(target_arch = "aarch64")]
        Mode::Neon => scalar::exp_fma(x),
    }
}

/// Scalar sigmoid under `mode`'s numeric contract (see [`exp32`]).
pub fn sigmoid32(mode: Mode, x: f32) -> f32 {
    match mode {
        Mode::Scalar => scalar::sigmoid_std(x),
        #[cfg(target_arch = "x86_64")]
        Mode::Sse => scalar::sigmoid_nofma(x),
        #[cfg(target_arch = "x86_64")]
        Mode::Avx2 => scalar::sigmoid_fma(x),
        #[cfg(target_arch = "aarch64")]
        Mode::Neon => scalar::sigmoid_fma(x),
    }
}

/// Scalar `tanh` under `mode`'s numeric contract (see [`exp32`]).
pub fn tanh32(mode: Mode, x: f32) -> f32 {
    match mode {
        Mode::Scalar => x.tanh(),
        #[cfg(target_arch = "x86_64")]
        Mode::Sse => scalar::tanh_nofma(x),
        #[cfg(target_arch = "x86_64")]
        Mode::Avx2 => scalar::tanh_fma(x),
        #[cfg(target_arch = "aarch64")]
        Mode::Neon => scalar::tanh_fma(x),
    }
}

/// Scalar SiLU under `mode`'s numeric contract (see [`exp32`]).
pub fn silu32(mode: Mode, x: f32) -> f32 {
    match mode {
        Mode::Scalar => scalar::silu_std(x),
        #[cfg(target_arch = "x86_64")]
        Mode::Sse => scalar::silu_nofma(x),
        #[cfg(target_arch = "x86_64")]
        Mode::Avx2 => scalar::silu_fma(x),
        #[cfg(target_arch = "aarch64")]
        Mode::Neon => scalar::silu_fma(x),
    }
}

/// Row-wise softmax of an `[m, n]` matrix into `out`. The row max and
/// the denominator sum stay strictly sequential in every mode (no
/// reassociation); only the `exp` and the exact subtract/divide are
/// vectorized, so scalar mode reproduces `Tensor::softmax_rows` bitwise
/// and vector modes differ only by the documented `exp` polynomial.
pub fn softmax_rows(mode: Mode, a: &[f32], m: usize, n: usize, out: &mut [f32]) {
    assert!(a.len() >= m * n && out.len() >= m * n);
    for i in 0..m {
        let row = &a[i * n..(i + 1) * n];
        let o = &mut out[i * n..(i + 1) * n];
        let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        if mode == Mode::Scalar {
            for (d, &v) in o.iter_mut().zip(row) {
                *d = (v - mx).exp();
            }
        } else {
            for (d, &v) in o.iter_mut().zip(row) {
                *d = v - mx;
            }
            exp_ip(mode, o);
        }
        let denom: f32 = o.iter().sum();
        for d in o.iter_mut() {
            *d /= denom;
        }
    }
}

// ---------------------------------------------------------------------------
// GEMM primitives.
// ---------------------------------------------------------------------------

/// 4×8 register-tile microkernel: `acc += apᵀ · bp` over one k-block.
/// Scalar/SSE modes accumulate with mul+add (bitwise == pre-SIMD code);
/// AVX2/NEON fuse the multiply-add (single rounding), same k order.
pub fn gemm_ukr(mode: Mode, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    debug_assert_eq!(ap.len() / MR, bp.len() / NR);
    match mode {
        #[cfg(target_arch = "x86_64")]
        Mode::Avx2 if Mode::Avx2.supported() => unsafe { x86::gemm_ukr_avx2(ap, bp, acc) },
        #[cfg(target_arch = "aarch64")]
        Mode::Neon if Mode::Neon.supported() => unsafe { neon::gemm_ukr_neon(ap, bp, acc) },
        _ => scalar::gemm_ukr(ap, bp, acc),
    }
}

/// Axpy `dst += a · x`. Same FMA contract as [`gemm_ukr`].
pub fn madd(mode: Mode, dst: &mut [f32], a: f32, x: &[f32]) {
    assert_eq!(dst.len(), x.len());
    match mode {
        #[cfg(target_arch = "x86_64")]
        Mode::Avx2 if Mode::Avx2.supported() => unsafe { x86::madd_avx2(dst, a, x) },
        #[cfg(target_arch = "aarch64")]
        Mode::Neon if Mode::Neon.supported() => unsafe { neon::madd_neon(dst, a, x) },
        _ => scalar::madd(dst, a, x),
    }
}

/// Small (unpacked) product `c += a @ b` over row-major slices, keeping
/// the pre-SIMD zero-skip semantics. Same FMA contract as [`gemm_ukr`].
pub fn small_gemm(mode: Mode, a: &[f32], b: &[f32], m: usize, k: usize, n: usize, c: &mut [f32]) {
    small_gemm_epi(mode, a, b, m, k, n, c, &[], &[]);
}

/// [`small_gemm`] with a fused epilogue applied in the register tile:
/// after each output row block finishes its k accumulation, `ops` run on
/// the accumulator registers (AVX2/NEON) or on the freshly written row
/// (scalar/SSE) before the next row starts. Elementwise epilogues are
/// position-independent bitwise, so every mode's result equals running
/// the unfused sequence of that mode. `c` must be zero-initialized;
/// `extras` are full `[m, n]` operand buffers consumed in `ops` order.
#[allow(clippy::too_many_arguments)]
pub fn small_gemm_epi(
    mode: Mode,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    c: &mut [f32],
    ops: &[EpiOp],
    extras: &[&[f32]],
) {
    assert!(a.len() >= m * k && b.len() >= k * n && c.len() >= m * n);
    assert_eq!(operand_count(ops), extras.len());
    for e in extras {
        assert!(e.len() >= m * n);
    }
    match mode {
        #[cfg(target_arch = "x86_64")]
        Mode::Avx2 if Mode::Avx2.supported() => unsafe {
            x86::small_gemm_epi_avx2(a, b, m, k, n, c, ops, extras)
        },
        _ => {
            scalar::small_gemm(a, b, m, k, n, &mut c[..m * n]);
            if !ops.is_empty() {
                apply_epi(mode, &mut c[..m * n], ops, extras);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn modes() -> Vec<Mode> {
        let mut m = vec![Mode::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            if Mode::Sse.supported() {
                m.push(Mode::Sse);
            }
            if Mode::Avx2.supported() {
                m.push(Mode::Avx2);
            }
        }
        m
    }

    #[test]
    fn exact_ops_bitwise_across_modes() {
        let a: Vec<f32> = (0..37).map(|i| (i as f32 * 0.7).sin() * 3.0).collect();
        let b: Vec<f32> = (0..37)
            .map(|i| (i as f32 * 1.3).cos() * 2.0 + 0.1)
            .collect();
        for mode in modes() {
            type Ref = fn(f32, f32) -> f32;
            for (f, g) in [
                (
                    add_into as fn(Mode, &mut [f32], &[f32], &[f32]),
                    (|x, y| x + y) as Ref,
                ),
                (sub_into, (|x, y| x - y) as Ref),
                (mul_into, (|x, y| x * y) as Ref),
                (div_into, (|x, y| x / y) as Ref),
                (max_into, f32::max as Ref),
            ] {
                let mut got = vec![0.0f32; 37];
                f(mode, &mut got, &a, &b);
                for i in 0..37 {
                    assert_eq!(got[i].to_bits(), g(a[i], b[i]).to_bits(), "{mode:?}");
                }
            }
        }
    }

    #[test]
    fn transcendental_tail_equals_lane() {
        // A length straddling every lane width: elements in lanes and in
        // ragged tails must produce identical bits for the same input.
        for mode in modes() {
            for len in [1usize, 3, 7, 8, 9, 16, 33] {
                let xs: Vec<f32> = (0..len).map(|i| (i as f32 - 8.0) * 0.9).collect();
                let mut whole = xs.clone();
                tanh_ip(mode, &mut whole);
                for (i, &x) in xs.iter().enumerate() {
                    let mut one = [x];
                    tanh_ip(mode, &mut one);
                    assert_eq!(
                        whole[i].to_bits(),
                        one[0].to_bits(),
                        "{mode:?} len={len} i={i}"
                    );
                    assert_eq!(one[0].to_bits(), tanh32(mode, x).to_bits());
                }
            }
        }
    }

    #[test]
    fn small_gemm_epi_matches_unfused_per_mode() {
        for mode in modes() {
            let (m, k, n) = (3usize, 5usize, 11usize);
            let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.31).sin()).collect();
            let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.17).cos()).collect();
            let extra: Vec<f32> = (0..m * n).map(|i| i as f32 * 0.05 - 0.7).collect();

            let mut fused = vec![0.0f32; m * n];
            small_gemm_epi(
                mode,
                &a,
                &b,
                m,
                k,
                n,
                &mut fused,
                &[EpiOp::Add, EpiOp::Tanh],
                &[&extra],
            );

            let mut unfused = vec![0.0f32; m * n];
            small_gemm(mode, &a, &b, m, k, n, &mut unfused);
            add_assign(mode, &mut unfused, &extra);
            tanh_ip(mode, &mut unfused);

            for i in 0..m * n {
                assert_eq!(fused[i].to_bits(), unfused[i].to_bits(), "{mode:?} i={i}");
            }
        }
    }

    #[test]
    fn gemm_ukr_scalar_and_sse_bitwise_equal() {
        let kc = 9;
        let ap: Vec<f32> = (0..kc * MR).map(|i| (i as f32 * 0.7).sin()).collect();
        let bp: Vec<f32> = (0..kc * NR).map(|i| (i as f32 * 0.3).cos()).collect();
        let mut sc = [[0.0f32; NR]; MR];
        gemm_ukr(Mode::Scalar, &ap, &bp, &mut sc);
        #[cfg(target_arch = "x86_64")]
        if Mode::Sse.supported() {
            let mut ss = [[0.0f32; NR]; MR];
            gemm_ukr(Mode::Sse, &ap, &bp, &mut ss);
            assert_eq!(sc, ss);
        }
    }

    #[test]
    fn softmax_rows_scalar_matches_reference() {
        let a: Vec<f32> = (0..15).map(|i| (i as f32 * 0.9).sin() * 4.0).collect();
        for mode in modes() {
            let mut out = vec![0.0f32; 15];
            softmax_rows(mode, &a, 3, 5, &mut out);
            for r in 0..3 {
                let s: f32 = out[r * 5..(r + 1) * 5].iter().sum();
                assert!((s - 1.0).abs() < 1e-6, "{mode:?} row {r} sums to {s}");
            }
        }
    }
}
