//! Epilogue micro-ops: the post-GEMM / elementwise-chain operations the
//! plan-time fusion pass (ft-passes) attaches to a producer so its
//! consumers run on data still hot in registers or cache instead of
//! round-tripping through the arena.
//!
//! An epilogue is a sequence of [`EpiOp`]s applied in order to an output
//! buffer; binary ops consume one *extra* operand slice each, in order.
//! Every op is purely elementwise, so applying an epilogue per register
//! tile, per row, or per buffer yields identical bits (scalar tails are
//! bitwise identical to vector lanes — see the crate docs).

use crate::{kernels, Mode};

/// One epilogue micro-op. Binary ops consume the next extra operand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EpiOp {
    /// `acc + e`
    Add,
    /// `acc - e`
    Sub,
    /// `e - acc`
    RSub,
    /// `acc * e`
    Mul,
    /// `acc / e`
    Div,
    /// `e / acc`
    RDiv,
    /// `max(acc, e)`
    Max,
    /// `acc * c`
    Scale(f32),
    /// `acc + c`
    AddScalar(f32),
    /// `-acc`
    Neg,
    /// `max(acc, 0)`
    Relu,
    /// `exp(acc)`
    Exp,
    /// `1 / (1 + exp(-acc))`
    Sigmoid,
    /// `tanh(acc)`
    Tanh,
    /// `acc * sigmoid(acc)`
    Silu,
}

impl EpiOp {
    /// Whether this op consumes an extra operand slice.
    pub fn takes_operand(self) -> bool {
        matches!(
            self,
            EpiOp::Add
                | EpiOp::Sub
                | EpiOp::RSub
                | EpiOp::Mul
                | EpiOp::Div
                | EpiOp::RDiv
                | EpiOp::Max
        )
    }

    /// Stable hash tag for plan signatures (ft-core `sig`).
    pub fn tag(self) -> u8 {
        match self {
            EpiOp::Add => 1,
            EpiOp::Sub => 2,
            EpiOp::RSub => 3,
            EpiOp::Mul => 4,
            EpiOp::Div => 5,
            EpiOp::RDiv => 6,
            EpiOp::Max => 7,
            EpiOp::Scale(_) => 8,
            EpiOp::AddScalar(_) => 9,
            EpiOp::Neg => 10,
            EpiOp::Relu => 11,
            EpiOp::Exp => 12,
            EpiOp::Sigmoid => 13,
            EpiOp::Tanh => 14,
            EpiOp::Silu => 15,
        }
    }

    /// Scalar-constant payload, if any (for plan signatures).
    pub fn payload(self) -> Option<f32> {
        match self {
            EpiOp::Scale(c) | EpiOp::AddScalar(c) => Some(c),
            _ => None,
        }
    }

    /// Approximate flops per element (transcendentals counted like their
    /// standalone opcodes: 1).
    pub fn flops(self) -> u64 {
        1
    }
}

/// Number of extra operand slices `ops` consumes.
pub fn operand_count(ops: &[EpiOp]) -> usize {
    ops.iter().filter(|o| o.takes_operand()).count()
}

/// Applies `ops` in order to `dst`, consuming one slice of `extras` per
/// binary op. Every extra must have `dst.len()` elements.
pub fn apply_epi(mode: Mode, dst: &mut [f32], ops: &[EpiOp], extras: &[&[f32]]) {
    apply_epi_range(mode, dst, ops, extras, 0);
}

/// [`apply_epi`] over a window: `dst` holds elements `base ..` of the
/// logical output and each extra is the *full* operand buffer, indexed at
/// `base`. This is what lets the GEMM kernels run the epilogue per row
/// block (or per register tile) while sharing one extras layout.
pub(crate) fn apply_epi_range(
    mode: Mode,
    dst: &mut [f32],
    ops: &[EpiOp],
    extras: &[&[f32]],
    base: usize,
) {
    let len = dst.len();
    let mut ei = 0usize;
    for &op in ops {
        match op {
            EpiOp::Add => {
                kernels::add_assign(mode, dst, &extras[ei][base..base + len]);
                ei += 1;
            }
            EpiOp::Sub => {
                kernels::sub_assign(mode, dst, &extras[ei][base..base + len]);
                ei += 1;
            }
            EpiOp::RSub => {
                kernels::rsub_assign(mode, dst, &extras[ei][base..base + len]);
                ei += 1;
            }
            EpiOp::Mul => {
                kernels::mul_assign(mode, dst, &extras[ei][base..base + len]);
                ei += 1;
            }
            EpiOp::Div => {
                kernels::div_assign(mode, dst, &extras[ei][base..base + len]);
                ei += 1;
            }
            EpiOp::RDiv => {
                kernels::rdiv_assign(mode, dst, &extras[ei][base..base + len]);
                ei += 1;
            }
            EpiOp::Max => {
                kernels::max_assign(mode, dst, &extras[ei][base..base + len]);
                ei += 1;
            }
            EpiOp::Scale(c) => kernels::scale_ip(mode, dst, c),
            EpiOp::AddScalar(c) => kernels::add_scalar_ip(mode, dst, c),
            EpiOp::Neg => kernels::neg_ip(mode, dst),
            EpiOp::Relu => kernels::relu_ip(mode, dst),
            EpiOp::Exp => kernels::exp_ip(mode, dst),
            EpiOp::Sigmoid => kernels::sigmoid_ip(mode, dst),
            EpiOp::Tanh => kernels::tanh_ip(mode, dst),
            EpiOp::Silu => kernels::silu_ip(mode, dst),
        }
    }
    debug_assert_eq!(ei, extras.len(), "extras count must match binary ops");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_counting() {
        assert_eq!(operand_count(&[EpiOp::Add, EpiOp::Tanh, EpiOp::Mul]), 2);
        assert_eq!(operand_count(&[EpiOp::Sigmoid]), 0);
        assert!(EpiOp::Max.takes_operand());
        assert!(!EpiOp::Scale(2.0).takes_operand());
    }

    #[test]
    fn tags_are_unique() {
        let ops = [
            EpiOp::Add,
            EpiOp::Sub,
            EpiOp::RSub,
            EpiOp::Mul,
            EpiOp::Div,
            EpiOp::RDiv,
            EpiOp::Max,
            EpiOp::Scale(1.0),
            EpiOp::AddScalar(1.0),
            EpiOp::Neg,
            EpiOp::Relu,
            EpiOp::Exp,
            EpiOp::Sigmoid,
            EpiOp::Tanh,
            EpiOp::Silu,
        ];
        let mut tags: Vec<u8> = ops.iter().map(|o| o.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), ops.len());
    }

    #[test]
    fn apply_epi_chain_matches_manual() {
        let mut dst = vec![0.5f32, -1.0, 2.0, 0.0, 3.5];
        let e1 = vec![1.0f32, 1.0, 1.0, 1.0, 1.0];
        let e2 = vec![2.0f32, 2.0, 2.0, 2.0, 2.0];
        let want: Vec<f32> = dst
            .iter()
            .map(|&x| {
                let v = x + 1.0;
                let v = v.tanh();
                v * 2.0
            })
            .collect();
        apply_epi(
            Mode::Scalar,
            &mut dst,
            &[EpiOp::Add, EpiOp::Tanh, EpiOp::Mul],
            &[&e1, &e2],
        );
        assert_eq!(dst, want);
    }
}
