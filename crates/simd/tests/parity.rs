//! SIMD ↔ scalar parity suite (the numeric contract, enforced).
//!
//! * Exact ops (`add/sub/mul/div/max/scale/neg/relu`): **bitwise** equal
//!   to the scalar fallback in every mode, at every length.
//! * SSE GEMM: bitwise equal to scalar (mul+add, same order); AVX2/NEON
//!   GEMM differs only by documented FMA contraction (single rounding).
//! * Transcendentals: within the documented ulp bounds of the
//!   `f64`-evaluated reference in every mode, and ragged-tail elements
//!   are bitwise identical to vector-lane elements.
//! * Fused epilogues: `small_gemm_epi` is bitwise identical to running
//!   the unfused kernel sequence of the same mode.

use ft_simd::{EpiOp, Mode};
use proptest::prelude::*;

/// Every mode the host CPU can execute.
fn modes() -> Vec<Mode> {
    let mut m = vec![Mode::Scalar];
    #[cfg(target_arch = "x86_64")]
    {
        if Mode::Sse.supported() {
            m.push(Mode::Sse);
        }
        if Mode::Avx2.supported() {
            m.push(Mode::Avx2);
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if Mode::Neon.supported() {
            m.push(Mode::Neon);
        }
    }
    m
}

fn to_f32(raw: &[i32]) -> Vec<f32> {
    raw.iter().map(|&v| v as f32 / 512.0).collect()
}

fn ulp_err(x: f32, oracle: f64) -> u32 {
    let exact = oracle as f32;
    if x == exact || (x.is_nan() && exact.is_nan()) {
        return 0;
    }
    (exact.to_bits() as i64 - x.to_bits() as i64).unsigned_abs() as u32
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    // Exact elementwise kernels are bitwise identical in every mode,
    // including ragged lengths that straddle every lane width.
    fn exact_ops_bitwise(raw_a in proptest::collection::vec(-4096i32..4096, 1..67),
                         raw_b in proptest::collection::vec(-4096i32..4096, 1..67)) {
        let n = raw_a.len().min(raw_b.len());
        let a = to_f32(&raw_a[..n]);
        let b = to_f32(&raw_b[..n]);
        for mode in modes() {
            let mut want = vec![0.0f32; n];
            let mut got = vec![0.0f32; n];
            type Into2 = fn(Mode, &mut [f32], &[f32], &[f32]);
            for f in [
                ft_simd::add_into as Into2,
                ft_simd::sub_into,
                ft_simd::mul_into,
                ft_simd::div_into,
                ft_simd::max_into,
            ] {
                f(Mode::Scalar, &mut want, &a, &b);
                f(mode, &mut got, &a, &b);
                for i in 0..n {
                    prop_assert_eq!(want[i].to_bits(), got[i].to_bits());
                }
            }
            let mut want = a.clone();
            let mut got = a.clone();
            ft_simd::scale_ip(Mode::Scalar, &mut want, 1.7);
            ft_simd::scale_ip(mode, &mut got, 1.7);
            ft_simd::relu_ip(Mode::Scalar, &mut want);
            ft_simd::relu_ip(mode, &mut got);
            ft_simd::neg_ip(Mode::Scalar, &mut want);
            ft_simd::neg_ip(mode, &mut got);
            ft_simd::add_scalar_ip(Mode::Scalar, &mut want, -0.3);
            ft_simd::add_scalar_ip(mode, &mut got, -0.3);
            for i in 0..n {
                prop_assert_eq!(want[i].to_bits(), got[i].to_bits());
            }
        }
    }

    #[test]
    // Transcendentals: documented ulp bounds per mode, and a ragged-tail
    // element is bitwise what the same input produces in a full lane.
    fn transcendental_ulp_and_tails(raw in proptest::collection::vec(-15_000i32..15_000, 1..67)) {
        let xs = to_f32(&raw);
        for mode in modes() {
            for (name, ip, bound) in [
                ("exp", ft_simd::exp_ip as fn(Mode, &mut [f32]), 4u32),
                ("sigmoid", ft_simd::sigmoid_ip, 8),
                ("tanh", ft_simd::tanh_ip, 8),
                ("silu", ft_simd::silu_ip, 8),
            ] {
                let mut got = xs.clone();
                ip(mode, &mut got);
                for (i, (&x, &y)) in xs.iter().zip(&got).enumerate() {
                    let oracle = match name {
                        "exp" => (x as f64).exp(),
                        "sigmoid" => 1.0 / (1.0 + (-(x as f64)).exp()),
                        "tanh" => (x as f64).tanh(),
                        _ => x as f64 / (1.0 + (-(x as f64)).exp()),
                    };
                    let err = ulp_err(y, oracle);
                    prop_assert!(
                        err <= bound,
                        "{} {:?} x={} got={} err={} ulp", name, mode, x, y, err
                    );
                    // Tail policy: position independence.
                    let mut one = [x];
                    ip(mode, &mut one);
                    prop_assert!(
                        y.to_bits() == one[0].to_bits(),
                        "{} {:?} tail/lane split at {}", name, mode, i
                    );
                }
            }
        }
    }

    #[test]
    // small_gemm: SSE bitwise == scalar; fused modes within FMA-contraction
    // distance of the scalar result.
    fn small_gemm_parity(raw_a in proptest::collection::vec(-1024i32..1024, 1..37),
                         raw_b in proptest::collection::vec(-1024i32..1024, 1..37),
                         m in 1usize..6, k in 1usize..6, n in 1usize..12) {
        let mut a = to_f32(&raw_a);
        let mut b = to_f32(&raw_b);
        a.resize(m * k, 0.5);
        b.resize(k * n, -0.25);
        let mut want = vec![0.0f32; m * n];
        ft_simd::small_gemm(Mode::Scalar, &a, &b, m, k, n, &mut want);
        for mode in modes() {
            let mut got = vec![0.0f32; m * n];
            ft_simd::small_gemm(mode, &a, &b, m, k, n, &mut got);
            for i in 0..m * n {
                if mode.fused() {
                    let tol = 1e-5 * (1.0 + want[i].abs()) * k as f32;
                    prop_assert!((got[i] - want[i]).abs() <= tol,
                        "{:?} i={} got={} want={}", mode, i, got[i], want[i]);
                } else {
                    prop_assert!(got[i].to_bits() == want[i].to_bits(), "{:?} i={}", mode, i);
                }
            }
        }
    }

    #[test]
    // Fused epilogue == unfused kernel sequence, bitwise, in every mode.
    fn fused_epilogue_bitwise(raw_a in proptest::collection::vec(-1024i32..1024, 1..25),
                              raw_e in proptest::collection::vec(-1024i32..1024, 1..61),
                              m in 1usize..5, k in 1usize..5, n in 1usize..12,
                              pick in 0usize..6) {
        let mut a = to_f32(&raw_a);
        let mut b = to_f32(&raw_e);
        let mut extra = to_f32(&raw_e);
        a.resize(m * k, 0.3);
        b.resize(k * n, 0.7);
        extra.resize(m * n, -0.4);
        let chains: [&[EpiOp]; 6] = [
            &[EpiOp::Add],
            &[EpiOp::Add, EpiOp::Tanh],
            &[EpiOp::Sigmoid],
            &[EpiOp::Mul, EpiOp::Relu],
            &[EpiOp::Scale(1.5), EpiOp::Silu],
            &[EpiOp::RSub, EpiOp::Exp],
        ];
        let ops = chains[pick];
        let extras: Vec<&[f32]> = (0..ft_simd::operand_count(ops)).map(|_| extra.as_slice()).collect();
        for mode in modes() {
            let mut fused = vec![0.0f32; m * n];
            ft_simd::small_gemm_epi(mode, &a, &b, m, k, n, &mut fused, ops, &extras);
            let mut unfused = vec![0.0f32; m * n];
            ft_simd::small_gemm(mode, &a, &b, m, k, n, &mut unfused);
            ft_simd::apply_epi(mode, &mut unfused, ops, &extras);
            for i in 0..m * n {
                prop_assert!(fused[i].to_bits() == unfused[i].to_bits(),
                    "{:?} ops={:?} i={}", mode, ops, i);
            }
        }
    }

    #[test]
    // Softmax rows sum to 1 and scalar mode matches the sequential
    // reference literally.
    fn softmax_parity(raw in proptest::collection::vec(-4096i32..4096, 1..49),
                      n in 1usize..9) {
        let m = (raw.len() / n).max(1);
        let mut a = to_f32(&raw);
        a.resize(m * n, 0.1);
        let mut want = vec![0.0f32; m * n];
        for i in 0..m {
            let row = &a[i * n..(i + 1) * n];
            let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let o = &mut want[i * n..(i + 1) * n];
            for (d, &v) in o.iter_mut().zip(row) {
                *d = (v - mx).exp();
            }
            let denom: f32 = o.iter().sum();
            for d in o.iter_mut() {
                *d /= denom;
            }
        }
        let mut got = vec![0.0f32; m * n];
        ft_simd::softmax_rows(Mode::Scalar, &a, m, n, &mut got);
        for i in 0..m * n {
            prop_assert_eq!(got[i].to_bits(), want[i].to_bits());
        }
        for mode in modes() {
            let mut got = vec![0.0f32; m * n];
            ft_simd::softmax_rows(mode, &a, m, n, &mut got);
            for r in 0..m {
                let s: f32 = got[r * n..(r + 1) * n].iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-5, "{:?} row {} sums to {}", mode, r, s);
            }
        }
    }
}

/// `gemm_ukr` across modes: SSE bitwise == scalar, AVX2/NEON within FMA
/// distance — on a k span crossing the packed kernel's KC boundary.
#[test]
fn gemm_ukr_cross_mode() {
    for kc in [1usize, 7, 256, 301] {
        let ap: Vec<f32> = (0..kc * ft_simd::MR)
            .map(|i| (i as f32 * 0.37).sin())
            .collect();
        let bp: Vec<f32> = (0..kc * ft_simd::NR)
            .map(|i| (i as f32 * 0.73).cos())
            .collect();
        let mut want = [[0.0f32; ft_simd::NR]; ft_simd::MR];
        ft_simd::gemm_ukr(Mode::Scalar, &ap, &bp, &mut want);
        for mode in modes() {
            let mut got = [[0.0f32; ft_simd::NR]; ft_simd::MR];
            ft_simd::gemm_ukr(mode, &ap, &bp, &mut got);
            for r in 0..ft_simd::MR {
                for c in 0..ft_simd::NR {
                    if mode.fused() {
                        let tol = 1e-5 * (1.0 + want[r][c].abs()) * kc as f32;
                        assert!((got[r][c] - want[r][c]).abs() <= tol, "{mode:?} kc={kc}");
                    } else {
                        assert_eq!(
                            got[r][c].to_bits(),
                            want[r][c].to_bits(),
                            "{mode:?} kc={kc}"
                        );
                    }
                }
            }
        }
    }
}

/// NaN / signed-zero / saturation edges hold in every mode.
#[test]
fn transcendental_edges_every_mode() {
    for mode in modes() {
        let mut v = [0.0f32, -0.0, 50.0, -50.0, f32::NAN];
        ft_simd::tanh_ip(mode, &mut v);
        assert_eq!(v[0].to_bits(), 0.0f32.to_bits(), "{mode:?}");
        assert_eq!(v[1].to_bits(), (-0.0f32).to_bits(), "{mode:?}");
        assert_eq!(v[2], 1.0, "{mode:?}");
        assert_eq!(v[3], -1.0, "{mode:?}");
        assert!(v[4].is_nan(), "{mode:?}");

        let mut v = [0.0f32, 100.0, -100.0, f32::NAN, 200.0];
        ft_simd::exp_ip(mode, &mut v);
        assert_eq!(v[0], 1.0, "{mode:?}");
        assert_eq!(v[1], f32::INFINITY, "{mode:?}");
        assert!(v[2] >= 0.0 && v[2] < 1.3e-38, "{mode:?}");
        assert!(v[3].is_nan(), "{mode:?}");
        assert_eq!(v[4], f32::INFINITY, "{mode:?}");

        let mut v = [100.0f32, -100.0];
        ft_simd::sigmoid_ip(mode, &mut v);
        assert_eq!(v[0], 1.0, "{mode:?}");
        assert_eq!(v[1], 0.0, "{mode:?}");
    }
}

/// The zero-skip sparsity contract: a zero in `a` contributes nothing,
/// even against non-finite `b`, in every mode.
#[test]
fn small_gemm_zero_skip_every_mode() {
    let a = [0.0f32, 1.0];
    let b = [f32::NAN, f32::INFINITY, 2.0, 3.0];
    for mode in modes() {
        let mut c = vec![0.0f32; 2];
        ft_simd::small_gemm(mode, &a, &b, 1, 2, 2, &mut c);
        assert_eq!(c, vec![2.0, 3.0], "{mode:?}");
    }
}
