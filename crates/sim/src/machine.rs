//! The simulated machine: buffer allocation, kernel launches, per-level
//! traffic accounting and the roofline time model.

use crate::cache::LruCache;
use crate::config::GpuConfig;

/// A virtual device allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferHandle {
    base: u64,
    bytes: u64,
}

impl BufferHandle {
    /// Allocation size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// One contiguous byte range of a buffer touched by a kernel.
#[derive(Debug, Clone, Copy)]
pub struct Region {
    /// The buffer.
    pub buffer: BufferHandle,
    /// Byte offset within it.
    pub offset: u64,
    /// Extent in bytes.
    pub bytes: u64,
}

impl Region {
    /// The whole buffer as one region.
    pub fn whole(buffer: BufferHandle) -> Self {
        Region {
            buffer,
            offset: 0,
            bytes: buffer.bytes,
        }
    }

    /// A sub-range of a buffer.
    pub fn range(buffer: BufferHandle, offset: u64, bytes: u64) -> Self {
        debug_assert!(offset + bytes <= buffer.bytes, "region out of bounds");
        Region {
            buffer,
            offset,
            bytes,
        }
    }
}

/// One kernel launch.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Diagnostic name.
    pub name: String,
    /// Floating-point operations executed.
    pub flops: u64,
    /// Whether the inner loops map to TensorCore MMA tiles.
    pub tensor_cores: bool,
    /// Device-memory regions read (these go through L2, then DRAM on miss).
    pub reads: Vec<Region>,
    /// Device-memory regions written (write-allocate through L2).
    pub writes: Vec<Region>,
    /// Extra shared-memory/register traffic beyond the region bytes —
    /// intra-kernel reuse served from L1/smem (tile re-reads inside a
    /// GEMM, staged operands of a fused cell, ...).
    pub l1_extra_bytes: u64,
    /// Thread blocks launched.
    pub ctas: u64,
    /// Shared memory per block, bytes (occupancy limiter).
    pub smem_per_cta: u64,
}

/// Cumulative per-level byte counters — the Table 7 metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TrafficCounters {
    /// Total bytes of access to GPU DRAM.
    pub dram_bytes: u64,
    /// Total bytes of access to the L2 cache.
    pub l2_bytes: u64,
    /// Total bytes of access to L1/shared memory.
    pub l1_bytes: u64,
}

impl TrafficCounters {
    /// Gigabytes of DRAM traffic.
    pub fn dram_gb(&self) -> f64 {
        self.dram_bytes as f64 / 1e9
    }

    /// Gigabytes of L2 traffic.
    pub fn l2_gb(&self) -> f64 {
        self.l2_bytes as f64 / 1e9
    }

    /// Gigabytes of L1 traffic.
    pub fn l1_gb(&self) -> f64 {
        self.l1_bytes as f64 / 1e9
    }
}

/// Per-kernel timing breakdown (microseconds), for diagnostics and ablation
/// benches.
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelTiming {
    /// Launch overhead.
    pub launch_us: f64,
    /// Compute-roof time.
    pub compute_us: f64,
    /// DRAM-roof time.
    pub dram_us: f64,
    /// L2-roof time.
    pub l2_us: f64,
    /// L1-roof time.
    pub l1_us: f64,
    /// The final modeled time (launch + max of the roofs).
    pub total_us: f64,
}

/// The simulated machine.
#[derive(Debug, Clone)]
pub struct SimMachine {
    config: GpuConfig,
    l2: LruCache,
    next_base: u64,
    counters: TrafficCounters,
    elapsed_us: f64,
    kernels_launched: u64,
    log: Vec<(String, KernelTiming)>,
    keep_log: bool,
}

impl SimMachine {
    /// A fresh machine.
    pub fn new(config: GpuConfig) -> Self {
        let l2_chunks = config.l2_bytes / config.l2_chunk_bytes;
        let ways = config.l2_ways;
        SimMachine {
            l2: LruCache::new(l2_chunks, ways),
            config,
            next_base: 0,
            counters: TrafficCounters::default(),
            elapsed_us: 0.0,
            kernels_launched: 0,
            log: Vec::new(),
            keep_log: false,
        }
    }

    /// Enables the per-kernel timing log (off by default to keep sweeps
    /// cheap).
    pub fn with_log(mut self) -> Self {
        self.keep_log = true;
        self
    }

    /// The machine configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Allocates a device buffer.
    pub fn alloc(&mut self, bytes: u64) -> BufferHandle {
        // Align bases to the chunk size so distinct buffers never share a
        // modeled L2 chunk.
        let chunk = self.config.l2_chunk_bytes;
        let base = self.next_base;
        self.next_base += bytes.div_ceil(chunk) * chunk;
        BufferHandle { base, bytes }
    }

    /// Launches a kernel: accounts traffic at every level and advances the
    /// clock by the roofline time.
    pub fn launch(&mut self, k: &Kernel) -> KernelTiming {
        let chunk = self.config.l2_chunk_bytes;
        let mut l2_request_bytes = 0u64;
        let mut dram_bytes = 0u64;
        for (region, is_write) in k
            .reads
            .iter()
            .map(|r| (r, false))
            .chain(k.writes.iter().map(|r| (r, true)))
        {
            l2_request_bytes += region.bytes;
            let start = (region.buffer.base + region.offset) / chunk;
            let end = (region.buffer.base + region.offset + region.bytes.max(1) - 1) / chunk;
            for c in start..=end {
                let hit = self.l2.access(c, self.config.l2_ways);
                if !hit {
                    // Reads miss to DRAM; writes allocate (read-for-
                    // ownership omitted) and are counted as DRAM write
                    // traffic once per chunk at eviction — modeled as
                    // immediate write-through for determinism.
                    dram_bytes += chunk.min(region.bytes);
                    let _ = is_write;
                }
            }
        }
        // L1 sees every byte the SMs request: the region traffic plus the
        // declared intra-kernel reuse traffic.
        let l1_bytes = l2_request_bytes + k.l1_extra_bytes;

        self.counters.l1_bytes += l1_bytes;
        self.counters.l2_bytes += l2_request_bytes;
        self.counters.dram_bytes += dram_bytes;

        // Roofline time.
        let cfg = &self.config;
        let concurrent = if k.smem_per_cta == 0 {
            (cfg.num_sms * cfg.max_ctas_per_sm) as u64
        } else {
            let per_sm = (cfg.smem_per_sm_bytes / k.smem_per_cta.max(1))
                .clamp(1, cfg.max_ctas_per_sm as u64);
            cfg.num_sms as u64 * per_sm
        };
        let occupancy = (k.ctas.max(1) as f64 / concurrent as f64).min(1.0);
        let compute_us = k.flops as f64 / (cfg.flops_per_us(k.tensor_cores) * occupancy);
        let dram_us = dram_bytes as f64 / GpuConfig::bytes_per_us(cfg.dram_bw_gbps);
        let l2_us = l2_request_bytes as f64 / GpuConfig::bytes_per_us(cfg.l2_bw_gbps);
        let l1_us =
            l1_bytes as f64 / (GpuConfig::bytes_per_us(cfg.l1_bw_gbps) * occupancy.max(0.05));
        let timing = KernelTiming {
            launch_us: cfg.kernel_launch_us,
            compute_us,
            dram_us,
            l2_us,
            l1_us,
            total_us: cfg.kernel_launch_us + compute_us.max(dram_us).max(l2_us).max(l1_us),
        };
        if ft_probe::enabled() {
            // The kernel's roofline breakdown, placed on the simulated
            // timeline (SIM_PID) so wall-clock spans and modeled time stay
            // on separate tracks in the trace viewer.
            let bound = if timing.launch_us >= compute_us.max(dram_us).max(l2_us).max(l1_us) {
                "launch"
            } else if compute_us >= dram_us.max(l2_us).max(l1_us) {
                "compute"
            } else if dram_us >= l2_us.max(l1_us) {
                "dram"
            } else if l2_us >= l1_us {
                "l2"
            } else {
                "l1"
            };
            ft_probe::complete_event(
                "sim",
                format!("kernel.{}", k.name),
                ft_probe::SIM_PID,
                0,
                self.elapsed_us,
                timing.total_us,
                vec![
                    ("flops".to_string(), k.flops.into()),
                    ("dram_bytes".to_string(), dram_bytes.into()),
                    ("l2_bytes".to_string(), l2_request_bytes.into()),
                    ("l1_bytes".to_string(), l1_bytes.into()),
                    ("launch_us".to_string(), timing.launch_us.into()),
                    ("compute_us".to_string(), compute_us.into()),
                    ("dram_us".to_string(), dram_us.into()),
                    ("l2_us".to_string(), l2_us.into()),
                    ("l1_us".to_string(), l1_us.into()),
                    ("occupancy".to_string(), occupancy.into()),
                    ("ctas".to_string(), k.ctas.into()),
                    ("bound".to_string(), bound.into()),
                ],
            );
            ft_probe::counter("sim.kernels", 1.0);
            ft_probe::counter("sim.flops", k.flops as f64);
            ft_probe::counter("sim.dram_bytes", dram_bytes as f64);
            ft_probe::counter("sim.l2_bytes", l2_request_bytes as f64);
            ft_probe::counter("sim.l1_bytes", l1_bytes as f64);
            ft_probe::counter(&format!("sim.bound.{bound}"), 1.0);
        }
        self.elapsed_us += timing.total_us;
        self.kernels_launched += 1;
        if self.keep_log {
            self.log.push((k.name.clone(), timing));
        }
        timing
    }

    /// Cumulative per-level traffic.
    pub fn counters(&self) -> TrafficCounters {
        self.counters
    }

    /// Modeled elapsed time, milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_us / 1e3
    }

    /// Kernel launches so far.
    pub fn kernels_launched(&self) -> u64 {
        self.kernels_launched
    }

    /// The per-kernel log, if enabled.
    pub fn log(&self) -> &[(String, KernelTiming)] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_kernel(buf: BufferHandle) -> Kernel {
        Kernel {
            name: "k".into(),
            flops: 1000,
            tensor_cores: false,
            reads: vec![Region::whole(buf)],
            writes: vec![],
            l1_extra_bytes: 0,
            ctas: 108,
            smem_per_cta: 0,
        }
    }

    #[test]
    fn launch_overhead_accumulates() {
        let mut m = SimMachine::new(GpuConfig::a100());
        let b = m.alloc(1024);
        for _ in 0..10 {
            m.launch(&tiny_kernel(b));
        }
        assert_eq!(m.kernels_launched(), 10);
        // 10 launches x 5 us minimum.
        assert!(m.elapsed_ms() >= 0.05);
    }

    #[test]
    fn l2_reuse_cuts_dram_traffic() {
        let mut m = SimMachine::new(GpuConfig::a100());
        let b = m.alloc(1024 * 1024); // 1 MiB: fits comfortably in L2.
        m.launch(&tiny_kernel(b));
        let dram_after_first = m.counters().dram_bytes;
        assert!(dram_after_first > 0);
        m.launch(&tiny_kernel(b));
        // Second pass hits in L2: no new DRAM traffic.
        assert_eq!(m.counters().dram_bytes, dram_after_first);
        assert_eq!(m.counters().l2_bytes, 2 * 1024 * 1024);
    }

    #[test]
    fn streaming_oversized_buffer_misses_every_time() {
        let cfg = GpuConfig::a100();
        let mut m = SimMachine::new(cfg.clone());
        let b = m.alloc(2 * cfg.l2_bytes); // 2x L2: streams.
        m.launch(&tiny_kernel(b));
        let first = m.counters().dram_bytes;
        m.launch(&tiny_kernel(b));
        let second = m.counters().dram_bytes - first;
        // LRU streaming: the second pass misses (almost) everything again.
        assert!(second as f64 > 0.9 * first as f64);
    }

    #[test]
    fn distinct_buffers_do_not_alias() {
        let mut m = SimMachine::new(GpuConfig::a100());
        let a = m.alloc(100); // Sub-chunk allocations...
        let b = m.alloc(100);
        // ...must still land in different chunks.
        assert_ne!(a.base / 16384, b.base / 16384);
    }

    #[test]
    fn compute_bound_kernel_timed_by_flops() {
        let cfg = GpuConfig::a100();
        let mut m = SimMachine::new(cfg.clone());
        let b = m.alloc(1024);
        let k = Kernel {
            name: "compute".into(),
            flops: 19_500_000_000, // 1 ms of FP32 at full rate.
            tensor_cores: false,
            reads: vec![Region::whole(b)],
            writes: vec![],
            l1_extra_bytes: 0,
            ctas: (cfg.num_sms * cfg.max_ctas_per_sm) as u64,
            smem_per_cta: 0,
        };
        let t = m.launch(&k);
        assert!((t.compute_us - 1000.0).abs() < 1.0, "{t:?}");
        assert!(t.total_us >= t.compute_us);
    }

    #[test]
    fn low_occupancy_slows_compute() {
        let cfg = GpuConfig::a100();
        let mut m = SimMachine::new(cfg.clone());
        let b = m.alloc(1024);
        let mut k = Kernel {
            name: "tiny".into(),
            flops: 1_000_000_000,
            tensor_cores: false,
            reads: vec![Region::whole(b)],
            writes: vec![],
            l1_extra_bytes: 0,
            ctas: 1, // One block: most SMs idle.
            smem_per_cta: 0,
        };
        let t1 = m.launch(&k);
        k.ctas = (cfg.num_sms * cfg.max_ctas_per_sm) as u64;
        let t2 = m.launch(&k);
        assert!(t1.compute_us > 100.0 * t2.compute_us);
    }

    #[test]
    fn tensor_cores_speed_up_gemm_flops() {
        let cfg = GpuConfig::a100();
        let mut m = SimMachine::new(cfg.clone());
        let b = m.alloc(1024);
        let mk = |tc: bool| Kernel {
            name: "mm".into(),
            flops: 1_000_000_000,
            tensor_cores: tc,
            reads: vec![Region::whole(b)],
            writes: vec![],
            l1_extra_bytes: 0,
            ctas: 216,
            smem_per_cta: 0,
        };
        let slow = m.launch(&mk(false));
        let fast = m.launch(&mk(true));
        assert!(slow.compute_us > 7.0 * fast.compute_us);
    }

    #[test]
    fn traffic_counters_track_all_levels() {
        let mut m = SimMachine::new(GpuConfig::a100());
        let b = m.alloc(1 << 20);
        let k = Kernel {
            name: "t".into(),
            flops: 0,
            tensor_cores: false,
            reads: vec![Region::whole(b)],
            writes: vec![Region::range(b, 0, 1 << 10)],
            l1_extra_bytes: 12345,
            ctas: 1,
            smem_per_cta: 0,
        };
        m.launch(&k);
        let c = m.counters();
        assert_eq!(c.l2_bytes, (1 << 20) + (1 << 10));
        assert_eq!(c.l1_bytes, c.l2_bytes + 12345);
        assert!(c.dram_bytes > 0);
        assert!(c.dram_gb() > 0.0 && c.l1_gb() > 0.0 && c.l2_gb() > 0.0);
    }
}
