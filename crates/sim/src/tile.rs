//! The tile library (paper §5.3): TensorCore-aligned base tiles composed
//! into cache-level tiles, plus kernel builders that compute the traffic a
//! tiled macro-kernel generates at each memory level.

use crate::machine::{Kernel, Region};

/// Edge of the base tile, aligned to a TensorCore MMA instruction shape.
pub const BASE_TILE: usize = 16;

/// Register-level blocking factor (elements of C each thread accumulates
/// per smem operand read) used in the shared-memory traffic estimate.
const REGISTER_TILE: u64 = 8;

/// A CTA-level tile shape for GEMM-like kernels: `Tm x Tn` output tile with
/// `Tk`-deep staging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileConfig {
    /// Output-tile rows per CTA.
    pub tm: usize,
    /// Output-tile columns per CTA.
    pub tn: usize,
    /// Contraction-depth per staging step.
    pub tk: usize,
}

impl TileConfig {
    /// A tile config; edges are rounded up to multiples of the base tile.
    pub fn new(tm: usize, tn: usize, tk: usize) -> Self {
        let align = |x: usize| x.div_ceil(BASE_TILE) * BASE_TILE;
        TileConfig {
            tm: align(tm.max(1)),
            tn: align(tn.max(1)),
            tk: align(tk.max(1)),
        }
    }

    /// Shared memory for double-buffered A and B tiles, bytes.
    pub fn smem_bytes(&self) -> u64 {
        2 * 4 * (self.tm as u64 * self.tk as u64 + self.tk as u64 * self.tn as u64)
    }

    /// True when the tile's staging fits the given shared-memory budget.
    pub fn fits(&self, smem_budget: u64) -> bool {
        self.smem_bytes() <= smem_budget
    }

    /// Picks the largest library tile that fits the budget and the problem
    /// (the §5.3 "predefined tile shapes that optimize cache utilization
    /// while maintaining a good SM occupancy").
    pub fn select(m: usize, n: usize, smem_budget: u64) -> TileConfig {
        const CANDIDATES: [(usize, usize, usize); 6] = [
            (128, 128, 32),
            (128, 64, 32),
            (64, 128, 32),
            (64, 64, 32),
            (32, 32, 32),
            (16, 16, 16),
        ];
        for &(tm, tn, tk) in &CANDIDATES {
            let t = TileConfig::new(tm, tn, tk);
            if t.fits(smem_budget) && tm <= m.max(BASE_TILE) * 2 && tn <= n.max(BASE_TILE) * 2 {
                return t;
            }
        }
        TileConfig::new(BASE_TILE, BASE_TILE, BASE_TILE)
    }
}

impl Default for TileConfig {
    fn default() -> Self {
        TileConfig::new(128, 128, 32)
    }
}

/// Builds the kernel spec for a tiled GEMM `C[m,n] = A[m,k] @ B[k,n]`.
///
/// Traffic model: every CTA stripe reloads `A` once per column tile and `B`
/// once per row tile (requests that hit L2 when the operand is resident),
/// and the inner product streams operands from shared memory with
/// register-level blocking.
#[allow(clippy::too_many_arguments)]
pub fn gemm_kernel(
    name: &str,
    m: usize,
    k: usize,
    n: usize,
    a: Region,
    b: Region,
    c: Region,
    tiles: TileConfig,
    tensor_cores: bool,
) -> Kernel {
    let (mu, ku, nu) = (m as u64, k as u64, n as u64);
    let flops = 2 * mu * ku * nu;
    let a_reloads = n.div_ceil(tiles.tn) as u64;
    let b_reloads = m.div_ceil(tiles.tm) as u64;
    let mut reads = Vec::with_capacity((a_reloads + b_reloads) as usize);
    for _ in 0..a_reloads {
        reads.push(a);
    }
    for _ in 0..b_reloads {
        reads.push(b);
    }
    // Each multiply-accumulate reads two operands from shared memory,
    // amortized by the register tile.
    let l1_extra = 2 * 4 * mu * ku * nu / REGISTER_TILE;
    Kernel {
        name: name.to_string(),
        flops,
        tensor_cores,
        reads,
        writes: vec![c],
        l1_extra_bytes: l1_extra,
        ctas: (m.div_ceil(tiles.tm) * n.div_ceil(tiles.tn)) as u64,
        smem_per_cta: tiles.smem_bytes(),
    }
}

/// Builds the kernel spec for an elementwise pass over `elems` f32 values.
pub fn elementwise_kernel(
    name: &str,
    elems: u64,
    reads: Vec<Region>,
    writes: Vec<Region>,
) -> Kernel {
    Kernel {
        name: name.to_string(),
        flops: elems,
        tensor_cores: false,
        reads,
        writes,
        l1_extra_bytes: 0,
        ctas: elems.div_ceil(1024).max(1),
        smem_per_cta: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::machine::SimMachine;

    #[test]
    fn tile_alignment_to_base_tile() {
        let t = TileConfig::new(100, 70, 20);
        assert_eq!((t.tm, t.tn, t.tk), (112, 80, 32));
        assert_eq!(t.tm % BASE_TILE, 0);
    }

    #[test]
    fn smem_accounting() {
        let t = TileConfig::new(128, 128, 32);
        // 2 (double buffer) * 4 B * (128*32 + 32*128) = 64 KiB.
        assert_eq!(t.smem_bytes(), 65536);
        assert!(t.fits(GpuConfig::a100().smem_per_sm_bytes));
        assert!(!t.fits(1024));
    }

    #[test]
    fn select_prefers_large_tiles_that_fit() {
        let budget = GpuConfig::a100().smem_per_sm_bytes;
        let t = TileConfig::select(4096, 4096, budget);
        assert_eq!((t.tm, t.tn), (128, 128));
        // A tiny problem gets a tiny tile.
        let small = TileConfig::select(16, 16, budget);
        assert!(small.tm <= 32);
    }

    #[test]
    fn gemm_kernel_flops_and_ctas() {
        let mut m = SimMachine::new(GpuConfig::a100());
        let a = m.alloc(512 * 512 * 4);
        let b = m.alloc(512 * 512 * 4);
        let c = m.alloc(512 * 512 * 4);
        let k = gemm_kernel(
            "mm",
            512,
            512,
            512,
            Region::whole(a),
            Region::whole(b),
            Region::whole(c),
            TileConfig::default(),
            true,
        );
        assert_eq!(k.flops, 2 * 512 * 512 * 512);
        assert_eq!(k.ctas, 16); // (512/128)^2.
        assert!(k.l1_extra_bytes > 0);
    }

    #[test]
    fn larger_tiles_reduce_l2_traffic() {
        let run = |tile: TileConfig| {
            let mut m = SimMachine::new(GpuConfig::a100());
            let a = m.alloc(2048 * 2048 * 4);
            let b = m.alloc(2048 * 2048 * 4);
            let c = m.alloc(2048 * 2048 * 4);
            let k = gemm_kernel(
                "mm",
                2048,
                2048,
                2048,
                Region::whole(a),
                Region::whole(b),
                Region::whole(c),
                tile,
                true,
            );
            m.launch(&k);
            m.counters().l2_bytes
        };
        let big = run(TileConfig::new(128, 128, 32));
        let small = run(TileConfig::new(32, 32, 32));
        assert!(
            small > 3 * big,
            "32x32 tiles should reload operands far more: {small} vs {big}"
        );
    }

    #[test]
    fn elementwise_kernel_shape() {
        let mut m = SimMachine::new(GpuConfig::a100());
        let x = m.alloc(1 << 20);
        let k = elementwise_kernel("relu", 1 << 18, vec![Region::whole(x)], vec![]);
        assert_eq!(k.flops, 1 << 18);
        assert!(k.ctas >= 1);
        assert!(!k.tensor_cores);
    }
}
