//! # ft-sim
//!
//! A deterministic tile-machine simulator standing in for the paper's A100
//! execution platform (§5.3 "access materialization" and the §6
//! evaluation).
//!
//! The paper's performance claims are properties of *schedules*: how many
//! kernels launch, how much data crosses each memory level, how well each
//! launch fills the SMs. This crate replays emitted kernel sequences
//! against an A100-shaped machine model and reports exactly the quantities
//! the paper measures:
//!
//! * end-to-end execution time (launch overhead + a roofline
//!   `max(compute, DRAM, L2, L1)` per kernel, scaled by occupancy), for
//!   Figures 2, 7 and 8,
//! * total bytes of access to GPU DRAM, L1, and L2 (Table 7), with an LRU
//!   L2 model capturing inter-kernel reuse.
//!
//! The [`tile`] module is the §5.3 tile library: a TensorCore-aligned base
//! tile composed into cache-level tiles, with kernel builders (`gemm`,
//! attention blocks, elementwise) that compute the per-level traffic a
//! tiled macro-kernel generates.
//!
//! Everything here is exact integer/float arithmetic over explicit inputs —
//! no randomness — so every figure regenerates bit-identically.

#![forbid(unsafe_code)]

pub mod cache;
pub mod config;
pub mod machine;
pub mod tile;

pub use cache::LruCache;
pub use config::GpuConfig;
pub use machine::{BufferHandle, Kernel, Region, SimMachine, TrafficCounters};
pub use tile::{elementwise_kernel, gemm_kernel, TileConfig};
