//! A set-associative LRU cache model, used for the simulated L2.

use std::collections::HashMap;

/// Set-associative LRU cache over abstract chunk addresses.
///
/// Addresses are pre-quantized by the caller (the machine divides byte
/// addresses by the chunk size); the cache only tracks presence, returning
/// hit/miss per access.
#[derive(Debug, Clone)]
pub struct LruCache {
    sets: Vec<CacheSet>,
    num_sets: u64,
    /// Monotone clock for LRU ordering.
    clock: u64,
    /// Statistics.
    hits: u64,
    misses: u64,
}

#[derive(Debug, Clone, Default)]
struct CacheSet {
    /// chunk address -> last-use time.
    lines: HashMap<u64, u64>,
}

impl LruCache {
    /// A cache holding `capacity_chunks` chunks with `ways` associativity.
    /// Capacities below one set degenerate to a single fully-associative
    /// set.
    pub fn new(capacity_chunks: u64, ways: usize) -> Self {
        let num_sets = (capacity_chunks / ways as u64).max(1);
        LruCache {
            sets: vec![CacheSet::default(); num_sets as usize],
            num_sets,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Touches one chunk; returns `true` on hit.
    pub fn access(&mut self, chunk: u64, ways: usize) -> bool {
        self.clock += 1;
        let set = &mut self.sets[(chunk % self.num_sets) as usize];
        if let Some(t) = set.lines.get_mut(&chunk) {
            *t = self.clock;
            self.hits += 1;
            return true;
        }
        // Miss: insert, evicting LRU if the set is full.
        if set.lines.len() >= ways {
            if let Some((&victim, _)) = set.lines.iter().min_by_key(|(_, &t)| t) {
                set.lines.remove(&victim);
            }
        }
        set.lines.insert(chunk, self.clock);
        self.misses += 1;
        false
    }

    /// Invalidates everything (e.g. between independent experiments).
    pub fn clear(&mut self) {
        for s in self.sets.iter_mut() {
            s.lines.clear();
        }
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = LruCache::new(64, 4);
        assert!(!c.access(42, 4));
        assert!(c.access(42, 4));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lru_evicts_oldest() {
        // Single set of 2 ways.
        let mut c = LruCache::new(2, 2);
        assert!(!c.access(0, 2));
        assert!(!c.access(2, 2)); // Same set (num_sets = 1).
        assert!(c.access(0, 2)); // 0 now MRU.
        assert!(!c.access(4, 2)); // Evicts 2.
        assert!(c.access(0, 2));
        assert!(!c.access(2, 2)); // 2 was evicted.
    }

    #[test]
    fn working_set_within_capacity_all_hits_after_warmup() {
        let mut c = LruCache::new(128, 8);
        for round in 0..3 {
            for chunk in 0..100u64 {
                let hit = c.access(chunk, 8);
                if round > 0 {
                    assert!(hit, "chunk {chunk} should hit in round {round}");
                }
            }
        }
    }

    #[test]
    fn working_set_exceeding_capacity_thrashes() {
        let mut c = LruCache::new(16, 16);
        // Stream 64 chunks repeatedly through a 16-chunk cache: every round
        // misses everything (classic LRU streaming pathology).
        for _ in 0..3 {
            for chunk in 0..64u64 {
                c.access(chunk, 16);
            }
        }
        let (hits, misses) = c.stats();
        assert_eq!(hits, 0);
        assert_eq!(misses, 192);
    }

    #[test]
    fn clear_resets_contents_but_not_stats() {
        let mut c = LruCache::new(8, 4);
        c.access(1, 4);
        c.clear();
        assert!(!c.access(1, 4));
    }
}
