//! Machine model parameters.

/// Parameters of the simulated GPU.
///
/// Defaults model an NVIDIA A100-SXM4-40GB, the paper's evaluation platform:
/// 108 SMs, 192 KiB unified L1/shared memory per SM, 40 MiB L2,
/// ~1555 GB/s HBM2, 19.5 TFLOP/s FP32 and 156 TFLOP/s TF32 TensorCore.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Human-readable name.
    pub name: String,
    /// Streaming multiprocessor count.
    pub num_sms: usize,
    /// Unified shared-memory/L1 capacity per SM, bytes.
    pub smem_per_sm_bytes: u64,
    /// L2 capacity, bytes.
    pub l2_bytes: u64,
    /// DRAM (HBM) bandwidth, GB/s.
    pub dram_bw_gbps: f64,
    /// Aggregate L2 bandwidth, GB/s.
    pub l2_bw_gbps: f64,
    /// Aggregate shared-memory/L1 bandwidth, GB/s.
    pub l1_bw_gbps: f64,
    /// FP32 CUDA-core throughput, TFLOP/s.
    pub fp32_tflops: f64,
    /// TensorCore (TF32) throughput, TFLOP/s.
    pub tensor_tflops: f64,
    /// Fixed cost of one kernel launch, microseconds.
    pub kernel_launch_us: f64,
    /// Granularity of the L2 reuse model, bytes (a coarse "sector" — large
    /// enough to keep simulation fast, small enough to capture tile reuse).
    pub l2_chunk_bytes: u64,
    /// L2 associativity in the reuse model.
    pub l2_ways: usize,
    /// Maximum thread blocks resident per SM.
    pub max_ctas_per_sm: usize,
}

impl GpuConfig {
    /// The paper's platform: NVIDIA A100.
    pub fn a100() -> Self {
        GpuConfig {
            name: "NVIDIA A100-SXM4-40GB".into(),
            num_sms: 108,
            smem_per_sm_bytes: 192 * 1024,
            l2_bytes: 40 * 1024 * 1024,
            dram_bw_gbps: 1555.0,
            l2_bw_gbps: 4500.0,
            l1_bw_gbps: 19_400.0,
            fp32_tflops: 19.5,
            tensor_tflops: 156.0,
            kernel_launch_us: 5.0,
            l2_chunk_bytes: 16 * 1024,
            l2_ways: 16,
            max_ctas_per_sm: 2,
        }
    }

    /// FLOP/s available to a kernel, in FLOPs per microsecond.
    pub fn flops_per_us(&self, tensor_cores: bool) -> f64 {
        let tflops = if tensor_cores {
            self.tensor_tflops
        } else {
            self.fp32_tflops
        };
        tflops * 1e12 / 1e6
    }

    /// Bytes per microsecond for a bandwidth in GB/s.
    pub fn bytes_per_us(gbps: f64) -> f64 {
        gbps * 1e9 / 1e6
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::a100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_parameters_are_sane() {
        let c = GpuConfig::a100();
        assert_eq!(c.num_sms, 108);
        assert!(c.tensor_tflops > c.fp32_tflops);
        assert!(c.l2_bytes > c.smem_per_sm_bytes);
        // 19.5 TFLOP/s = 19.5e6 FLOP/us.
        assert!((c.flops_per_us(false) - 19.5e6).abs() < 1.0);
        // 1555 GB/s = 1.555e6 bytes/us.
        assert!((GpuConfig::bytes_per_us(c.dram_bw_gbps) - 1.555e6).abs() < 1e3);
    }
}
