//! Property tests for the log-bucket histogram: exact-count invariants,
//! merge associativity, and quantile error bounds against the true
//! sorted-order statistic.

use ft_obs::Histogram;
use proptest::prelude::*;

/// Deterministic pseudo-random positive value from an index and seed —
/// spans ~9 orders of magnitude so bucket boundaries are exercised.
fn value(i: u64, seed: u64) -> f64 {
    let mut x = i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed;
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    let mag = (x % 9) as i32 - 2; // 10^-2 .. 10^6
    let frac = 1.0 + (x >> 16) as f64 / u64::MAX as f64 * 8.0;
    frac * 10f64.powi(mag)
}

/// The true order statistic the histogram's quantile approximates:
/// the `ceil(q·n)`-th smallest value (1-based), matching
/// `HistSnapshot::quantile`'s rank definition.
fn true_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every recorded observation is counted exactly once — total count,
    /// bucket-sum, and exact arithmetic sum all agree.
    #[test]
    fn prop_exact_count_invariants(n in 1usize..4000, seed in 0u64..1_000_000) {
        let h = Histogram::new();
        let mut sum = 0.0;
        for i in 0..n {
            let v = value(i as u64, seed);
            sum += v;
            h.record(v);
        }
        prop_assert_eq!(h.count(), n as u64);
        let snap = h.snapshot();
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), n as u64);
        prop_assert!((snap.sum - sum).abs() <= sum.abs() * 1e-9 + 1e-9);
    }

    /// p99 (and p50/p95) land within one bucket's relative error of the
    /// true sorted-order percentile — the exactness guarantee that
    /// replaces reservoir sampling.
    #[test]
    fn prop_p99_within_one_bucket_of_sorted_order(n in 10usize..5000, seed in 0u64..1_000_000) {
        let h = Histogram::new();
        let mut values = Vec::with_capacity(n);
        for i in 0..n {
            let v = value(i as u64, seed);
            values.push(v);
            h.record(v);
        }
        values.sort_by(|a, b| a.total_cmp(b));
        for &q in &[0.50, 0.95, 0.99] {
            let truth = true_quantile(&values, q);
            let est = h.quantile(q);
            // The estimate is the upper bound of the bucket holding the
            // order statistic: never below the truth (modulo float dust),
            // and at most one bucket width above it.
            prop_assert!(
                est >= truth * (1.0 - 1e-12),
                "q={} est {} fell below truth {}", q, est, truth
            );
            prop_assert!(
                est <= truth * (1.0 + Histogram::RELATIVE_ERROR),
                "q={} est {} exceeds truth {} by more than one bucket", q, est, truth
            );
        }
    }

    /// Merging shard-local histograms in any grouping reproduces single
    /// recording exactly (associativity + identity).
    #[test]
    fn prop_merge_associative(n in 1usize..1500, seed in 0u64..1_000_000, split in 1usize..7) {
        let shards: Vec<Histogram> = (0..split.max(1)).map(|_| Histogram::new()).collect();
        let single = Histogram::new();
        for i in 0..n {
            let v = value(i as u64, seed);
            shards[i % shards.len()].record(v);
            single.record(v);
        }
        // Left fold.
        let left = Histogram::new();
        for s in &shards {
            left.merge(s);
        }
        // Right fold.
        let right = Histogram::new();
        for s in shards.iter().rev() {
            right.merge(s);
        }
        let (l, r, s) = (left.snapshot(), right.snapshot(), single.snapshot());
        prop_assert_eq!(&l.buckets, &r.buckets);
        prop_assert_eq!(&l.buckets, &s.buckets);
        prop_assert_eq!(l.count, s.count);
        prop_assert!((l.sum - s.sum).abs() <= s.sum.abs() * 1e-9 + 1e-9);
    }
}
