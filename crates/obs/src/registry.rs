//! The metrics registry: named counters, gauges, and histograms behind a
//! sharded name table.
//!
//! Registration (first use of a name) takes one shard's write lock;
//! after that a cloned handle is a bare `Arc` and every update is a
//! relaxed atomic operation — no lock is touched on the hot path. Call
//! sites that cannot conveniently hold a handle can use the by-name free
//! functions on the [global] registry, which cost one shard read-lock
//! plus a hash lookup.
//!
//! Semantics, fixing the `ft_probe::counter` misuse this replaces:
//!
//! * [`Counter`] — monotonically increasing `u64` (requests served,
//!   cache hits). Cumulative-sum semantics.
//! * [`Gauge`] — point-in-time `i64` (queue depth, workers busy). Set,
//!   add, and subtract; exporting a gauge reports *now*, not a sum.
//! * [`Histogram`] — a value distribution (latency, batch size). Exact
//!   counts, O(1) memory, quantiles within one bucket's relative error;
//!   see [`crate::hist`].

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

use crate::hist::{HistSnapshot, Histogram};

/// A monotonically increasing counter handle. Clone freely; all clones
/// share one atomic cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time gauge handle (queue depth, busy workers).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts 1.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Hist(Arc<Histogram>),
}

const SHARDS: usize = 16;

/// A named-metric registry (see the module docs). [`Registry::global`]
/// returns the process-wide instance; components that need isolation
/// (each `ft_serve::Runtime`, unit tests) own their own.
pub struct Registry {
    shards: [RwLock<HashMap<String, Metric>>; SHARDS],
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: usize = self.shards.iter().map(|s| s.read().len()).sum();
        f.debug_struct("Registry").field("metrics", &names).finish()
    }
}

fn shard_of(name: &str) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut h);
    (h.finish() as usize) % SHARDS
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry. Layers without a runtime reference
    /// (worker pool, executor arena, plan cache) record here.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn get_or_insert<T: Clone>(
        &self,
        name: &str,
        pick: impl Fn(&Metric) -> Option<T>,
        make: impl FnOnce() -> (Metric, T),
    ) -> T {
        let shard = &self.shards[shard_of(name)];
        if let Some(m) = shard.read().get(name) {
            if let Some(t) = pick(m) {
                return t;
            }
        }
        let mut w = shard.write();
        // Double-check: a racing registrar may have inserted it.
        if let Some(m) = w.get(name) {
            if let Some(t) = pick(m) {
                return t;
            }
            // Name registered under a different metric kind: a programming
            // error. Keep the first registration (never corrupt live
            // handles) and hand back a detached instance so the caller
            // stays functional — its updates just won't export.
            let (_, t) = make();
            return t;
        }
        let (metric, t) = make();
        w.insert(name.to_string(), metric);
        t
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        self.get_or_insert(
            name,
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || {
                let c = Counter::default();
                (Metric::Counter(c.clone()), c)
            },
        )
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.get_or_insert(
            name,
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || {
                let g = Gauge::default();
                (Metric::Gauge(g.clone()), g)
            },
        )
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            |m| match m {
                Metric::Hist(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || {
                let h = Arc::new(Histogram::new());
                (Metric::Hist(Arc::clone(&h)), h)
            },
        )
    }

    /// By-name convenience: `counter(name).add(n)`.
    pub fn counter_add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// By-name convenience: `gauge(name).set(v)`.
    pub fn gauge_set(&self, name: &str, v: i64) {
        self.gauge(name).set(v);
    }

    /// By-name convenience: `histogram(name).record(v)`.
    pub fn observe(&self, name: &str, v: f64) {
        self.histogram(name).record(v);
    }

    /// A point-in-time snapshot of every metric, name-ordered.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut snap = RegistrySnapshot::default();
        for shard in &self.shards {
            for (name, metric) in shard.read().iter() {
                match metric {
                    Metric::Counter(c) => {
                        snap.counters.insert(name.clone(), c.get());
                    }
                    Metric::Gauge(g) => {
                        snap.gauges.insert(name.clone(), g.get());
                    }
                    Metric::Hist(h) => {
                        snap.hists.insert(name.clone(), h.snapshot());
                    }
                }
            }
        }
        snap
    }
}

/// An owned snapshot of a [`Registry`]: the exporter's input.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub hists: BTreeMap<String, HistSnapshot>,
}

impl RegistrySnapshot {
    /// Merges `other` into `self`: counters add, gauges take `other`'s
    /// value (it is the more specific source), histograms bucket-add.
    /// Used to export a runtime-local registry together with the global
    /// one as a single scrape.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.hists {
            match self.hists.get_mut(k) {
                Some(mine) => {
                    for (m, t) in mine.buckets.iter_mut().zip(&h.buckets) {
                        *m += t;
                    }
                    mine.count += h.count;
                    mine.sum += h.sum;
                }
                None => {
                    self.hists.insert(k.clone(), h.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_and_register_once() {
        let r = Registry::new();
        let a = r.counter("x.total");
        let b = r.counter("x.total");
        a.add(2);
        b.inc();
        assert_eq!(r.counter("x.total").get(), 3);
        let snap = r.snapshot();
        assert_eq!(snap.counters["x.total"], 3);
    }

    #[test]
    fn gauge_is_point_in_time_not_cumulative() {
        let r = Registry::new();
        let g = r.gauge("q.depth");
        g.set(5);
        g.set(2);
        g.inc();
        assert_eq!(g.get(), 3);
        assert_eq!(r.snapshot().gauges["q.depth"], 3);
    }

    #[test]
    fn kind_mismatch_degrades_to_detached_metric() {
        let r = Registry::new();
        r.counter("name").add(7);
        // Same name re-registered as a gauge: first registration wins,
        // the gauge handle is detached but functional.
        let g = r.gauge("name");
        g.set(1);
        assert_eq!(g.get(), 1);
        assert_eq!(r.snapshot().counters["name"], 7);
        assert!(!r.snapshot().gauges.contains_key("name"));
    }

    #[test]
    fn concurrent_registration_and_updates() {
        let r = std::sync::Arc::new(Registry::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let r = std::sync::Arc::clone(&r);
                s.spawn(move || {
                    let c = r.counter("hot");
                    for _ in 0..10_000 {
                        c.inc();
                    }
                    r.observe("dist", 3.0);
                });
            }
        });
        assert_eq!(r.counter("hot").get(), 80_000);
        assert_eq!(r.histogram("dist").count(), 8);
    }

    #[test]
    fn snapshot_merge_adds_counters_and_buckets() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter_add("c", 1);
        b.counter_add("c", 2);
        b.gauge_set("g", 9);
        a.observe("h", 5.0);
        b.observe("h", 50.0);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.counters["c"], 3);
        assert_eq!(snap.gauges["g"], 9);
        assert_eq!(snap.hists["h"].count, 2);
    }
}
