//! Exporters: Prometheus text format, JSON-lines, and the background
//! flusher thread.
//!
//! The [`Exporter`] samples one or more registries on an interval, merges
//! their snapshots ([`RegistrySnapshot::merge`]), and appends a JSONL row
//! and/or rewrites a Prometheus text file. Both formats are plain text a
//! scraper (or `ft-top --follow`) can consume without linking this crate.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use serde_json::{json, Map, Value};

use crate::registry::{Registry, RegistrySnapshot};

/// A metric name as Prometheus accepts it: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
/// The registry's dotted names (`serve.latency_us`) become underscored
/// (`serve_latency_us`).
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Renders a snapshot in the Prometheus text exposition format:
/// counters, gauges, and histograms (cumulative `_bucket{le=...}` series
/// plus `_sum` and `_count`).
pub fn prometheus_text(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, v) in &snap.gauges {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, h) in &snap.hists {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cumulative = 0u64;
        for (le, count) in h.nonzero_buckets() {
            cumulative += count;
            let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    out
}

/// Renders a snapshot as one JSON object (a `metrics.jsonl` row):
/// counters and gauges verbatim, histograms as count/sum/quantiles.
pub fn json_row(snap: &RegistrySnapshot, unix_ms: u128) -> Value {
    let mut counters = Map::new();
    for (k, v) in &snap.counters {
        counters.insert(k.clone(), Value::from(*v));
    }
    let mut gauges = Map::new();
    for (k, v) in &snap.gauges {
        gauges.insert(k.clone(), Value::from(*v));
    }
    let mut hists = Map::new();
    for (k, h) in &snap.hists {
        hists.insert(
            k.clone(),
            json!({
                "count": h.count,
                "sum": h.sum,
                "mean": h.mean(),
                "p50": h.quantile(0.50),
                "p95": h.quantile(0.95),
                "p99": h.quantile(0.99),
            }),
        );
    }
    json!({
        "ts_unix_ms": unix_ms as u64,
        "counters": Value::Object(counters),
        "gauges": Value::Object(gauges),
        "histograms": Value::Object(hists),
    })
}

fn unix_ms() -> u128 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}

/// Exporter configuration.
#[derive(Debug, Clone)]
pub struct ExporterConfig {
    /// Flush interval.
    pub interval: Duration,
    /// Append one JSON row per flush here (created if missing).
    pub jsonl_path: Option<PathBuf>,
    /// Rewrite the Prometheus text file on every flush (atomic rename).
    pub prom_path: Option<PathBuf>,
}

impl Default for ExporterConfig {
    fn default() -> Self {
        ExporterConfig {
            interval: Duration::from_secs(1),
            jsonl_path: None,
            prom_path: None,
        }
    }
}

/// A background thread flushing merged registry snapshots on an interval.
/// Dropping the exporter (or calling [`Exporter::stop`]) performs one
/// final flush so short-lived processes never lose their last interval.
pub struct Exporter {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// One flush: sample, merge, write. Standalone so callers can flush
/// synchronously without a thread (e.g. at the end of a bench run).
pub fn flush(sources: &[&Registry], cfg: &ExporterConfig) -> std::io::Result<RegistrySnapshot> {
    let mut merged = RegistrySnapshot::default();
    for r in sources {
        merged.merge(&r.snapshot());
    }
    if let Some(path) = &cfg.jsonl_path {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(f, "{}", json_row(&merged, unix_ms()))?;
    }
    if let Some(path) = &cfg.prom_path {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        // Write-then-rename so a concurrent scraper never reads a torn file.
        let tmp = path.with_extension("prom.tmp");
        std::fs::write(&tmp, prometheus_text(&merged))?;
        std::fs::rename(&tmp, path)?;
    }
    Ok(merged)
}

impl Exporter {
    /// Starts the background flusher over `sources` (sampled left to
    /// right and merged). Registries must outlive the exporter; pass
    /// `Registry::global()` and/or `Arc`-leaked runtime registries via
    /// the `'static` borrow, or keep the `Arc` alive alongside.
    pub fn spawn(sources: Vec<Arc<Registry>>, include_global: bool, cfg: ExporterConfig) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ft-obs-export".into())
            .spawn(move || {
                loop {
                    let refs: Vec<&Registry> = std::iter::once(Registry::global())
                        .filter(|_| include_global)
                        .chain(sources.iter().map(|a| a.as_ref()))
                        .collect();
                    let _ = flush(&refs, &cfg);
                    if stop2.load(Ordering::Acquire) {
                        return;
                    }
                    // Sleep in small steps so stop() is prompt.
                    let mut left = cfg.interval;
                    let step = Duration::from_millis(25);
                    while !left.is_zero() {
                        if stop2.load(Ordering::Acquire) {
                            // Final flush happens at loop top before exit.
                            break;
                        }
                        let d = left.min(step);
                        std::thread::sleep(d);
                        left = left.saturating_sub(d);
                    }
                }
            })
            .ok();
        Exporter { stop, handle }
    }

    /// Signals the flusher to perform one final flush and exit, then
    /// joins it. Idempotent; also runs on drop.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Exporter {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter_add("serve.completed", 12);
        r.gauge_set("serve.queue_depth", 3);
        for v in [10.0, 20.0, 30.0, 1000.0] {
            r.observe("serve.latency_us", v);
        }
        r
    }

    #[test]
    fn prometheus_text_is_well_formed() {
        let r = sample_registry();
        let text = prometheus_text(&r.snapshot());
        assert!(text.contains("# TYPE serve_completed counter"));
        assert!(text.contains("serve_completed 12"));
        assert!(text.contains("# TYPE serve_queue_depth gauge"));
        assert!(text.contains("serve_queue_depth 3"));
        assert!(text.contains("# TYPE serve_latency_us histogram"));
        assert!(text.contains("serve_latency_us_count 4"));
        assert!(text.contains("le=\"+Inf\"} 4"));
        // Buckets are cumulative and end at the total count.
        let last_bucket = text
            .lines()
            .rfind(|l| l.starts_with("serve_latency_us_bucket"))
            .unwrap();
        assert!(last_bucket.ends_with(" 4"));
    }

    #[test]
    fn json_row_quantiles_bracket_the_data() {
        let r = sample_registry();
        let row = json_row(&r.snapshot(), 1234);
        assert_eq!(row["counters"]["serve.completed"], 12);
        assert_eq!(row["gauges"]["serve.queue_depth"], 3);
        let h = &row["histograms"]["serve.latency_us"];
        assert_eq!(h["count"], 4);
        let p99 = h["p99"].as_f64().unwrap();
        assert!((1000.0..=1100.0).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn flush_writes_both_artifacts() {
        let dir = std::env::temp_dir().join(format!("ft_obs_export_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ExporterConfig {
            interval: Duration::from_millis(10),
            jsonl_path: Some(dir.join("metrics.jsonl")),
            prom_path: Some(dir.join("metrics.prom")),
        };
        let r = sample_registry();
        flush(&[&r], &cfg).unwrap();
        flush(&[&r], &cfg).unwrap();
        let jsonl = std::fs::read_to_string(dir.join("metrics.jsonl")).unwrap();
        assert_eq!(jsonl.lines().count(), 2, "jsonl appends one row per flush");
        for line in jsonl.lines() {
            let v: Value = serde_json::from_str(line).unwrap();
            assert!(v["counters"]["serve.completed"].as_u64().is_some());
        }
        let prom = std::fs::read_to_string(dir.join("metrics.prom")).unwrap();
        assert!(prom.contains("serve_completed 12"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exporter_thread_flushes_and_stops() {
        let dir = std::env::temp_dir().join(format!("ft_obs_exporter_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let reg = Arc::new(sample_registry());
        let mut ex = Exporter::spawn(
            vec![Arc::clone(&reg)],
            false,
            ExporterConfig {
                interval: Duration::from_millis(20),
                jsonl_path: Some(dir.join("m.jsonl")),
                prom_path: Some(dir.join("m.prom")),
            },
        );
        std::thread::sleep(Duration::from_millis(60));
        ex.stop();
        let jsonl = std::fs::read_to_string(dir.join("m.jsonl")).unwrap();
        assert!(jsonl.lines().count() >= 2, "periodic flushes happened");
        assert!(dir.join("m.prom").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
