//! Log-bucketed histograms: exact counts, bounded relative error on
//! quantiles, O(1) memory, lock-free recording.
//!
//! A [`Histogram`] holds a fixed array of atomic bucket counters whose
//! boundaries grow geometrically by `2^(1/SUB_PER_OCTAVE)` — every
//! non-negative finite `f64` lands in exactly one bucket, every `record`
//! is two atomic adds (bucket + count) plus a CAS loop on the running sum,
//! and any quantile is answered by one pass over the buckets. Unlike the
//! sampling reservoirs this replaces in `ft-serve`, *every* observation is
//! counted: a p99 over ten million requests is computed from the full
//! history, not a 4096-element sample, and the only inaccuracy is the
//! bucket width itself — a known, bounded relative error of
//! `2^(1/8) - 1 ≈ 9.05%` (see [`Histogram::RELATIVE_ERROR`]).
//!
//! Merging two histograms is bucket-wise addition, which is associative
//! and commutative — shard-local histograms can be combined in any order
//! and the result is identical to having recorded into one.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per octave (power of two). 8 gives a bucket width ratio of
/// `2^(1/8) ≈ 1.0905`, i.e. ≤ ~9.05% relative quantile error.
const SUB_PER_OCTAVE: usize = 8;

/// Smallest distinguished magnitude: values in `(0, 2^MIN_EXP]` share the
/// first nonzero buckets. 2^-10 ≈ 0.001 — comfortably below a microsecond
/// when recording microsecond durations.
const MIN_EXP: i32 = -10;

/// Largest distinguished magnitude: values ≥ 2^MAX_EXP clamp into the last
/// bucket. 2^44 ≈ 1.7e13 µs ≈ 6 months.
const MAX_EXP: i32 = 44;

/// Bucket count: one zero bucket plus the geometric ladder.
const BUCKETS: usize = 1 + (MAX_EXP - MIN_EXP) as usize * SUB_PER_OCTAVE;

/// Index for a non-negative value. Bucket 0 holds exact zeros (and
/// sub-minimum values); bucket `i > 0` holds `(bound(i-1), bound(i)]`
/// where `bound(i) = 2^(MIN_EXP + i/SUB)`.
fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= 0.0 {
        return 0; // zero, negative (clamped), or NaN
    }
    let pos = (v.log2() - MIN_EXP as f64) * SUB_PER_OCTAVE as f64;
    // ceil: the bucket's *upper* bound is the first ladder point ≥ v.
    let idx = pos.ceil() as i64;
    idx.clamp(1, BUCKETS as i64 - 1) as usize
}

/// The upper bound of bucket `i` (its representative value for quantiles).
fn bucket_bound(i: usize) -> f64 {
    if i == 0 {
        return 0.0;
    }
    ((MIN_EXP as f64) + i as f64 / SUB_PER_OCTAVE as f64).exp2()
}

/// A lock-free log-bucket histogram (see the module docs).
///
/// Cheap to share: the serving runtime hands out `Arc<Histogram>` handles
/// and every `record` is a few relaxed atomic operations.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    /// Running sum as `f64` bits, updated by CAS — exact mean.
    sum_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Worst-case relative error of any quantile: one bucket's width.
    pub const RELATIVE_ERROR: f64 = 0.0906; // 2^(1/8) - 1, rounded up

    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation. Negative and NaN values clamp into the
    /// zero bucket (durations and sizes are non-negative by construction).
    pub fn record(&self, v: f64) {
        let v = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Exact mean (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// The quantile `q ∈ [0, 1]`, as the upper bound of the bucket holding
    /// the `ceil(q·n)`-th smallest observation — within
    /// [`RELATIVE_ERROR`](Self::RELATIVE_ERROR) of the true order
    /// statistic. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }

    /// Adds every bucket of `other` into `self`. Bucket-wise addition is
    /// associative and commutative, so merging shard-local histograms in
    /// any order reproduces a single shared histogram exactly.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        let add = other.sum();
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + add).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// An owned, immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    /// Per-bucket observation counts (`buckets[0]` = zeros).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Exact sum.
    pub sum: f64,
}

impl HistSnapshot {
    /// Exact mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// See [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target order statistic, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bound(i);
            }
        }
        bucket_bound(self.buckets.len() - 1)
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs — what the
    /// Prometheus exporter and `ft-top`'s distribution row render.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_bound(i), n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_count_and_sum_invariants() {
        let h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.sum() - 500_500.0).abs() < 1e-6);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        let snap = h.snapshot();
        assert_eq!(
            snap.buckets.iter().sum::<u64>(),
            1000,
            "every observation lands in exactly one bucket"
        );
    }

    #[test]
    fn zero_and_negative_land_in_the_zero_bucket() {
        let h = Histogram::new();
        h.record(0.0);
        h.record(-5.0);
        h.record(f64::NAN);
        let snap = h.snapshot();
        assert_eq!(snap.buckets[0], 3);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn quantile_within_one_bucket_relative_error() {
        let h = Histogram::new();
        let mut values: Vec<f64> = (0..10_000).map(|i| 1.0 + (i as f64) * 7.3).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_by(|a, b| a.total_cmp(b));
        for &q in &[0.5, 0.95, 0.99] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1);
            let truth = values[rank - 1];
            let est = h.quantile(q);
            assert!(
                est >= truth * (1.0 - 1e-12) && est <= truth * (1.0 + Histogram::RELATIVE_ERROR),
                "q={q}: est {est} not within one bucket above truth {truth}"
            );
        }
    }

    #[test]
    fn merge_is_associative_and_matches_single_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let c = Histogram::new();
        let all = Histogram::new();
        for i in 0..300u64 {
            let v = (i as f64) * 3.7 + 0.1;
            match i % 3 {
                0 => a.record(v),
                1 => b.record(v),
                _ => c.record(v),
            }
            all.record(v);
        }
        // (a + b) + c
        let left = Histogram::new();
        left.merge(&a);
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let bc = Histogram::new();
        bc.merge(&b);
        bc.merge(&c);
        let right = Histogram::new();
        right.merge(&a);
        right.merge(&bc);
        assert_eq!(
            left.snapshot(),
            right.snapshot(),
            "merge must be associative"
        );
        assert_eq!(
            left.snapshot(),
            all.snapshot(),
            "merge must equal single recording"
        );
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|s| {
            for t in 0..8 {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record((t * 10_000 + i) as f64 + 0.5);
                    }
                });
            }
        });
        assert_eq!(h.count(), 80_000);
        assert_eq!(h.snapshot().buckets.iter().sum::<u64>(), 80_000);
    }

    #[test]
    fn huge_values_clamp_instead_of_panicking() {
        let h = Histogram::new();
        h.record(f64::MAX);
        h.record(1e300);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0).is_finite());
    }
}
