//! # ft-obs
//!
//! The always-on observability layer of the serving runtime: a metrics
//! registry that is cheap enough to leave enabled under load, per-request
//! trace context, and exporters a scraper can consume.
//!
//! Where [`ft_probe`] is the *tracing* layer — rich spans for Perfetto,
//! off by default, sampled when you need a timeline — `ft-obs` is the
//! *metrics* layer: a fixed set of named counters, gauges, and log-bucket
//! histograms updated unconditionally on every request. The hot path
//! never takes a lock (handles are `Arc`s over atomics; see
//! [`registry`]), histograms count **every** observation in O(1) memory
//! with quantiles exact to within one bucket's ~9% relative width (see
//! [`hist`]), and the [`export`] module renders any registry as
//! Prometheus text or JSON lines, on demand or from a background flusher.
//!
//! The [`trace`] module carries per-request identity
//! (request/session/plan-signature/batch) through the serve pipeline and
//! collects one attributable [`CompletionRecord`] per request — fused
//! batches of `k` requests yield `k` records sharing a batch id.
//!
//! ```
//! let reg = ft_obs::Registry::new();
//! reg.counter("serve.completed").inc();
//! reg.gauge("serve.queue_depth").set(3);
//! reg.histogram("serve.latency_us").record(412.0);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counters["serve.completed"], 1);
//! let prom = ft_obs::prometheus_text(&snap);
//! assert!(prom.contains("serve_queue_depth 3"));
//! ```

#![forbid(unsafe_code)]
// The observability layer runs inside the serving hot path: it must never
// panic a request. Non-test code is unwrap/expect-free.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod export;
pub mod hist;
pub mod registry;
pub mod trace;

pub use export::{flush, json_row, prometheus_text, Exporter, ExporterConfig};
pub use hist::{HistSnapshot, Histogram};
pub use registry::{Counter, Gauge, Registry, RegistrySnapshot};
pub use trace::{
    next_request_id, CompletionRecord, CompletionStatus, FuseDecision, TraceContext, TraceLog,
};
