//! Per-request trace context and completion records.
//!
//! A [`TraceContext`] is minted at admission (one per request) and
//! propagated through the serving pipeline: the plan cache (setup time,
//! cold vs cached), the batch-fusion legality path (the [`FuseDecision`]),
//! the wavefront launch (the batch id every `exec` span carries), and the
//! per-request completion. When a fused batch of `k` requests finishes,
//! the runtime emits `k` [`CompletionRecord`]s — one per request, all
//! sharing the batch id — so per-request attribution survives fusion.
//!
//! Records land in a bounded [`TraceLog`] ring buffer (drained by tests,
//! the exporter, and `ft-top`) and are optionally mirrored as Perfetto
//! complete events via [`CompletionRecord::emit_probe`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use serde_json::{json, Value};

/// Mints process-unique request ids.
pub fn next_request_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Identity a request carries through the whole serve path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceContext {
    /// Process-unique request id, minted at admission.
    pub request_id: u64,
    /// Stateful-session id, when the request belongs to one.
    pub session_id: Option<u64>,
    /// The program's structural plan signature (hex), shared by every
    /// request that resolves to the same cached plan.
    pub plan_sig: String,
    /// The fused launch this request rode in, set at dispatch.
    pub batch_id: Option<u64>,
}

/// What the batch-fusion legality path decided for one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FuseDecision {
    /// Ran in a fused launch of `size` requests.
    Fused {
        /// Number of requests in the fused launch.
        size: u32,
    },
    /// Ran alone (no co-scheduled same-plan request, or batching off,
    /// or the program is not batchable).
    Solo,
    /// A fused attempt failed and this request fell back to a solo run;
    /// the reason is the legality/execution failure message.
    Fallback(String),
}

impl FuseDecision {
    fn label(&self) -> &'static str {
        match self {
            FuseDecision::Fused { .. } => "fused",
            FuseDecision::Solo => "solo",
            FuseDecision::Fallback(_) => "fallback",
        }
    }
}

/// How one request ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompletionStatus {
    /// Fulfilled successfully.
    Ok,
    /// Bounced with an expired deadline.
    Deadline,
    /// Failed with the given error message.
    Error(String),
}

impl CompletionStatus {
    fn label(&self) -> &'static str {
        match self {
            CompletionStatus::Ok => "ok",
            CompletionStatus::Deadline => "deadline",
            CompletionStatus::Error(_) => "error",
        }
    }
}

/// One request's fully attributed completion: identity plus the phase
/// breakdown of where its latency went.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletionRecord {
    /// The identity tuple (request, session, plan signature, batch).
    pub ctx: TraceContext,
    /// Time spent queued before the scheduler picked the request up, µs.
    pub queue_wait_us: f64,
    /// Plan-acquisition time billed to this request's group, µs.
    pub setup_us: f64,
    /// Whether setup was a plan-cache hit (false = cold compile+verify).
    pub setup_cached: bool,
    /// What the fusion path decided.
    pub fuse: FuseDecision,
    /// Wavefront execution time of the launch that served this request, µs.
    pub exec_us: f64,
    /// Concat/split overhead billed to this request's batch, µs.
    pub split_us: f64,
    /// End-to-end latency from submission to fulfillment, µs.
    pub total_us: f64,
    /// How the request ended.
    pub status: CompletionStatus,
}

impl CompletionRecord {
    /// The record as one JSON object (a `trace.jsonl` row).
    pub fn to_json(&self) -> Value {
        json!({
            "request_id": self.ctx.request_id,
            "session_id": self.ctx.session_id,
            "plan_sig": self.ctx.plan_sig.as_str(),
            "batch_id": self.ctx.batch_id,
            "queue_wait_us": self.queue_wait_us,
            "setup_us": self.setup_us,
            "setup_cached": self.setup_cached,
            "fuse": self.fuse.label(),
            "fuse_detail": match &self.fuse {
                FuseDecision::Fused { size } => json!({ "batch_size": *size }),
                FuseDecision::Solo => Value::Null,
                FuseDecision::Fallback(reason) => json!({ "reason": reason }),
            },
            "exec_us": self.exec_us,
            "split_us": self.split_us,
            "total_us": self.total_us,
            "status": self.status.label(),
            "error": match &self.status {
                CompletionStatus::Error(e) => Value::from(e.as_str()),
                _ => Value::Null,
            },
        })
    }

    /// Mirrors the record into `ft-probe` as a complete event ending at
    /// `end_us` (probe time), so the Perfetto export shows one span per
    /// request on a `requests` track, stacked by batch. No-op when
    /// tracing is disabled.
    pub fn emit_probe(&self, end_us: f64) {
        if !ft_probe::enabled() {
            return;
        }
        // Spread overlapping requests across a few tracks so Perfetto
        // doesn't fold concurrent spans into one malformed stack.
        let tid = REQUEST_TID_BASE + self.ctx.request_id % REQUEST_TRACKS;
        ft_probe::set_thread_label(ft_probe::WALL_PID, tid, "requests");
        let mut fields: Vec<(String, ft_probe::FieldValue)> = vec![
            ("request_id".into(), self.ctx.request_id.into()),
            ("plan_sig".into(), self.ctx.plan_sig.as_str().into()),
            ("queue_wait_us".into(), self.queue_wait_us.into()),
            ("setup_us".into(), self.setup_us.into()),
            ("setup_cached".into(), self.setup_cached.into()),
            ("fuse".into(), self.fuse.label().into()),
            ("exec_us".into(), self.exec_us.into()),
            ("split_us".into(), self.split_us.into()),
            ("status".into(), self.status.label().into()),
        ];
        if let Some(b) = self.ctx.batch_id {
            fields.push(("batch_id".into(), b.into()));
        }
        if let Some(s) = self.ctx.session_id {
            fields.push(("session_id".into(), s.into()));
        }
        if let FuseDecision::Fallback(reason) = &self.fuse {
            fields.push(("fallback_reason".into(), reason.as_str().into()));
        }
        ft_probe::complete_event(
            "serve",
            format!("request:{}", self.ctx.request_id),
            ft_probe::WALL_PID,
            tid,
            (end_us - self.total_us).max(0.0),
            self.total_us,
            fields,
        );
    }
}

/// Probe thread-track ids for per-request spans start here (executor
/// worker tracks start at 1000; keep the ranges disjoint).
const REQUEST_TID_BASE: u64 = 2000;
const REQUEST_TRACKS: u64 = 8;

/// A bounded ring buffer of completion records. When full, the oldest
/// record is dropped and counted — a long-running server never grows
/// without bound, and the drop count makes the truncation visible.
#[derive(Debug)]
pub struct TraceLog {
    inner: Mutex<VecDeque<CompletionRecord>>,
    cap: usize,
    dropped: AtomicU64,
}

impl TraceLog {
    /// Default capacity: enough for every in-flight request plus a
    /// generous scrape interval's worth of history.
    pub const DEFAULT_CAP: usize = 4096;

    /// A log holding at most `cap` records.
    pub fn new(cap: usize) -> Self {
        TraceLog {
            inner: Mutex::new(VecDeque::new()),
            cap: cap.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends a record, evicting the oldest when full.
    pub fn push(&self, rec: CompletionRecord) {
        let mut q = self.inner.lock();
        if q.len() >= self.cap {
            q.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(rec);
    }

    /// Takes every buffered record.
    pub fn drain(&self) -> Vec<CompletionRecord> {
        self.inner.lock().drain(..).collect()
    }

    /// Records evicted before being drained.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Buffered records right now.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for TraceLog {
    fn default() -> Self {
        TraceLog::new(Self::DEFAULT_CAP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64) -> CompletionRecord {
        CompletionRecord {
            ctx: TraceContext {
                request_id: id,
                session_id: None,
                plan_sig: "deadbeef".into(),
                batch_id: Some(3),
            },
            queue_wait_us: 10.0,
            setup_us: 2.0,
            setup_cached: true,
            fuse: FuseDecision::Fused { size: 4 },
            exec_us: 100.0,
            split_us: 1.0,
            total_us: 113.0,
            status: CompletionStatus::Ok,
        }
    }

    #[test]
    fn ring_buffer_bounds_and_counts_drops() {
        let log = TraceLog::new(4);
        for i in 0..10 {
            log.push(rec(i));
        }
        assert_eq!(log.len(), 4);
        assert_eq!(log.dropped(), 6);
        let drained = log.drain();
        assert_eq!(drained.len(), 4);
        assert_eq!(
            drained[0].ctx.request_id, 6,
            "oldest surviving record first"
        );
        assert!(log.is_empty());
    }

    #[test]
    fn json_row_carries_the_full_identity_tuple() {
        let j = rec(42).to_json();
        assert_eq!(j["request_id"], 42);
        assert_eq!(j["batch_id"], 3);
        assert_eq!(j["plan_sig"], "deadbeef");
        assert_eq!(j["fuse"], "fused");
        assert_eq!(j["fuse_detail"]["batch_size"], 4);
        assert_eq!(j["status"], "ok");
    }

    #[test]
    fn request_ids_are_unique_across_threads() {
        let mut ids: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| (0..100).map(|_| next_request_id()).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 800);
    }
}
