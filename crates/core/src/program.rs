//! The staged program IR: buffers, operator nests, and whole programs
//! (the Appendix A abstract syntax, restricted to quasi-affine accesses).

use ft_tensor::Shape;

use crate::access::AccessSpec;
use crate::expr::Udf;
use crate::Result;

/// Errors from the programming-model layer.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Eager ADT misuse.
    Adt(String),
    /// UDF construction or evaluation error.
    Udf(String),
    /// Access specification error.
    Access(String),
    /// Program structure error.
    Program(String),
    /// Interpreter runtime error.
    Interp(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Adt(m) => write!(f, "ADT error: {m}"),
            CoreError::Udf(m) => write!(f, "UDF error: {m}"),
            CoreError::Access(m) => write!(f, "access error: {m}"),
            CoreError::Program(m) => write!(f, "program error: {m}"),
            CoreError::Interp(m) => write!(f, "interpreter error: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Identifies a declared buffer within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(pub usize);

/// What role a buffer plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferKind {
    /// Provided by the caller.
    Input,
    /// Produced and returned.
    Output,
    /// Produced and consumed internally.
    Intermediate,
}

/// A declared FractalTensor buffer: programmable dims + static leaf shape.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferDecl {
    /// Human-readable name.
    pub name: String,
    /// Extents of the programmable dimensions, outermost first.
    pub dims: Vec<usize>,
    /// The static shape of every leaf.
    pub leaf_shape: Shape,
    /// Role.
    pub kind: BufferKind,
}

/// The second-order array compute operators, one per nest level
/// (the paper's `\vec{p}` vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Fully parallel apply-to-each.
    Map,
    /// Left scan (emits every prefix).
    ScanL,
    /// Right scan.
    ScanR,
    /// Left fold (only the final value is consumed downstream).
    FoldL,
    /// Right fold.
    FoldR,
    /// Associative reduce.
    Reduce,
}

impl OpKind {
    /// Aggregate operators carry loop dependencies; `map` does not
    /// (Table 4).
    pub fn is_aggregate(&self) -> bool {
        !matches!(self, OpKind::Map)
    }

    /// True for right-to-left iteration order.
    pub fn is_reversed(&self) -> bool {
        matches!(self, OpKind::ScanR | OpKind::FoldR)
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OpKind::Map => "map",
            OpKind::ScanL => "scanl",
            OpKind::ScanR => "scanr",
            OpKind::FoldL => "foldl",
            OpKind::FoldR => "foldr",
            OpKind::Reduce => "reduce",
        };
        write!(f, "{s}")
    }
}

/// What a scan/fold reads on its first step, when the regular access falls
/// outside the buffer (e.g. `ysss[i][j][k-1]` at `k = 0`).
#[derive(Debug, Clone, PartialEq)]
pub enum CarriedInit {
    /// Read zeros of the buffer's leaf shape (Listing 1's `scanl 0, ...`).
    Zero,
    /// Read a constant-filled leaf (e.g. `-inf` for the running max of the
    /// online-softmax reduce in Listing 3).
    Fill(f32),
    /// Read another buffer through the given access (Listing 1's outer
    /// `scanl xs, ...` whose initial state is the input sequence).
    Buffer(BufferId, AccessSpec),
}

/// One buffer read of a nest.
#[derive(Debug, Clone, PartialEq)]
pub struct Read {
    /// The buffer read.
    pub buffer: BufferId,
    /// How the nest's iteration vector indexes it.
    pub access: AccessSpec,
    /// Boundary rule: when the computed index falls outside the buffer's
    /// programmable extent, read this instead. `None` means out-of-range
    /// accesses are a program error.
    pub init: Option<CarriedInit>,
}

impl Read {
    /// A plain read with no boundary rule.
    pub fn plain(buffer: BufferId, access: AccessSpec) -> Self {
        Read {
            buffer,
            access,
            init: None,
        }
    }

    /// A carried read with a boundary initializer.
    pub fn carried(buffer: BufferId, access: AccessSpec, init: CarriedInit) -> Self {
        Read {
            buffer,
            access,
            init: Some(init),
        }
    }
}

/// One buffer write of a nest.
#[derive(Debug, Clone, PartialEq)]
pub struct Write {
    /// The buffer written.
    pub buffer: BufferId,
    /// Where each iteration writes (must be injective over the domain, per
    /// the single-assignment property).
    pub access: AccessSpec,
}

/// A perfect nest of array compute operators over a rectangular iteration
/// domain, with affine reads/writes and a UDF at the innermost level.
///
/// This is the block-node progenitor: the ETDG parser turns each nest into
/// one or more block nodes (one per boundary region).
#[derive(Debug, Clone, PartialEq)]
pub struct Nest {
    /// Name, used in diagnostics and emitted kernels.
    pub name: String,
    /// Operator at each nest level, outermost first.
    pub ops: Vec<OpKind>,
    /// Trip count of each level.
    pub extents: Vec<usize>,
    /// Buffer reads, in UDF input order.
    pub reads: Vec<Read>,
    /// Buffer writes, in UDF output order.
    pub writes: Vec<Write>,
    /// The innermost math function.
    pub udf: Udf,
}

impl Nest {
    /// Nest depth (number of operator levels).
    pub fn depth(&self) -> usize {
        self.ops.len()
    }

    /// Total number of iteration points.
    pub fn points(&self) -> usize {
        self.extents.iter().product()
    }
}

/// A whole FractalTensor program: declared buffers plus a sequence of nests
/// in execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Program name.
    pub name: String,
    /// All declared buffers.
    pub buffers: Vec<BufferDecl>,
    /// The nests, in a valid execution order.
    pub nests: Vec<Nest>,
}

impl Program {
    /// An empty program.
    pub fn new(name: &str) -> Self {
        Program {
            name: name.to_string(),
            buffers: Vec::new(),
            nests: Vec::new(),
        }
    }

    /// Declares an input buffer.
    pub fn input(&mut self, name: &str, dims: &[usize], leaf: &[usize]) -> BufferId {
        self.declare(name, dims, leaf, BufferKind::Input)
    }

    /// Declares an output buffer.
    pub fn output(&mut self, name: &str, dims: &[usize], leaf: &[usize]) -> BufferId {
        self.declare(name, dims, leaf, BufferKind::Output)
    }

    /// Declares an intermediate buffer.
    pub fn intermediate(&mut self, name: &str, dims: &[usize], leaf: &[usize]) -> BufferId {
        self.declare(name, dims, leaf, BufferKind::Intermediate)
    }

    fn declare(
        &mut self,
        name: &str,
        dims: &[usize],
        leaf: &[usize],
        kind: BufferKind,
    ) -> BufferId {
        self.buffers.push(BufferDecl {
            name: name.to_string(),
            dims: dims.to_vec(),
            leaf_shape: Shape::new(leaf),
            kind,
        });
        BufferId(self.buffers.len() - 1)
    }

    /// The declaration of a buffer.
    pub fn buffer(&self, id: BufferId) -> &BufferDecl {
        &self.buffers[id.0]
    }

    /// Appends a nest after validating it against the declared buffers.
    pub fn add_nest(&mut self, nest: Nest) -> Result<()> {
        self.validate_nest(&nest)?;
        self.nests.push(nest);
        Ok(())
    }

    fn validate_nest(&self, nest: &Nest) -> Result<()> {
        if nest.ops.len() != nest.extents.len() {
            return Err(CoreError::Program(format!(
                "{}: {} ops but {} extents",
                nest.name,
                nest.ops.len(),
                nest.extents.len()
            )));
        }
        if nest.ops.is_empty() {
            return Err(CoreError::Program(format!("{}: empty nest", nest.name)));
        }
        if let Some(level) = nest.extents.iter().position(|&e| e == 0) {
            return Err(CoreError::Program(format!(
                "{}: nest level {level} has zero extent",
                nest.name
            )));
        }
        nest.udf.validate()?;
        if nest.udf.num_inputs != nest.reads.len() {
            return Err(CoreError::Program(format!(
                "{}: UDF takes {} inputs but nest reads {}",
                nest.name,
                nest.udf.num_inputs,
                nest.reads.len()
            )));
        }
        if nest.udf.outputs.len() != nest.writes.len() {
            return Err(CoreError::Program(format!(
                "{}: UDF yields {} outputs but nest writes {}",
                nest.name,
                nest.udf.outputs.len(),
                nest.writes.len()
            )));
        }
        let d = nest.depth();
        let check_buffer = |id: BufferId, spec: &AccessSpec, what: &str| -> Result<()> {
            let decl = self
                .buffers
                .get(id.0)
                .ok_or_else(|| CoreError::Program(format!("{}: unknown buffer", nest.name)))?;
            if spec.data_dims() != decl.dims.len() {
                return Err(CoreError::Program(format!(
                    "{}: {what} access has {} axes but buffer '{}' has {} dims",
                    nest.name,
                    spec.data_dims(),
                    decl.name,
                    decl.dims.len()
                )));
            }
            spec.to_affine_map(d).map(|_| ())
        };
        for (i, r) in nest.reads.iter().enumerate() {
            check_buffer(r.buffer, &r.access, &format!("read {i}"))?;
            if let Some(CarriedInit::Buffer(b, spec)) = &r.init {
                check_buffer(*b, spec, &format!("read {i} init"))?;
            }
        }
        for (i, w) in nest.writes.iter().enumerate() {
            check_buffer(w.buffer, &w.access, &format!("write {i}"))?;
            let decl = self.buffer(w.buffer);
            if decl.kind == BufferKind::Input {
                return Err(CoreError::Program(format!(
                    "{}: write {i} targets input buffer '{}'",
                    nest.name, decl.name
                )));
            }
        }
        // Check UDF shape inference against the leaf shapes.
        let in_shapes: Vec<Shape> = nest
            .reads
            .iter()
            .map(|r| self.buffer(r.buffer).leaf_shape.clone())
            .collect();
        let shapes = nest.udf.infer_shapes(&in_shapes)?;
        for (i, (w, got)) in nest.writes.iter().zip(shapes.outputs.iter()).enumerate() {
            let want = &self.buffer(w.buffer).leaf_shape;
            if got != want {
                return Err(CoreError::Program(format!(
                    "{}: write {i} produces leaf {:?} but buffer '{}' declares {:?}",
                    nest.name,
                    got.dims(),
                    self.buffer(w.buffer).name,
                    want.dims()
                )));
            }
        }
        Ok(())
    }

    /// Every writer nest index for each buffer (used by the ETDG parser).
    pub fn writers(&self) -> Vec<Vec<usize>> {
        let mut w = vec![Vec::new(); self.buffers.len()];
        for (ni, nest) in self.nests.iter().enumerate() {
            for wr in &nest.writes {
                w[wr.buffer.0].push(ni);
            }
        }
        w
    }

    /// Validates whole-program structure: every read buffer is an input or
    /// written by some nest, every output is written, writes are unique per
    /// buffer.
    pub fn validate(&self) -> Result<()> {
        let writers = self.writers();
        for (bi, decl) in self.buffers.iter().enumerate() {
            match decl.kind {
                BufferKind::Input => {
                    if !writers[bi].is_empty() {
                        return Err(CoreError::Program(format!(
                            "input '{}' is written by a nest",
                            decl.name
                        )));
                    }
                }
                BufferKind::Output | BufferKind::Intermediate => {
                    if writers[bi].is_empty() {
                        return Err(CoreError::Program(format!(
                            "buffer '{}' is never written",
                            decl.name
                        )));
                    }
                    if writers[bi].len() > 1 {
                        return Err(CoreError::Program(format!(
                            "buffer '{}' written by {} nests (single assignment)",
                            decl.name,
                            writers[bi].len()
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::stacked_rnn_program;
    use crate::expr::UdfBuilder;

    #[test]
    fn stacked_rnn_validates() {
        let p = stacked_rnn_program(2, 3, 4, 8);
        assert!(p.validate().is_ok());
        assert_eq!(p.nests[0].depth(), 3);
        assert_eq!(p.nests[0].points(), 24);
    }

    #[test]
    fn nest_validation_catches_arity_mismatch() {
        let mut p = Program::new("bad");
        let x = p.input("x", &[4], &[1, 8]);
        let y = p.output("y", &[4], &[1, 8]);
        let mut b = UdfBuilder::new("id", 1);
        let i = b.input(0);
        let o = b.id(i);
        let udf = b.build(&[o]);
        // ops/extents length mismatch.
        let nest = Nest {
            name: "bad".into(),
            ops: vec![OpKind::Map],
            extents: vec![4, 4],
            reads: vec![Read::plain(x, AccessSpec::identity(1))],
            writes: vec![Write {
                buffer: y,
                access: AccessSpec::identity(1),
            }],
            udf,
        };
        assert!(p.add_nest(nest).is_err());
    }

    #[test]
    fn nest_validation_catches_leaf_shape_mismatch() {
        let mut p = Program::new("bad");
        let x = p.input("x", &[4], &[1, 8]);
        let y = p.output("y", &[4], &[1, 9]); // Wrong leaf shape.
        let mut b = UdfBuilder::new("id", 1);
        let i = b.input(0);
        let o = b.id(i);
        let udf = b.build(&[o]);
        let nest = Nest {
            name: "bad".into(),
            ops: vec![OpKind::Map],
            extents: vec![4],
            reads: vec![Read::plain(x, AccessSpec::identity(1))],
            writes: vec![Write {
                buffer: y,
                access: AccessSpec::identity(1),
            }],
            udf,
        };
        assert!(p.add_nest(nest).is_err());
    }

    #[test]
    fn program_validation_catches_double_write() {
        let mut p = Program::new("bad");
        let x = p.input("x", &[4], &[1, 8]);
        let y = p.output("y", &[4], &[1, 8]);
        let mk = || {
            let mut b = UdfBuilder::new("id", 1);
            let i = b.input(0);
            let o = b.id(i);
            b.build(&[o])
        };
        for _ in 0..2 {
            p.add_nest(Nest {
                name: "dup".into(),
                ops: vec![OpKind::Map],
                extents: vec![4],
                reads: vec![Read::plain(x, AccessSpec::identity(1))],
                writes: vec![Write {
                    buffer: y,
                    access: AccessSpec::identity(1),
                }],
                udf: mk(),
            })
            .unwrap();
        }
        assert!(p.validate().is_err());
    }

    #[test]
    fn program_validation_catches_unwritten_output() {
        let mut p = Program::new("bad");
        let _x = p.input("x", &[4], &[1, 8]);
        let _y = p.output("y", &[4], &[1, 8]);
        assert!(p.validate().is_err());
    }

    #[test]
    fn write_to_input_rejected() {
        let mut p = Program::new("bad");
        let x = p.input("x", &[4], &[1, 8]);
        let mut b = UdfBuilder::new("id", 1);
        let i = b.input(0);
        let o = b.id(i);
        let udf = b.build(&[o]);
        let nest = Nest {
            name: "bad".into(),
            ops: vec![OpKind::Map],
            extents: vec![4],
            reads: vec![Read::plain(x, AccessSpec::identity(1))],
            writes: vec![Write {
                buffer: x,
                access: AccessSpec::identity(1),
            }],
            udf,
        };
        assert!(p.add_nest(nest).is_err());
    }
}
