//! The eager FractalTensor ADT: nested lists of static-shape tensors with
//! the paper's array compute and access operators (§4.1–§4.2, Table 1).

use ft_tensor::{Shape, Tensor};

use crate::program::CoreError;
use crate::Result;

/// A FractalTensor: a linearly ordered list whose elements are either
/// static-shape tensors (depth 1) or further FractalTensors (depth > 1).
///
/// Once constructed the depth is fixed, all sibling elements have the same
/// depth, and all leaves share one static shape — the invariants of §4.1.
/// Math operations exist only on leaves; the *programmable dimensions* are
/// traversed exclusively through the compute operators below.
#[derive(Debug, Clone, PartialEq)]
pub enum FractalTensor {
    /// Depth-1: a list of static-shape tensors.
    Leaves(Vec<Tensor>),
    /// Depth-d (d > 1): a list of depth-(d-1) FractalTensors.
    Nested(Vec<FractalTensor>),
}

impl FractalTensor {
    /// Builds a depth-1 FractalTensor, checking that all leaves share one
    /// shape.
    pub fn from_tensors(elems: Vec<Tensor>) -> Result<Self> {
        if let Some(first) = elems.first() {
            let shape = first.shape().clone();
            for (i, t) in elems.iter().enumerate() {
                if t.shape() != &shape {
                    return Err(CoreError::Adt(format!(
                        "leaf {i} has shape {:?}, expected {:?}",
                        t.dims(),
                        shape.dims()
                    )));
                }
            }
        }
        Ok(FractalTensor::Leaves(elems))
    }

    /// Builds a nested FractalTensor, checking uniform depth and leaf shape.
    pub fn nested(elems: Vec<FractalTensor>) -> Result<Self> {
        if let Some(first) = elems.first() {
            let depth = first.depth();
            let shape = first.leaf_shape();
            for (i, e) in elems.iter().enumerate() {
                if e.depth() != depth {
                    return Err(CoreError::Adt(format!(
                        "element {i} has depth {}, expected {depth}",
                        e.depth()
                    )));
                }
                if e.leaf_shape() != shape {
                    return Err(CoreError::Adt(format!("element {i} leaf shape differs")));
                }
            }
        }
        Ok(FractalTensor::Nested(elems))
    }

    /// Builds a depth-`prog_dims.len()` FractalTensor from a flat tensor
    /// whose leading dimensions are the programmable ones. E.g.
    /// `from_flat(t[[N, L, 1, 512]], 2)` gives an `[N, L]` list of `[1,512]`
    /// leaves.
    pub fn from_flat(t: &Tensor, prog_depth: usize) -> Result<Self> {
        if prog_depth == 0 || prog_depth > t.rank() {
            return Err(CoreError::Adt(format!(
                "prog_depth {prog_depth} invalid for rank {}",
                t.rank()
            )));
        }
        let extent = t.dims()[0];
        if prog_depth == 1 {
            // Leaves stay zero-copy views into the flat buffer (`Tensor`
            // is copy-on-write, so later mutation cannot alias).
            let leaves = (0..extent)
                .map(|i| t.select(0, i).map_err(|e| CoreError::Adt(e.to_string())))
                .collect::<Result<Vec<_>>>()?;
            FractalTensor::from_tensors(leaves)
        } else {
            let elems = (0..extent)
                .map(|i| {
                    let sub = t.select(0, i).map_err(|e| CoreError::Adt(e.to_string()))?;
                    FractalTensor::from_flat(&sub, prog_depth - 1)
                })
                .collect::<Result<Vec<_>>>()?;
            FractalTensor::nested(elems)
        }
    }

    /// Nesting depth: 1 for a list of tensors.
    pub fn depth(&self) -> usize {
        match self {
            FractalTensor::Leaves(_) => 1,
            FractalTensor::Nested(v) => 1 + v.first().map_or(0, FractalTensor::depth),
        }
    }

    /// Length of the outermost list.
    pub fn len(&self) -> usize {
        match self {
            FractalTensor::Leaves(v) => v.len(),
            FractalTensor::Nested(v) => v.len(),
        }
    }

    /// True when the outermost list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The static shape shared by all leaves (empty shape if the list is
    /// empty).
    pub fn leaf_shape(&self) -> Shape {
        match self {
            FractalTensor::Leaves(v) => v
                .first()
                .map_or_else(|| Shape::new(&[]), |t| t.shape().clone()),
            FractalTensor::Nested(v) => v
                .first()
                .map_or_else(|| Shape::new(&[]), FractalTensor::leaf_shape),
        }
    }

    /// The extents of all programmable dimensions, outermost first.
    pub fn prog_dims(&self) -> Vec<usize> {
        let mut dims = vec![self.len()];
        match self {
            FractalTensor::Leaves(_) => {}
            FractalTensor::Nested(v) => {
                if let Some(first) = v.first() {
                    dims.extend(first.prog_dims());
                }
            }
        }
        dims
    }

    /// Element accessor (depth > 1).
    pub fn get(&self, i: usize) -> Result<&FractalTensor> {
        match self {
            FractalTensor::Nested(v) => v
                .get(i)
                .ok_or_else(|| CoreError::Adt(format!("index {i} out of {}", v.len()))),
            FractalTensor::Leaves(_) => Err(CoreError::Adt(
                "get() on a depth-1 FractalTensor; use leaf()".into(),
            )),
        }
    }

    /// Leaf accessor (depth 1).
    pub fn leaf(&self, i: usize) -> Result<&Tensor> {
        match self {
            FractalTensor::Leaves(v) => v
                .get(i)
                .ok_or_else(|| CoreError::Adt(format!("index {i} out of {}", v.len()))),
            FractalTensor::Nested(_) => Err(CoreError::Adt(
                "leaf() on a nested FractalTensor; use get()".into(),
            )),
        }
    }

    /// Leaf accessor through a full multi-level index.
    pub fn leaf_at(&self, index: &[usize]) -> Result<&Tensor> {
        match (self, index) {
            (FractalTensor::Leaves(_), [i]) => self.leaf(*i),
            (FractalTensor::Nested(_), [i, rest @ ..]) => self.get(*i)?.leaf_at(rest),
            _ => Err(CoreError::Adt(format!(
                "index {index:?} does not match depth {}",
                self.depth()
            ))),
        }
    }

    /// Flattens into a dense tensor `[prog dims..., leaf dims...]`.
    pub fn to_flat(&self) -> Result<Tensor> {
        match self {
            FractalTensor::Leaves(v) => Tensor::stack(v).map_err(|e| CoreError::Adt(e.to_string())),
            FractalTensor::Nested(v) => {
                let parts = v
                    .iter()
                    .map(FractalTensor::to_flat)
                    .collect::<Result<Vec<_>>>()?;
                Tensor::stack(&parts).map_err(|e| CoreError::Adt(e.to_string()))
            }
        }
    }

    // ---------------------------------------------------------------------
    // Second-order array compute operators (Table 1). All operate on the
    // *outermost* programmable dimension; nesting is expressed by calling
    // them inside the user-provided closures, exactly as in Listings 1-4.
    // ---------------------------------------------------------------------

    /// `map(f, xs) = [f(x0), ..., f(xm)]`: the fully parallel apply-to-each
    /// operator.
    pub fn map<F>(&self, f: F) -> Result<FractalTensor>
    where
        F: FnMut(Elem<'_>) -> Result<FractalTensor>,
    {
        let out = self
            .elems()
            .map(f)
            .collect::<Result<Vec<FractalTensor>>>()?;
        FractalTensor::nested_or_flatten(out)
    }

    /// `map` whose body produces a single leaf tensor.
    pub fn map_leaf<F>(&self, f: F) -> Result<FractalTensor>
    where
        F: FnMut(Elem<'_>) -> Result<Tensor>,
    {
        let out = self.elems().map(f).collect::<Result<Vec<_>>>()?;
        FractalTensor::from_tensors(out)
    }

    /// `foldl(⊕, s0, xs) = s0 ⊕ x0 ⊕ x1 ... ⊕ xm`: left fold returning only
    /// the final accumulator.
    pub fn foldl<S, F>(&self, init: S, mut f: F) -> Result<S>
    where
        F: FnMut(S, Elem<'_>) -> Result<S>,
    {
        let mut acc = init;
        for e in self.elems() {
            acc = f(acc, e)?;
        }
        Ok(acc)
    }

    /// `foldr(⊕, s0, xs)`: right fold.
    pub fn foldr<S, F>(&self, init: S, mut f: F) -> Result<S>
    where
        F: FnMut(S, Elem<'_>) -> Result<S>,
    {
        let mut acc = init;
        let elems: Vec<Elem<'_>> = self.elems().collect();
        for e in elems.into_iter().rev() {
            acc = f(acc, e)?;
        }
        Ok(acc)
    }

    /// `scanl(⊕, s0, xs) = [s0⊕x0, s0⊕x0⊕x1, ...]`: left scan emitting every
    /// intermediate accumulator (the accumulators must be leaf tensors).
    pub fn scanl<F>(&self, init: Tensor, mut f: F) -> Result<FractalTensor>
    where
        F: FnMut(&Tensor, Elem<'_>) -> Result<Tensor>,
    {
        let mut acc = init;
        let mut out = Vec::with_capacity(self.len());
        for e in self.elems() {
            acc = f(&acc, e)?;
            out.push(acc.clone());
        }
        FractalTensor::from_tensors(out)
    }

    /// `scanr(⊕, s0, xs)`: right scan (results in original element order).
    pub fn scanr<F>(&self, init: Tensor, mut f: F) -> Result<FractalTensor>
    where
        F: FnMut(&Tensor, Elem<'_>) -> Result<Tensor>,
    {
        let mut acc = init;
        let elems: Vec<Elem<'_>> = self.elems().collect();
        let mut out = Vec::with_capacity(self.len());
        for e in elems.into_iter().rev() {
            acc = f(&acc, e)?;
            out.push(acc.clone());
        }
        out.reverse();
        FractalTensor::from_tensors(out)
    }

    /// Generic `scanl` whose accumulator is any state type; emits the state
    /// sequence. Used when a scan carries tuples (e.g. the LSTM's `(c, h)`).
    pub fn scanl_state<S: Clone, F>(&self, init: S, mut f: F) -> Result<Vec<S>>
    where
        F: FnMut(&S, Elem<'_>) -> Result<S>,
    {
        let mut acc = init;
        let mut out = Vec::with_capacity(self.len());
        for e in self.elems() {
            acc = f(&acc, e)?;
            out.push(acc.clone());
        }
        Ok(out)
    }

    /// `reduce(⊕, s0, xs)`: order-insensitive aggregate (the binary operator
    /// must be associative — the eager executor applies it left to right).
    pub fn reduce<S, F>(&self, init: S, f: F) -> Result<S>
    where
        F: FnMut(S, Elem<'_>) -> Result<S>,
    {
        self.foldl(init, f)
    }

    /// `foldl(⊕, xs) = x0 ⊕ x1 ⊕ ... ⊕ xm`: Table 1's no-initializer form,
    /// seeded with the first leaf (errors on an empty list).
    pub fn foldl1<F>(&self, mut f: F) -> Result<Tensor>
    where
        F: FnMut(&Tensor, Elem<'_>) -> Result<Tensor>,
    {
        let FractalTensor::Leaves(v) = self else {
            return Err(CoreError::Adt(
                "foldl1 needs a depth-1 FractalTensor".into(),
            ));
        };
        let first = v
            .first()
            .ok_or_else(|| CoreError::Adt("foldl1 of an empty list".into()))?;
        let mut acc = first.clone();
        for t in &v[1..] {
            acc = f(&acc, Elem::Leaf(t))?;
        }
        Ok(acc)
    }

    /// `scanl(⊕, xs) = [x0, x0 ⊕ x1, ...]`: Table 1's no-initializer scan.
    pub fn scanl1<F>(&self, mut f: F) -> Result<FractalTensor>
    where
        F: FnMut(&Tensor, Elem<'_>) -> Result<Tensor>,
    {
        let FractalTensor::Leaves(v) = self else {
            return Err(CoreError::Adt(
                "scanl1 needs a depth-1 FractalTensor".into(),
            ));
        };
        let first = v
            .first()
            .ok_or_else(|| CoreError::Adt("scanl1 of an empty list".into()))?;
        let mut acc = first.clone();
        let mut out = vec![acc.clone()];
        for t in &v[1..] {
            acc = f(&acc, Elem::Leaf(t))?;
            out.push(acc.clone());
        }
        FractalTensor::from_tensors(out)
    }

    /// `reduce(⊕, xs)` without an initializer (Table 1's first form).
    pub fn reduce1<F>(&self, f: F) -> Result<Tensor>
    where
        F: FnMut(&Tensor, Elem<'_>) -> Result<Tensor>,
    {
        self.foldl1(f)
    }

    // ---------------------------------------------------------------------
    // First-order array access operators (§4.2). Pure functions preparing
    // data for compute operators; the staged compiler defers their
    // materialization, the eager ADT applies them directly.
    // ---------------------------------------------------------------------

    /// Contiguously linear access: a shifted sub-list `xs[start..end]`.
    pub fn slice(&self, start: usize, end: usize) -> Result<FractalTensor> {
        if start > end || end > self.len() {
            return Err(CoreError::Adt(format!(
                "slice {start}..{end} out of {}",
                self.len()
            )));
        }
        Ok(match self {
            FractalTensor::Leaves(v) => FractalTensor::Leaves(v[start..end].to_vec()),
            FractalTensor::Nested(v) => FractalTensor::Nested(v[start..end].to_vec()),
        })
    }

    /// Reverse access order.
    pub fn reverse(&self) -> FractalTensor {
        match self {
            FractalTensor::Leaves(v) => FractalTensor::Leaves(v.iter().rev().cloned().collect()),
            FractalTensor::Nested(v) => FractalTensor::Nested(v.iter().rev().cloned().collect()),
        }
    }

    /// Constantly strided access: elements `start, start+step, ...`.
    pub fn stride(&self, start: usize, step: usize) -> Result<FractalTensor> {
        if step == 0 {
            return Err(CoreError::Adt("stride step must be > 0".into()));
        }
        let idx: Vec<usize> = (start..self.len()).step_by(step).collect();
        self.gather(&idx)
    }

    /// Window access: overlapping windows of `size` elements advancing by
    /// `step` (the convolution/stencil pattern). Returns a FractalTensor one
    /// level deeper.
    pub fn window(&self, size: usize, step: usize) -> Result<FractalTensor> {
        if size == 0 || step == 0 || size > self.len() {
            return Err(CoreError::Adt(format!(
                "window size {size} step {step} out of {}",
                self.len()
            )));
        }
        let windows = (0..=self.len() - size)
            .step_by(step)
            .map(|s| self.slice(s, s + size))
            .collect::<Result<Vec<_>>>()?;
        FractalTensor::nested(windows)
    }

    /// BigBird's `shifted_slide`: for each position, the window of `size`
    /// neighbours centred on it, clamped at the boundaries (so the output
    /// has the same outer length).
    pub fn shifted_slide(&self, size: usize) -> Result<FractalTensor> {
        if size == 0 || size > self.len() {
            return Err(CoreError::Adt(format!(
                "shifted_slide size {size} out of {}",
                self.len()
            )));
        }
        let half = size / 2;
        let n = self.len();
        let windows = (0..n)
            .map(|i| {
                let start = i.saturating_sub(half).min(n - size);
                self.slice(start, start + size)
            })
            .collect::<Result<Vec<_>>>()?;
        FractalTensor::nested(windows)
    }

    /// Indirect access: elements selected by an index array (gather).
    pub fn gather(&self, indices: &[usize]) -> Result<FractalTensor> {
        for &i in indices {
            if i >= self.len() {
                return Err(CoreError::Adt(format!(
                    "gather index {i} out of {}",
                    self.len()
                )));
            }
        }
        Ok(match self {
            FractalTensor::Leaves(v) => {
                FractalTensor::Leaves(indices.iter().map(|&i| v[i].clone()).collect())
            }
            FractalTensor::Nested(v) => {
                FractalTensor::Nested(indices.iter().map(|&i| v[i].clone()).collect())
            }
        })
    }

    // ---------------------------------------------------------------------
    // Internals.
    // ---------------------------------------------------------------------

    fn elems(&self) -> Box<dyn Iterator<Item = Elem<'_>> + '_> {
        match self {
            FractalTensor::Leaves(v) => Box::new(v.iter().map(Elem::Leaf)),
            FractalTensor::Nested(v) => Box::new(v.iter().map(Elem::Sub)),
        }
    }

    /// When every produced element is a depth-1 singleton this keeps the
    /// natural depth; otherwise nests.
    fn nested_or_flatten(elems: Vec<FractalTensor>) -> Result<FractalTensor> {
        FractalTensor::nested(elems)
    }
}

/// One element yielded by a compute operator: a leaf tensor (depth-1 input)
/// or a sub-FractalTensor (nested input).
#[derive(Debug, Clone, Copy)]
pub enum Elem<'a> {
    /// A static-shape leaf.
    Leaf(&'a Tensor),
    /// A nested sub-list.
    Sub(&'a FractalTensor),
}

impl<'a> Elem<'a> {
    /// The leaf tensor, or an error for nested elements.
    pub fn leaf(&self) -> Result<&'a Tensor> {
        match self {
            Elem::Leaf(t) => Ok(t),
            Elem::Sub(_) => Err(CoreError::Adt("expected a leaf element".into())),
        }
    }

    /// The sub-FractalTensor, or an error for leaf elements.
    pub fn sub(&self) -> Result<&'a FractalTensor> {
        match self {
            Elem::Sub(f) => Ok(f),
            Elem::Leaf(_) => Err(CoreError::Adt("expected a nested element".into())),
        }
    }
}

/// Zips two equal-length FractalTensors elementwise under `f` (the paper's
/// `zip(xs, ys).map`).
pub fn zip_map<F>(a: &FractalTensor, b: &FractalTensor, mut f: F) -> Result<FractalTensor>
where
    F: FnMut(Elem<'_>, Elem<'_>) -> Result<FractalTensor>,
{
    if a.len() != b.len() {
        return Err(CoreError::Adt(format!(
            "zip of lengths {} and {}",
            a.len(),
            b.len()
        )));
    }
    let out = a
        .elems()
        .zip(b.elems())
        .map(|(x, y)| f(x, y))
        .collect::<Result<Vec<_>>>()?;
    FractalTensor::nested(out)
}

/// Zip-map whose body produces a leaf tensor.
pub fn zip_map_leaf<F>(a: &FractalTensor, b: &FractalTensor, mut f: F) -> Result<FractalTensor>
where
    F: FnMut(Elem<'_>, Elem<'_>) -> Result<Tensor>,
{
    if a.len() != b.len() {
        return Err(CoreError::Adt(format!(
            "zip of lengths {} and {}",
            a.len(),
            b.len()
        )));
    }
    let out = a
        .elems()
        .zip(b.elems())
        .map(|(x, y)| f(x, y))
        .collect::<Result<Vec<_>>>()?;
    FractalTensor::from_tensors(out)
}

/// Three-way zip-map with a leaf-producing body (used by the LSTM gates and
/// BigBird score combination).
pub fn zip3_map_leaf<F>(
    a: &FractalTensor,
    b: &FractalTensor,
    c: &FractalTensor,
    mut f: F,
) -> Result<FractalTensor>
where
    F: FnMut(Elem<'_>, Elem<'_>, Elem<'_>) -> Result<Tensor>,
{
    if a.len() != b.len() || b.len() != c.len() {
        return Err(CoreError::Adt(format!(
            "zip3 of lengths {}, {}, {}",
            a.len(),
            b.len(),
            c.len()
        )));
    }
    let mut out = Vec::with_capacity(a.len());
    for ((x, y), z) in a.elems().zip(b.elems()).zip(c.elems()) {
        out.push(f(x, y, z)?);
    }
    FractalTensor::from_tensors(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_tensor::assert_allclose;

    fn seq(n: usize) -> FractalTensor {
        FractalTensor::from_tensors((0..n).map(|i| Tensor::full(&[2], i as f32)).collect()).unwrap()
    }

    #[test]
    fn construction_invariants() {
        let ok = FractalTensor::from_tensors(vec![Tensor::zeros(&[2]), Tensor::ones(&[2])]);
        assert!(ok.is_ok());
        let bad = FractalTensor::from_tensors(vec![Tensor::zeros(&[2]), Tensor::ones(&[3])]);
        assert!(bad.is_err());
        let nested_bad =
            FractalTensor::nested(vec![seq(2), FractalTensor::nested(vec![seq(2)]).unwrap()]);
        assert!(nested_bad.is_err());
    }

    #[test]
    fn depth_and_dims() {
        let d1 = seq(3);
        assert_eq!(d1.depth(), 1);
        assert_eq!(d1.prog_dims(), vec![3]);
        let d2 = FractalTensor::nested(vec![seq(3), seq(3)]).unwrap();
        assert_eq!(d2.depth(), 2);
        assert_eq!(d2.prog_dims(), vec![2, 3]);
        assert_eq!(d2.leaf_shape().dims(), &[2]);
    }

    #[test]
    fn flat_round_trip() {
        let t = Tensor::randn(&[2, 3, 4, 5], 9);
        let f = FractalTensor::from_flat(&t, 2).unwrap();
        assert_eq!(f.depth(), 2);
        assert_eq!(f.prog_dims(), vec![2, 3]);
        assert_eq!(f.leaf_shape().dims(), &[4, 5]);
        assert_allclose(&f.to_flat().unwrap(), &t, 0.0);
        assert_allclose(
            f.leaf_at(&[1, 2]).unwrap(),
            &t.select(0, 1)
                .unwrap()
                .select(0, 2)
                .unwrap()
                .to_contiguous(),
            0.0,
        );
    }

    #[test]
    fn map_applies_to_each() {
        let xs = seq(4);
        let ys = xs.map_leaf(|e| Ok(e.leaf()?.mul_scalar(2.0))).unwrap();
        assert_eq!(ys.leaf(3).unwrap().get(&[0]).unwrap(), 6.0);
        assert_eq!(ys.len(), 4);
    }

    #[test]
    fn foldl_and_foldr_definitions() {
        // Table 1: foldl(⊕, s0, xs) = s0 ⊕ x0 ⊕ ... ⊕ xm.
        let xs = seq(3); // leaves [0,0],[1,1],[2,2]
        let suml = xs
            .foldl(Tensor::zeros(&[2]), |acc, e| {
                acc.add(e.leaf()?)
                    .map_err(|e| CoreError::Adt(e.to_string()))
            })
            .unwrap();
        assert_eq!(suml.to_vec(), vec![3.0, 3.0]);
        // For a non-commutative op, foldr differs.
        let catl = xs
            .foldl(String::new(), |acc, e| {
                Ok(format!("{acc}{}", e.leaf()?.get(&[0]).unwrap()))
            })
            .unwrap();
        let catr = xs
            .foldr(String::new(), |acc, e| {
                Ok(format!("{acc}{}", e.leaf()?.get(&[0]).unwrap()))
            })
            .unwrap();
        assert_eq!(catl, "012");
        assert_eq!(catr, "210");
    }

    #[test]
    fn scanl_emits_prefixes() {
        // Table 1: scanl(⊕, s0, xs) = [s0⊕x0, s0⊕x0⊕x1, ...].
        let xs = seq(3);
        let ys = xs
            .scanl(Tensor::full(&[2], 10.0), |s, e| {
                s.add(e.leaf()?).map_err(|e| CoreError::Adt(e.to_string()))
            })
            .unwrap();
        assert_eq!(ys.leaf(0).unwrap().get(&[0]).unwrap(), 10.0);
        assert_eq!(ys.leaf(1).unwrap().get(&[0]).unwrap(), 11.0);
        assert_eq!(ys.leaf(2).unwrap().get(&[0]).unwrap(), 13.0);
    }

    #[test]
    fn scanr_reverses_direction() {
        let xs = seq(3);
        let ys = xs
            .scanr(Tensor::zeros(&[2]), |s, e| {
                s.add(e.leaf()?).map_err(|e| CoreError::Adt(e.to_string()))
            })
            .unwrap();
        // Rightmost prefix first: out[2] = x2, out[1] = x2+x1, out[0] = sum.
        assert_eq!(ys.leaf(2).unwrap().get(&[0]).unwrap(), 2.0);
        assert_eq!(ys.leaf(1).unwrap().get(&[0]).unwrap(), 3.0);
        assert_eq!(ys.leaf(0).unwrap().get(&[0]).unwrap(), 3.0);
    }

    #[test]
    fn no_initializer_forms() {
        // Table 1: foldl(⊕, xs) = x0 ⊕ x1 ⊕ ... ⊕ xm and
        // scanl(⊕, xs) = [x0, x0 ⊕ x1, ...].
        let xs = seq(4); // leaves 0, 1, 2, 3.
        let total = xs
            .foldl1(|a, e| a.add(e.leaf()?).map_err(|e| CoreError::Adt(e.to_string())))
            .unwrap();
        assert_eq!(total.get(&[0]).unwrap(), 6.0);
        let prefixes = xs
            .scanl1(|a, e| a.add(e.leaf()?).map_err(|e| CoreError::Adt(e.to_string())))
            .unwrap();
        assert_eq!(prefixes.len(), 4);
        assert_eq!(prefixes.leaf(0).unwrap().get(&[0]).unwrap(), 0.0);
        assert_eq!(prefixes.leaf(3).unwrap().get(&[0]).unwrap(), 6.0);
        // reduce1 agrees with foldl1 for associative ops.
        let r = xs
            .reduce1(|a, e| a.add(e.leaf()?).map_err(|e| CoreError::Adt(e.to_string())))
            .unwrap();
        assert_eq!(r.get(&[0]).unwrap(), 6.0);
        // Empty and nested inputs are rejected.
        let empty = FractalTensor::from_tensors(vec![]).unwrap();
        assert!(empty.foldl1(|a, _| Ok(a.clone())).is_err());
        let nested = FractalTensor::nested(vec![seq(2)]).unwrap();
        assert!(nested.scanl1(|a, _| Ok(a.clone())).is_err());
    }

    #[test]
    fn scan_fold_consistency() {
        // The last element of scanl equals foldl (Table 1 definitional
        // relationship).
        let xs = seq(5);
        let scan = xs
            .scanl(Tensor::zeros(&[2]), |s, e| {
                s.add(e.leaf()?).map_err(|e| CoreError::Adt(e.to_string()))
            })
            .unwrap();
        let fold = xs
            .foldl(Tensor::zeros(&[2]), |acc, e| {
                acc.add(e.leaf()?)
                    .map_err(|e| CoreError::Adt(e.to_string()))
            })
            .unwrap();
        assert_allclose(scan.leaf(4).unwrap(), &fold, 0.0);
    }

    #[test]
    fn access_operators() {
        let xs = seq(6);
        assert_eq!(xs.slice(2, 5).unwrap().len(), 3);
        assert_eq!(
            xs.slice(2, 5).unwrap().leaf(0).unwrap().get(&[0]).unwrap(),
            2.0
        );
        assert!(xs.slice(4, 3).is_err());
        let rev = xs.reverse();
        assert_eq!(rev.leaf(0).unwrap().get(&[0]).unwrap(), 5.0);
        let st = xs.stride(1, 2).unwrap();
        assert_eq!(st.len(), 3);
        assert_eq!(st.leaf(2).unwrap().get(&[0]).unwrap(), 5.0);
        let g = xs.gather(&[3, 0, 3]).unwrap();
        assert_eq!(g.leaf(0).unwrap().get(&[0]).unwrap(), 3.0);
        assert!(xs.gather(&[6]).is_err());
    }

    #[test]
    fn window_access() {
        let xs = seq(5);
        let w = xs.window(3, 1).unwrap();
        assert_eq!(w.depth(), 2);
        assert_eq!(w.len(), 3);
        assert_eq!(w.get(1).unwrap().leaf(0).unwrap().get(&[0]).unwrap(), 1.0);
        assert!(xs.window(6, 1).is_err());
    }

    #[test]
    fn shifted_slide_keeps_length_and_clamps() {
        let xs = seq(6);
        let w = xs.shifted_slide(3).unwrap();
        assert_eq!(w.len(), 6);
        // Position 0 clamps to window [0..3).
        assert_eq!(w.get(0).unwrap().leaf(0).unwrap().get(&[0]).unwrap(), 0.0);
        // Position 3 is centred: window [2..5).
        assert_eq!(w.get(3).unwrap().leaf(0).unwrap().get(&[0]).unwrap(), 2.0);
        // Position 5 clamps to window [3..6).
        assert_eq!(w.get(5).unwrap().leaf(0).unwrap().get(&[0]).unwrap(), 3.0);
    }

    #[test]
    fn zip_maps() {
        let a = seq(3);
        let b = seq(3);
        let s = zip_map_leaf(&a, &b, |x, y| {
            x.leaf()?
                .add(y.leaf()?)
                .map_err(|e| CoreError::Adt(e.to_string()))
        })
        .unwrap();
        assert_eq!(s.leaf(2).unwrap().get(&[0]).unwrap(), 4.0);
        assert!(zip_map_leaf(&a, &seq(4), |x, _| Ok(x.leaf()?.clone())).is_err());
    }
}
