//! Array access specifications: how a nest's iteration vector indexes the
//! programmable dimensions of a buffer (§4.2's first-order access operators).
//!
//! Every access is quasi-affine — linear, strided, and window patterns all
//! compile to an [`AffineMap`] (`i = M·t + o`); the `indirect` pattern is
//! represented by an explicit index table and marked non-affine (the paper
//! likewise excludes it from affine analysis, §7).

use ft_affine::{AffineMap, IntMat};

use crate::program::CoreError;
use crate::Result;

/// One buffer axis's index as an affine expression of iteration variables:
/// `sum(coeff * t_dim) + offset`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AxisExpr {
    /// `(iteration dim, coefficient)` terms.
    pub terms: Vec<(usize, i64)>,
    /// Constant offset.
    pub offset: i64,
}

impl AxisExpr {
    /// The plain linear access `t_dim`.
    pub fn var(dim: usize) -> Self {
        AxisExpr {
            terms: vec![(dim, 1)],
            offset: 0,
        }
    }

    /// `t_dim + offset` (shifted linear access, e.g. the `-1` of a scan's
    /// self-read).
    pub fn shifted(dim: usize, offset: i64) -> Self {
        AxisExpr {
            terms: vec![(dim, 1)],
            offset,
        }
    }

    /// `stride * t_dim + start` (constantly strided access).
    pub fn strided(dim: usize, stride: i64, start: i64) -> Self {
        AxisExpr {
            terms: vec![(dim, stride)],
            offset: start,
        }
    }

    /// `stride * t_outer + t_inner + offset` (window access: the outer dim
    /// picks the window position, the inner dim walks within the window).
    pub fn window(outer_dim: usize, inner_dim: usize, stride: i64, offset: i64) -> Self {
        AxisExpr {
            terms: vec![(outer_dim, stride), (inner_dim, 1)],
            offset,
        }
    }

    /// A constant index (e.g. BigBird's global attention reading block 0).
    pub fn constant(index: i64) -> Self {
        AxisExpr {
            terms: Vec::new(),
            offset: index,
        }
    }

    /// Evaluates at an iteration point.
    pub fn eval(&self, t: &[i64]) -> i64 {
        self.terms.iter().map(|&(d, c)| c * t[d]).sum::<i64>() + self.offset
    }
}

/// A full access specification: one [`AxisExpr`] per programmable dimension
/// of the accessed buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessSpec {
    /// Axis expressions, one per buffer programmable dimension.
    pub axes: Vec<AxisExpr>,
}

impl AccessSpec {
    /// Builds from axis expressions.
    pub fn new(axes: Vec<AxisExpr>) -> Self {
        AccessSpec { axes }
    }

    /// The default contiguously linear access: buffer axis `j` indexed by
    /// iteration dim `dims[j]`.
    pub fn linear(dims: &[usize]) -> Self {
        AccessSpec {
            axes: dims.iter().map(|&d| AxisExpr::var(d)).collect(),
        }
    }

    /// Identity access on the first `n` iteration dims.
    pub fn identity(n: usize) -> Self {
        AccessSpec::linear(&(0..n).collect::<Vec<_>>())
    }

    /// Returns a copy with `delta` added to the offset of `axis`.
    pub fn with_offset(mut self, axis: usize, delta: i64) -> Self {
        if let Some(a) = self.axes.get_mut(axis) {
            a.offset += delta;
        }
        self
    }

    /// Number of buffer axes addressed.
    pub fn data_dims(&self) -> usize {
        self.axes.len()
    }

    /// Evaluates the full index vector at an iteration point.
    pub fn eval(&self, t: &[i64]) -> Vec<i64> {
        self.axes.iter().map(|a| a.eval(t)).collect()
    }

    /// Compiles to the ETDG's access-map form `i = M·t + o` over an
    /// iteration space of `iter_dims` dimensions.
    pub fn to_affine_map(&self, iter_dims: usize) -> Result<AffineMap> {
        let mut m = IntMat::zeros(self.axes.len(), iter_dims);
        let mut o = Vec::with_capacity(self.axes.len());
        for (row, axis) in self.axes.iter().enumerate() {
            for &(dim, coeff) in &axis.terms {
                if dim >= iter_dims {
                    return Err(CoreError::Access(format!(
                        "axis {row} references iteration dim {dim} of {iter_dims}"
                    )));
                }
                m.set(row, dim, m.get(row, dim) + coeff);
            }
            o.push(axis.offset);
        }
        AffineMap::new(m, o).map_err(|e| CoreError::Access(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_eval() {
        let a = AccessSpec::linear(&[0, 2]);
        assert_eq!(a.eval(&[5, 6, 7]), vec![5, 7]);
    }

    #[test]
    fn shifted_access_matches_paper_e13() {
        // Read ysss[i][j][k-1]: identity with offset [0, 0, -1].
        let a = AccessSpec::new(vec![
            AxisExpr::var(0),
            AxisExpr::var(1),
            AxisExpr::shifted(2, -1),
        ]);
        assert_eq!(a.eval(&[2, 3, 4]), vec![2, 3, 3]);
        let m = a.to_affine_map(3).unwrap();
        assert_eq!(m.offset(), &[0, 0, -1]);
        assert_eq!(m.apply(&[2, 3, 4]).unwrap(), vec![2, 3, 3]);
    }

    #[test]
    fn strided_access() {
        // Dilated RNN layer with dilation 4 starting at 3.
        let a = AccessSpec::new(vec![AxisExpr::strided(1, 4, 3)]);
        assert_eq!(a.eval(&[0, 2]), vec![11]);
        let m = a.to_affine_map(2).unwrap();
        assert_eq!(m.apply(&[0, 2]).unwrap(), vec![11]);
    }

    #[test]
    fn window_access() {
        // BigBird windowed keys: block index = t_pos + t_win - 1.
        let a = AccessSpec::new(vec![AxisExpr::window(0, 1, 1, -1)]);
        assert_eq!(a.eval(&[5, 0]), vec![4]);
        assert_eq!(a.eval(&[5, 2]), vec![6]);
    }

    #[test]
    fn constant_access() {
        let a = AccessSpec::new(vec![AxisExpr::constant(0), AxisExpr::var(1)]);
        assert_eq!(a.eval(&[9, 3]), vec![0, 3]);
    }

    #[test]
    fn with_offset_shifts() {
        let a = AccessSpec::identity(2).with_offset(1, -1);
        assert_eq!(a.eval(&[4, 4]), vec![4, 3]);
    }

    #[test]
    fn to_affine_map_rejects_out_of_range_dim() {
        let a = AccessSpec::linear(&[0, 5]);
        assert!(a.to_affine_map(2).is_err());
    }

    #[test]
    fn spec_and_map_agree_everywhere() {
        let a = AccessSpec::new(vec![
            AxisExpr::window(0, 2, 2, 1),
            AxisExpr::strided(1, 3, -2),
        ]);
        let m = a.to_affine_map(3).unwrap();
        for t0 in 0..4i64 {
            for t1 in 0..4i64 {
                for t2 in 0..4i64 {
                    let t = [t0, t1, t2];
                    assert_eq!(a.eval(&t), m.apply(&t).unwrap());
                }
            }
        }
    }
}
