//! Canonical program builders used across the workspace's tests and docs.
//!
//! The six full evaluation workloads live in `ft-workloads`; this module
//! holds the paper's *running example* (Listing 1's stacked RNN), which the
//! ETDG parser, coarsening, and reordering test suites all exercise.

use crate::access::{AccessSpec, AxisExpr};
use crate::expr::UdfBuilder;
use crate::program::{CarriedInit, Nest, OpKind, Program, Read, Write};

/// Listing 1's stacked RNN as a single depth-3 nest over `(n, d, l)`:
///
/// ```text
/// ysss = xss.map xs =>            -- batch (map)
///   yss = ws.scanl xs, (ss, w) => -- layers (scanl, init = input sequence)
///     ys = ss.scanl 0, (s, x) =>  -- time (scanl, init = 0)
///       y = x @ w + s             -- UDF cell
/// ```
///
/// The two scans appear as *self-reads of the output buffer* at offsets
/// `d-1` and `l-1`, with carried initializers — precisely the access maps
/// `e12`/`e13` of the paper's Figure 4.
pub fn stacked_rnn_program(n: usize, d: usize, l: usize, h: usize) -> Program {
    let mut p = Program::new("stacked_rnn");
    let xss = p.input("xss", &[n, l], &[1, h]);
    let ws = p.input("ws", &[d], &[h, h]);
    let ysss = p.output("ysss", &[n, d, l], &[1, h]);

    let mut b = UdfBuilder::new("rnn_cell", 3);
    let (x, w, s) = (b.input(0), b.input(1), b.input(2));
    let xw = b.matmul(x, w);
    let y = b.add(xw, s);
    let udf = b.build(&[y]);

    let nest = Nest {
        name: "stacked_rnn".into(),
        ops: vec![OpKind::Map, OpKind::ScanL, OpKind::ScanL],
        extents: vec![n, d, l],
        reads: vec![
            // x: the previous layer's output at (n, d-1, l); layer 0 reads
            // the input sequence xss[n][l] instead (edge e12 of Figure 4).
            Read::carried(
                ysss,
                AccessSpec::new(vec![
                    AxisExpr::var(0),
                    AxisExpr::shifted(1, -1),
                    AxisExpr::var(2),
                ]),
                CarriedInit::Buffer(
                    xss,
                    AccessSpec::new(vec![AxisExpr::var(0), AxisExpr::var(2)]),
                ),
            ),
            // w: the layer's weight matrix (edge e14).
            Read::plain(ws, AccessSpec::new(vec![AxisExpr::var(1)])),
            // s: this layer's previous step at (n, d, l-1); zeros at l = 0
            // (edge e13).
            Read::carried(
                ysss,
                AccessSpec::new(vec![
                    AxisExpr::var(0),
                    AxisExpr::var(1),
                    AxisExpr::shifted(2, -1),
                ]),
                CarriedInit::Zero,
            ),
        ],
        writes: vec![Write {
            buffer: ysss,
            access: AccessSpec::identity(3),
        }],
        udf,
    };
    p.add_nest(nest).expect("stacked RNN nest is well-formed");
    p
}

/// One autoregressive *decode step* of the stacked RNN: the time scan of
/// [`stacked_rnn_program`] unrolled to a single step, with the carried
/// hidden stack lifted into an explicit input/output pair so a serving
/// session can pin it across requests.
///
/// ```text
/// hs_next = ws.scanl x, (s_in, (w, s)) =>  -- layers (scanl over d)
///   y = s_in @ w + s                       -- same UDF cell
/// ```
///
/// Buffers: `x` `[1]/[1,h]` is the step's token (layer 0's input),
/// `ws` `[d]/[h,h]` the shared layer weights, `hs` `[1,d]/[1,h]` the
/// hidden state after the previous step, and `hs_next` `[1,d]/[1,h]` the
/// advanced state. A loop feeding `hs_next` back as `hs` for `l` steps is
/// bitwise-identical to `stacked_rnn_program(1, d, l, h)`: `hs_next`
/// after step `t` equals `ysss[0][·][t]`. The outer axis is a pure
/// extent-1 `map`, so decode steps from different sessions batch into one
/// wavefront launch (each rides its own outer row).
pub fn rnn_decode_step_program(d: usize, h: usize) -> Program {
    let mut p = Program::new("rnn_decode_step");
    let x = p.input("x", &[1], &[1, h]);
    let ws = p.input("ws", &[d], &[h, h]);
    let hs = p.input("hs", &[1, d], &[1, h]);
    let hs_next = p.output("hs_next", &[1, d], &[1, h]);

    let mut b = UdfBuilder::new("rnn_cell", 3);
    let (xi, w, s) = (b.input(0), b.input(1), b.input(2));
    let xw = b.matmul(xi, w);
    let y = b.add(xw, s);
    let udf = b.build(&[y]);

    let nest = Nest {
        name: "rnn_decode_step".into(),
        ops: vec![OpKind::Map, OpKind::ScanL],
        extents: vec![1, d],
        reads: vec![
            // Layer input: the previous layer's freshly advanced output;
            // layer 0 reads the step's token instead (edge e12 collapsed
            // to one timestep).
            Read::carried(
                hs_next,
                AccessSpec::new(vec![AxisExpr::var(0), AxisExpr::shifted(1, -1)]),
                CarriedInit::Buffer(x, AccessSpec::new(vec![AxisExpr::var(0)])),
            ),
            // w: the layer's weight matrix.
            Read::plain(ws, AccessSpec::new(vec![AxisExpr::var(1)])),
            // s: this layer's hidden state from the previous step — the
            // time-scan carry (edge e13) made explicit as pinned state.
            Read::plain(
                hs,
                AccessSpec::new(vec![AxisExpr::var(0), AxisExpr::var(1)]),
            ),
        ],
        writes: vec![Write {
            buffer: hs_next,
            access: AccessSpec::identity(2),
        }],
        udf,
    };
    p.add_nest(nest)
        .expect("RNN decode-step nest is well-formed");
    p
}
