//! Structural program signatures.
//!
//! [`program_signature`] hashes everything that determines a program's
//! compiled schedule — buffer dims, leaf shapes and kinds, nest operator
//! vectors and extents, access specifications (including carried-init
//! boundary rules), and the UDF's SSA statement structure — while
//! deliberately ignoring every debug *name* (program, buffer, nest, UDF).
//! Two structurally identical programs that differ only in naming therefore
//! produce the same signature, which is exactly the key the serving layer's
//! compiled-plan cache needs: repeated submissions of the same workload hit
//! one cache entry regardless of how callers labeled their buffers.
//!
//! The hash is a self-contained 64-bit FNV-1a so signatures are stable
//! across processes and toolchains (no `DefaultHasher` seeding concerns);
//! every variable-length field is prefixed with its length and every enum
//! with a discriminant tag, so distinct structures cannot collide by
//! concatenation ambiguity.

use crate::access::{AccessSpec, AxisExpr};
use crate::expr::{OpCode, Operand, Udf};
use crate::program::{BufferKind, CarriedInit, OpKind, Program, Read, Write};

/// A structural program signature (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProgramSig(pub u64);

impl std::fmt::Display for ProgramSig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// 64-bit FNV-1a, fed field-by-field with explicit tags.
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(Self::PRIME);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f32_bits(&mut self, v: f32) {
        self.u64(v.to_bits() as u64);
    }

    /// Enum discriminant / structural separator tag.
    fn tag(&mut self, t: u8) {
        self.byte(t);
    }
}

/// Computes the structural signature of a program (name-insensitive; see
/// the module docs for what is and is not hashed).
pub fn program_signature(p: &Program) -> ProgramSig {
    let mut h = Fnv::new();
    h.usize(p.buffers.len());
    for b in &p.buffers {
        h.tag(match b.kind {
            BufferKind::Input => 1,
            BufferKind::Output => 2,
            BufferKind::Intermediate => 3,
        });
        h.usize(b.dims.len());
        for &d in &b.dims {
            h.usize(d);
        }
        let leaf = b.leaf_shape.dims();
        h.usize(leaf.len());
        for &d in leaf {
            h.usize(d);
        }
    }
    h.usize(p.nests.len());
    for n in &p.nests {
        h.usize(n.ops.len());
        for op in &n.ops {
            h.tag(op_kind_tag(*op));
        }
        for &e in &n.extents {
            h.usize(e);
        }
        h.usize(n.reads.len());
        for r in &n.reads {
            hash_read(&mut h, r);
        }
        h.usize(n.writes.len());
        for w in &n.writes {
            hash_write(&mut h, w);
        }
        hash_udf(&mut h, &n.udf);
    }
    ProgramSig(h.0)
}

fn op_kind_tag(op: OpKind) -> u8 {
    match op {
        OpKind::Map => 1,
        OpKind::ScanL => 2,
        OpKind::ScanR => 3,
        OpKind::FoldL => 4,
        OpKind::FoldR => 5,
        OpKind::Reduce => 6,
    }
}

fn hash_read(h: &mut Fnv, r: &Read) {
    h.tag(10);
    h.usize(r.buffer.0);
    hash_access(h, &r.access);
    match &r.init {
        None => h.tag(0),
        Some(CarriedInit::Zero) => h.tag(1),
        Some(CarriedInit::Fill(v)) => {
            h.tag(2);
            h.f32_bits(*v);
        }
        Some(CarriedInit::Buffer(b, spec)) => {
            h.tag(3);
            h.usize(b.0);
            hash_access(h, spec);
        }
    }
}

fn hash_write(h: &mut Fnv, w: &Write) {
    h.tag(11);
    h.usize(w.buffer.0);
    hash_access(h, &w.access);
}

fn hash_access(h: &mut Fnv, a: &AccessSpec) {
    h.usize(a.axes.len());
    for axis in &a.axes {
        hash_axis(h, axis);
    }
}

fn hash_axis(h: &mut Fnv, a: &AxisExpr) {
    h.usize(a.terms.len());
    for &(dim, coeff) in &a.terms {
        h.usize(dim);
        h.i64(coeff);
    }
    h.i64(a.offset);
}

fn hash_udf(h: &mut Fnv, u: &Udf) {
    h.usize(u.num_inputs);
    h.usize(u.stmts.len());
    for s in &u.stmts {
        hash_opcode(h, &s.op);
        h.usize(s.args.len());
        for a in &s.args {
            hash_operand(h, a);
        }
    }
    h.usize(u.outputs.len());
    for o in &u.outputs {
        hash_operand(h, o);
    }
}

fn hash_operand(h: &mut Fnv, o: &Operand) {
    match o {
        Operand::In(k) => {
            h.tag(1);
            h.usize(*k);
        }
        Operand::Tmp(k) => {
            h.tag(2);
            h.usize(*k);
        }
    }
}

fn hash_opcode(h: &mut Fnv, op: &OpCode) {
    match op {
        OpCode::MatMul => h.tag(1),
        OpCode::MatMulT => h.tag(2),
        OpCode::Add => h.tag(3),
        OpCode::Sub => h.tag(4),
        OpCode::Mul => h.tag(5),
        OpCode::Div => h.tag(6),
        OpCode::Max => h.tag(7),
        OpCode::AddColBc => h.tag(8),
        OpCode::SubColBc => h.tag(9),
        OpCode::MulColBc => h.tag(10),
        OpCode::DivColBc => h.tag(11),
        OpCode::Scale(v) => {
            h.tag(12);
            h.f32_bits(*v);
        }
        OpCode::AddScalar(v) => {
            h.tag(13);
            h.f32_bits(*v);
        }
        OpCode::Tanh => h.tag(14),
        OpCode::Sigmoid => h.tag(15),
        OpCode::Exp => h.tag(16),
        OpCode::Neg => h.tag(17),
        OpCode::Relu => h.tag(18),
        OpCode::RowMax => h.tag(19),
        OpCode::RowSum => h.tag(20),
        OpCode::Softmax => h.tag(21),
        OpCode::Concat(a) => {
            h.tag(22);
            h.usize(*a);
        }
        OpCode::Slice { axis, start, end } => {
            h.tag(23);
            h.usize(*axis);
            h.usize(*start);
            h.usize(*end);
        }
        OpCode::Transpose => h.tag(24),
        OpCode::Id => h.tag(25),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::stacked_rnn_program;

    /// Renames every name-bearing field without touching structure.
    fn renamed(mut p: Program, suffix: &str) -> Program {
        p.name = format!("{}_{suffix}", p.name);
        for b in &mut p.buffers {
            b.name = format!("{}_{suffix}", b.name);
        }
        for n in &mut p.nests {
            n.name = format!("{}_{suffix}", n.name);
            n.udf.name = format!("{}_{suffix}", n.udf.name);
        }
        p
    }

    #[test]
    fn signature_is_deterministic() {
        let a = program_signature(&stacked_rnn_program(2, 3, 4, 8));
        let b = program_signature(&stacked_rnn_program(2, 3, 4, 8));
        assert_eq!(a, b);
    }

    #[test]
    fn signature_ignores_names() {
        let p = stacked_rnn_program(2, 3, 4, 8);
        let q = renamed(p.clone(), "debug_copy");
        assert_eq!(program_signature(&p), program_signature(&q));
    }

    #[test]
    fn signature_distinguishes_extents_and_shapes() {
        let base = program_signature(&stacked_rnn_program(2, 3, 4, 8));
        assert_ne!(base, program_signature(&stacked_rnn_program(3, 3, 4, 8)));
        assert_ne!(base, program_signature(&stacked_rnn_program(2, 4, 4, 8)));
        assert_ne!(base, program_signature(&stacked_rnn_program(2, 3, 5, 8)));
        assert_ne!(base, program_signature(&stacked_rnn_program(2, 3, 4, 16)));
    }

    #[test]
    fn signature_distinguishes_access_offsets() {
        let mut p = stacked_rnn_program(2, 3, 4, 8);
        let base = program_signature(&p);
        p.nests[0].reads[2].access.axes[2].offset = -2;
        assert_ne!(base, program_signature(&p));
    }

    #[test]
    fn signature_distinguishes_udf_structure() {
        let mut p = stacked_rnn_program(2, 3, 4, 8);
        let base = program_signature(&p);
        p.nests[0].udf.stmts[0].op = OpCode::MatMulT;
        assert_ne!(base, program_signature(&p));
    }
}
