//! Structural program signatures.
//!
//! [`structural_bytes`] serializes everything that determines a program's
//! compiled schedule — buffer dims, leaf shapes and kinds, nest operator
//! vectors and extents, access specifications (including carried-init
//! boundary rules), and the UDF's SSA statement structure — while
//! deliberately ignoring every debug *name* (program, buffer, nest, UDF).
//! Two structurally identical programs that differ only in naming therefore
//! produce the same byte stream, which is exactly the key the serving
//! layer's compiled-plan cache needs: repeated submissions of the same
//! workload hit one cache entry regardless of how callers labeled their
//! buffers. Every variable-length field is prefixed with its length and
//! every enum with a discriminant tag, so distinct structures cannot
//! produce the same bytes by concatenation ambiguity — byte equality *is*
//! structural equality.
//!
//! [`program_signature`] is a 128-bit FNV-1a over those bytes: a
//! self-contained hash so signatures are stable across processes and
//! toolchains (no `DefaultHasher` seeding concerns). FNV is fast but not
//! collision-resistant, and a serving process accepts arbitrary programs,
//! so the signature alone must never be treated as proof of structural
//! identity: `ft_passes::PlanCache` stores the structural bytes next to
//! each plan and verifies byte equality on every hit, so a colliding
//! signature (accidental or adversarial) degrades to an extra compile, not
//! to serving the wrong plan.

use crate::access::{AccessSpec, AxisExpr};
use crate::expr::{OpCode, Operand, Udf};
use crate::poly::{analyze_outer, OuterInfo};
use crate::program::{BufferKind, CarriedInit, OpKind, Program, Read, Write};

/// A structural program signature (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProgramSig(pub u128);

impl std::fmt::Display for ProgramSig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// A shape-insensitive structural key: [`ProgramSig`] with the polymorphic
/// outer extent masked out of the hashed bytes. Every instance of one
/// program family — same structure, any outer extent — shares one key;
/// the concrete extent travels separately as the shape tuple
/// ([`PolySplit::outer_extent`]) and is resolved at launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructKey(pub u128);

impl std::fmt::Display for StructKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// A program signature split into its shape-insensitive part and the shape
/// tuple, produced by [`poly_split`].
#[derive(Debug, Clone)]
pub struct PolySplit {
    /// Hash of [`bytes`](Self::bytes) — the family cache key.
    pub key: StructKey,
    /// Masked structural bytes: like [`structural_bytes`] but with every
    /// nest's outer extent and every batched buffer's outer dimension
    /// replaced by a sentinel. Byte equality is family identity (the
    /// family cache verifies hits against these, mirroring the plan
    /// cache's collision discipline).
    pub bytes: Vec<u8>,
    /// The shape tuple: the one designated symbolic extent, concrete in
    /// this instance. Everything else about the shape stays baked into
    /// [`bytes`](Self::bytes).
    pub outer_extent: usize,
    /// Buffer classification backing the mask (and ragged batching).
    pub info: OuterInfo,
}

/// Splits a program's signature into a shape-insensitive [`StructKey`]
/// plus the concrete outer extent, when the program has a polymorphic
/// outer axis ([`analyze_outer`]). Returns `None` for programs whose
/// outer axis carries dependences — those keep exact-shape signatures.
pub fn poly_split(p: &Program) -> Option<PolySplit> {
    let info = analyze_outer(p)?;
    let bytes = bytes_with_mask(p, Some(&info));
    Some(PolySplit {
        key: StructKey(fnv128(&bytes)),
        bytes,
        outer_extent: info.batch_extent,
        info,
    })
}

/// The canonical structural byte stream builder (see the module docs).
struct SigBytes(Vec<u8>);

impl SigBytes {
    fn new() -> Self {
        SigBytes(Vec::with_capacity(256))
    }

    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f32_bits(&mut self, v: f32) {
        self.u64(v.to_bits() as u64);
    }

    /// Enum discriminant / structural separator tag.
    fn tag(&mut self, t: u8) {
        self.0.push(t);
    }
}

/// 128-bit FNV-1a over a byte slice.
fn fnv128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The canonical name-insensitive serialization of a program's structure.
///
/// Byte equality of two programs' structural bytes is exactly "these two
/// programs compile to the same schedule"; the plan cache uses it to
/// verify signature hits (see the module docs).
pub fn structural_bytes(p: &Program) -> Vec<u8> {
    bytes_with_mask(p, None)
}

/// Sentinel serialized in place of masked extents. No real extent can be
/// `u64::MAX` (such a buffer could not exist in memory), and the family
/// cache byte-verifies hits anyway, so an accidental collision degrades
/// to an extra compile, never to serving the wrong family.
const POLY_SENTINEL: u64 = u64::MAX;

/// [`structural_bytes`] with an optional polymorphic-outer-axis mask: when
/// `mask` is set, each nest's outer extent and each batched buffer's outer
/// dimension serialize as [`POLY_SENTINEL`], so all instances of one
/// family produce identical bytes.
fn bytes_with_mask(p: &Program, mask: Option<&OuterInfo>) -> Vec<u8> {
    let mut h = SigBytes::new();
    h.usize(p.buffers.len());
    for (bi, b) in p.buffers.iter().enumerate() {
        h.tag(match b.kind {
            BufferKind::Input => 1,
            BufferKind::Output => 2,
            BufferKind::Intermediate => 3,
        });
        let masked = mask.is_some_and(|m| m.batched.get(bi).copied().unwrap_or(false));
        h.usize(b.dims.len());
        for (di, &d) in b.dims.iter().enumerate() {
            if masked && di == 0 {
                h.u64(POLY_SENTINEL);
            } else {
                h.usize(d);
            }
        }
        let leaf = b.leaf_shape.dims();
        h.usize(leaf.len());
        for &d in leaf {
            h.usize(d);
        }
    }
    h.usize(p.nests.len());
    for n in &p.nests {
        h.usize(n.ops.len());
        for op in &n.ops {
            h.tag(op_kind_tag(*op));
        }
        for (ei, &e) in n.extents.iter().enumerate() {
            if mask.is_some() && ei == 0 {
                h.u64(POLY_SENTINEL);
            } else {
                h.usize(e);
            }
        }
        h.usize(n.reads.len());
        for r in &n.reads {
            hash_read(&mut h, r);
        }
        h.usize(n.writes.len());
        for w in &n.writes {
            hash_write(&mut h, w);
        }
        hash_udf(&mut h, &n.udf);
    }
    h.0
}

/// Computes the structural signature of a program: a 128-bit FNV-1a over
/// [`structural_bytes`] (name-insensitive; see the module docs for what is
/// and is not hashed, and for why signature equality alone must not be
/// trusted as structural identity).
pub fn program_signature(p: &Program) -> ProgramSig {
    ProgramSig(fnv128(&structural_bytes(p)))
}

fn op_kind_tag(op: OpKind) -> u8 {
    match op {
        OpKind::Map => 1,
        OpKind::ScanL => 2,
        OpKind::ScanR => 3,
        OpKind::FoldL => 4,
        OpKind::FoldR => 5,
        OpKind::Reduce => 6,
    }
}

fn hash_read(h: &mut SigBytes, r: &Read) {
    h.tag(10);
    h.usize(r.buffer.0);
    hash_access(h, &r.access);
    match &r.init {
        None => h.tag(0),
        Some(CarriedInit::Zero) => h.tag(1),
        Some(CarriedInit::Fill(v)) => {
            h.tag(2);
            h.f32_bits(*v);
        }
        Some(CarriedInit::Buffer(b, spec)) => {
            h.tag(3);
            h.usize(b.0);
            hash_access(h, spec);
        }
    }
}

fn hash_write(h: &mut SigBytes, w: &Write) {
    h.tag(11);
    h.usize(w.buffer.0);
    hash_access(h, &w.access);
}

fn hash_access(h: &mut SigBytes, a: &AccessSpec) {
    h.usize(a.axes.len());
    for axis in &a.axes {
        hash_axis(h, axis);
    }
}

fn hash_axis(h: &mut SigBytes, a: &AxisExpr) {
    h.usize(a.terms.len());
    for &(dim, coeff) in &a.terms {
        h.usize(dim);
        h.i64(coeff);
    }
    h.i64(a.offset);
}

fn hash_udf(h: &mut SigBytes, u: &Udf) {
    h.usize(u.num_inputs);
    h.usize(u.stmts.len());
    for s in &u.stmts {
        hash_opcode(h, &s.op);
        h.usize(s.args.len());
        for a in &s.args {
            hash_operand(h, a);
        }
    }
    h.usize(u.outputs.len());
    for o in &u.outputs {
        hash_operand(h, o);
    }
}

fn hash_operand(h: &mut SigBytes, o: &Operand) {
    match o {
        Operand::In(k) => {
            h.tag(1);
            h.usize(*k);
        }
        Operand::Tmp(k) => {
            h.tag(2);
            h.usize(*k);
        }
    }
}

fn hash_opcode(h: &mut SigBytes, op: &OpCode) {
    match op {
        OpCode::MatMul => h.tag(1),
        OpCode::MatMulT => h.tag(2),
        OpCode::Add => h.tag(3),
        OpCode::Sub => h.tag(4),
        OpCode::Mul => h.tag(5),
        OpCode::Div => h.tag(6),
        OpCode::Max => h.tag(7),
        OpCode::AddColBc => h.tag(8),
        OpCode::SubColBc => h.tag(9),
        OpCode::MulColBc => h.tag(10),
        OpCode::DivColBc => h.tag(11),
        OpCode::Scale(v) => {
            h.tag(12);
            h.f32_bits(*v);
        }
        OpCode::AddScalar(v) => {
            h.tag(13);
            h.f32_bits(*v);
        }
        OpCode::Tanh => h.tag(14),
        OpCode::Sigmoid => h.tag(15),
        OpCode::Exp => h.tag(16),
        OpCode::Neg => h.tag(17),
        OpCode::Relu => h.tag(18),
        OpCode::RowMax => h.tag(19),
        OpCode::RowSum => h.tag(20),
        OpCode::Softmax => h.tag(21),
        OpCode::Concat(a) => {
            h.tag(22);
            h.usize(*a);
        }
        OpCode::Slice { axis, start, end } => {
            h.tag(23);
            h.usize(*axis);
            h.usize(*start);
            h.usize(*end);
        }
        OpCode::Transpose => h.tag(24),
        OpCode::Id => h.tag(25),
        OpCode::Silu => h.tag(26),
        OpCode::FusedMatMul { transb, epi } => {
            h.tag(27);
            h.tag(u8::from(*transb));
            h.usize(epi.len());
            for op in epi {
                hash_epiop(h, *op);
            }
        }
        OpCode::EwChain(ops) => {
            h.tag(28);
            h.usize(ops.len());
            for op in ops {
                hash_epiop(h, *op);
            }
        }
    }
}

fn hash_epiop(h: &mut SigBytes, op: ft_simd::EpiOp) {
    h.tag(op.tag());
    if let Some(c) = op.payload() {
        h.f32_bits(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::stacked_rnn_program;

    /// Renames every name-bearing field without touching structure.
    fn renamed(mut p: Program, suffix: &str) -> Program {
        p.name = format!("{}_{suffix}", p.name);
        for b in &mut p.buffers {
            b.name = format!("{}_{suffix}", b.name);
        }
        for n in &mut p.nests {
            n.name = format!("{}_{suffix}", n.name);
            n.udf.name = format!("{}_{suffix}", n.udf.name);
        }
        p
    }

    #[test]
    fn signature_is_deterministic() {
        let a = program_signature(&stacked_rnn_program(2, 3, 4, 8));
        let b = program_signature(&stacked_rnn_program(2, 3, 4, 8));
        assert_eq!(a, b);
    }

    #[test]
    fn signature_ignores_names() {
        let p = stacked_rnn_program(2, 3, 4, 8);
        let q = renamed(p.clone(), "debug_copy");
        assert_eq!(program_signature(&p), program_signature(&q));
        assert_eq!(structural_bytes(&p), structural_bytes(&q));
    }

    #[test]
    fn signature_distinguishes_extents_and_shapes() {
        let base = program_signature(&stacked_rnn_program(2, 3, 4, 8));
        assert_ne!(base, program_signature(&stacked_rnn_program(3, 3, 4, 8)));
        assert_ne!(base, program_signature(&stacked_rnn_program(2, 4, 4, 8)));
        assert_ne!(base, program_signature(&stacked_rnn_program(2, 3, 5, 8)));
        assert_ne!(base, program_signature(&stacked_rnn_program(2, 3, 4, 16)));
    }

    #[test]
    fn signature_distinguishes_access_offsets() {
        let mut p = stacked_rnn_program(2, 3, 4, 8);
        let base = program_signature(&p);
        p.nests[0].reads[2].access.axes[2].offset = -2;
        assert_ne!(base, program_signature(&p));
    }

    #[test]
    fn signature_distinguishes_udf_structure() {
        let mut p = stacked_rnn_program(2, 3, 4, 8);
        let base = program_signature(&p);
        p.nests[0].udf.stmts[0].op = OpCode::MatMulT;
        assert_ne!(base, program_signature(&p));
    }

    #[test]
    fn structural_bytes_differ_when_structure_differs() {
        let p = stacked_rnn_program(2, 3, 4, 8);
        let mut q = p.clone();
        q.nests[0].udf.stmts[0].op = OpCode::MatMulT;
        assert_ne!(structural_bytes(&p), structural_bytes(&q));
    }

    #[test]
    fn poly_split_shares_a_key_across_outer_extents() {
        let splits: Vec<_> = [1, 2, 7, 64]
            .iter()
            .map(|&n| poly_split(&stacked_rnn_program(n, 3, 4, 8)).expect("poly-eligible"))
            .collect();
        for s in &splits[1..] {
            assert_eq!(s.key, splits[0].key);
            assert_eq!(s.bytes, splits[0].bytes);
        }
        assert_eq!(splits[2].outer_extent, 7);
        // The exact-shape signatures still differ: the split, not the
        // signature, carries the polymorphism.
        assert_ne!(
            program_signature(&stacked_rnn_program(1, 3, 4, 8)),
            program_signature(&stacked_rnn_program(2, 3, 4, 8))
        );
    }

    #[test]
    fn poly_split_distinguishes_non_outer_structure() {
        let base = poly_split(&stacked_rnn_program(2, 3, 4, 8)).unwrap();
        for other in [
            stacked_rnn_program(2, 4, 4, 8),  // depth
            stacked_rnn_program(2, 3, 5, 8),  // inner length
            stacked_rnn_program(2, 3, 4, 16), // hidden width
        ] {
            let s = poly_split(&other).unwrap();
            assert_ne!(s.key, base.key);
            assert_ne!(s.bytes, base.bytes);
        }
    }

    #[test]
    fn poly_split_rejects_outer_dependences() {
        let mut p = stacked_rnn_program(2, 3, 4, 8);
        for nest in &mut p.nests {
            nest.ops[0] = OpKind::ScanL;
        }
        assert!(poly_split(&p).is_none());
    }
}
