//! Shape polymorphism over the designated outer extent.
//!
//! The compiled schedule of a FractalTensor program depends on loop
//! *structure*, not on how long the outermost `map` happens to be: a
//! stacked RNN over 64 sequences and the same RNN over 640 run the same
//! wavefront, just wider. This module identifies that **polymorphic outer
//! axis** — the conditions are exactly the dynamic-batching legality rules
//! of DESIGN.md §10, because a ragged fused batch *is* an instance of the
//! program at a different outer extent:
//!
//! * every nest's outermost operator is `map` (no loop-carried dependence
//!   along the axis) and all nests share one outer extent `B`;
//! * each buffer either indexes its outer data axis by exactly the outer
//!   iteration variable (`axes[0] == t0`, no other axis mentions `t0`) —
//!   a **batched** buffer whose outer extent scales with `B` — or never
//!   mentions `t0` at all — a **shared** buffer (weights) whose shape is
//!   concrete at every extent;
//! * every written buffer is batched.
//!
//! [`analyze_outer`] decides eligibility and classifies buffers;
//! [`with_outer_extent`] re-extents a program along the axis (the "shape
//! tuple applied to the structural template" operation). The signature
//! split lives in [`crate::sig::poly_split`].

use crate::access::{AccessSpec, AxisExpr};
use crate::program::{BufferKind, CarriedInit, OpKind, Program};

/// How each buffer of an outer-polymorphic program relates to the outer
/// extent. Also the batching contract: fusing K requests concatenates
/// batched buffers along the outer axis and passes shared ones once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OuterInfo {
    /// The concrete outer extent `B` this program instance was declared
    /// at (the shape tuple; every nest shares it).
    pub batch_extent: usize,
    /// Per buffer (indexed by `BufferId.0`): true = the buffer's outer
    /// dimension scales with the extent (concatenate when batching),
    /// false = extent-independent (pass one shared copy).
    pub batched: Vec<bool>,
}

/// A buffer's observed role across all accesses.
#[derive(Clone, Copy, PartialEq)]
enum Role {
    Unseen,
    Batched,
    Shared,
}

fn uses_outer(axis: &AxisExpr) -> bool {
    axis.terms.iter().any(|&(d, c)| d == 0 && c != 0)
}

/// Classifies one access: `Some(true)` batched, `Some(false)` shared,
/// `None` incompatible with outer polymorphism.
fn classify(spec: &AccessSpec) -> Option<bool> {
    if !spec.axes.iter().any(uses_outer) {
        return Some(false);
    }
    let first = spec.axes.first()?;
    let nonzero: Vec<(usize, i64)> = first
        .terms
        .iter()
        .copied()
        .filter(|&(_, c)| c != 0)
        .collect();
    let first_is_t0 = first.offset == 0 && nonzero == [(0, 1)];
    let rest_clean = spec.axes[1..].iter().all(|a| !uses_outer(a));
    if first_is_t0 && rest_clean {
        Some(true)
    } else {
        None
    }
}

fn merge(role: &mut Role, batched: bool) -> bool {
    let next = if batched { Role::Batched } else { Role::Shared };
    match *role {
        Role::Unseen => {
            *role = next;
            true
        }
        r => r == next,
    }
}

/// Decides whether `program` has a polymorphic outer axis, and how each
/// buffer participates.
///
/// Returns `None` when any rule in the module docs is violated; such
/// programs compile per concrete shape and batch only with identical
/// extents.
pub fn analyze_outer(program: &Program) -> Option<OuterInfo> {
    let first_nest = program.nests.first()?;
    if *first_nest.ops.first()? != OpKind::Map {
        return None;
    }
    let b = *first_nest.extents.first()?;
    let mut roles = vec![Role::Unseen; program.buffers.len()];
    for nest in &program.nests {
        if *nest.ops.first()? != OpKind::Map || *nest.extents.first()? != b {
            return None;
        }
        for read in &nest.reads {
            if !merge(&mut roles[read.buffer.0], classify(&read.access)?) {
                return None;
            }
            if let Some(CarriedInit::Buffer(init_buf, init_spec)) = &read.init {
                if !merge(&mut roles[init_buf.0], classify(init_spec)?) {
                    return None;
                }
            }
        }
        for write in &nest.writes {
            if !merge(&mut roles[write.buffer.0], classify(&write.access)?) {
                return None;
            }
        }
    }
    let mut batched = Vec::with_capacity(program.buffers.len());
    for (decl, role) in program.buffers.iter().zip(&roles) {
        let is_batched = match (decl.kind, role) {
            // Written buffers must split per extent unit.
            (BufferKind::Output | BufferKind::Intermediate, Role::Batched) => true,
            (BufferKind::Output | BufferKind::Intermediate, _) => return None,
            (BufferKind::Input, Role::Batched) => true,
            // Unread inputs ride along as one shared copy.
            (BufferKind::Input, Role::Shared | Role::Unseen) => false,
        };
        // The outer data axis must track the extent 1:1 for concatenation
        // (and re-extenting) to be meaningful.
        if is_batched && decl.dims.first() != Some(&b) {
            return None;
        }
        batched.push(is_batched);
    }
    Some(OuterInfo {
        batch_extent: b,
        batched,
    })
}

/// The same program instantiated at outer extent `new_extent`: every
/// nest's outer extent and every batched buffer's outer dimension set to
/// `new_extent`. Shared buffers keep their shape; structure is otherwise
/// identical, so all instances share one [`crate::sig::poly_split`] key.
pub fn with_outer_extent(program: &Program, info: &OuterInfo, new_extent: usize) -> Program {
    let mut inst = program.clone();
    if new_extent != info.batch_extent {
        inst.name = format!("{}[L={new_extent}]", program.name);
    }
    for (decl, &is_batched) in inst.buffers.iter_mut().zip(&info.batched) {
        if is_batched {
            if let Some(outer) = decl.dims.first_mut() {
                *outer = new_extent;
            }
        }
    }
    for nest in &mut inst.nests {
        if let Some(outer) = nest.extents.first_mut() {
            *outer = new_extent;
        }
    }
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::stacked_rnn_program;
    use crate::sig::program_signature;

    #[test]
    fn stacked_rnn_has_a_polymorphic_outer_axis() {
        let p = stacked_rnn_program(2, 3, 4, 8);
        let info = analyze_outer(&p).expect("outer map axis");
        assert_eq!(info.batch_extent, 2);
        // Inputs and outputs scale with the axis; the weight stack is
        // extent-independent.
        for (decl, &b) in p.buffers.iter().zip(&info.batched) {
            if decl.name.contains("ws") {
                assert!(!b, "weights must be shared");
            } else {
                assert!(b, "{} should be batched", decl.name);
            }
        }
    }

    #[test]
    fn outer_scan_is_not_polymorphic() {
        let mut p = stacked_rnn_program(2, 3, 4, 8);
        for nest in &mut p.nests {
            nest.ops[0] = OpKind::ScanL;
        }
        assert!(analyze_outer(&p).is_none());
    }

    #[test]
    fn re_extent_matches_directly_built_program() {
        let p = stacked_rnn_program(2, 3, 4, 8);
        let info = analyze_outer(&p).unwrap();
        let inst = with_outer_extent(&p, &info, 5);
        assert!(inst.validate().is_ok());
        // Same structure (up to names) as building the program at the
        // target extent from scratch.
        assert_eq!(
            program_signature(&inst),
            program_signature(&stacked_rnn_program(5, 3, 4, 8))
        );
        // Re-extenting at the original extent is the identity.
        assert_eq!(
            program_signature(&with_outer_extent(&p, &info, 2)),
            program_signature(&p)
        );
    }
}
