//! User-defined math functions (UDFs) on static-shape leaf tensors.
//!
//! The paper allows arbitrary side-effect-free tensor math at the innermost
//! level of an operator nest (§4.2), and the compiler *lowers* these
//! operation nodes into finer-grained block nodes during coarsening (§5.1).
//! To make that lowering possible the UDF is data, not an opaque closure: a
//! short SSA sequence of primitive tensor statements.

use ft_simd::EpiOp;
use ft_tensor::{Shape, Tensor};

use crate::program::CoreError;
use crate::Result;

/// An operand of a UDF statement: a nest input leaf or the result of an
/// earlier statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// The `k`-th input leaf of the surrounding nest (in `reads` order).
    In(usize),
    /// The result of statement `k` of this UDF.
    Tmp(usize),
}

/// Primitive tensor operations available inside a UDF.
///
/// `*ColBc` variants broadcast a `[m, 1]` right-hand side across the columns
/// of a `[m, n]` left-hand side (needed by the online-softmax recurrence).
#[derive(Debug, Clone, PartialEq)]
pub enum OpCode {
    /// Matrix product `a @ b`.
    MatMul,
    /// Matrix product with transposed rhs: `a @ b.T`.
    MatMulT,
    /// Elementwise addition.
    Add,
    /// Elementwise subtraction.
    Sub,
    /// Elementwise product.
    Mul,
    /// Elementwise division.
    Div,
    /// Elementwise maximum.
    Max,
    /// `a + b` with `b: [m, 1]` broadcast across columns.
    AddColBc,
    /// `a - b` with `b: [m, 1]` broadcast across columns.
    SubColBc,
    /// `a * b` with `b: [m, 1]` broadcast across columns.
    MulColBc,
    /// `a / b` with `b: [m, 1]` broadcast across columns.
    DivColBc,
    /// Multiply by a scalar constant.
    Scale(f32),
    /// Add a scalar constant.
    AddScalar(f32),
    /// Elementwise `tanh`.
    Tanh,
    /// Elementwise logistic sigmoid.
    Sigmoid,
    /// Elementwise `exp`.
    Exp,
    /// Elementwise negation.
    Neg,
    /// Elementwise ReLU.
    Relu,
    /// Row-wise maximum: `[m, n] -> [m, 1]`.
    RowMax,
    /// Row-wise sum: `[m, n] -> [m, 1]`.
    RowSum,
    /// Row-wise softmax.
    Softmax,
    /// Concatenation along an axis (variadic).
    Concat(usize),
    /// Slice `start..end` of one axis.
    Slice {
        /// Axis to slice.
        axis: usize,
        /// Range start.
        start: usize,
        /// Range end (exclusive).
        end: usize,
    },
    /// 2-D transpose.
    Transpose,
    /// Identity / copy.
    Id,
    /// Elementwise SiLU `x * sigmoid(x)` — the peephole form of
    /// `Mul(x, Sigmoid(x))` the fusion pass produces.
    Silu,
    /// Matrix product with a fused elementwise epilogue applied while the
    /// output tile is hot in registers. Operands: `a`, `b`, then one extra
    /// `[m, n]` operand per binary [`EpiOp`], in epilogue order. Bitwise
    /// identical to running the unfused sequence in the same SIMD mode.
    FusedMatMul {
        /// Whether the rhs is stored transposed (`a @ b.T`, `b: [n, k]`).
        transb: bool,
        /// Epilogue micro-ops, applied in order.
        epi: Vec<EpiOp>,
    },
    /// A collapsed elementwise chain applied to the first operand, with
    /// one extra equally-shaped operand per binary [`EpiOp`]. Bitwise
    /// identical to materializing every intermediate in the same mode.
    EwChain(Vec<EpiOp>),
}

impl OpCode {
    /// True for the compute-intensive operations that anchor kernel fusion
    /// (§2: "a compiler needs to precisely identify both memory-intensive
    /// and computation-intensive operations and jointly fuse [them]").
    pub fn is_compute_intensive(&self) -> bool {
        matches!(
            self,
            OpCode::MatMul | OpCode::MatMulT | OpCode::FusedMatMul { .. }
        )
    }

    /// Number of operands this opcode expects (`None` = variadic).
    pub fn arity(&self) -> Option<usize> {
        match self {
            OpCode::MatMul
            | OpCode::MatMulT
            | OpCode::Add
            | OpCode::Sub
            | OpCode::Mul
            | OpCode::Div
            | OpCode::Max
            | OpCode::AddColBc
            | OpCode::SubColBc
            | OpCode::MulColBc
            | OpCode::DivColBc => Some(2),
            OpCode::Concat(_) => None,
            OpCode::FusedMatMul { epi, .. } => Some(2 + ft_simd::operand_count(epi)),
            OpCode::EwChain(ops) => Some(1 + ft_simd::operand_count(ops)),
            _ => Some(1),
        }
    }
}

/// One SSA statement: `tmp_i = op(args...)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// The operation.
    pub op: OpCode,
    /// Its operands.
    pub args: Vec<Operand>,
}

/// A user-defined math function: an SSA sequence plus designated outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct Udf {
    /// Human-readable name (shown in emitted kernels).
    pub name: String,
    /// The SSA statements, in order.
    pub stmts: Vec<Stmt>,
    /// Which operands constitute the function's outputs, in order of the
    /// nest's `writes`.
    pub outputs: Vec<Operand>,
    /// Number of input leaves the UDF expects.
    pub num_inputs: usize,
}

impl Udf {
    /// Validates SSA well-formedness: every operand refers to an input or a
    /// *previous* statement, and arities match.
    pub fn validate(&self) -> Result<()> {
        let check = |o: &Operand, at: usize| -> Result<()> {
            match o {
                Operand::In(k) if *k >= self.num_inputs => Err(CoreError::Udf(format!(
                    "statement {at}: input {k} out of {}",
                    self.num_inputs
                ))),
                Operand::Tmp(k) if *k >= at => Err(CoreError::Udf(format!(
                    "statement {at}: forward reference to tmp {k}"
                ))),
                _ => Ok(()),
            }
        };
        for (i, s) in self.stmts.iter().enumerate() {
            if let Some(n) = s.op.arity() {
                if s.args.len() != n {
                    return Err(CoreError::Udf(format!(
                        "statement {i}: {:?} expects {n} args, got {}",
                        s.op,
                        s.args.len()
                    )));
                }
            } else if s.args.is_empty() {
                return Err(CoreError::Udf(format!(
                    "statement {i}: variadic op with no args"
                )));
            }
            for a in &s.args {
                check(a, i)?;
            }
        }
        for o in &self.outputs {
            check(o, self.stmts.len())?;
        }
        if self.outputs.is_empty() {
            return Err(CoreError::Udf("UDF has no outputs".into()));
        }
        Ok(())
    }

    /// Evaluates the UDF on concrete input leaves.
    pub fn eval(&self, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        if inputs.len() != self.num_inputs {
            return Err(CoreError::Udf(format!(
                "{}: expected {} inputs, got {}",
                self.name,
                self.num_inputs,
                inputs.len()
            )));
        }
        let mut tmps: Vec<Tensor> = Vec::with_capacity(self.stmts.len());
        let fetch = |o: &Operand, tmps: &[Tensor]| -> Tensor {
            match o {
                Operand::In(k) => inputs[*k].clone(),
                Operand::Tmp(k) => tmps[*k].clone(),
            }
        };
        for s in &self.stmts {
            let args: Vec<Tensor> = s.args.iter().map(|o| fetch(o, &tmps)).collect();
            tmps.push(eval_op(&s.op, &args)?);
        }
        Ok(self.outputs.iter().map(|o| fetch(o, &tmps)).collect())
    }

    /// Infers the result shapes of every statement (and the outputs) from
    /// the input leaf shapes. Used by the ETDG parser, the lowering pass,
    /// and the simulator's cost model.
    pub fn infer_shapes(&self, input_shapes: &[Shape]) -> Result<UdfShapes> {
        if input_shapes.len() != self.num_inputs {
            return Err(CoreError::Udf(format!(
                "{}: expected {} input shapes, got {}",
                self.name,
                self.num_inputs,
                input_shapes.len()
            )));
        }
        let mut tmp_shapes: Vec<Shape> = Vec::with_capacity(self.stmts.len());
        let fetch = |o: &Operand, tmps: &[Shape]| -> Shape {
            match o {
                Operand::In(k) => input_shapes[*k].clone(),
                Operand::Tmp(k) => tmps[*k].clone(),
            }
        };
        for (i, s) in self.stmts.iter().enumerate() {
            let args: Vec<Shape> = s.args.iter().map(|o| fetch(o, &tmp_shapes)).collect();
            let shape = infer_op_shape(&s.op, &args)
                .map_err(|e| CoreError::Udf(format!("{} stmt {i}: {e}", self.name)))?;
            tmp_shapes.push(shape);
        }
        let outputs = self.outputs.iter().map(|o| fetch(o, &tmp_shapes)).collect();
        Ok(UdfShapes {
            stmts: tmp_shapes,
            outputs,
        })
    }

    /// Total floating-point operations of one UDF invocation given input
    /// shapes — the compute side of the simulator's roofline model.
    pub fn flops(&self, input_shapes: &[Shape]) -> Result<u64> {
        let shapes = self.infer_shapes(input_shapes)?;
        let mut total = 0u64;
        let operand_shape = |o: &Operand| -> Shape {
            match o {
                Operand::In(k) => input_shapes[*k].clone(),
                Operand::Tmp(k) => shapes.stmts[*k].clone(),
            }
        };
        for s in &self.stmts {
            total += match &s.op {
                OpCode::MatMul => {
                    let a = operand_shape(&s.args[0]);
                    let b = operand_shape(&s.args[1]);
                    2 * a.dims()[0] as u64 * a.dims()[1] as u64 * b.dims()[1] as u64
                }
                OpCode::MatMulT => {
                    let a = operand_shape(&s.args[0]);
                    let b = operand_shape(&s.args[1]);
                    2 * a.dims()[0] as u64 * a.dims()[1] as u64 * b.dims()[0] as u64
                }
                OpCode::Softmax => {
                    let a = operand_shape(&s.args[0]);
                    4 * a.numel() as u64
                }
                OpCode::FusedMatMul { transb, epi } => {
                    let a = operand_shape(&s.args[0]);
                    let b = operand_shape(&s.args[1]);
                    let (m, k) = (a.dims()[0] as u64, a.dims()[1] as u64);
                    let n = if *transb { b.dims()[0] } else { b.dims()[1] } as u64;
                    let epi_flops: u64 = epi.iter().map(|o| o.flops()).sum();
                    2 * m * k * n + epi_flops * m * n
                }
                OpCode::EwChain(ops) => {
                    let a = operand_shape(&s.args[0]);
                    let per: u64 = ops.iter().map(|o| o.flops()).sum();
                    per * a.numel() as u64
                }
                op => {
                    let a = operand_shape(&s.args[0]);
                    match op {
                        OpCode::Id | OpCode::Slice { .. } | OpCode::Transpose => 0,
                        OpCode::Concat(_) => 0,
                        _ => a.numel() as u64,
                    }
                }
            };
        }
        Ok(total)
    }
}

/// Shapes inferred for a UDF: one per statement, plus the output shapes.
#[derive(Debug, Clone)]
pub struct UdfShapes {
    /// Result shape of each SSA statement.
    pub stmts: Vec<Shape>,
    /// Shapes of the declared outputs.
    pub outputs: Vec<Shape>,
}

fn terr(e: ft_tensor::TensorError) -> CoreError {
    CoreError::Udf(e.to_string())
}

fn eval_op(op: &OpCode, args: &[Tensor]) -> Result<Tensor> {
    let a = &args[0];
    Ok(match op {
        OpCode::MatMul => a.matmul(&args[1]).map_err(terr)?,
        OpCode::MatMulT => a.matmul_transb(&args[1]).map_err(terr)?,
        OpCode::Add => a.add(&args[1]).map_err(terr)?,
        OpCode::Sub => a.sub(&args[1]).map_err(terr)?,
        OpCode::Mul => a.mul(&args[1]).map_err(terr)?,
        OpCode::Div => a.div(&args[1]).map_err(terr)?,
        OpCode::Max => a.maximum(&args[1]).map_err(terr)?,
        OpCode::AddColBc => col_broadcast(a, &args[1], |x, y| x + y)?,
        OpCode::SubColBc => col_broadcast(a, &args[1], |x, y| x - y)?,
        OpCode::MulColBc => col_broadcast(a, &args[1], |x, y| x * y)?,
        OpCode::DivColBc => col_broadcast(a, &args[1], |x, y| x / y)?,
        OpCode::Scale(s) => a.mul_scalar(*s),
        OpCode::AddScalar(s) => a.add_scalar(*s),
        OpCode::Tanh => a.tanh(),
        OpCode::Sigmoid => a.sigmoid(),
        OpCode::Exp => a.exp(),
        OpCode::Neg => a.neg(),
        OpCode::Relu => a.relu(),
        OpCode::RowMax => row_reduce(a, f32::NEG_INFINITY, f32::max)?,
        OpCode::RowSum => row_reduce(a, 0.0, |x, y| x + y)?,
        OpCode::Softmax => a.softmax_rows().map_err(terr)?,
        OpCode::Concat(axis) => Tensor::concat(args, *axis).map_err(terr)?,
        OpCode::Slice { axis, start, end } => {
            a.slice(*axis, *start, *end).map_err(terr)?.to_contiguous()
        }
        OpCode::Transpose => a.t().map_err(terr)?.to_contiguous(),
        OpCode::Id => a.clone(),
        OpCode::Silu => a.silu(),
        OpCode::FusedMatMul { transb, epi } => {
            let base = if *transb {
                a.matmul_transb(&args[1]).map_err(terr)?
            } else {
                a.matmul(&args[1]).map_err(terr)?
            };
            apply_epi_tensor(&base, epi, &args[2..])?
        }
        OpCode::EwChain(ops) => apply_epi_tensor(a, ops, &args[1..])?,
    })
}

/// Runs an [`EpiOp`] chain on a materialized tensor — the interpreter-side
/// counterpart of the fused executor kernels. Same mode, same kernels, so
/// the result is bitwise identical to the epilogue applied in the GEMM
/// register tile (the fusion legality contract, see `ft_simd`).
fn apply_epi_tensor(base: &Tensor, ops: &[EpiOp], extra_args: &[Tensor]) -> Result<Tensor> {
    if ft_simd::operand_count(ops) != extra_args.len() {
        return Err(CoreError::Udf(format!(
            "epilogue expects {} extra operand(s), got {}",
            ft_simd::operand_count(ops),
            extra_args.len()
        )));
    }
    for e in extra_args {
        if e.dims() != base.dims() {
            return Err(CoreError::Udf(format!(
                "epilogue operand shape {:?} != result shape {:?}",
                e.dims(),
                base.dims()
            )));
        }
    }
    let mut data = base.to_vec();
    let extras: Vec<Vec<f32>> = extra_args.iter().map(|t| t.to_vec()).collect();
    let views: Vec<&[f32]> = extras.iter().map(|v| v.as_slice()).collect();
    ft_simd::apply_epi(ft_simd::mode(), &mut data, ops, &views);
    Tensor::from_vec(data, base.dims()).map_err(terr)
}

fn col_broadcast(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
    if a.rank() != 2 || b.rank() != 2 || b.dims()[1] != 1 || b.dims()[0] != a.dims()[0] {
        return Err(CoreError::Udf(format!(
            "column broadcast needs [m,n] and [m,1], got {:?} and {:?}",
            a.dims(),
            b.dims()
        )));
    }
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        let bv = b.get(&[i, 0]).map_err(terr)?;
        for j in 0..n {
            out.set(&[i, j], f(a.get(&[i, j]).map_err(terr)?, bv))
                .map_err(terr)?;
        }
    }
    Ok(out)
}

fn row_reduce(a: &Tensor, init: f32, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
    if a.rank() != 2 {
        return Err(CoreError::Udf(format!(
            "row reduction needs rank 2, got {:?}",
            a.dims()
        )));
    }
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let mut out = Tensor::zeros(&[m, 1]);
    for i in 0..m {
        let mut acc = init;
        for j in 0..n {
            acc = f(acc, a.get(&[i, j]).map_err(terr)?);
        }
        out.set(&[i, 0], acc).map_err(terr)?;
    }
    Ok(out)
}

fn infer_op_shape(op: &OpCode, args: &[Shape]) -> std::result::Result<Shape, String> {
    let a = &args[0];
    let d = a.dims();
    Ok(match op {
        OpCode::MatMul => {
            let b = args[1].dims();
            if d.len() != 2 || b.len() != 2 || d[1] != b[0] {
                return Err(format!("matmul {d:?} @ {b:?}"));
            }
            Shape::new(&[d[0], b[1]])
        }
        OpCode::MatMulT => {
            let b = args[1].dims();
            if d.len() != 2 || b.len() != 2 || d[1] != b[1] {
                return Err(format!("matmul_transb {d:?} @ {b:?}"));
            }
            Shape::new(&[d[0], b[0]])
        }
        OpCode::Add | OpCode::Sub | OpCode::Mul | OpCode::Div | OpCode::Max => {
            if args[1].dims() != d {
                return Err(format!("elementwise {d:?} vs {:?}", args[1].dims()));
            }
            a.clone()
        }
        OpCode::AddColBc | OpCode::SubColBc | OpCode::MulColBc | OpCode::DivColBc => {
            let b = args[1].dims();
            if d.len() != 2 || b != [d[0], 1] {
                return Err(format!("column broadcast {d:?} vs {b:?}"));
            }
            a.clone()
        }
        OpCode::RowMax | OpCode::RowSum => {
            if d.len() != 2 {
                return Err(format!("row reduce on {d:?}"));
            }
            Shape::new(&[d[0], 1])
        }
        OpCode::Softmax => {
            if d.len() != 2 {
                return Err(format!("softmax on {d:?}"));
            }
            a.clone()
        }
        OpCode::Concat(axis) => {
            if *axis >= d.len() {
                return Err(format!("concat axis {axis} on {d:?}"));
            }
            let mut out = d.to_vec();
            out[*axis] = args.iter().map(|s| s.dims()[*axis]).sum();
            for s in args {
                for (ax, (&x, &y)) in s.dims().iter().zip(d.iter()).enumerate() {
                    if ax != *axis && x != y {
                        return Err(format!("concat mismatch {d:?} vs {:?}", s.dims()));
                    }
                }
            }
            Shape::new(&out)
        }
        OpCode::Slice { axis, start, end } => {
            if *axis >= d.len() || start >= end || *end > d[*axis] {
                return Err(format!("slice {start}..{end} axis {axis} on {d:?}"));
            }
            let mut out = d.to_vec();
            out[*axis] = end - start;
            Shape::new(&out)
        }
        OpCode::Transpose => {
            if d.len() != 2 {
                return Err(format!("transpose on {d:?}"));
            }
            Shape::new(&[d[1], d[0]])
        }
        OpCode::FusedMatMul { transb, epi } => {
            let b = args[1].dims();
            let out = if *transb {
                if d.len() != 2 || b.len() != 2 || d[1] != b[1] {
                    return Err(format!("fused matmul_transb {d:?} @ {b:?}"));
                }
                [d[0], b[0]]
            } else {
                if d.len() != 2 || b.len() != 2 || d[1] != b[0] {
                    return Err(format!("fused matmul {d:?} @ {b:?}"));
                }
                [d[0], b[1]]
            };
            if args.len() != 2 + ft_simd::operand_count(epi) {
                return Err(format!(
                    "fused matmul epilogue expects {} extra operand(s), got {}",
                    ft_simd::operand_count(epi),
                    args.len() - 2
                ));
            }
            for e in &args[2..] {
                if e.dims() != out {
                    return Err(format!("epilogue operand {:?} != result {out:?}", e.dims()));
                }
            }
            Shape::new(&out)
        }
        OpCode::EwChain(ops) => {
            if args.len() != 1 + ft_simd::operand_count(ops) {
                return Err(format!(
                    "elementwise chain expects {} extra operand(s), got {}",
                    ft_simd::operand_count(ops),
                    args.len() - 1
                ));
            }
            for e in &args[1..] {
                if e.dims() != d {
                    return Err(format!("chain operand {:?} != input {d:?}", e.dims()));
                }
            }
            a.clone()
        }
        _ => a.clone(),
    })
}

/// Fluent builder for [`Udf`]s.
///
/// # Examples
///
/// ```
/// use ft_core::expr::UdfBuilder;
///
/// // The running example's cell: y = x @ w + s (Listing 1, line 12).
/// let mut b = UdfBuilder::new("rnn_cell", 3);
/// let (x, w, s) = (b.input(0), b.input(1), b.input(2));
/// let xw = b.matmul(x, w);
/// let y = b.add(xw, s);
/// let udf = b.build(&[y]);
/// assert!(udf.validate().is_ok());
/// ```
#[derive(Debug)]
pub struct UdfBuilder {
    name: String,
    num_inputs: usize,
    stmts: Vec<Stmt>,
}

impl UdfBuilder {
    /// Starts a UDF taking `num_inputs` leaves.
    pub fn new(name: &str, num_inputs: usize) -> Self {
        UdfBuilder {
            name: name.to_string(),
            num_inputs,
            stmts: Vec::new(),
        }
    }

    /// The `k`-th input operand.
    pub fn input(&self, k: usize) -> Operand {
        Operand::In(k)
    }

    fn push(&mut self, op: OpCode, args: Vec<Operand>) -> Operand {
        self.stmts.push(Stmt { op, args });
        Operand::Tmp(self.stmts.len() - 1)
    }

    /// `a @ b`.
    pub fn matmul(&mut self, a: Operand, b: Operand) -> Operand {
        self.push(OpCode::MatMul, vec![a, b])
    }

    /// `a @ b.T`.
    pub fn matmul_t(&mut self, a: Operand, b: Operand) -> Operand {
        self.push(OpCode::MatMulT, vec![a, b])
    }

    /// `a + b`.
    pub fn add(&mut self, a: Operand, b: Operand) -> Operand {
        self.push(OpCode::Add, vec![a, b])
    }

    /// `a - b`.
    pub fn sub(&mut self, a: Operand, b: Operand) -> Operand {
        self.push(OpCode::Sub, vec![a, b])
    }

    /// `a * b` (elementwise).
    pub fn mul(&mut self, a: Operand, b: Operand) -> Operand {
        self.push(OpCode::Mul, vec![a, b])
    }

    /// `a / b` (elementwise).
    pub fn div(&mut self, a: Operand, b: Operand) -> Operand {
        self.push(OpCode::Div, vec![a, b])
    }

    /// Elementwise max.
    pub fn max(&mut self, a: Operand, b: Operand) -> Operand {
        self.push(OpCode::Max, vec![a, b])
    }

    /// `a + b` with `[m,1]` column broadcast.
    pub fn add_col_bc(&mut self, a: Operand, b: Operand) -> Operand {
        self.push(OpCode::AddColBc, vec![a, b])
    }

    /// `a - b` with `[m,1]` column broadcast.
    pub fn sub_col_bc(&mut self, a: Operand, b: Operand) -> Operand {
        self.push(OpCode::SubColBc, vec![a, b])
    }

    /// `a * b` with `[m,1]` column broadcast.
    pub fn mul_col_bc(&mut self, a: Operand, b: Operand) -> Operand {
        self.push(OpCode::MulColBc, vec![a, b])
    }

    /// `a / b` with `[m,1]` column broadcast.
    pub fn div_col_bc(&mut self, a: Operand, b: Operand) -> Operand {
        self.push(OpCode::DivColBc, vec![a, b])
    }

    /// Scale by a constant.
    pub fn scale(&mut self, a: Operand, s: f32) -> Operand {
        self.push(OpCode::Scale(s), vec![a])
    }

    /// `tanh`.
    pub fn tanh(&mut self, a: Operand) -> Operand {
        self.push(OpCode::Tanh, vec![a])
    }

    /// Sigmoid.
    pub fn sigmoid(&mut self, a: Operand) -> Operand {
        self.push(OpCode::Sigmoid, vec![a])
    }

    /// SiLU (`x * sigmoid(x)`).
    pub fn silu(&mut self, a: Operand) -> Operand {
        self.push(OpCode::Silu, vec![a])
    }

    /// `exp`.
    pub fn exp(&mut self, a: Operand) -> Operand {
        self.push(OpCode::Exp, vec![a])
    }

    /// ReLU.
    pub fn relu(&mut self, a: Operand) -> Operand {
        self.push(OpCode::Relu, vec![a])
    }

    /// Row-wise max (`[m,n] -> [m,1]`).
    pub fn row_max(&mut self, a: Operand) -> Operand {
        self.push(OpCode::RowMax, vec![a])
    }

    /// Row-wise sum (`[m,n] -> [m,1]`).
    pub fn row_sum(&mut self, a: Operand) -> Operand {
        self.push(OpCode::RowSum, vec![a])
    }

    /// Row-wise softmax.
    pub fn softmax(&mut self, a: Operand) -> Operand {
        self.push(OpCode::Softmax, vec![a])
    }

    /// Concatenate along `axis`.
    pub fn concat(&mut self, args: Vec<Operand>, axis: usize) -> Operand {
        self.push(OpCode::Concat(axis), args)
    }

    /// Slice `start..end` of `axis`.
    pub fn slice(&mut self, a: Operand, axis: usize, start: usize, end: usize) -> Operand {
        self.push(OpCode::Slice { axis, start, end }, vec![a])
    }

    /// 2-D transpose.
    pub fn transpose(&mut self, a: Operand) -> Operand {
        self.push(OpCode::Transpose, vec![a])
    }

    /// Identity (marks an input as a pass-through output).
    pub fn id(&mut self, a: Operand) -> Operand {
        self.push(OpCode::Id, vec![a])
    }

    /// Finishes, designating outputs.
    pub fn build(self, outputs: &[Operand]) -> Udf {
        Udf {
            name: self.name,
            stmts: self.stmts,
            outputs: outputs.to_vec(),
            num_inputs: self.num_inputs,
        }
    }
}

/// Type alias kept for API symmetry with the paper's terminology.
pub type Expr = Stmt;

#[cfg(test)]
mod tests {
    use super::*;
    use ft_tensor::assert_allclose;

    fn rnn_cell() -> Udf {
        let mut b = UdfBuilder::new("rnn_cell", 3);
        let (x, w, s) = (b.input(0), b.input(1), b.input(2));
        let xw = b.matmul(x, w);
        let y = b.add(xw, s);
        b.build(&[y])
    }

    #[test]
    fn validate_accepts_wellformed() {
        assert!(rnn_cell().validate().is_ok());
    }

    #[test]
    fn validate_rejects_forward_reference() {
        let udf = Udf {
            name: "bad".into(),
            stmts: vec![Stmt {
                op: OpCode::Tanh,
                args: vec![Operand::Tmp(5)],
            }],
            outputs: vec![Operand::Tmp(0)],
            num_inputs: 1,
        };
        assert!(udf.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_arity() {
        let udf = Udf {
            name: "bad".into(),
            stmts: vec![Stmt {
                op: OpCode::Add,
                args: vec![Operand::In(0)],
            }],
            outputs: vec![Operand::Tmp(0)],
            num_inputs: 1,
        };
        assert!(udf.validate().is_err());
    }

    #[test]
    fn eval_rnn_cell() {
        let udf = rnn_cell();
        let x = Tensor::randn(&[1, 8], 1);
        let w = Tensor::randn(&[8, 8], 2);
        let s = Tensor::randn(&[1, 8], 3);
        let out = udf.eval(&[x.clone(), w.clone(), s.clone()]).unwrap();
        let expected = x.matmul(&w).unwrap().add(&s).unwrap();
        assert_allclose(&out[0], &expected, 1e-5);
    }

    #[test]
    fn shape_inference_matches_eval() {
        let udf = rnn_cell();
        let shapes = udf
            .infer_shapes(&[
                Shape::new(&[1, 8]),
                Shape::new(&[8, 8]),
                Shape::new(&[1, 8]),
            ])
            .unwrap();
        assert_eq!(shapes.outputs[0].dims(), &[1, 8]);
        // Bad shapes are rejected.
        assert!(udf
            .infer_shapes(&[
                Shape::new(&[1, 8]),
                Shape::new(&[9, 8]),
                Shape::new(&[1, 8]),
            ])
            .is_err());
    }

    #[test]
    fn flops_of_rnn_cell() {
        let udf = rnn_cell();
        let f = udf
            .flops(&[
                Shape::new(&[1, 8]),
                Shape::new(&[8, 8]),
                Shape::new(&[1, 8]),
            ])
            .unwrap();
        // 2*1*8*8 for the matmul + 8 for the add.
        assert_eq!(f, 128 + 8);
    }

    #[test]
    fn col_broadcast_ops() {
        let mut b = UdfBuilder::new("sub_bc", 2);
        let (a, m) = (b.input(0), b.input(1));
        let r = b.sub_col_bc(a, m);
        let udf = b.build(&[r]);
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let m = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]).unwrap();
        let out = udf.eval(&[a, m]).unwrap();
        assert_eq!(out[0].to_vec(), vec![0.0, 1.0, 1.0, 2.0]);
    }

    #[test]
    fn row_reductions_and_softmax() {
        let mut b = UdfBuilder::new("soft", 1);
        let x = b.input(0);
        let mx = b.row_max(x);
        let sh = b.sub_col_bc(x, mx);
        let ex = b.exp(sh);
        let sm = b.row_sum(ex);
        let out = b.div_col_bc(ex, sm);
        let udf = b.build(&[out]);
        let x = Tensor::randn(&[3, 7], 4);
        let got = udf.eval(std::slice::from_ref(&x)).unwrap();
        assert_allclose(&got[0], &x.softmax_rows().unwrap(), 1e-5);
    }

    #[test]
    fn concat_and_slice() {
        let mut b = UdfBuilder::new("cs", 2);
        let (x, y) = (b.input(0), b.input(1));
        let c = b.concat(vec![x, y], 1);
        let s = b.slice(c, 1, 1, 3);
        let udf = b.build(&[s]);
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let y = Tensor::from_vec(vec![3.0, 4.0], &[1, 2]).unwrap();
        let out = udf.eval(&[x, y]).unwrap();
        assert_eq!(out[0].to_vec(), vec![2.0, 3.0]);
    }

    #[test]
    fn lstm_cell_gates_shape() {
        // LSTM cell: 4 gates from x@w + h@u + b, then c/h updates — the
        // Listing 2 cell body.
        let mut b = UdfBuilder::new("lstm_cell", 5);
        let (x, w, u, bias, h) = (b.input(0), b.input(1), b.input(2), b.input(3), b.input(4));
        let xw = b.matmul(x, w);
        let hu = b.matmul(h, u);
        let s = b.add(xw, hu);
        let g = b.add(s, bias);
        let udf = b.build(&[g]);
        let shapes = udf
            .infer_shapes(&[
                Shape::new(&[1, 16]),
                Shape::new(&[16, 64]),
                Shape::new(&[16, 64]),
                Shape::new(&[1, 64]),
                Shape::new(&[1, 16]),
            ])
            .unwrap();
        assert_eq!(shapes.outputs[0].dims(), &[1, 64]);
    }
}
