//! # ft-core
//!
//! The FractalTensor programming model (SOSP 2024, §4): the paper's primary
//! contribution surface.
//!
//! Two complementary layers live here:
//!
//! 1. **The eager ADT** ([`FractalTensor`]) — a nested list whose elements
//!    are static-shape tensors or further FractalTensors, together with the
//!    paper's second-order array compute operators (`map`, `reduce`,
//!    `foldl/r`, `scanl/r`, Table 1) and first-order array access operators
//!    (`slide window`, `stride`, `reverse`, `gather`). These execute
//!    immediately and define the *reference semantics* every compiled
//!    schedule is tested against.
//!
//! 2. **The staged program IR** ([`Program`], [`Nest`]) — the abstract
//!    syntax of Appendix A, in which a DNN is a sequence of perfect compute-
//!    operator nests reading and writing declared FractalTensor buffers
//!    through affine [`AccessSpec`]s, with user-defined math functions
//!    ([`Expr`] / [`Udf`]) at the leaves. The ETDG parser (`ft-etdg`)
//!    consumes this IR; [`interp::run_program`] is its naive lexicographic
//!    interpreter, used as a second oracle.
//!
//! A key representation choice mirrors the paper's ETDG closely: aggregate
//! operators (`scan`/`fold`/`reduce`) are *not* modeled with hidden carried
//! state. Instead, a nest reads its **own output buffer at a negative
//! offset** along the scanned dimension, with a declared [`CarriedInit`]
//! saying what the first iteration reads instead. The parser then splits
//! the iteration domain into boundary/interior regions — exactly how the
//! paper turns the "first step differs" conditionals of nested scans into
//! separate data-parallel block nodes (§6.3: a stacked LSTM parses into 4
//! block nodes, a stacked grid RNN into 8).

#![forbid(unsafe_code)]

pub mod access;
pub mod adt;
pub mod builders;
pub mod expr;
pub mod interp;
pub mod poly;
pub mod program;
pub mod sig;

pub use access::{AccessSpec, AxisExpr};
pub use adt::FractalTensor;
pub use expr::{Expr, Udf};
pub use poly::{analyze_outer, with_outer_extent, OuterInfo};
pub use program::{
    BufferDecl, BufferId, BufferKind, CarriedInit, CoreError, Nest, OpKind, Program, Read, Write,
};
pub use sig::{poly_split, program_signature, structural_bytes, PolySplit, ProgramSig, StructKey};

/// Convenience alias.
pub type Result<T> = std::result::Result<T, CoreError>;
