//! A naive lexicographic interpreter for [`Program`]s.
//!
//! This executes each nest exactly as written — no coarsening, no
//! reordering — one iteration point at a time, in the order dictated by the
//! operator vector (left operators ascend, right operators descend). It is
//! the semantic oracle: the compiled wavefront schedules produced by
//! `ft-passes`/`ft-backend` must compute bit-identical buffer contents.

use std::collections::HashMap;

use ft_tensor::{Shape, Tensor};

use crate::adt::FractalTensor;
use crate::program::{BufferId, BufferKind, CarriedInit, CoreError, Program};
use crate::Result;

/// Dense storage for one buffer: every programmable index holds an optional
/// leaf (present once written). The `Option` enforces—and checks—the
/// single-assignment property at runtime.
#[derive(Debug, Clone)]
pub struct BufferStore {
    dims: Vec<usize>,
    leaf_shape: Shape,
    elems: Vec<Option<Tensor>>,
}

impl BufferStore {
    /// Empty storage for the given programmable dims and leaf shape.
    pub fn new(dims: &[usize], leaf_shape: Shape) -> Self {
        let n: usize = dims.iter().product();
        BufferStore {
            dims: dims.to_vec(),
            leaf_shape,
            elems: vec![None; n],
        }
    }

    /// Storage pre-filled from a FractalTensor (for inputs).
    pub fn from_fractal(ft: &FractalTensor) -> Result<Self> {
        let dims = ft.prog_dims();
        let mut store = BufferStore::new(&dims, ft.leaf_shape());
        let mut idx = vec![0usize; dims.len()];
        loop {
            let leaf = ft.leaf_at(&idx)?;
            let flat = store.flatten(&idx.iter().map(|&i| i as i64).collect::<Vec<_>>())?;
            store.elems[flat] = Some(leaf.clone());
            // Odometer.
            let mut k = dims.len();
            loop {
                if k == 0 {
                    return Ok(store);
                }
                k -= 1;
                idx[k] += 1;
                if idx[k] < dims[k] {
                    break;
                }
                idx[k] = 0;
            }
        }
    }

    /// The programmable dims.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The leaf shape.
    pub fn leaf_shape(&self) -> &Shape {
        &self.leaf_shape
    }

    /// True when the (possibly negative) index is inside the extents.
    pub fn in_range(&self, idx: &[i64]) -> bool {
        idx.len() == self.dims.len()
            && idx
                .iter()
                .zip(self.dims.iter())
                .all(|(&i, &d)| i >= 0 && (i as usize) < d)
    }

    fn flatten(&self, idx: &[i64]) -> Result<usize> {
        if !self.in_range(idx) {
            return Err(CoreError::Interp(format!(
                "index {idx:?} out of extents {:?}",
                self.dims
            )));
        }
        let mut flat = 0usize;
        for (&i, &d) in idx.iter().zip(self.dims.iter()) {
            flat = flat * d + i as usize;
        }
        Ok(flat)
    }

    /// Reads a leaf; errors if out of range or not yet written.
    pub fn get(&self, idx: &[i64]) -> Result<&Tensor> {
        let flat = self.flatten(idx)?;
        self.elems[flat]
            .as_ref()
            .ok_or_else(|| CoreError::Interp(format!("read of unwritten element {idx:?}")))
    }

    /// Writes a leaf; errors on double write (single-assignment violation).
    pub fn set(&mut self, idx: &[i64], value: Tensor) -> Result<()> {
        let flat = self.flatten(idx)?;
        if self.elems[flat].is_some() {
            return Err(CoreError::Interp(format!(
                "single-assignment violation at {idx:?}"
            )));
        }
        self.elems[flat] = Some(value);
        Ok(())
    }

    /// Converts to a FractalTensor (errors if any element is unwritten).
    pub fn to_fractal(&self) -> Result<FractalTensor> {
        self.build_fractal(0, &mut vec![0i64; self.dims.len()])
    }

    fn build_fractal(&self, depth: usize, idx: &mut Vec<i64>) -> Result<FractalTensor> {
        let extent = self.dims[depth];
        if depth + 1 == self.dims.len() {
            let mut leaves = Vec::with_capacity(extent);
            for i in 0..extent {
                idx[depth] = i as i64;
                leaves.push(self.get(idx)?.clone());
            }
            idx[depth] = 0;
            FractalTensor::from_tensors(leaves)
        } else {
            let mut subs = Vec::with_capacity(extent);
            for i in 0..extent {
                idx[depth] = i as i64;
                subs.push(self.build_fractal(depth + 1, idx)?);
            }
            idx[depth] = 0;
            FractalTensor::nested(subs)
        }
    }
}

/// Executes a program on the given inputs, returning every `Output` buffer.
///
/// Inputs must be provided for every `Input` buffer and match its declared
/// dims/leaf shape.
pub fn run_program(
    program: &Program,
    inputs: &HashMap<BufferId, FractalTensor>,
) -> Result<HashMap<BufferId, FractalTensor>> {
    program.validate()?;
    let mut stores: Vec<BufferStore> = Vec::with_capacity(program.buffers.len());
    for (bi, decl) in program.buffers.iter().enumerate() {
        let id = BufferId(bi);
        match decl.kind {
            BufferKind::Input => {
                let ft = inputs
                    .get(&id)
                    .ok_or_else(|| CoreError::Interp(format!("missing input '{}'", decl.name)))?;
                if ft.prog_dims() != decl.dims {
                    return Err(CoreError::Interp(format!(
                        "input '{}' dims {:?} != declared {:?}",
                        decl.name,
                        ft.prog_dims(),
                        decl.dims
                    )));
                }
                if ft.leaf_shape() != decl.leaf_shape {
                    return Err(CoreError::Interp(format!(
                        "input '{}' leaf shape mismatch",
                        decl.name
                    )));
                }
                stores.push(BufferStore::from_fractal(ft)?);
            }
            _ => stores.push(BufferStore::new(&decl.dims, decl.leaf_shape.clone())),
        }
    }

    for nest in &program.nests {
        run_nest(program, nest, &mut stores)?;
    }

    let mut outputs = HashMap::new();
    for (bi, decl) in program.buffers.iter().enumerate() {
        if decl.kind == BufferKind::Output {
            outputs.insert(BufferId(bi), stores[bi].to_fractal()?);
        }
    }
    Ok(outputs)
}

fn run_nest(
    program: &Program,
    nest: &crate::program::Nest,
    stores: &mut [BufferStore],
) -> Result<()> {
    let d = nest.depth();
    let extents = &nest.extents;
    if nest.points() == 0 {
        return Ok(());
    }
    // Iteration state: each dim ascends for left ops, descends for right.
    let reversed: Vec<bool> = nest.ops.iter().map(|o| o.is_reversed()).collect();
    let mut t: Vec<i64> = (0..d)
        .map(|i| {
            if reversed[i] {
                extents[i] as i64 - 1
            } else {
                0
            }
        })
        .collect();
    loop {
        step_point(program, nest, stores, &t)?;
        // Odometer over the mixed-direction domain (innermost fastest).
        let mut k = d;
        let mut done = false;
        loop {
            if k == 0 {
                done = true;
                break;
            }
            k -= 1;
            if reversed[k] {
                t[k] -= 1;
                if t[k] >= 0 {
                    break;
                }
                t[k] = extents[k] as i64 - 1;
            } else {
                t[k] += 1;
                if (t[k] as usize) < extents[k] {
                    break;
                }
                t[k] = 0;
            }
        }
        if done {
            return Ok(());
        }
    }
}

fn step_point(
    program: &Program,
    nest: &crate::program::Nest,
    stores: &mut [BufferStore],
    t: &[i64],
) -> Result<()> {
    let mut leaves: Vec<Tensor> = Vec::with_capacity(nest.reads.len());
    for read in &nest.reads {
        let idx = read.access.eval(t);
        let store = &stores[read.buffer.0];
        if store.in_range(&idx) {
            leaves.push(store.get(&idx)?.clone());
        } else {
            match &read.init {
                Some(CarriedInit::Zero) => {
                    leaves.push(Tensor::zeros(store.leaf_shape().dims()));
                }
                Some(CarriedInit::Fill(v)) => {
                    leaves.push(Tensor::full(store.leaf_shape().dims(), *v));
                }
                Some(CarriedInit::Buffer(b, spec)) => {
                    let init_idx = spec.eval(t);
                    leaves.push(stores[b.0].get(&init_idx)?.clone());
                }
                None => {
                    return Err(CoreError::Interp(format!(
                        "{}: read of '{}' at {idx:?} out of range with no init",
                        nest.name,
                        program.buffer(read.buffer).name
                    )));
                }
            }
        }
    }
    let results = nest.udf.eval(&leaves)?;
    for (write, value) in nest.writes.iter().zip(results) {
        let idx = write.access.eval(t);
        stores[write.buffer.0].set(&idx, value)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::stacked_rnn_program;
    use ft_tensor::assert_allclose;

    #[test]
    fn buffer_store_single_assignment() {
        let mut s = BufferStore::new(&[2, 2], Shape::new(&[1]));
        s.set(&[0, 1], Tensor::ones(&[1])).unwrap();
        assert!(s.set(&[0, 1], Tensor::zeros(&[1])).is_err());
        assert!(s.get(&[1, 1]).is_err());
        assert!(s.get(&[2, 0]).is_err());
        assert!(!s.in_range(&[-1, 0]));
    }

    #[test]
    fn fractal_round_trip_through_store() {
        let t = Tensor::randn(&[2, 3, 4], 1);
        let ft = FractalTensor::from_flat(&t, 2).unwrap();
        let store = BufferStore::from_fractal(&ft).unwrap();
        let back = store.to_fractal().unwrap();
        assert_eq!(ft, back);
    }

    /// Reference stacked RNN computed directly with the eager ADT, as in
    /// Listing 1.
    fn eager_stacked_rnn(xss: &FractalTensor, ws: &FractalTensor, h: usize) -> FractalTensor {
        xss.map(|xs| {
            // scanl over layers: state is the whole sequence.
            let mut seq = xs.sub()?.clone();
            let mut layers = Vec::new();
            for wi in 0..ws.len() {
                let w = ws.leaf(wi)?;
                let ys = seq.scanl(Tensor::zeros(&[1, h]), |s, x| {
                    x.leaf()?
                        .matmul(w)
                        .and_then(|xw| xw.add(s))
                        .map_err(|e| CoreError::Adt(e.to_string()))
                })?;
                layers.push(ys.clone());
                seq = ys;
            }
            FractalTensor::nested(layers)
        })
        .unwrap()
    }

    #[test]
    fn interpreter_matches_eager_semantics() {
        let (n, d, l, h) = (2, 3, 4, 8);
        let p = stacked_rnn_program(n, d, l, h);
        let xss_flat = Tensor::randn(&[n, l, 1, h], 100);
        let ws_flat = Tensor::randn(&[d, h, h], 200).mul_scalar(0.1);
        let xss = FractalTensor::from_flat(&xss_flat, 2).unwrap();
        let ws = FractalTensor::from_flat(&ws_flat, 1).unwrap();

        let mut inputs = HashMap::new();
        inputs.insert(BufferId(0), xss.clone());
        inputs.insert(BufferId(1), ws.clone());
        let out = run_program(&p, &inputs).unwrap();
        let ysss = out.get(&BufferId(2)).unwrap();

        let expected = eager_stacked_rnn(&xss, &ws, h);
        assert_eq!(ysss.prog_dims(), vec![n, d, l]);
        for ni in 0..n {
            for di in 0..d {
                for li in 0..l {
                    assert_allclose(
                        ysss.leaf_at(&[ni, di, li]).unwrap(),
                        expected.leaf_at(&[ni, di, li]).unwrap(),
                        1e-4,
                    );
                }
            }
        }
    }

    #[test]
    fn missing_input_is_reported() {
        let p = stacked_rnn_program(2, 2, 2, 4);
        let inputs = HashMap::new();
        assert!(run_program(&p, &inputs).is_err());
    }

    #[test]
    fn wrong_input_dims_reported() {
        let p = stacked_rnn_program(2, 2, 2, 4);
        let mut inputs = HashMap::new();
        let bad = FractalTensor::from_flat(&Tensor::randn(&[3, 2, 1, 4], 1), 2).unwrap();
        inputs.insert(BufferId(0), bad);
        inputs.insert(
            BufferId(1),
            FractalTensor::from_flat(&Tensor::randn(&[2, 4, 4], 2), 1).unwrap(),
        );
        assert!(run_program(&p, &inputs).is_err());
    }
}
