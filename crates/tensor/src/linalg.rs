//! Matrix multiplication kernels.

use crate::{Result, Tensor, TensorError};

/// Cache-blocking tile edge for the i/k loops of the GEMM microkernel.
const BLOCK: usize = 64;

impl Tensor {
    /// Matrix product of two rank-2 tensors: `[m, k] @ [k, n] -> [m, n]`.
    ///
    /// Uses a blocked i-k-j loop nest so the reference implementation stays
    /// reasonably fast even at the benchmark shapes (512×512 and up).
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 || rhs.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: if self.rank() != 2 {
                    self.rank()
                } else {
                    rhs.rank()
                },
            });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (rhs.dims()[0], rhs.dims()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
            });
        }
        let a = self.to_contiguous().to_vec();
        let b = rhs.to_contiguous().to_vec();
        let mut c = vec![0.0f32; m * n];
        for i0 in (0..m).step_by(BLOCK) {
            let i1 = (i0 + BLOCK).min(m);
            for k0 in (0..k).step_by(BLOCK) {
                let k1 = (k0 + BLOCK).min(k);
                for i in i0..i1 {
                    let c_row = &mut c[i * n..(i + 1) * n];
                    for kk in k0..k1 {
                        let aik = a[i * k + kk];
                        if aik == 0.0 {
                            continue;
                        }
                        let b_row = &b[kk * n..(kk + 1) * n];
                        for (cv, bv) in c_row.iter_mut().zip(b_row.iter()) {
                            *cv += aik * bv;
                        }
                    }
                }
            }
        }
        Tensor::from_vec(c, &[m, n])
    }

    /// `self @ rhs.T` without materializing the transpose:
    /// `[m, k] @ ([n, k]).T -> [m, n]`.
    pub fn matmul_transb(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 || rhs.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul_transb",
                expected: 2,
                actual: if self.rank() != 2 {
                    self.rank()
                } else {
                    rhs.rank()
                },
            });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (n, k2) = (rhs.dims()[0], rhs.dims()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_transb",
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
            });
        }
        let a = self.to_contiguous().to_vec();
        let b = rhs.to_contiguous().to_vec();
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (av, bv) in a_row.iter().zip(b_row.iter()) {
                    acc += av * bv;
                }
                c[i * n + j] = acc;
            }
        }
        Tensor::from_vec(c, &[m, n])
    }

    /// Inner product of two equal-length rank-1 tensors.
    pub fn dot(&self, rhs: &Tensor) -> Result<f32> {
        if self.rank() != 1 || rhs.rank() != 1 || self.numel() != rhs.numel() {
            return Err(TensorError::ShapeMismatch {
                op: "dot",
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
            });
        }
        Ok(self.iter().zip(rhs.iter()).map(|(a, b)| a * b).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_allclose;
    use proptest::prelude::*;

    /// Naive triple loop used as the oracle for the blocked kernel.
    fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.get(&[i, kk]).unwrap() * b.get(&[kk, j]).unwrap();
                }
                c.set(&[i, j], acc).unwrap();
            }
        }
        c
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.to_vec(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::randn(&[7, 7], 5);
        let mut eye = Tensor::zeros(&[7, 7]);
        for i in 0..7 {
            eye.set(&[i, i], 1.0).unwrap();
        }
        assert_allclose(&a.matmul(&eye).unwrap(), &a, 1e-6);
        assert_allclose(&eye.matmul(&a).unwrap(), &a, 1e-6);
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.matmul(&b).is_err());
        assert!(a.matmul(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn transb_matches_explicit_transpose() {
        let a = Tensor::randn(&[5, 9], 1);
        let b = Tensor::randn(&[4, 9], 2);
        let via_t = a.matmul(&b.t().unwrap().to_contiguous()).unwrap();
        let direct = a.matmul_transb(&b).unwrap();
        assert_allclose(&via_t, &direct, 1e-5);
    }

    #[test]
    fn blocked_kernel_crosses_block_boundaries() {
        // Sizes straddling the 64-wide block edge.
        let a = Tensor::randn(&[65, 130], 11);
        let b = Tensor::randn(&[130, 67], 12);
        assert_allclose(&a.matmul(&b).unwrap(), &matmul_naive(&a, &b), 1e-3);
    }

    #[test]
    fn matmul_on_strided_view() {
        let a = Tensor::randn(&[6, 6], 3);
        let sub = a.slice(0, 1, 4).unwrap(); // Non-zero offset view.
        let b = Tensor::randn(&[6, 2], 4);
        assert_allclose(
            &sub.matmul(&b).unwrap(),
            &matmul_naive(&sub.to_contiguous(), &b),
            1e-5,
        );
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]).unwrap();
        assert_eq!(a.dot(&b).unwrap(), 32.0);
        assert!(a.dot(&Tensor::zeros(&[4])).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_blocked_matches_naive(
            m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..100
        ) {
            let a = Tensor::randn(&[m, k], seed);
            let b = Tensor::randn(&[k, n], seed + 1);
            assert_allclose(&a.matmul(&b).unwrap(), &matmul_naive(&a, &b), 1e-4);
        }

        #[test]
        fn prop_matmul_distributes_over_add(seed in 0u64..100) {
            let a = Tensor::randn(&[4, 6], seed);
            let b = Tensor::randn(&[6, 3], seed + 1);
            let c = Tensor::randn(&[6, 3], seed + 2);
            let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
            let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
            assert_allclose(&lhs, &rhs, 1e-4);
        }
    }
}
