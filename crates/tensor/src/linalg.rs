//! Matrix multiplication kernels.
//!
//! Two regimes share one entry point:
//!
//! * **Small products** (per-point UDF shapes like `[1, h] @ [h, h]`) run a
//!   direct i-k-j loop over *borrowed* contiguous slices — no packing, and
//!   crucially no operand copies, so the executor's inner loop stays off
//!   the allocator.
//! * **Large products** run a packed, register-blocked GEMM: A is packed
//!   into `MR`-row k-major panels, B into `NR`-column panels (zero-padded
//!   at the edges), and an `MR`×`NR` microkernel accumulates over a
//!   `KC`-deep k-block with all bounds checks hoisted via `chunks_exact`.
//!
//! `matmul_transb` reuses the same kernels — packing B from rows instead
//! of columns is the only difference — and [`Tensor::matmul_mt`] fans the
//! row panels of the packed path out over an [`ft_pool::WorkerPool`],
//! writing each row block directly into its disjoint window of the output
//! buffer (an [`ft_simd::OwnedBlocks`] partition — no lock, no staging
//! copy), bit-identical to the single-threaded result because every
//! element sees the same accumulation order.
//!
//! All inner loops dispatch through [`ft_simd`] on a [`Mode`] hoisted once
//! per operation: scalar mode reproduces the pre-SIMD arithmetic bitwise,
//! vector modes change only the documented FMA contraction (see the
//! ft-simd crate docs). The `*_epi_into` variants run a fused epilogue
//! ([`EpiOp`] chain) on each output block while it is still hot — in the
//! register tile on the small path, per row block on the packed path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use ft_pool::WorkerPool;
use ft_simd::{EpiOp, Mode, OwnedBlocks};

use crate::{Result, Tensor, TensorError};

/// Microkernel register-block height (rows of A per panel).
const MR: usize = ft_simd::MR;
/// Microkernel register-block width (columns of B per panel).
const NR: usize = ft_simd::NR;
/// k-dimension cache-block depth: one packed A panel (`MR * KC` floats)
/// and one packed B panel (`NR * KC`) stay resident in L1/L2.
const KC: usize = 256;
/// Row-block granularity for the multi-threaded row-panel fan-out.
const MC: usize = 64;
/// Flop threshold below which packing costs more than it saves.
const PACK_MIN_FLOPS: usize = 32 * 1024;

impl Tensor {
    /// Matrix product of two rank-2 tensors: `[m, k] @ [k, n] -> [m, n]`.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        let (m, k, n) = check_mm("matmul", self, rhs, false)?;
        let a_owned;
        let a: &[f32] = match self.contiguous_slice() {
            Some(s) => s,
            None => {
                a_owned = self.to_vec();
                &a_owned
            }
        };
        let b_owned;
        let b: &[f32] = match rhs.contiguous_slice() {
            Some(s) => s,
            None => {
                b_owned = rhs.to_vec();
                &b_owned
            }
        };
        let mut c = vec![0.0f32; m * n];
        matmul_into(ft_simd::mode(), a, b, m, k, n, &mut c);
        Tensor::from_vec(c, &[m, n])
    }

    /// `self @ rhs.T` without materializing the transpose:
    /// `[m, k] @ ([n, k]).T -> [m, n]`.
    ///
    /// Large shapes go through the same packed kernel as [`Tensor::matmul`]
    /// — packing B's panels from contiguous rows of `rhs` instead of
    /// strided columns, which is the cache-friendly direction here.
    pub fn matmul_transb(&self, rhs: &Tensor) -> Result<Tensor> {
        let (m, k, n) = check_mm("matmul_transb", self, rhs, true)?;
        let a_owned;
        let a: &[f32] = match self.contiguous_slice() {
            Some(s) => s,
            None => {
                a_owned = self.to_vec();
                &a_owned
            }
        };
        let b_owned;
        let b: &[f32] = match rhs.contiguous_slice() {
            Some(s) => s,
            None => {
                b_owned = rhs.to_vec();
                &b_owned
            }
        };
        let mut c = vec![0.0f32; m * n];
        matmul_transb_into(ft_simd::mode(), a, b, m, k, n, &mut c);
        Tensor::from_vec(c, &[m, n])
    }

    /// [`Tensor::matmul`] with the row panels of the packed kernel fanned
    /// out over `pool`. Bit-identical to the single-threaded product: row
    /// blocks are independent and every element accumulates in the same
    /// order, so only the wall-clock changes.
    pub fn matmul_mt(&self, rhs: &Tensor, pool: &WorkerPool) -> Result<Tensor> {
        let (m, k, n) = check_mm("matmul", self, rhs, false)?;
        if pool.threads() == 1 || !use_packed(m, k, n) || m <= MC {
            return self.matmul(rhs);
        }
        let (a_buf, a_off) = self.shared_contiguous();
        let b_owned;
        let b: &[f32] = match rhs.contiguous_slice() {
            Some(s) => s,
            None => {
                b_owned = rhs.to_vec();
                &b_owned
            }
        };
        let mode = ft_simd::mode();
        let bp = Arc::new(pack_b_all(b, k, n, false));
        let nblocks = m.div_ceil(MC);
        // Workers write each row block straight into its disjoint window
        // of the final buffer — no per-block staging vector, no lock, no
        // gather copy after the barrier.
        let blocks = OwnedBlocks::new(m * n, MC * n);
        let cursor = Arc::new(AtomicUsize::new(0));
        let job = {
            let (a_buf, bp, blocks, cursor) = (
                Arc::clone(&a_buf),
                Arc::clone(&bp),
                Arc::clone(&blocks),
                Arc::clone(&cursor),
            );
            move |_worker: usize| {
                let a = &a_buf[a_off..a_off + m * k];
                let mut ap = Vec::new();
                loop {
                    let blk = cursor.fetch_add(1, Ordering::Relaxed);
                    if blk >= nblocks {
                        break;
                    }
                    let Some(mut win) = blocks.claim(blk) else {
                        continue;
                    };
                    let i0 = blk * MC;
                    let mc = MC.min(m - i0);
                    row_block(mode, a, k, i0, mc, n, &bp, &mut ap, &mut win);
                }
            }
        };
        pool.run(Arc::new(job));
        // `pool.run` is a barrier, so every claim guard has been dropped.
        let c = blocks.take().expect("matmul_mt: output still claimed");
        Tensor::from_vec(c, &[m, n])
    }

    /// Inner product of two equal-length rank-1 tensors.
    pub fn dot(&self, rhs: &Tensor) -> Result<f32> {
        if self.rank() != 1 || rhs.rank() != 1 || self.numel() != rhs.numel() {
            return Err(TensorError::ShapeMismatch {
                op: "dot",
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
            });
        }
        if let (Some(a), Some(b)) = (self.contiguous_slice(), rhs.contiguous_slice()) {
            return Ok(a.iter().zip(b).map(|(x, y)| x * y).sum());
        }
        Ok(self.iter().zip(rhs.iter()).map(|(a, b)| a * b).sum())
    }
}

/// Validates ranks/shapes and returns `(m, k, n)`. When `transb` is set,
/// `rhs` is `[n, k]` instead of `[k, n]`.
fn check_mm(
    op: &'static str,
    lhs: &Tensor,
    rhs: &Tensor,
    transb: bool,
) -> Result<(usize, usize, usize)> {
    if lhs.rank() != 2 || rhs.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: if lhs.rank() != 2 {
                lhs.rank()
            } else {
                rhs.rank()
            },
        });
    }
    let (m, k) = (lhs.dims()[0], lhs.dims()[1]);
    let (k2, n) = if transb {
        (rhs.dims()[1], rhs.dims()[0])
    } else {
        (rhs.dims()[0], rhs.dims()[1])
    };
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: lhs.dims().to_vec(),
            rhs: rhs.dims().to_vec(),
        });
    }
    Ok((m, k, n))
}

fn use_packed(m: usize, k: usize, n: usize) -> bool {
    m >= MR && n >= NR && m * k * n >= PACK_MIN_FLOPS
}

/// `c = a @ b` over borrowed row-major slices (`c` must be zeroed, `m * n`
/// long). This is the single entry both [`Tensor::matmul`] and the
/// arena executor's zero-copy slice path go through, so the accumulation
/// order — and therefore the bit pattern of every result — is identical
/// regardless of whether operands arrive as tensors or arena views.
pub(crate) fn matmul_into(
    mode: Mode,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    c: &mut [f32],
) {
    matmul_epi_into(mode, a, b, m, k, n, c, &[], &[]);
}

/// `c = a @ b.T` with `b` stored `[n, k]`; same sharing contract as
/// [`matmul_into`].
pub(crate) fn matmul_transb_into(
    mode: Mode,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    c: &mut [f32],
) {
    matmul_transb_epi_into(mode, a, b, m, k, n, c, &[], &[]);
}

/// [`matmul_into`] with a fused epilogue: `ops` run on each output block
/// while it is still hot — inside the register tile on the small path,
/// per `MC` row block on the packed path. Elementwise epilogues are
/// position-independent bitwise (ft-simd contract), so the result equals
/// running the unfused kernel sequence of the same mode. `extras` are
/// full `[m, n]` operand buffers consumed in `ops` order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn matmul_epi_into(
    mode: Mode,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    c: &mut [f32],
    ops: &[EpiOp],
    extras: &[&[f32]],
) {
    if use_packed(m, k, n) {
        let bp = pack_b_all(b, k, n, false);
        let mut ap = Vec::new();
        for i0 in (0..m).step_by(MC) {
            let mc = MC.min(m - i0);
            let cblk = &mut c[i0 * n..(i0 + mc) * n];
            row_block(mode, a, k, i0, mc, n, &bp, &mut ap, cblk);
            apply_epi_block(mode, cblk, i0 * n, ops, extras);
        }
    } else {
        ft_simd::small_gemm_epi(mode, a, b, m, k, n, c, ops, extras);
    }
}

/// [`matmul_transb_epi_into`]: `c = a @ b.T` (`b` stored `[n, k]`) with a
/// fused epilogue per output block.
#[allow(clippy::too_many_arguments)]
pub(crate) fn matmul_transb_epi_into(
    mode: Mode,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    c: &mut [f32],
    ops: &[EpiOp],
    extras: &[&[f32]],
) {
    if use_packed(m, k, n) {
        let bp = pack_b_all(b, k, n, true);
        let mut ap = Vec::new();
        for i0 in (0..m).step_by(MC) {
            let mc = MC.min(m - i0);
            let cblk = &mut c[i0 * n..(i0 + mc) * n];
            row_block(mode, a, k, i0, mc, n, &bp, &mut ap, cblk);
            apply_epi_block(mode, cblk, i0 * n, ops, extras);
        }
    } else {
        // Per-element dot products: reductions stay strictly sequential
        // in every mode (no reassociation), so this path is bitwise
        // identical to the pre-SIMD code everywhere.
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[i * n..(i + 1) * n];
            for (j, cv) in c_row.iter_mut().enumerate() {
                let b_row = &b[j * k..(j + 1) * k];
                *cv = a_row.iter().zip(b_row).map(|(x, y)| x * y).sum();
            }
            apply_epi_block(mode, &mut c[i * n..(i + 1) * n], i * n, ops, extras);
        }
    }
}

/// Runs an epilogue over one output window at logical offset `base`,
/// slicing each full-size extra operand down to the window.
fn apply_epi_block(mode: Mode, cblk: &mut [f32], base: usize, ops: &[EpiOp], extras: &[&[f32]]) {
    if ops.is_empty() {
        return;
    }
    let len = cblk.len();
    let ex: Vec<&[f32]> = extras.iter().map(|e| &e[base..base + len]).collect();
    ft_simd::apply_epi(mode, cblk, ops, &ex);
}

/// Packs every k-block of B up front. Block `kb` holds `n.div_ceil(NR)`
/// column panels; panel `p` stores `bp[p * kc * NR + kk * NR + jr] =
/// B[k0 + kk, p * NR + jr]`, zero-padded past column `n`. With `transb`,
/// B is `[n, k]` and the same layout is filled from its rows.
fn pack_b_all(b: &[f32], k: usize, n: usize, transb: bool) -> Vec<Vec<f32>> {
    let npanels = n.div_ceil(NR);
    let mut blocks = Vec::with_capacity(k.div_ceil(KC));
    for k0 in (0..k).step_by(KC) {
        let kc = KC.min(k - k0);
        let mut buf = vec![0.0f32; npanels * kc * NR];
        for p in 0..npanels {
            let j0 = p * NR;
            let nr = NR.min(n - j0);
            let panel = &mut buf[p * kc * NR..(p + 1) * kc * NR];
            for kk in 0..kc {
                let dst = &mut panel[kk * NR..kk * NR + nr];
                if transb {
                    for (jr, d) in dst.iter_mut().enumerate() {
                        *d = b[(j0 + jr) * k + k0 + kk];
                    }
                } else {
                    dst.copy_from_slice(&b[(k0 + kk) * n + j0..(k0 + kk) * n + j0 + nr]);
                }
            }
        }
        blocks.push(buf);
    }
    blocks
}

/// Packs rows `i0 .. i0 + mc` of A for one k-block into `MR`-row panels:
/// `ap[p * kc * MR + kk * MR + ir] = A[i0 + p * MR + ir, k0 + kk]`,
/// zero-padded past row `mc`.
fn pack_a(a: &[f32], lda: usize, i0: usize, mc: usize, k0: usize, kc: usize, buf: &mut Vec<f32>) {
    let npanels = mc.div_ceil(MR);
    buf.clear();
    buf.resize(npanels * kc * MR, 0.0);
    for p in 0..npanels {
        let mr = MR.min(mc - p * MR);
        let panel = &mut buf[p * kc * MR..(p + 1) * kc * MR];
        for ir in 0..mr {
            let row = &a[(i0 + p * MR + ir) * lda + k0..][..kc];
            for (kk, &v) in row.iter().enumerate() {
                panel[kk * MR + ir] = v;
            }
        }
    }
}

/// Computes one `mc`-row block of C (`cblk`, `mc * n`, zero-initialized)
/// against the prepacked B blocks, packing A per k-block into the caller's
/// reusable `ap` buffer. The `MR`×`NR` register tile is
/// [`ft_simd::gemm_ukr`] — broadcast-FMA lanes in fused modes, the
/// pre-SIMD mul+add bitwise in scalar/SSE. Accumulation order per element
/// is fixed (k-blocks ascending, k ascending within a block) regardless of
/// how row blocks are distributed, which is what makes `matmul_mt`
/// bit-identical.
#[allow(clippy::too_many_arguments)]
fn row_block(
    mode: Mode,
    a: &[f32],
    k: usize,
    i0: usize,
    mc: usize,
    n: usize,
    b_blocks: &[Vec<f32>],
    ap: &mut Vec<f32>,
    cblk: &mut [f32],
) {
    let row_panels = mc.div_ceil(MR);
    let col_panels = n.div_ceil(NR);
    for (kb, bp) in b_blocks.iter().enumerate() {
        let k0 = kb * KC;
        let kc = KC.min(k - k0);
        pack_a(a, k, i0, mc, k0, kc, ap);
        for rp in 0..row_panels {
            let a_panel = &ap[rp * kc * MR..(rp + 1) * kc * MR];
            let mr = MR.min(mc - rp * MR);
            for cp in 0..col_panels {
                let b_panel = &bp[cp * kc * NR..(cp + 1) * kc * NR];
                let mut acc = [[0.0f32; NR]; MR];
                ft_simd::gemm_ukr(mode, a_panel, b_panel, &mut acc);
                let j0 = cp * NR;
                let nr = NR.min(n - j0);
                for (ir, row) in acc.iter().enumerate().take(mr) {
                    let dst = &mut cblk[(rp * MR + ir) * n + j0..][..nr];
                    for (d, &v) in dst.iter_mut().zip(row.iter()) {
                        *d += v;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_allclose;
    use proptest::prelude::*;

    /// Naive triple loop used as the oracle for the packed kernel.
    fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.get(&[i, kk]).unwrap() * b.get(&[kk, j]).unwrap();
                }
                c.set(&[i, j], acc).unwrap();
            }
        }
        c
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.to_vec(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::randn(&[7, 7], 5);
        let mut eye = Tensor::zeros(&[7, 7]);
        for i in 0..7 {
            eye.set(&[i, i], 1.0).unwrap();
        }
        assert_allclose(&a.matmul(&eye).unwrap(), &a, 1e-6);
        assert_allclose(&eye.matmul(&a).unwrap(), &a, 1e-6);
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.matmul(&b).is_err());
        assert!(a.matmul(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn transb_matches_explicit_transpose() {
        let a = Tensor::randn(&[5, 9], 1);
        let b = Tensor::randn(&[4, 9], 2);
        let via_t = a.matmul(&b.t().unwrap().to_contiguous()).unwrap();
        let direct = a.matmul_transb(&b).unwrap();
        assert_allclose(&via_t, &direct, 1e-5);
    }

    #[test]
    fn packed_kernel_crosses_panel_boundaries() {
        // Sizes straddling the MR/NR register blocks and the MC row block.
        let a = Tensor::randn(&[65, 130], 11);
        let b = Tensor::randn(&[130, 67], 12);
        assert!(use_packed(65, 130, 67));
        assert_allclose(&a.matmul(&b).unwrap(), &matmul_naive(&a, &b), 1e-3);
    }

    #[test]
    fn packed_kernel_crosses_kc_boundary() {
        // k > KC exercises multi-block accumulation.
        let a = Tensor::randn(&[17, KC + 3], 21);
        let b = Tensor::randn(&[KC + 3, 11], 22);
        assert!(use_packed(17, KC + 3, 11));
        assert_allclose(&a.matmul(&b).unwrap(), &matmul_naive(&a, &b), 1e-3);
    }

    #[test]
    fn packed_transb_crosses_panel_boundaries() {
        let a = Tensor::randn(&[37, 70], 31);
        let b = Tensor::randn(&[43, 70], 32);
        assert!(use_packed(37, 70, 43));
        let via_t = a.matmul(&b.t().unwrap().to_contiguous()).unwrap();
        assert_allclose(&a.matmul_transb(&b).unwrap(), &via_t, 1e-3);
    }

    #[test]
    fn matmul_on_strided_view() {
        let a = Tensor::randn(&[6, 6], 3);
        let sub = a.slice(0, 1, 4).unwrap(); // Non-zero offset view.
        let b = Tensor::randn(&[6, 2], 4);
        assert_allclose(
            &sub.matmul(&b).unwrap(),
            &matmul_naive(&sub.to_contiguous(), &b),
            1e-5,
        );
    }

    #[test]
    fn packed_matmul_on_strided_views() {
        // Both operands are offset/strided views large enough for the
        // packed path, so the borrow-or-materialize fallback is exercised.
        let a = Tensor::randn(&[80, 96], 41).slice(0, 8, 73).unwrap();
        let bt = Tensor::randn(&[40, 96], 42).t().unwrap();
        assert!(use_packed(a.dims()[0], a.dims()[1], bt.dims()[1]));
        assert_allclose(
            &a.matmul(&bt).unwrap(),
            &matmul_naive(&a.to_contiguous(), &bt.to_contiguous()),
            1e-3,
        );
    }

    #[test]
    fn matmul_mt_bitwise_matches_single_threaded() {
        let pool = WorkerPool::new(4);
        for &(m, k, n) in &[(200, 130, 67), (129, KC + 5, 40)] {
            let a = Tensor::randn(&[m, k], 51);
            let b = Tensor::randn(&[k, n], 52);
            let st = a.matmul(&b).unwrap();
            let mt = a.matmul_mt(&b, &pool).unwrap();
            assert_eq!(st.to_vec(), mt.to_vec(), "{m}x{k}x{n} diverged");
        }
    }

    #[test]
    fn matmul_mt_small_falls_back() {
        let pool = WorkerPool::new(2);
        let a = Tensor::randn(&[3, 5], 61);
        let b = Tensor::randn(&[5, 4], 62);
        assert_eq!(
            a.matmul(&b).unwrap().to_vec(),
            a.matmul_mt(&b, &pool).unwrap().to_vec()
        );
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]).unwrap();
        assert_eq!(a.dot(&b).unwrap(), 32.0);
        assert!(a.dot(&Tensor::zeros(&[4])).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_small_matches_naive(
            m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..100
        ) {
            let a = Tensor::randn(&[m, k], seed);
            let b = Tensor::randn(&[k, n], seed + 1);
            assert_allclose(&a.matmul(&b).unwrap(), &matmul_naive(&a, &b), 1e-4);
        }

        #[test]
        fn prop_packed_matches_naive(
            m in 4usize..80, k in 8usize..90, n in 8usize..80, seed in 0u64..100
        ) {
            // Shapes biased to straddle MR/NR/MC panel edges; only some
            // clear the flop threshold, so both paths get coverage.
            let a = Tensor::randn(&[m, k], seed);
            let b = Tensor::randn(&[k, n], seed + 1);
            assert_allclose(&a.matmul(&b).unwrap(), &matmul_naive(&a, &b), 1e-3);
        }

        #[test]
        fn prop_transb_matches_naive_oracle(
            m in 1usize..70, k in 1usize..90, n in 1usize..70, seed in 0u64..100
        ) {
            let a = Tensor::randn(&[m, k], seed);
            let b = Tensor::randn(&[n, k], seed + 1);
            let oracle = matmul_naive(&a, &b.t().unwrap().to_contiguous());
            assert_allclose(&a.matmul_transb(&b).unwrap(), &oracle, 1e-3);
        }

        #[test]
        fn prop_matmul_distributes_over_add(seed in 0u64..100) {
            let a = Tensor::randn(&[4, 6], seed);
            let b = Tensor::randn(&[6, 3], seed + 1);
            let c = Tensor::randn(&[6, 3], seed + 2);
            let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
            let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
            assert_allclose(&lhs, &rhs, 1e-4);
        }
    }
}
