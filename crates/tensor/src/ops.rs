//! Elementwise math: binary ops, unary activations, scalar ops.

use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Applies `f` to every element, producing a new tensor.
    pub fn map_elem(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor::from_vec(self.iter().map(f).collect(), self.dims()).expect("same numel")
    }

    /// Materializes the view and applies an in-place ft-simd kernel to it.
    /// In scalar mode this is bitwise `map_elem` of the kernel's scalar
    /// definition; vector modes follow the crate's documented ulp bounds.
    fn map_simd(&self, kernel: fn(ft_simd::Mode, &mut [f32])) -> Tensor {
        let mut data = self.to_vec();
        kernel(ft_simd::mode(), &mut data);
        Tensor::from_vec(data, self.dims()).expect("same numel")
    }

    /// Combines two equally-shaped tensors elementwise with `f`.
    pub fn zip_elem(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "zip_elem",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        Ok(Tensor::from_vec(
            self.iter()
                .zip(other.iter())
                .map(|(a, b)| f(a, b))
                .collect(),
            self.dims(),
        )
        .expect("same numel"))
    }

    /// Elementwise addition.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_elem(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_elem(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_elem(other, |a, b| a * b)
    }

    /// Elementwise division.
    pub fn div(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_elem(other, |a, b| a / b)
    }

    /// Elementwise maximum.
    pub fn maximum(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_elem(other, f32::max)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map_elem(|x| x + s)
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        self.map_elem(|x| x * s)
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        self.map_elem(|x| -x)
    }

    /// Elementwise natural exponential (ft-simd routed).
    pub fn exp(&self) -> Tensor {
        self.map_simd(ft_simd::exp_ip)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Tensor {
        self.map_elem(f32::ln)
    }

    /// Elementwise hyperbolic tangent (ft-simd routed).
    pub fn tanh(&self) -> Tensor {
        self.map_simd(ft_simd::tanh_ip)
    }

    /// Elementwise logistic sigmoid `1 / (1 + e^{-x})` (ft-simd routed).
    pub fn sigmoid(&self) -> Tensor {
        self.map_simd(ft_simd::sigmoid_ip)
    }

    /// Elementwise SiLU `x * sigmoid(x)` (ft-simd routed).
    pub fn silu(&self) -> Tensor {
        self.map_simd(ft_simd::silu_ip)
    }

    /// Elementwise rectified linear unit (ft-simd routed; bitwise in
    /// every mode).
    pub fn relu(&self) -> Tensor {
        self.map_simd(ft_simd::relu_ip)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map_elem(f32::sqrt)
    }

    /// Adds a row vector (shape `[1, n]` or `[n]`) to every row of a
    /// `[m, n]` matrix — the only broadcast the workloads need.
    pub fn add_row_broadcast(&self, row: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "add_row_broadcast",
                expected: 2,
                actual: self.rank(),
            });
        }
        let n = self.dims()[1];
        let row_flat = row.to_vec();
        if row_flat.len() != n {
            return Err(TensorError::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: self.dims().to_vec(),
                rhs: row.dims().to_vec(),
            });
        }
        let m = self.dims()[0];
        let mut data = Vec::with_capacity(m * n);
        for (i, v) in self.iter().enumerate() {
            data.push(v + row_flat[i % n]);
        }
        Tensor::from_vec(data, self.dims())
    }
}

impl std::ops::Add for &Tensor {
    type Output = Tensor;

    /// Panics on shape mismatch; use [`Tensor::add`] for the fallible form.
    fn add(self, rhs: &Tensor) -> Tensor {
        Tensor::add(self, rhs).expect("operator + shape mismatch")
    }
}

impl std::ops::Sub for &Tensor {
    type Output = Tensor;

    /// Panics on shape mismatch; use [`Tensor::sub`] for the fallible form.
    fn sub(self, rhs: &Tensor) -> Tensor {
        Tensor::sub(self, rhs).expect("operator - shape mismatch")
    }
}

impl std::ops::Mul for &Tensor {
    type Output = Tensor;

    /// Panics on shape mismatch; use [`Tensor::mul`] for the fallible form.
    fn mul(self, rhs: &Tensor) -> Tensor {
        Tensor::mul(self, rhs).expect("operator * shape mismatch")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_allclose;
    use proptest::prelude::*;

    #[test]
    fn binary_ops_elementwise() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![4.0, 3.0, 2.0, 1.0], &[2, 2]).unwrap();
        assert_eq!(a.add(&b).unwrap().to_vec(), vec![5.0; 4]);
        assert_eq!(a.sub(&b).unwrap().to_vec(), vec![-3.0, -1.0, 1.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().to_vec(), vec![4.0, 6.0, 6.0, 4.0]);
        assert_eq!(a.maximum(&b).unwrap().to_vec(), vec![4.0, 3.0, 3.0, 4.0]);
    }

    #[test]
    fn binary_ops_reject_mismatch() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn activations() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 1.0], &[3]).unwrap();
        let s = x.sigmoid();
        assert!((s.get(&[1]).unwrap() - 0.5).abs() < 1e-6);
        assert!(s.get(&[0]).unwrap() < 0.5 && s.get(&[2]).unwrap() > 0.5);
        assert_eq!(x.relu().to_vec(), vec![0.0, 0.0, 1.0]);
        assert_eq!(x.tanh().get(&[1]).unwrap(), 0.0);
    }

    #[test]
    fn ops_respect_views() {
        // Elementwise ops over a transposed (non-contiguous) view must see
        // the view's logical order.
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let at = a.t().unwrap();
        let r = at.add_scalar(10.0);
        assert_eq!(r.to_vec(), vec![11.0, 13.0, 12.0, 14.0]);
    }

    #[test]
    fn row_broadcast() {
        let m = Tensor::zeros(&[2, 3]);
        let row = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let r = m.add_row_broadcast(&row).unwrap();
        assert_eq!(r.to_vec(), vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        let bad = Tensor::zeros(&[1, 4]);
        assert!(m.add_row_broadcast(&bad).is_err());
    }

    proptest! {
        #[test]
        fn prop_add_commutes(seed in 0u64..1000) {
            let a = Tensor::randn(&[3, 5], seed);
            let b = Tensor::randn(&[3, 5], seed + 1);
            assert_allclose(&a.add(&b).unwrap(), &b.add(&a).unwrap(), 1e-6);
        }

        #[test]
        fn prop_sigmoid_bounded(seed in 0u64..1000) {
            let x = Tensor::randn(&[32], seed);
            for v in x.sigmoid().iter() {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }

        #[test]
        fn prop_exp_ln_roundtrip(seed in 0u64..1000) {
            let x = Tensor::rand_uniform(&[16], 0.1, 5.0, seed);
            assert_allclose(&x.ln().exp(), &x, 1e-5);
        }
    }
}
