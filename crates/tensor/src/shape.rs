//! Shapes and row-major stride arithmetic.

use crate::{Result, TensorError};

/// The shape of a dense tensor: an ordered list of dimension extents.
///
/// Shapes are always interpreted row-major (the last dimension is
/// contiguous), matching the paper's convention that the innermost static
/// dimensions of a FractalTensor are the fastest-varying ones.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a dimension list. A scalar is `&[]`.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (1 for scalars, 0 if any extent is 0).
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Extent of one axis.
    pub fn dim(&self, axis: usize) -> Result<usize> {
        self.dims
            .get(axis)
            .copied()
            .ok_or(TensorError::AxisOutOfBounds {
                axis,
                rank: self.rank(),
            })
    }

    /// Row-major (C order) strides, in elements.
    pub fn row_major_strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    pub fn flatten_index(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.rank() {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.dims.clone(),
            });
        }
        let mut flat = 0usize;
        for (axis, (&i, &d)) in index.iter().zip(self.dims.iter()).enumerate() {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds {
                    index: index.to_vec(),
                    shape: self.dims.clone(),
                });
            }
            flat = flat * d + i;
            let _ = axis;
        }
        Ok(flat)
    }

    /// Converts a flat row-major offset back to a multi-dimensional index.
    pub fn unflatten_index(&self, mut flat: usize) -> Vec<usize> {
        let mut index = vec![0usize; self.rank()];
        for axis in (0..self.rank()).rev() {
            let d = self.dims[axis];
            if d > 0 {
                index[axis] = flat % d;
                flat /= d;
            }
        }
        index
    }

    /// Returns a shape with `axis` removed (for axis reductions / `select`).
    pub fn without_axis(&self, axis: usize) -> Result<Shape> {
        if axis >= self.rank() {
            return Err(TensorError::AxisOutOfBounds {
                axis,
                rank: self.rank(),
            });
        }
        let mut dims = self.dims.clone();
        dims.remove(axis);
        Ok(Shape { dims })
    }

    /// Returns a shape with `extent` inserted at `axis` (for `stack`).
    pub fn with_axis(&self, axis: usize, extent: usize) -> Result<Shape> {
        if axis > self.rank() {
            return Err(TensorError::AxisOutOfBounds {
                axis,
                rank: self.rank(),
            });
        }
        let mut dims = self.dims.clone();
        dims.insert(axis, extent);
        Ok(Shape { dims })
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.row_major_strides(), vec![12, 4, 1]);
        assert_eq!(s.numel(), 24);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.flatten_index(&[]).unwrap(), 0);
    }

    #[test]
    fn flatten_round_trip() {
        let s = Shape::new(&[3, 5, 7]);
        for flat in 0..s.numel() {
            let idx = s.unflatten_index(flat);
            assert_eq!(s.flatten_index(&idx).unwrap(), flat);
        }
    }

    #[test]
    fn flatten_rejects_out_of_bounds() {
        let s = Shape::new(&[2, 2]);
        assert!(s.flatten_index(&[2, 0]).is_err());
        assert!(s.flatten_index(&[0]).is_err());
    }

    #[test]
    fn axis_insert_remove() {
        let s = Shape::new(&[2, 3]);
        let t = s.with_axis(1, 9).unwrap();
        assert_eq!(t.dims(), &[2, 9, 3]);
        let u = t.without_axis(1).unwrap();
        assert_eq!(u, s);
        assert!(s.without_axis(2).is_err());
        assert!(s.with_axis(3, 1).is_err());
    }

    proptest! {
        #[test]
        fn prop_flatten_unflatten_roundtrip(
            dims in proptest::collection::vec(1usize..6, 1..5),
            seed in 0usize..1000,
        ) {
            let s = Shape::new(&dims);
            let flat = seed % s.numel();
            let idx = s.unflatten_index(flat);
            prop_assert_eq!(s.flatten_index(&idx).unwrap(), flat);
        }

        #[test]
        fn prop_strides_consistent_with_flatten(
            dims in proptest::collection::vec(1usize..5, 1..4),
        ) {
            let s = Shape::new(&dims);
            let strides = s.row_major_strides();
            for flat in 0..s.numel() {
                let idx = s.unflatten_index(flat);
                let via_strides: usize =
                    idx.iter().zip(strides.iter()).map(|(i, st)| i * st).sum();
                prop_assert_eq!(via_strides, flat);
            }
        }
    }
}
