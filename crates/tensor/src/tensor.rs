//! The dense tensor type: an `Arc`-shared buffer plus a strided view.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::{Result, Shape, TensorError};

/// A dense `f32` tensor.
///
/// A `Tensor` is a view — shape, per-axis strides (in elements) and a start
/// offset — over a reference-counted flat buffer. Slicing ([`Tensor::slice`]),
/// selecting ([`Tensor::select`]) and transposing ([`Tensor::transpose`])
/// produce new views that share the buffer without copying. Mutation goes
/// through [`Tensor::set`] / [`Tensor::fill_from`], which copy-on-write if
/// the buffer is shared.
///
/// Cloning a `Tensor` is O(1).
#[derive(Clone)]
pub struct Tensor {
    data: Arc<Vec<f32>>,
    shape: Shape,
    strides: Vec<usize>,
    offset: usize,
}

impl Tensor {
    // ---------------------------------------------------------------------
    // Constructors.
    // ---------------------------------------------------------------------

    /// Creates a tensor from a flat row-major vector.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.numel() {
            return Err(TensorError::BadReshape {
                from: vec![data.len()],
                to: dims.to_vec(),
            });
        }
        let strides = shape.row_major_strides();
        Ok(Tensor {
            data: Arc::new(data),
            shape,
            strides,
            offset: 0,
        })
    }

    /// An all-zeros tensor.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let strides = shape.row_major_strides();
        Tensor {
            data: Arc::new(vec![0.0; shape.numel()]),
            shape,
            strides,
            offset: 0,
        }
    }

    /// An all-ones tensor.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// A constant-filled tensor.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let strides = shape.row_major_strides();
        Tensor {
            data: Arc::new(vec![value; shape.numel()]),
            shape,
            strides,
            offset: 0,
        }
    }

    /// A scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor::full(&[], value)
    }

    /// Deterministic pseudo-normal initialization (Box–Muller over a seeded
    /// [`StdRng`]); all workloads derive their data from this so every
    /// experiment is reproducible bit-for-bit.
    pub fn randn(dims: &[usize], seed: u64) -> Self {
        let shape = Shape::new(dims);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = shape.numel();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.random::<f32>().max(1e-12);
            let u2: f32 = rng.random();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos());
            if data.len() < n {
                data.push(r * theta.sin());
            }
        }
        let strides = shape.row_major_strides();
        Tensor {
            data: Arc::new(data),
            shape,
            strides,
            offset: 0,
        }
    }

    /// Uniform values in `[lo, hi)` from a seeded RNG.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, seed: u64) -> Self {
        let shape = Shape::new(dims);
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..shape.numel())
            .map(|_| lo + (hi - lo) * rng.random::<f32>())
            .collect();
        let strides = shape.row_major_strides();
        Tensor {
            data: Arc::new(data),
            shape,
            strides,
            offset: 0,
        }
    }

    /// `0, 1, 2, ...` as a 1-D tensor of length `n`.
    pub fn arange(n: usize) -> Self {
        Tensor::from_vec((0..n).map(|i| i as f32).collect(), &[n])
            .expect("arange shape always valid")
    }

    // ---------------------------------------------------------------------
    // Accessors.
    // ---------------------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents (shorthand for `shape().dims()`).
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Per-axis strides, in elements.
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// True when the view covers its buffer contiguously in row-major order.
    pub fn is_contiguous(&self) -> bool {
        self.strides == self.shape.row_major_strides()
    }

    /// Borrows the elements as one row-major slice when the view is
    /// contiguous (possibly at a non-zero offset). Returns `None` for
    /// strided views; callers fall back to [`Tensor::to_contiguous`].
    pub fn contiguous_slice(&self) -> Option<&[f32]> {
        if self.is_contiguous() {
            Some(&self.data[self.offset..self.offset + self.numel()])
        } else {
            None
        }
    }

    /// Shares the backing buffer without copying when the view is
    /// contiguous, otherwise materializes one. Returns the buffer and the
    /// element offset the view starts at. The executor uses this to hand
    /// extern-input leaves to worker threads as `'static` borrows.
    pub fn shared_contiguous(&self) -> (Arc<Vec<f32>>, usize) {
        if self.is_contiguous() {
            (Arc::clone(&self.data), self.offset)
        } else {
            (Arc::new(self.to_vec()), 0)
        }
    }

    /// Reads one element.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.element_offset(index)?])
    }

    /// Reads a scalar (rank-0) tensor's value.
    pub fn item(&self) -> Result<f32> {
        if self.numel() != 1 {
            return Err(TensorError::Invalid(format!(
                "item() on tensor with {} elements",
                self.numel()
            )));
        }
        Ok(self.iter().next().expect("numel checked to be 1"))
    }

    /// Writes one element, copy-on-write if the buffer is shared.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.element_offset(index)?;
        Arc::make_mut(&mut self.data)[off] = value;
        Ok(())
    }

    fn element_offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.rank() {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.dims().to_vec(),
            });
        }
        let mut off = self.offset;
        for ((&i, &d), &s) in index
            .iter()
            .zip(self.dims().iter())
            .zip(self.strides.iter())
        {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds {
                    index: index.to_vec(),
                    shape: self.dims().to_vec(),
                });
            }
            off += i * s;
        }
        Ok(off)
    }

    /// Iterates elements in row-major order of the *view*.
    pub fn iter(&self) -> impl Iterator<Item = f32> + '_ {
        let shape = self.shape.clone();
        let n = shape.numel();
        (0..n).map(move |flat| {
            let idx = shape.unflatten_index(flat);
            let off: usize = self.offset
                + idx
                    .iter()
                    .zip(self.strides.iter())
                    .map(|(i, s)| i * s)
                    .sum::<usize>();
            self.data[off]
        })
    }

    /// Materializes the view into a fresh contiguous vector.
    ///
    /// Contiguous views (any offset) are one bulk copy; strided views are
    /// walked axis by axis, copying whole dense innermost rows. Both paths
    /// produce the exact row-major element order [`Tensor::iter`] defines.
    pub fn to_vec(&self) -> Vec<f32> {
        if let Some(s) = self.contiguous_slice() {
            return s.to_vec();
        }
        let mut out = Vec::with_capacity(self.numel());
        self.append_rows(0, self.offset, &mut out);
        out
    }

    /// Depth-first row-major copy: dense innermost rows go as slices, a
    /// strided innermost axis degrades to per-element reads.
    fn append_rows(&self, dim: usize, off: usize, out: &mut Vec<f32>) {
        let dims = self.shape.dims();
        if dim == dims.len() {
            out.push(self.data[off]);
            return;
        }
        if dim + 1 == dims.len() && self.strides[dim] == 1 {
            out.extend_from_slice(&self.data[off..off + dims[dim]]);
            return;
        }
        let stride = self.strides[dim];
        for i in 0..dims[dim] {
            self.append_rows(dim + 1, off + i * stride, out);
        }
    }

    /// Returns a contiguous copy if the view is strided, otherwise a cheap
    /// clone.
    pub fn to_contiguous(&self) -> Tensor {
        if self.is_contiguous() && self.offset == 0 && self.data.len() == self.numel() {
            return self.clone();
        }
        Tensor::from_vec(self.to_vec(), self.dims()).expect("same numel")
    }

    // ---------------------------------------------------------------------
    // Views.
    // ---------------------------------------------------------------------

    /// Reshapes to `dims` (same element count). Copies only when the view is
    /// non-contiguous.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let new_shape = Shape::new(dims);
        if new_shape.numel() != self.numel() {
            return Err(TensorError::BadReshape {
                from: self.dims().to_vec(),
                to: dims.to_vec(),
            });
        }
        let base = self.to_contiguous();
        Ok(Tensor {
            data: base.data,
            strides: new_shape.row_major_strides(),
            shape: new_shape,
            offset: base.offset,
        })
    }

    /// Swaps two axes without copying.
    pub fn transpose(&self, a: usize, b: usize) -> Result<Tensor> {
        let rank = self.rank();
        if a >= rank || b >= rank {
            return Err(TensorError::AxisOutOfBounds {
                axis: a.max(b),
                rank,
            });
        }
        let mut dims = self.dims().to_vec();
        let mut strides = self.strides.clone();
        dims.swap(a, b);
        strides.swap(a, b);
        Ok(Tensor {
            data: self.data.clone(),
            shape: Shape::from(dims),
            strides,
            offset: self.offset,
        })
    }

    /// 2-D matrix transpose (`transpose(0, 1)` on a rank-2 tensor).
    pub fn t(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "t",
                expected: 2,
                actual: self.rank(),
            });
        }
        self.transpose(0, 1)
    }

    /// Restricts one axis to `start..end` without copying.
    pub fn slice(&self, axis: usize, start: usize, end: usize) -> Result<Tensor> {
        let extent = self.shape.dim(axis)?;
        if start >= end || end > extent {
            return Err(TensorError::BadSlice {
                axis,
                start,
                end,
                extent,
            });
        }
        let mut dims = self.dims().to_vec();
        dims[axis] = end - start;
        Ok(Tensor {
            data: self.data.clone(),
            shape: Shape::from(dims),
            strides: self.strides.clone(),
            offset: self.offset + start * self.strides[axis],
        })
    }

    /// Indexes one axis, dropping it (e.g. row `i` of a matrix).
    pub fn select(&self, axis: usize, index: usize) -> Result<Tensor> {
        let extent = self.shape.dim(axis)?;
        if index >= extent {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![index],
                shape: self.dims().to_vec(),
            });
        }
        let mut dims = self.dims().to_vec();
        let mut strides = self.strides.clone();
        dims.remove(axis);
        strides.remove(axis);
        Ok(Tensor {
            data: self.data.clone(),
            shape: Shape::from(dims),
            strides,
            offset: self.offset + index * self.strides[axis],
        })
    }

    /// Takes every `step`-th index of `axis` starting at `start`, without
    /// copying. This is the materialized form of the paper's *constantly
    /// strided* access operator.
    pub fn stride_view(&self, axis: usize, start: usize, step: usize) -> Result<Tensor> {
        let extent = self.shape.dim(axis)?;
        if step == 0 {
            return Err(TensorError::Invalid("stride step must be > 0".into()));
        }
        if start >= extent {
            return Err(TensorError::BadSlice {
                axis,
                start,
                end: extent,
                extent,
            });
        }
        let count = (extent - start).div_ceil(step);
        let mut dims = self.dims().to_vec();
        let mut strides = self.strides.clone();
        dims[axis] = count;
        let offset = self.offset + start * strides[axis];
        strides[axis] *= step;
        Ok(Tensor {
            data: self.data.clone(),
            shape: Shape::from(dims),
            strides,
            offset,
        })
    }

    /// Overwrites this tensor's elements with `src`'s (same shape),
    /// copy-on-write if shared. Used by executors writing into preallocated
    /// output buffers.
    pub fn fill_from(&mut self, src: &Tensor) -> Result<()> {
        if self.shape != *src.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "fill_from",
                lhs: self.dims().to_vec(),
                rhs: src.dims().to_vec(),
            });
        }
        let values: Vec<f32> = src.iter().collect();
        // Compute destination offsets before taking the mutable borrow.
        let offsets: Vec<usize> = (0..self.numel())
            .map(|flat| {
                let idx = self.shape.unflatten_index(flat);
                self.offset
                    + idx
                        .iter()
                        .zip(self.strides.iter())
                        .map(|(i, s)| i * s)
                        .sum::<usize>()
            })
            .collect();
        let data = Arc::make_mut(&mut self.data);
        for (off, v) in offsets.into_iter().zip(values) {
            data[off] = v;
        }
        Ok(())
    }

    /// Concatenates tensors along `axis`. All inputs must agree on every
    /// other dimension.
    pub fn concat(parts: &[Tensor], axis: usize) -> Result<Tensor> {
        let first = parts
            .first()
            .ok_or_else(|| TensorError::Invalid("concat of zero tensors".into()))?;
        let rank = first.rank();
        if axis >= rank {
            return Err(TensorError::AxisOutOfBounds { axis, rank });
        }
        let mut out_dims = first.dims().to_vec();
        out_dims[axis] = 0;
        for p in parts {
            if p.rank() != rank {
                return Err(TensorError::RankMismatch {
                    op: "concat",
                    expected: rank,
                    actual: p.rank(),
                });
            }
            for (ax, (&d, &e)) in p.dims().iter().zip(first.dims().iter()).enumerate() {
                if ax != axis && d != e {
                    return Err(TensorError::ShapeMismatch {
                        op: "concat",
                        lhs: first.dims().to_vec(),
                        rhs: p.dims().to_vec(),
                    });
                }
            }
            out_dims[axis] += p.dims()[axis];
        }
        let mut out = Tensor::zeros(&out_dims);
        let mut cursor = 0usize;
        for p in parts {
            out.write_region(axis, cursor, p)?;
            cursor += p.dims()[axis];
        }
        Ok(out)
    }

    /// Writes `src` into `self` starting at `start` along `axis`. The other
    /// dimensions must match exactly.
    pub fn write_region(&mut self, axis: usize, start: usize, src: &Tensor) -> Result<()> {
        let extent = src.shape.dim(axis)?;
        // Bounds/shape validation via a throw-away slice view.
        let probe = self.slice(axis, start, start + extent)?;
        if probe.shape() != src.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "write_region",
                lhs: probe.dims().to_vec(),
                rhs: src.dims().to_vec(),
            });
        }
        drop(probe);
        for flat in 0..src.numel() {
            let idx = src.shape().unflatten_index(flat);
            let v = src.get(&idx)?;
            let mut dst_idx = idx;
            dst_idx[axis] += start;
            self.set(&dst_idx, v)?;
        }
        Ok(())
    }

    /// Stacks equally-shaped tensors along a fresh leading axis.
    pub fn stack(parts: &[Tensor]) -> Result<Tensor> {
        let first = parts
            .first()
            .ok_or_else(|| TensorError::Invalid("stack of zero tensors".into()))?;
        let mut dims = vec![parts.len()];
        dims.extend_from_slice(first.dims());
        let mut data = Vec::with_capacity(first.numel() * parts.len());
        for p in parts {
            if p.shape() != first.shape() {
                return Err(TensorError::ShapeMismatch {
                    op: "stack",
                    lhs: first.dims().to_vec(),
                    rhs: p.dims().to_vec(),
                });
            }
            data.extend(p.iter());
        }
        Tensor::from_vec(data, &dims)
    }
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.numel() <= 16 {
            write!(f, "{:?}", self.to_vec())
        } else {
            let head: Vec<f32> = self.iter().take(8).collect();
            write!(f, "{head:?}...")
        }
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        if self.shape != other.shape {
            return false;
        }
        // Identity fast path: two views with the same geometry over one
        // shared buffer are equal without reading a single element. This
        // is the hot case for serving, where a weight handle is cloned
        // across every request of a fused batch and the batcher verifies
        // the shared inputs match — O(1) here instead of an elementwise
        // walk per batch member.
        if Arc::ptr_eq(&self.data, &other.data)
            && self.offset == other.offset
            && self.strides == other.strides
        {
            return true;
        }
        // Contiguous views compare as flat slices (memcmp-speed);
        // strided views fall back to the index-computing iterator.
        if let (Some(a), Some(b)) = (self.contiguous_slice(), other.contiguous_slice()) {
            return a == b;
        }
        self.iter().eq(other.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_index() {
        let t = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 4]).unwrap();
        assert_eq!(t.get(&[0, 0, 0]).unwrap(), 0.0);
        assert_eq!(t.get(&[1, 2, 3]).unwrap(), 23.0);
        assert_eq!(t.get(&[0, 1, 2]).unwrap(), 6.0);
        assert!(t.get(&[2, 0, 0]).is_err());
    }

    #[test]
    fn from_vec_rejects_wrong_count() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
    }

    #[test]
    fn set_is_copy_on_write() {
        let a = Tensor::zeros(&[2, 2]);
        let mut b = a.clone();
        b.set(&[0, 0], 7.0).unwrap();
        assert_eq!(a.get(&[0, 0]).unwrap(), 0.0);
        assert_eq!(b.get(&[0, 0]).unwrap(), 7.0);
    }

    #[test]
    fn slice_shares_and_offsets() {
        let t = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[3, 4]).unwrap();
        let s = t.slice(0, 1, 3).unwrap();
        assert_eq!(s.dims(), &[2, 4]);
        assert_eq!(s.get(&[0, 0]).unwrap(), 4.0);
        assert_eq!(s.get(&[1, 3]).unwrap(), 11.0);
        assert!(t.slice(0, 2, 2).is_err());
        assert!(t.slice(1, 0, 5).is_err());
    }

    #[test]
    fn select_drops_axis() {
        let t = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[3, 4]).unwrap();
        let row = t.select(0, 2).unwrap();
        assert_eq!(row.dims(), &[4]);
        assert_eq!(row.to_vec(), vec![8.0, 9.0, 10.0, 11.0]);
        let col = t.select(1, 1).unwrap();
        assert_eq!(col.to_vec(), vec![1.0, 5.0, 9.0]);
    }

    #[test]
    fn transpose_is_view() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).unwrap();
        let tt = t.t().unwrap();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.get(&[2, 1]).unwrap(), t.get(&[1, 2]).unwrap());
        assert!(!tt.is_contiguous());
        let c = tt.to_contiguous();
        assert!(c.is_contiguous());
        assert_eq!(c.to_vec(), vec![0.0, 3.0, 1.0, 4.0, 2.0, 5.0]);
    }

    #[test]
    fn reshape_checks_numel() {
        let t = Tensor::zeros(&[2, 6]);
        assert_eq!(t.reshape(&[3, 4]).unwrap().dims(), &[3, 4]);
        assert!(t.reshape(&[5]).is_err());
    }

    #[test]
    fn stride_view_selects_every_kth() {
        let t = Tensor::arange(10);
        let s = t.stride_view(0, 1, 3).unwrap();
        assert_eq!(s.to_vec(), vec![1.0, 4.0, 7.0]);
        assert!(t.stride_view(0, 0, 0).is_err());
    }

    #[test]
    fn stack_and_concat() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        let s = Tensor::stack(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
        let c = Tensor::concat(&[a, b], 0).unwrap();
        assert_eq!(c.dims(), &[4]);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn concat_axis1() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0], &[2, 1]).unwrap();
        let c = Tensor::concat(&[a, b], 1).unwrap();
        assert_eq!(c.dims(), &[2, 3]);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 5.0, 3.0, 4.0, 6.0]);
    }

    #[test]
    fn randn_is_deterministic() {
        let a = Tensor::randn(&[16], 42);
        let b = Tensor::randn(&[16], 42);
        let c = Tensor::randn(&[16], 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn item_on_scalar() {
        assert_eq!(Tensor::scalar(3.5).item().unwrap(), 3.5);
        assert!(Tensor::zeros(&[2]).item().is_err());
    }

    #[test]
    fn fill_from_through_view() {
        let mut t = Tensor::zeros(&[3, 3]);
        let src = Tensor::ones(&[3]);
        let mut row = t.slice(0, 1, 2).unwrap().reshape(&[3]).unwrap();
        row.fill_from(&src).unwrap();
        // The row view copied-on-write, so t itself is unchanged...
        assert_eq!(t.get(&[1, 0]).unwrap(), 0.0);
        // ...but write_region mutates in place.
        let block = Tensor::ones(&[1, 3]);
        t.write_region(0, 1, &block).unwrap();
        assert_eq!(t.get(&[1, 0]).unwrap(), 1.0);
        assert_eq!(t.get(&[0, 0]).unwrap(), 0.0);
        assert_eq!(t.get(&[2, 2]).unwrap(), 0.0);
    }
}
