//! Reductions (sum/max/min), row-wise softmax, and the online-softmax
//! primitives used by the FlashAttention workload.

use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Sum of all elements.
    pub fn sum_all(&self) -> f32 {
        self.iter().sum()
    }

    /// Maximum of all elements (`-inf` for an empty tensor).
    pub fn max_all(&self) -> f32 {
        self.iter().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum of all elements (`+inf` for an empty tensor).
    pub fn min_all(&self) -> f32 {
        self.iter().fold(f32::INFINITY, f32::min)
    }

    /// Mean of all elements.
    pub fn mean_all(&self) -> f32 {
        self.sum_all() / self.numel() as f32
    }

    /// Sums along `axis`, dropping it.
    pub fn sum_axis(&self, axis: usize) -> Result<Tensor> {
        self.reduce_axis(axis, 0.0, |acc, v| acc + v)
    }

    /// Maximum along `axis`, dropping it.
    pub fn max_axis(&self, axis: usize) -> Result<Tensor> {
        self.reduce_axis(axis, f32::NEG_INFINITY, f32::max)
    }

    fn reduce_axis(&self, axis: usize, init: f32, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        let extent = self.shape().dim(axis)?;
        let out_shape = self.shape().without_axis(axis)?;
        let mut out = Tensor::full(out_shape.dims(), init);
        for flat in 0..out.numel() {
            let out_idx = out.shape().unflatten_index(flat);
            let mut acc = init;
            for i in 0..extent {
                let mut idx = out_idx.clone();
                idx.insert(axis, i);
                acc = f(acc, self.get(&idx)?);
            }
            out.set(&out_idx, acc)?;
        }
        Ok(out)
    }

    /// Row-wise softmax of a rank-2 tensor (numerically stabilized by the
    /// row max).
    pub fn softmax_rows(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "softmax_rows",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        // ft-simd routed: the row max and denominator sum stay sequential
        // in every mode; scalar mode is bitwise the pre-SIMD loop.
        let a = self.to_vec();
        let mut data = vec![0.0f32; m * n];
        ft_simd::softmax_rows(ft_simd::mode(), &a, m, n, &mut data);
        Tensor::from_vec(data, &[m, n])
    }

    /// Softmax over the last axis of a rank-1 tensor.
    pub fn softmax_1d(&self) -> Result<Tensor> {
        if self.rank() != 1 {
            return Err(TensorError::RankMismatch {
                op: "softmax_1d",
                expected: 1,
                actual: self.rank(),
            });
        }
        self.reshape(&[1, self.numel()])?
            .softmax_rows()?
            .reshape(self.dims())
    }
}

/// Running state of the *online softmax* recurrence used by FlashAttention
/// (Listing 3 of the paper): per-row running max `m`, running denominator
/// `s`, and running weighted output `o`.
///
/// Processing score blocks left to right with [`OnlineSoftmax::step`] yields
/// exactly `softmax(scores) @ v` at [`OnlineSoftmax::finish`], without ever
/// materializing the full score row — the property the FlashAttention
/// workload and its memory-traffic experiment rely on.
#[derive(Debug, Clone)]
pub struct OnlineSoftmax {
    /// Running row max.
    pub m: Vec<f32>,
    /// Running softmax denominator (scaled to the current max).
    pub s: Vec<f32>,
    /// Running output accumulator, shape `[rows, dv]`.
    pub o: Tensor,
}

impl OnlineSoftmax {
    /// Fresh state for `rows` output rows of width `dv`.
    pub fn new(rows: usize, dv: usize) -> Self {
        OnlineSoftmax {
            m: vec![f32::NEG_INFINITY; rows],
            s: vec![0.0; rows],
            o: Tensor::zeros(&[rows, dv]),
        }
    }

    /// Folds in one block: `scores` is `[rows, bk]` (already scaled), `v` is
    /// `[bk, dv]`.
    pub fn step(&mut self, scores: &Tensor, v: &Tensor) -> Result<()> {
        let rows = self.m.len();
        if scores.rank() != 2 || scores.dims()[0] != rows {
            return Err(TensorError::ShapeMismatch {
                op: "online_softmax_step",
                lhs: scores.dims().to_vec(),
                rhs: vec![rows],
            });
        }
        let bk = scores.dims()[1];
        if v.dims() != [bk, self.o.dims()[1]] {
            return Err(TensorError::ShapeMismatch {
                op: "online_softmax_step",
                lhs: v.dims().to_vec(),
                rhs: vec![bk, self.o.dims()[1]],
            });
        }
        let dv = self.o.dims()[1];
        for r in 0..rows {
            let row: Vec<f32> = (0..bk)
                .map(|j| scores.get(&[r, j]).expect("in bounds"))
                .collect();
            let block_max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let new_m = self.m[r].max(block_max);
            let alpha = if self.m[r] == f32::NEG_INFINITY {
                0.0
            } else {
                (self.m[r] - new_m).exp()
            };
            let exps: Vec<f32> = row.iter().map(|x| (x - new_m).exp()).collect();
            let block_sum: f32 = exps.iter().sum();
            self.s[r] = self.s[r] * alpha + block_sum;
            for c in 0..dv {
                let old = self.o.get(&[r, c])?;
                let mut acc = old * alpha;
                for (j, e) in exps.iter().enumerate() {
                    acc += e * v.get(&[j, c])?;
                }
                self.o.set(&[r, c], acc)?;
            }
            self.m[r] = new_m;
        }
        Ok(())
    }

    /// Normalizes and returns the accumulated output.
    pub fn finish(&self) -> Result<Tensor> {
        let (rows, dv) = (self.o.dims()[0], self.o.dims()[1]);
        let mut out = Tensor::zeros(&[rows, dv]);
        for r in 0..rows {
            let denom = self.s[r];
            for c in 0..dv {
                out.set(&[r, c], self.o.get(&[r, c])? / denom)?;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_allclose;
    use proptest::prelude::*;

    #[test]
    fn whole_tensor_reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.5], &[2, 2]).unwrap();
        assert_eq!(t.sum_all(), 2.5);
        assert_eq!(t.max_all(), 3.0);
        assert_eq!(t.min_all(), -2.0);
        assert_eq!(t.mean_all(), 0.625);
    }

    #[test]
    fn axis_reductions() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.sum_axis(0).unwrap().to_vec(), vec![5.0, 7.0, 9.0]);
        assert_eq!(t.sum_axis(1).unwrap().to_vec(), vec![6.0, 15.0]);
        assert_eq!(t.max_axis(1).unwrap().to_vec(), vec![3.0, 6.0]);
        assert!(t.sum_axis(2).is_err());
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::randn(&[4, 9], 7);
        let s = t.softmax_rows().unwrap();
        for i in 0..4 {
            let row_sum: f32 = (0..9).map(|j| s.get(&[i, j]).unwrap()).sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let t = Tensor::randn(&[2, 5], 8);
        let shifted = t.add_scalar(1000.0);
        assert_allclose(
            &t.softmax_rows().unwrap(),
            &shifted.softmax_rows().unwrap(),
            1e-5,
        );
    }

    #[test]
    fn online_softmax_matches_full_softmax() {
        let q = Tensor::randn(&[3, 8], 21);
        let k = Tensor::randn(&[12, 8], 22);
        let v = Tensor::randn(&[12, 4], 23);
        let scores = q.matmul_transb(&k).unwrap();
        let expected = scores.softmax_rows().unwrap().matmul(&v).unwrap();

        let mut state = OnlineSoftmax::new(3, 4);
        for blk in 0..3 {
            let ks = k.slice(0, blk * 4, (blk + 1) * 4).unwrap();
            let vs = v.slice(0, blk * 4, (blk + 1) * 4).unwrap();
            let s = q.matmul_transb(&ks.to_contiguous()).unwrap();
            state.step(&s, &vs.to_contiguous()).unwrap();
        }
        assert_allclose(&state.finish().unwrap(), &expected, 1e-4);
    }

    #[test]
    fn online_softmax_rejects_bad_block() {
        let mut state = OnlineSoftmax::new(2, 4);
        let bad_scores = Tensor::zeros(&[3, 4]);
        let v = Tensor::zeros(&[4, 4]);
        assert!(state.step(&bad_scores, &v).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_online_softmax_block_order_invariant(
            seed in 0u64..200, nblocks in 1usize..5
        ) {
            let rows = 2;
            let bk = 3;
            let dv = 4;
            let n = nblocks * bk;
            let scores = Tensor::randn(&[rows, n], seed);
            let v = Tensor::randn(&[n, dv], seed + 1);
            let expected = scores.softmax_rows().unwrap().matmul(&v).unwrap();
            let mut st = OnlineSoftmax::new(rows, dv);
            for b in 0..nblocks {
                let sb = scores.slice(1, b * bk, (b + 1) * bk).unwrap().to_contiguous();
                let vb = v.slice(0, b * bk, (b + 1) * bk).unwrap().to_contiguous();
                st.step(&sb, &vb).unwrap();
            }
            assert_allclose(&st.finish().unwrap(), &expected, 1e-4);
        }

        #[test]
        fn prop_sum_axis_matches_sum_all(seed in 0u64..200) {
            let t = Tensor::randn(&[4, 6], seed);
            let via_axis = t.sum_axis(0).unwrap().sum_all();
            prop_assert!((via_axis - t.sum_all()).abs() < 1e-3);
        }
    }
}
