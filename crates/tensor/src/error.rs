//! Error type for tensor operations.

use std::fmt;

/// Errors produced by shape-sensitive tensor operations.
///
/// The tensor substrate never panics on user input; every fallible operation
/// returns [`crate::Result`]. Infallible convenience wrappers (e.g. the
/// `std::ops` impls) panic only on programmer error and say so in their docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that had to agree did not.
    ShapeMismatch {
        /// Context string naming the operation.
        op: &'static str,
        /// Left-hand shape.
        lhs: Vec<usize>,
        /// Right-hand shape.
        rhs: Vec<usize>,
    },
    /// An index was outside the tensor's bounds.
    IndexOutOfBounds {
        /// The offending index vector.
        index: Vec<usize>,
        /// The tensor shape it was applied to.
        shape: Vec<usize>,
    },
    /// An axis argument exceeded the tensor rank.
    AxisOutOfBounds {
        /// The offending axis.
        axis: usize,
        /// The tensor rank.
        rank: usize,
    },
    /// A reshape asked for a different element count.
    BadReshape {
        /// Source shape.
        from: Vec<usize>,
        /// Requested shape.
        to: Vec<usize>,
    },
    /// The operation requires a specific rank.
    RankMismatch {
        /// Context string naming the operation.
        op: &'static str,
        /// Expected rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
    },
    /// A slice range was empty or exceeded the dimension extent.
    BadSlice {
        /// Axis being sliced.
        axis: usize,
        /// Start of the requested range.
        start: usize,
        /// End of the requested range (exclusive).
        end: usize,
        /// Extent of that axis.
        extent: usize,
    },
    /// Catch-all for invalid arguments with a descriptive message.
    Invalid(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: shape mismatch {lhs:?} vs {rhs:?}")
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::AxisOutOfBounds { axis, rank } => {
                write!(f, "axis {axis} out of bounds for rank {rank}")
            }
            TensorError::BadReshape { from, to } => {
                write!(f, "cannot reshape {from:?} into {to:?}")
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => {
                write!(f, "{op}: expected rank {expected}, got {actual}")
            }
            TensorError::BadSlice {
                axis,
                start,
                end,
                extent,
            } => {
                write!(
                    f,
                    "bad slice {start}..{end} on axis {axis} with extent {extent}"
                )
            }
            TensorError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for TensorError {}
