//! # ft-tensor
//!
//! Dense, static-shape `f32` tensors: the innermost data substrate of the
//! FractalTensor reproduction.
//!
//! In the FractalTensor programming model (SOSP 2024), every *leaf* of a
//! FractalTensor is a tensor whose shape is fully known at compile time, and
//! all user-defined math functions operate on such leaves. This crate
//! provides that substrate:
//!
//! * [`Shape`] — dimension lists with row-major stride computation,
//! * [`Tensor`] — a reference-counted dense buffer plus a strided view
//!   (slicing, selecting and transposing are O(1) and never copy),
//! * elementwise math, activations, matrix multiplication, reductions and
//!   row-wise softmax — everything the six evaluation workloads need.
//!
//! The crate is intentionally `f32`-only and CPU-only: numeric fidelity of
//! the *reference semantics* is what matters here; the performance story is
//! told by the scheduling layers above (`ft-sim` / `ft-backend`).
//!
//! # Examples
//!
//! ```
//! use ft_tensor::Tensor;
//!
//! let x = Tensor::randn(&[4, 8], 1);
//! let w = Tensor::randn(&[8, 8], 2);
//! let y = x.matmul(&w).unwrap().tanh();
//! assert_eq!(y.shape().dims(), &[4, 8]);
//! ```

#![forbid(unsafe_code)]

mod error;
mod linalg;
mod ops;
mod reduce;
mod shape;
pub mod slices;
mod tensor;

pub use error::TensorError;
pub use reduce::OnlineSoftmax;
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Asserts that two tensors match elementwise within `tol` (relative to the
/// larger magnitude), panicking with a useful message otherwise.
pub fn assert_allclose(a: &Tensor, b: &Tensor, tol: f32) {
    assert_eq!(
        a.shape(),
        b.shape(),
        "shape mismatch: {:?} vs {:?}",
        a.shape(),
        b.shape()
    );
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        let scale = 1.0f32.max(x.abs()).max(y.abs());
        assert!(
            (x - y).abs() <= tol * scale,
            "mismatch at flat index {i}: {x} vs {y} (tol {tol})"
        );
    }
}

/// Returns the maximum relative elementwise difference between two tensors.
pub fn max_rel_diff(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.shape(), b.shape());
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let scale = 1.0f32.max(x.abs()).max(y.abs());
            (x - y).abs() / scale
        })
        .fold(0.0, f32::max)
}
