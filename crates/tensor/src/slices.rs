//! Slice-level kernels for the zero-copy executor path.
//!
//! The arena executor evaluates UDFs over borrowed `&[f32]` windows instead
//! of `Tensor` values. Every kernel here is **bit-identical** to the
//! corresponding `Tensor` method *in the same SIMD mode*: matmul goes
//! through the same packed / small-product entry points as
//! [`Tensor::matmul`](crate::Tensor::matmul), the elementwise and
//! transcendental kernels dispatch through the same [`ft_simd`] entry
//! points as `ops.rs`, and the reductions replicate the exact sequential
//! accumulation order of `reduce.rs`. The workspace's bitwise parity
//! suites (executor vs. interpreter vs. reference) depend on that.
//!
//! The `*_epi` variants run a fused [`EpiOp`] epilogue on the output while
//! it is hot (in the GEMM register tile on the small path) — bitwise
//! identical to the unfused kernel sequence of the same mode, which is the
//! legality contract the plan-time fusion pass relies on.
//!
//! All output windows are fully overwritten, so callers may reuse scratch
//! buffers across iteration points without clearing them.

use ft_simd::EpiOp;

use crate::linalg;

/// `c = a @ b`, `[m, k] @ [k, n] -> [m, n]`. Shares the packed-GEMM entry
/// with `Tensor::matmul`.
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, c: &mut [f32]) {
    c.fill(0.0);
    linalg::matmul_into(ft_simd::mode(), a, b, m, k, n, c);
}

/// `c = a @ b.T` with `b` stored `[n, k]`. Shares the entry with
/// `Tensor::matmul_transb`.
pub fn matmul_transb(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, c: &mut [f32]) {
    c.fill(0.0);
    linalg::matmul_transb_into(ft_simd::mode(), a, b, m, k, n, c);
}

/// [`matmul`] with a fused epilogue applied while the output block is hot
/// (inside the register tile on the small path). `extras` are full
/// `[m, n]` operand slices consumed in `ops` order.
#[allow(clippy::too_many_arguments)]
pub fn matmul_epi(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    c: &mut [f32],
    ops: &[EpiOp],
    extras: &[&[f32]],
) {
    c.fill(0.0);
    linalg::matmul_epi_into(ft_simd::mode(), a, b, m, k, n, c, ops, extras);
}

/// [`matmul_transb`] with a fused epilogue.
#[allow(clippy::too_many_arguments)]
pub fn matmul_transb_epi(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    c: &mut [f32],
    ops: &[EpiOp],
    extras: &[&[f32]],
) {
    c.fill(0.0);
    linalg::matmul_transb_epi_into(ft_simd::mode(), a, b, m, k, n, c, ops, extras);
}

/// Collapsed elementwise chain: `c = ops(x)`, consuming one extra operand
/// slice per binary op. Bitwise identical to materializing every
/// intermediate of the chain in the same mode.
pub fn ew_chain(x: &[f32], c: &mut [f32], ops: &[EpiOp], extras: &[&[f32]]) {
    c.copy_from_slice(x);
    ft_simd::apply_epi(ft_simd::mode(), c, ops, extras);
}

/// `c = a + b`, routed through ft-simd (bitwise identical in every mode).
pub fn add_into(a: &[f32], b: &[f32], c: &mut [f32]) {
    ft_simd::add_into(ft_simd::mode(), c, a, b);
}

/// `c = a - b`, routed through ft-simd (bitwise identical in every mode).
pub fn sub_into(a: &[f32], b: &[f32], c: &mut [f32]) {
    ft_simd::sub_into(ft_simd::mode(), c, a, b);
}

/// `c = a * b`, routed through ft-simd (bitwise identical in every mode).
pub fn mul_into(a: &[f32], b: &[f32], c: &mut [f32]) {
    ft_simd::mul_into(ft_simd::mode(), c, a, b);
}

/// `c = a / b`, routed through ft-simd (bitwise identical in every mode).
pub fn div_into(a: &[f32], b: &[f32], c: &mut [f32]) {
    ft_simd::div_into(ft_simd::mode(), c, a, b);
}

/// `c = max(a, b)`, routed through ft-simd (bitwise identical in every
/// mode).
pub fn max_into(a: &[f32], b: &[f32], c: &mut [f32]) {
    ft_simd::max_into(ft_simd::mode(), c, a, b);
}

macro_rules! unary_routed {
    ($name:ident, $kernel:ident, $doc:literal) => {
        #[doc = $doc]
        #[doc = " Routed through the same ft-simd kernel as the `Tensor`"]
        #[doc = " method, so executor and interpreter agree bitwise in"]
        #[doc = " every mode."]
        pub fn $name(a: &[f32], c: &mut [f32]) {
            c.copy_from_slice(a);
            ft_simd::$kernel(ft_simd::mode(), c);
        }
    };
}

unary_routed!(exp_into, exp_ip, "`c = exp(a)`.");
unary_routed!(sigmoid_into, sigmoid_ip, "`c = sigmoid(a)`.");
unary_routed!(tanh_into, tanh_ip, "`c = tanh(a)`.");
unary_routed!(silu_into, silu_ip, "`c = a * sigmoid(a)` (SiLU).");
unary_routed!(neg_into, neg_ip, "`c = -a`.");
unary_routed!(relu_into, relu_ip, "`c = max(a, 0)`.");

/// `c = a * s`, routed through ft-simd (bitwise identical in every mode).
pub fn scale_into(a: &[f32], s: f32, c: &mut [f32]) {
    c.copy_from_slice(a);
    ft_simd::scale_ip(ft_simd::mode(), c, s);
}

/// `c = a + s`, routed through ft-simd (bitwise identical in every mode).
pub fn add_scalar_into(a: &[f32], s: f32, c: &mut [f32]) {
    c.copy_from_slice(a);
    ft_simd::add_scalar_ip(ft_simd::mode(), c, s);
}

/// Elementwise `c[i] = f(a[i], b[i])`.
pub fn zip_into(a: &[f32], b: &[f32], c: &mut [f32], f: impl Fn(f32, f32) -> f32) {
    for ((cv, &av), &bv) in c.iter_mut().zip(a).zip(b) {
        *cv = f(av, bv);
    }
}

/// Elementwise `c[i] = f(a[i])`.
pub fn map_into(a: &[f32], c: &mut [f32], f: impl Fn(f32) -> f32) {
    for (cv, &av) in c.iter_mut().zip(a) {
        *cv = f(av);
    }
}

/// Logistic sigmoid, the exact expression `Tensor::sigmoid` applies.
pub fn sigmoid_scalar(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Column broadcast: `a` is `[m, n]`, `b` is `[m, 1]`;
/// `c[i, j] = f(a[i, j], b[i, 0])`. Mirrors `ft-core`'s `col_broadcast`
/// loop order (rows outer, columns inner).
pub fn col_broadcast(
    a: &[f32],
    b: &[f32],
    m: usize,
    n: usize,
    c: &mut [f32],
    f: impl Fn(f32, f32) -> f32,
) {
    for i in 0..m {
        let bv = b[i];
        let row = &a[i * n..(i + 1) * n];
        for (cv, &av) in c[i * n..(i + 1) * n].iter_mut().zip(row) {
            *cv = f(av, bv);
        }
    }
}

/// Row reduction of a `[m, n]` matrix to `[m, 1]`:
/// `c[i] = fold(init, f, a[i, ..])` with columns accumulated ascending —
/// the order `ft-core`'s `row_reduce` uses.
pub fn row_reduce(
    a: &[f32],
    m: usize,
    n: usize,
    init: f32,
    c: &mut [f32],
    f: impl Fn(f32, f32) -> f32,
) {
    for i in 0..m {
        let mut acc = init;
        for &v in &a[i * n..(i + 1) * n] {
            acc = f(acc, v);
        }
        c[i] = acc;
    }
}

/// Row-wise softmax of a `[m, n]` matrix, replicating
/// `Tensor::softmax_rows` exactly: both route through the same
/// [`ft_simd::softmax_rows`] kernel (row max and denominator sum stay
/// sequential in every mode).
pub fn softmax_rows(a: &[f32], m: usize, n: usize, c: &mut [f32]) {
    ft_simd::softmax_rows(ft_simd::mode(), a, m, n, c);
}

/// Copies the `start..end` range of one axis of a row-major tensor with
/// extents `dims` into `c` — the contiguous materialization
/// `Tensor::slice(axis, start, end).to_contiguous()` produces.
pub fn slice_axis(a: &[f32], dims: &[usize], axis: usize, start: usize, end: usize, c: &mut [f32]) {
    let outer: usize = dims[..axis].iter().product();
    let mid = dims[axis];
    let inner: usize = dims[axis + 1..].iter().product();
    let width = (end - start) * inner;
    for o in 0..outer {
        let src = o * mid * inner + start * inner;
        c[o * width..(o + 1) * width].copy_from_slice(&a[src..src + width]);
    }
}

/// Concatenates row-major parts along an axis into `c`. Each part is
/// `(data, axis_extent)`; `outer` is the product of extents before the
/// axis and `inner` the product after (shared by all parts). Pure copy —
/// values are bitwise those of `Tensor::concat`.
pub fn concat_axis(parts: &[(&[f32], usize)], outer: usize, inner: usize, c: &mut [f32]) {
    let total: usize = parts.iter().map(|&(_, e)| e * inner).sum();
    for o in 0..outer {
        let mut dst = o * total;
        for &(data, extent) in parts {
            let width = extent * inner;
            c[dst..dst + width].copy_from_slice(&data[o * width..(o + 1) * width]);
            dst += width;
        }
    }
}

/// Transpose of a `[m, n]` matrix into `[n, m]`.
pub fn transpose(a: &[f32], m: usize, n: usize, c: &mut [f32]) {
    for i in 0..m {
        for j in 0..n {
            c[j * m + i] = a[i * n + j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    fn bits(t: &Tensor) -> Vec<u32> {
        t.to_vec().iter().map(|v| v.to_bits()).collect()
    }

    fn slice_bits(s: &[f32]) -> Vec<u32> {
        s.iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn matmul_matches_tensor_bitwise_small_and_packed() {
        // One shape under the packing threshold, one over it.
        for &(m, k, n, seed) in &[(3, 5, 4, 1u64), (65, 70, 40, 2u64)] {
            let a = Tensor::randn(&[m, k], seed);
            let b = Tensor::randn(&[k, n], seed + 10);
            let mut c = vec![7.0f32; m * n]; // Dirty scratch must not leak.
            matmul(
                a.contiguous_slice().unwrap(),
                b.contiguous_slice().unwrap(),
                m,
                k,
                n,
                &mut c,
            );
            assert_eq!(slice_bits(&c), bits(&a.matmul(&b).unwrap()));

            let bt = Tensor::randn(&[n, k], seed + 20);
            let mut ct = vec![7.0f32; m * n];
            matmul_transb(
                a.contiguous_slice().unwrap(),
                bt.contiguous_slice().unwrap(),
                m,
                k,
                n,
                &mut ct,
            );
            assert_eq!(slice_bits(&ct), bits(&a.matmul_transb(&bt).unwrap()));
        }
    }

    #[test]
    fn softmax_matches_tensor_bitwise() {
        let a = Tensor::randn(&[5, 9], 3);
        let mut c = vec![0.0f32; 45];
        softmax_rows(a.contiguous_slice().unwrap(), 5, 9, &mut c);
        assert_eq!(slice_bits(&c), bits(&a.softmax_rows().unwrap()));
    }

    #[test]
    fn reductions_and_broadcast_match_tensor_bitwise() {
        let a = Tensor::randn(&[4, 7], 4);
        let s = a.contiguous_slice().unwrap();
        let mut mx = vec![0.0f32; 4];
        row_reduce(s, 4, 7, f32::NEG_INFINITY, &mut mx, f32::max);
        let mut sm = vec![0.0f32; 4];
        row_reduce(s, 4, 7, 0.0, &mut sm, |acc, v| acc + v);
        // Oracle: ascending-column fold, as ft-core's row_reduce performs.
        for i in 0..4 {
            let mut accm = f32::NEG_INFINITY;
            let mut accs = 0.0f32;
            for j in 0..7 {
                let v = a.get(&[i, j]).unwrap();
                accm = accm.max(v);
                accs += v;
            }
            assert_eq!(mx[i].to_bits(), accm.to_bits());
            assert_eq!(sm[i].to_bits(), accs.to_bits());
        }

        let b = Tensor::randn(&[4, 1], 5);
        let mut c = vec![0.0f32; 28];
        col_broadcast(s, b.contiguous_slice().unwrap(), 4, 7, &mut c, |x, y| x - y);
        for i in 0..4 {
            for j in 0..7 {
                let want = a.get(&[i, j]).unwrap() - b.get(&[i, 0]).unwrap();
                assert_eq!(c[i * 7 + j].to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn transpose_and_maps_match_tensor() {
        let a = Tensor::randn(&[3, 5], 6);
        let mut c = vec![0.0f32; 15];
        transpose(a.contiguous_slice().unwrap(), 3, 5, &mut c);
        assert_eq!(slice_bits(&c), bits(&a.t().unwrap().to_contiguous()));

        let mut sg = vec![0.0f32; 15];
        map_into(a.contiguous_slice().unwrap(), &mut sg, sigmoid_scalar);
        assert_eq!(slice_bits(&sg), bits(&a.sigmoid()));
    }
}
