//! # ft-pool
//!
//! A persistent worker pool: threads are spawned once and parked on a
//! condvar between jobs, so dispatching a job costs a wake-up instead of a
//! thread spawn. This is the execution substrate shared by the wavefront
//! executor in `ft-backend` (one pool per `execute()`, one job per
//! wavefront step) and the parallel packed GEMM in `ft-tensor` (one job
//! per matrix product).
//!
//! A job is an `Arc<dyn Fn(usize)>` invoked once per participant with its
//! participant index; the calling thread takes part as participant 0, so a
//! pool built for `threads` participants spawns only `threads - 1` OS
//! threads and `threads == 1` degenerates to a plain call with no
//! synchronization at all. Jobs split their work internally, typically
//! with an [`AtomicUsize`](std::sync::atomic::AtomicUsize) chunk cursor
//! the participants drain for dynamic load balancing.
//!
//! ## Robustness
//!
//! * A job panic on any participant is caught and its *original payload*
//!   is preserved: [`WorkerPool::try_run`] returns it as
//!   `Err(Box<dyn Any>)`, and [`WorkerPool::run`] re-raises it with
//!   [`std::panic::resume_unwind`], so callers see the real failure
//!   message instead of a generic "job panicked".
//! * If an OS thread cannot be spawned the pool degrades to however many
//!   workers did start (at minimum the calling thread) instead of
//!   aborting; [`WorkerPool::threads`] reports the effective count.
//! * [`WorkerPool::inject_fault`] arms a one-shot panic on a chosen
//!   participant at a chosen future job — the fault-injection hook used by
//!   the chaos test suite (test/bench-only API; never call it in
//!   production paths).

#![forbid(unsafe_code)]
// Fault paths must degrade into typed errors, never panic-crash: non-test
// code in this crate is unwrap/expect-free (CI's chaos job checks --lib).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

/// A unit of work: called once per participant with the participant index
/// (`0..pool.threads()`); index 0 is the thread that called [`WorkerPool::run`].
pub type Job = Arc<dyn Fn(usize) + Send + Sync + 'static>;

/// A caught panic payload (what `std::thread::JoinHandle::join` returns).
pub type PanicPayload = Box<dyn Any + Send + 'static>;

struct State {
    /// Bumped once per published job; workers compare against the last
    /// epoch they executed to detect fresh work.
    epoch: u64,
    job: Option<Job>,
    /// Spawned workers that have not yet finished the current epoch.
    active: usize,
    /// First panic payload caught during the current epoch.
    payload: Option<PanicPayload>,
    /// One-shot injected fault: `(epoch, participant)` that must panic.
    fault: Option<(u64, usize)>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signaled when a job is published or the pool shuts down.
    work: Condvar,
    /// Signaled when the last active worker finishes an epoch.
    done: Condvar,
}

/// A pool of parked worker threads (see the crate docs).
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Serializes concurrent `run` calls from different threads.
    gate: Mutex<()>,
    threads: usize,
    /// Always-on `pool.jobs` counter handle (one bump per published job).
    jobs: ft_obs::Counter,
}

impl WorkerPool {
    /// Builds a pool with `threads` participants (clamped to at least 1):
    /// the caller plus `threads - 1` parked worker threads. If the OS
    /// refuses to spawn a worker, the pool degrades to the participants
    /// that did start rather than failing.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                active: 0,
                payload: None,
                fault: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(threads - 1);
        for w in 1..threads {
            let shared = Arc::clone(&shared);
            match std::thread::Builder::new()
                .name(format!("ft-pool-{w}"))
                .spawn(move || worker_loop(&shared, w))
            {
                Ok(h) => handles.push(h),
                // Graceful degradation: run with the workers we got.
                Err(_) => break,
            }
        }
        let threads = handles.len() + 1;
        // Always-on metrics: how many participants this process has live
        // (point-in-time) and how many pools were spun up (spawn churn —
        // the serving runtime should hold this at one per runtime).
        let reg = ft_obs::Registry::global();
        reg.counter("pool.created").inc();
        reg.gauge("pool.workers").set(threads as i64);
        WorkerPool {
            shared,
            handles,
            gate: Mutex::new(()),
            threads,
            jobs: ft_obs::Registry::global().counter("pool.jobs"),
        }
    }

    /// Number of participants (including the caller of [`run`](Self::run)).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Arms a one-shot injected panic: participant `participant` panics at
    /// the start of the job published `jobs_from_now` publishes from now
    /// (clamped to at least the next one). **Test/bench-only API** — the
    /// fault-injection hook driving the chaos suite.
    pub fn inject_fault(&self, jobs_from_now: u64, participant: usize) {
        let mut st = self.shared.state.lock();
        st.fault = Some((st.epoch + jobs_from_now.max(1), participant));
    }

    /// Runs `job` on every participant, returning the original panic
    /// payload if the job panicked on any of them (the local participant's
    /// payload wins when several panicked). The pool stays usable after a
    /// failed job.
    pub fn try_run(&self, job: Job) -> Result<(), PanicPayload> {
        let _gate = self.gate.lock();
        self.jobs.inc();
        let workers = self.handles.len();
        let inject_local = {
            let mut st = self.shared.state.lock();
            st.epoch += 1;
            st.payload = None;
            if workers > 0 {
                st.job = Some(Arc::clone(&job));
                st.active = workers;
            }
            let inject = st.fault == Some((st.epoch, 0));
            if inject {
                st.fault = None;
            }
            inject
        };
        if workers > 0 {
            self.shared.work.notify_all();
        }
        let local = catch_unwind(AssertUnwindSafe(|| {
            if inject_local {
                panic!("injected pool fault: participant 0");
            }
            job(0)
        }));
        drop(job);
        let mut worker_payload = None;
        if workers > 0 {
            let mut st = self.shared.state.lock();
            while st.active > 0 {
                st = self.shared.done.wait(st);
            }
            st.job = None;
            worker_payload = st.payload.take();
        }
        match local {
            Err(p) => Err(p),
            Ok(()) => match worker_payload {
                Some(p) => Err(p),
                None => Ok(()),
            },
        }
    }

    /// Runs `job` on every participant and returns when all are done.
    ///
    /// Re-raises the job's own panic (payload preserved) if it panicked on
    /// any participant, mirroring the join behavior of scoped threads.
    pub fn run(&self, job: Job) {
        if let Err(payload) = self.try_run(job) {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    let mut seen = 0u64;
    loop {
        let (job, inject) = {
            let mut st = shared.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    if let Some(job) = st.job.clone() {
                        seen = st.epoch;
                        let inject = st.fault == Some((st.epoch, worker));
                        if inject {
                            st.fault = None;
                        }
                        break (job, inject);
                    }
                }
                st = shared.work.wait(st);
            }
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            if inject {
                panic!("injected pool fault: participant {worker}");
            }
            job(worker)
        }));
        drop(job);
        let mut st = shared.state.lock();
        if let Err(p) = result {
            if st.payload.is_none() {
                st.payload = Some(p);
            }
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done.notify_all();
        }
    }
}

/// Renders a caught panic payload as a string (panics raised with a string
/// message — the overwhelmingly common case — come through verbatim).
pub fn panic_message(payload: &PanicPayload) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The worker count used when none is specified: the `FT_THREADS`
/// environment variable if set to a positive integer, otherwise the
/// machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("FT_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A process-wide pool sized by [`default_threads`], for callers that want
/// parallelism without managing a pool lifetime (e.g. one-off GEMMs).
/// Created lazily on first use; jobs from different threads serialize.
pub fn global() -> &'static WorkerPool {
    use std::sync::OnceLock;
    static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
    GLOBAL.get_or_init(|| WorkerPool::new(default_threads()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_participant_runs_once_per_job() {
        let pool = WorkerPool::new(4);
        for _ in 0..10 {
            let hits = Arc::new(AtomicUsize::new(0));
            let h = Arc::clone(&hits);
            pool.run(Arc::new(move |_| {
                h.fetch_add(1, Ordering::SeqCst);
            }));
            assert_eq!(hits.load(Ordering::SeqCst), 4);
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        pool.run(Arc::new(move |w| {
            assert_eq!(w, 0);
            h.fetch_add(1, Ordering::SeqCst);
        }));
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn chunk_cursor_covers_all_items() {
        let pool = WorkerPool::new(3);
        let n = 1000usize;
        let cursor = Arc::new(AtomicUsize::new(0));
        let sum = Arc::new(AtomicUsize::new(0));
        let (c, s) = (Arc::clone(&cursor), Arc::clone(&sum));
        pool.run(Arc::new(move |_| loop {
            let i = c.fetch_add(1, Ordering::SeqCst);
            if i >= n {
                break;
            }
            s.fetch_add(i, Ordering::SeqCst);
        }));
        assert_eq!(sum.load(Ordering::SeqCst), n * (n - 1) / 2);
    }

    #[test]
    fn workers_stay_alive_across_many_jobs() {
        let pool = WorkerPool::new(2);
        let total = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let t = Arc::clone(&total);
            pool.run(Arc::new(move |_| {
                t.fetch_add(1, Ordering::SeqCst);
            }));
        }
        assert_eq!(total.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn job_panic_propagates_to_caller() {
        let pool = WorkerPool::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(Arc::new(|w| {
                if w == 1 {
                    panic!("boom");
                }
            }));
        }));
        assert!(r.is_err());
        // The pool survives a panicked job.
        let ok = Arc::new(AtomicUsize::new(0));
        let o = Arc::clone(&ok);
        pool.run(Arc::new(move |_| {
            o.fetch_add(1, Ordering::SeqCst);
        }));
        assert_eq!(ok.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn panic_payload_is_preserved() {
        // The original panic message must survive the pool round trip —
        // both through try_run and through run's resume_unwind.
        let pool = WorkerPool::new(3);
        let err = pool
            .try_run(Arc::new(|w| {
                if w == 2 {
                    panic!("boom-42 on worker {w}");
                }
            }))
            .expect_err("job panicked");
        assert_eq!(panic_message(&err), "boom-42 on worker 2");

        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(Arc::new(|w| {
                if w == 1 {
                    panic!("resumed payload");
                }
            }));
        }))
        .expect_err("run re-raises");
        assert_eq!(panic_message(&caught), "resumed payload");
    }

    #[test]
    fn local_participant_panic_is_preserved() {
        let pool = WorkerPool::new(2);
        let err = pool
            .try_run(Arc::new(|w| {
                if w == 0 {
                    panic!("local boom");
                }
            }))
            .expect_err("job panicked");
        assert_eq!(panic_message(&err), "local boom");
    }

    #[test]
    fn injected_fault_fires_once_then_clears() {
        let pool = WorkerPool::new(2);
        pool.inject_fault(1, 1);
        let err = pool
            .try_run(Arc::new(|_| {}))
            .expect_err("fault injected on worker 1");
        assert!(panic_message(&err).contains("injected pool fault"));
        // One-shot: the next job runs clean.
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        pool.try_run(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }))
        .expect("clean job");
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn injected_fault_on_local_participant() {
        let pool = WorkerPool::new(1);
        pool.inject_fault(1, 0);
        let err = pool.try_run(Arc::new(|_| {})).expect_err("local fault");
        assert!(panic_message(&err).contains("participant 0"));
        pool.try_run(Arc::new(|_| {})).expect("recovered");
    }

    #[test]
    fn ft_threads_env_overrides_default() {
        // Can't mutate the environment safely in-process across tests;
        // just check the fallback is sane.
        assert!(default_threads() >= 1);
        assert!(global().threads() >= 1);
    }
}
