//! # ft-pool
//!
//! A persistent worker pool: threads are spawned once and parked on a
//! condvar between jobs, so dispatching a job costs a wake-up instead of a
//! thread spawn. This is the execution substrate shared by the wavefront
//! executor in `ft-backend` (one pool per `execute()`, one job per
//! wavefront step) and the parallel packed GEMM in `ft-tensor` (one job
//! per matrix product).
//!
//! A job is an `Arc<dyn Fn(usize)>` invoked once per participant with its
//! participant index; the calling thread takes part as participant 0, so a
//! pool built for `threads` participants spawns only `threads - 1` OS
//! threads and `threads == 1` degenerates to a plain call with no
//! synchronization at all. Jobs split their work internally, typically
//! with an [`AtomicUsize`](std::sync::atomic::AtomicUsize) chunk cursor
//! the participants drain for dynamic load balancing.

#![forbid(unsafe_code)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

/// A unit of work: called once per participant with the participant index
/// (`0..pool.threads()`); index 0 is the thread that called [`WorkerPool::run`].
pub type Job = Arc<dyn Fn(usize) + Send + Sync + 'static>;

struct State {
    /// Bumped once per published job; workers compare against the last
    /// epoch they executed to detect fresh work.
    epoch: u64,
    job: Option<Job>,
    /// Spawned workers that have not yet finished the current epoch.
    active: usize,
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signaled when a job is published or the pool shuts down.
    work: Condvar,
    /// Signaled when the last active worker finishes an epoch.
    done: Condvar,
}

/// A pool of parked worker threads (see the crate docs).
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Serializes concurrent `run` calls from different threads.
    gate: Mutex<()>,
    threads: usize,
}

impl WorkerPool {
    /// Builds a pool with `threads` participants (clamped to at least 1):
    /// the caller plus `threads - 1` parked worker threads.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                active: 0,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ft-pool-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            gate: Mutex::new(()),
            threads,
        }
    }

    /// Number of participants (including the caller of [`run`](Self::run)).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job` on every participant and returns when all are done.
    ///
    /// Panics if the job panicked on any participant (mirroring the join
    /// behavior of scoped threads).
    pub fn run(&self, job: Job) {
        let _gate = self.gate.lock();
        let workers = self.handles.len();
        if workers > 0 {
            let mut st = self.shared.state.lock();
            st.job = Some(Arc::clone(&job));
            st.epoch += 1;
            st.active = workers;
            drop(st);
            self.shared.work.notify_all();
        }
        let local = catch_unwind(AssertUnwindSafe(|| job(0)));
        drop(job);
        let mut poisoned = local.is_err();
        if workers > 0 {
            let mut st = self.shared.state.lock();
            while st.active > 0 {
                st = self.shared.done.wait(st);
            }
            st.job = None;
            poisoned |= std::mem::take(&mut st.panicked);
        }
        if poisoned {
            panic!("worker pool job panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    if let Some(job) = st.job.clone() {
                        seen = st.epoch;
                        break job;
                    }
                }
                st = shared.work.wait(st);
            }
        };
        let result = catch_unwind(AssertUnwindSafe(|| job(worker)));
        drop(job);
        let mut st = shared.state.lock();
        if result.is_err() {
            st.panicked = true;
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done.notify_all();
        }
    }
}

/// The worker count used when none is specified: the `FT_THREADS`
/// environment variable if set to a positive integer, otherwise the
/// machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("FT_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A process-wide pool sized by [`default_threads`], for callers that want
/// parallelism without managing a pool lifetime (e.g. one-off GEMMs).
/// Created lazily on first use; jobs from different threads serialize.
pub fn global() -> &'static WorkerPool {
    use std::sync::OnceLock;
    static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
    GLOBAL.get_or_init(|| WorkerPool::new(default_threads()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_participant_runs_once_per_job() {
        let pool = WorkerPool::new(4);
        for _ in 0..10 {
            let hits = Arc::new(AtomicUsize::new(0));
            let h = Arc::clone(&hits);
            pool.run(Arc::new(move |_| {
                h.fetch_add(1, Ordering::SeqCst);
            }));
            assert_eq!(hits.load(Ordering::SeqCst), 4);
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        pool.run(Arc::new(move |w| {
            assert_eq!(w, 0);
            h.fetch_add(1, Ordering::SeqCst);
        }));
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn chunk_cursor_covers_all_items() {
        let pool = WorkerPool::new(3);
        let n = 1000usize;
        let cursor = Arc::new(AtomicUsize::new(0));
        let sum = Arc::new(AtomicUsize::new(0));
        let (c, s) = (Arc::clone(&cursor), Arc::clone(&sum));
        pool.run(Arc::new(move |_| loop {
            let i = c.fetch_add(1, Ordering::SeqCst);
            if i >= n {
                break;
            }
            s.fetch_add(i, Ordering::SeqCst);
        }));
        assert_eq!(sum.load(Ordering::SeqCst), n * (n - 1) / 2);
    }

    #[test]
    fn workers_stay_alive_across_many_jobs() {
        let pool = WorkerPool::new(2);
        let total = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let t = Arc::clone(&total);
            pool.run(Arc::new(move |_| {
                t.fetch_add(1, Ordering::SeqCst);
            }));
        }
        assert_eq!(total.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn job_panic_propagates_to_caller() {
        let pool = WorkerPool::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(Arc::new(|w| {
                if w == 1 {
                    panic!("boom");
                }
            }));
        }));
        assert!(r.is_err());
        // The pool survives a panicked job.
        let ok = Arc::new(AtomicUsize::new(0));
        let o = Arc::clone(&ok);
        pool.run(Arc::new(move |_| {
            o.fetch_add(1, Ordering::SeqCst);
        }));
        assert_eq!(ok.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn ft_threads_env_overrides_default() {
        // Can't mutate the environment safely in-process across tests;
        // just check the fallback is sane.
        assert!(default_threads() >= 1);
        assert!(global().threads() >= 1);
    }
}
