//! # ft-pool
//!
//! A persistent worker pool: threads are spawned once and parked on a
//! condvar between jobs, so dispatching a job costs a wake-up instead of a
//! thread spawn. This is the execution substrate shared by the wavefront
//! executor in `ft-backend` (one pool per `execute()`, one job per
//! wavefront step) and the parallel packed GEMM in `ft-tensor` (one job
//! per matrix product).
//!
//! A job is an `Arc<dyn Fn(usize)>` invoked once per participant with its
//! participant index; the calling thread takes part as participant 0, so a
//! pool built for `threads` participants spawns only `threads - 1` OS
//! threads and `threads == 1` degenerates to a plain call with no
//! synchronization at all. Jobs split their work internally, typically
//! with an [`AtomicUsize`](std::sync::atomic::AtomicUsize) chunk cursor
//! the participants drain for dynamic load balancing.
//!
//! ## Robustness
//!
//! * A job panic on any participant is caught and its *original payload*
//!   is preserved: [`WorkerPool::try_run`] returns it as
//!   `Err(Box<dyn Any>)`, and [`WorkerPool::run`] re-raises it with
//!   [`std::panic::resume_unwind`], so callers see the real failure
//!   message instead of a generic "job panicked".
//! * If an OS thread cannot be spawned the pool degrades to however many
//!   workers did start (at minimum the calling thread) instead of
//!   aborting; [`WorkerPool::threads`] reports the effective count, the
//!   `pool.workers` gauge exports it, and `pool.spawn_failures` counts the
//!   participants that never came up.
//! * [`WorkerPool::inject_fault`] arms a one-shot panic on a chosen
//!   participant at a chosen future job — the fault-injection hook used by
//!   the chaos test suite (test/bench-only API; never call it in
//!   production paths).
//!
//! ## Supervised pools and the stall watchdog
//!
//! A regular pool runs the calling thread as participant 0, so a wedged
//! job (a UDF stuck in an infinite loop) wedges the caller with it — there
//! is no one left to notice. A pool built with [`WorkerPool::supervised`]
//! spawns a thread for *every* participant and keeps the caller out of job
//! code entirely, which makes a bounded wait possible:
//! [`WorkerPool::try_run_for`] watches per-participant heartbeat counters
//! ([`WorkerPool::beat`], bumped by workers at job pickup/completion and
//! by compute loops once per drained chunk) and, if no participant makes
//! progress for the configured window, declares the job stalled. The pool
//! is then **poisoned**: the stalled job's threads are abandoned (they
//! exit on their own if the wedge ever clears), every later submit fails
//! fast with [`RunError::Poisoned`], and dropping the pool detaches
//! instead of joining so the caller can replace it without inheriting the
//! hang.

#![forbid(unsafe_code)]
// Fault paths must degrade into typed errors, never panic-crash: non-test
// code in this crate is unwrap/expect-free (CI's chaos job checks --lib).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, MutexGuard};

/// A unit of work: called once per participant with the participant index
/// (`0..pool.threads()`); index 0 is the thread that called [`WorkerPool::run`].
pub type Job = Arc<dyn Fn(usize) + Send + Sync + 'static>;

/// A caught panic payload (what `std::thread::JoinHandle::join` returns).
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// Why a [`WorkerPool::try_run_for`] submission failed.
pub enum RunError {
    /// The job panicked on some participant; the original payload.
    Panic(PanicPayload),
    /// No participant made heartbeat progress for the watchdog window:
    /// the job is presumed wedged and the pool is now poisoned.
    Stalled {
        /// Wall time from job publish to the stall verdict.
        elapsed_ms: u64,
    },
    /// The pool was already poisoned by an earlier stall; the job was
    /// rejected without running. Replace the pool.
    Poisoned,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Panic(p) => write!(f, "job panicked: {}", panic_message(p)),
            RunError::Stalled { elapsed_ms } => {
                write!(
                    f,
                    "job stalled: no worker heartbeat, gave up after {elapsed_ms} ms"
                )
            }
            RunError::Poisoned => write!(f, "pool poisoned by an earlier stalled job"),
        }
    }
}

impl std::fmt::Debug for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self}")
    }
}

struct State {
    /// Bumped once per published job; workers compare against the last
    /// epoch they executed to detect fresh work.
    epoch: u64,
    job: Option<Job>,
    /// Spawned workers that have not yet finished the current epoch.
    active: usize,
    /// First panic payload caught during the current epoch.
    payload: Option<PanicPayload>,
    /// One-shot injected fault: `(epoch, participant)` that must panic.
    fault: Option<(u64, usize)>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signaled when a job is published or the pool shuts down.
    work: Condvar,
    /// Signaled when the last active worker finishes an epoch.
    done: Condvar,
    /// Per-participant heartbeat counters: bumped at job pickup and
    /// completion by the worker loop, and once per drained chunk by
    /// compute loops via [`WorkerPool::beat`]. The stall watchdog declares
    /// a job wedged when the sum stops advancing.
    beats: Vec<AtomicU64>,
}

fn beat_sum(shared: &Shared) -> u64 {
    shared
        .beats
        .iter()
        .map(|b| b.load(Ordering::Relaxed))
        .fold(0u64, u64::wrapping_add)
}

/// A pool of parked worker threads (see the crate docs).
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Serializes concurrent `run` calls from different threads.
    gate: Mutex<()>,
    threads: usize,
    /// Supervised pools spawn a thread per participant; the caller never
    /// runs job code, so a wedged job can be timed out and abandoned.
    supervised: bool,
    /// Set when a stall verdict abandoned a job: the pool refuses further
    /// work and its Drop detaches instead of joining.
    poisoned: AtomicBool,
    /// Always-on `pool.jobs` counter handle (one bump per published job).
    jobs: ft_obs::Counter,
}

impl WorkerPool {
    /// Builds a pool with `threads` participants (clamped to at least 1):
    /// the caller plus `threads - 1` parked worker threads. If the OS
    /// refuses to spawn a worker, the pool degrades to the participants
    /// that did start rather than failing.
    pub fn new(threads: usize) -> Self {
        Self::build(threads, false)
    }

    /// Builds a *supervised* pool: `threads` participants, **all** on
    /// spawned worker threads. The caller only publishes jobs and waits,
    /// which is what lets [`try_run_for`](Self::try_run_for) bound a
    /// job's wall time — a wedged job can be abandoned because the caller
    /// was never inside it. Degrades to an ordinary caller-participates
    /// pool if no worker can be spawned at all.
    pub fn supervised(threads: usize) -> Self {
        Self::build(threads, true)
    }

    fn build(threads: usize, supervised: bool) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                active: 0,
                payload: None,
                fault: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            beats: (0..threads).map(|_| AtomicU64::new(0)).collect(),
        });
        let reg = ft_obs::Registry::global();
        // Supervised pools spawn a worker for every participant id
        // (0..threads); regular pools leave participant 0 to the caller.
        let first = usize::from(!supervised);
        let mut handles = Vec::with_capacity(threads - first);
        for w in first..threads {
            let shared = Arc::clone(&shared);
            match std::thread::Builder::new()
                .name(format!("ft-pool-{w}"))
                .spawn(move || worker_loop(&shared, w))
            {
                Ok(h) => handles.push(h),
                // Graceful degradation: run with the workers we got, but
                // leave an audit trail — a pool silently below its
                // requested width is exactly the kind of capacity loss an
                // operator needs a counter for.
                Err(_) => {
                    reg.counter("pool.spawn_failures").add((threads - w) as u64);
                    break;
                }
            }
        }
        // A supervised pool with zero workers has nobody to run jobs:
        // fall back to caller-participates so it still makes progress
        // (the watchdog is unavailable in that degraded state).
        let (threads, supervised) = if supervised && handles.is_empty() {
            (1, false)
        } else if supervised {
            (handles.len(), true)
        } else {
            (handles.len() + 1, false)
        };
        // Always-on metrics: how many participants this process has live
        // (point-in-time) and how many pools were spun up (spawn churn —
        // the serving runtime should hold this at one per runtime, plus
        // one per stall-triggered replacement).
        reg.counter("pool.created").inc();
        reg.gauge("pool.workers").set(threads as i64);
        WorkerPool {
            shared,
            handles,
            gate: Mutex::new(()),
            threads,
            supervised,
            poisoned: AtomicBool::new(false),
            jobs: reg.counter("pool.jobs"),
        }
    }

    /// Number of participants (including the caller of [`run`](Self::run)).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether every participant is a spawned worker thread (see
    /// [`supervised`](Self::supervised)).
    pub fn is_supervised(&self) -> bool {
        self.supervised
    }

    /// Whether a stall verdict has poisoned this pool (all further
    /// submissions fail fast with [`RunError::Poisoned`]).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Records heartbeat progress for `participant`. Compute loops call
    /// this once per drained work chunk so the stall watchdog can tell a
    /// slow-but-advancing job from a wedged one.
    pub fn beat(&self, participant: usize) {
        if let Some(b) = self.shared.beats.get(participant) {
            b.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Arms a one-shot injected panic: participant `participant` panics at
    /// the start of the job published `jobs_from_now` publishes from now
    /// (clamped to at least the next one). **Test/bench-only API** — the
    /// fault-injection hook driving the chaos suite.
    pub fn inject_fault(&self, jobs_from_now: u64, participant: usize) {
        let mut st = self.shared.state.lock();
        st.fault = Some((st.epoch + jobs_from_now.max(1), participant));
    }

    /// Runs `job` on every participant, returning the original panic
    /// payload if the job panicked on any of them (the local participant's
    /// payload wins when several panicked). The pool stays usable after a
    /// failed job. A poisoned pool rejects the job with a synthetic
    /// payload without running it.
    pub fn try_run(&self, job: Job) -> Result<(), PanicPayload> {
        match self.run_core(job, None) {
            Ok(()) => Ok(()),
            Err(RunError::Panic(p)) => Err(p),
            // Unreachable without a timeout, except Poisoned: surface it
            // through the payload channel so legacy callers still get a
            // readable failure.
            Err(e) => Err(Box::new(e.to_string())),
        }
    }

    /// Runs `job` with a stall watchdog: if no participant records
    /// heartbeat progress for `timeout`, the job is declared
    /// [`Stalled`](RunError::Stalled), the pool is poisoned, and the
    /// wedged threads are abandoned. `timeout: None` waits unboundedly
    /// (equivalent to [`try_run`](Self::try_run)).
    ///
    /// The watchdog can only cover work the caller is not part of: on a
    /// [`supervised`](Self::supervised) pool that is the whole job; on a
    /// regular pool the caller's own participant-0 share runs first,
    /// unbounded, and only the spawned workers' remainder is watched.
    pub fn try_run_for(&self, job: Job, timeout: Option<Duration>) -> Result<(), RunError> {
        self.run_core(job, timeout)
    }

    fn run_core(&self, job: Job, timeout: Option<Duration>) -> Result<(), RunError> {
        let _gate = self.gate.lock();
        if self.is_poisoned() {
            return Err(RunError::Poisoned);
        }
        self.jobs.inc();
        let started = Instant::now();
        let workers = self.handles.len();
        if self.supervised {
            {
                let mut st = self.shared.state.lock();
                st.epoch += 1;
                st.payload = None;
                st.job = Some(Arc::clone(&job));
                st.active = workers;
            }
            self.shared.work.notify_all();
            drop(job);
            let st = self.shared.state.lock();
            let mut st = self.wait_done(st, timeout, started)?;
            st.job = None;
            return match st.payload.take() {
                Some(p) => Err(RunError::Panic(p)),
                None => Ok(()),
            };
        }
        let inject_local = {
            let mut st = self.shared.state.lock();
            st.epoch += 1;
            st.payload = None;
            if workers > 0 {
                st.job = Some(Arc::clone(&job));
                st.active = workers;
            }
            let inject = st.fault == Some((st.epoch, 0));
            if inject {
                st.fault = None;
            }
            inject
        };
        if workers > 0 {
            self.shared.work.notify_all();
        }
        let local = catch_unwind(AssertUnwindSafe(|| {
            if inject_local {
                panic!("injected pool fault: participant 0");
            }
            job(0)
        }));
        drop(job);
        let mut worker_payload = None;
        if workers > 0 {
            let st = self.shared.state.lock();
            let mut st = self.wait_done(st, timeout, started)?;
            st.job = None;
            worker_payload = st.payload.take();
        }
        match local {
            Err(p) => Err(RunError::Panic(p)),
            Ok(()) => match worker_payload {
                Some(p) => Err(RunError::Panic(p)),
                None => Ok(()),
            },
        }
    }

    /// Waits for the current epoch to finish. With a timeout, polls the
    /// heartbeat sum; when it stops advancing for the whole window the
    /// job is declared stalled and the pool poisoned (shutdown is raised
    /// so non-wedged workers exit once they finish).
    fn wait_done<'a>(
        &'a self,
        mut st: MutexGuard<'a, State>,
        timeout: Option<Duration>,
        started: Instant,
    ) -> Result<MutexGuard<'a, State>, RunError> {
        let Some(limit) = timeout else {
            while st.active > 0 {
                st = self.shared.done.wait(st);
            }
            return Ok(st);
        };
        let poll = (limit / 4).clamp(Duration::from_millis(1), Duration::from_millis(50));
        let mut last_sum = beat_sum(&self.shared);
        let mut last_progress = Instant::now();
        while st.active > 0 {
            let (guard, _) = self.shared.done.wait_timeout(st, poll);
            st = guard;
            if st.active == 0 {
                break;
            }
            let sum = beat_sum(&self.shared);
            if sum != last_sum {
                last_sum = sum;
                last_progress = Instant::now();
            } else if last_progress.elapsed() >= limit {
                self.poisoned.store(true, Ordering::SeqCst);
                st.shutdown = true;
                self.shared.work.notify_all();
                return Err(RunError::Stalled {
                    elapsed_ms: started.elapsed().as_millis() as u64,
                });
            }
        }
        Ok(st)
    }

    /// Runs `job` on every participant and returns when all are done.
    ///
    /// Re-raises the job's own panic (payload preserved) if it panicked on
    /// any participant, mirroring the join behavior of scoped threads.
    pub fn run(&self, job: Job) {
        if let Err(payload) = self.try_run(job) {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        if self.is_poisoned() {
            // A stalled job may still hold a worker hostage; joining
            // would inherit the hang. Detach — workers exit on their own
            // when (if) the wedged job ever returns.
            self.handles.clear();
        } else {
            for h in self.handles.drain(..) {
                let _ = h.join();
            }
        }
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    let mut seen = 0u64;
    loop {
        let (job, inject) = {
            let mut st = shared.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    if let Some(job) = st.job.clone() {
                        seen = st.epoch;
                        let inject = st.fault == Some((st.epoch, worker));
                        if inject {
                            st.fault = None;
                        }
                        break (job, inject);
                    }
                }
                st = shared.work.wait(st);
            }
        };
        if let Some(b) = shared.beats.get(worker) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            if inject {
                panic!("injected pool fault: participant {worker}");
            }
            job(worker)
        }));
        drop(job);
        if let Some(b) = shared.beats.get(worker) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        let mut st = shared.state.lock();
        if let Err(p) = result {
            if st.payload.is_none() {
                st.payload = Some(p);
            }
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done.notify_all();
        }
    }
}

/// Renders a caught panic payload as a string (panics raised with a string
/// message — the overwhelmingly common case — come through verbatim).
pub fn panic_message(payload: &PanicPayload) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The worker count used when none is specified: the `FT_THREADS`
/// environment variable if set to a positive integer, otherwise the
/// machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("FT_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A process-wide pool sized by [`default_threads`], for callers that want
/// parallelism without managing a pool lifetime (e.g. one-off GEMMs).
/// Created lazily on first use; jobs from different threads serialize.
pub fn global() -> &'static WorkerPool {
    use std::sync::OnceLock;
    static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
    GLOBAL.get_or_init(|| WorkerPool::new(default_threads()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_participant_runs_once_per_job() {
        let pool = WorkerPool::new(4);
        for _ in 0..10 {
            let hits = Arc::new(AtomicUsize::new(0));
            let h = Arc::clone(&hits);
            pool.run(Arc::new(move |_| {
                h.fetch_add(1, Ordering::SeqCst);
            }));
            assert_eq!(hits.load(Ordering::SeqCst), 4);
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        pool.run(Arc::new(move |w| {
            assert_eq!(w, 0);
            h.fetch_add(1, Ordering::SeqCst);
        }));
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn chunk_cursor_covers_all_items() {
        let pool = WorkerPool::new(3);
        let n = 1000usize;
        let cursor = Arc::new(AtomicUsize::new(0));
        let sum = Arc::new(AtomicUsize::new(0));
        let (c, s) = (Arc::clone(&cursor), Arc::clone(&sum));
        pool.run(Arc::new(move |_| loop {
            let i = c.fetch_add(1, Ordering::SeqCst);
            if i >= n {
                break;
            }
            s.fetch_add(i, Ordering::SeqCst);
        }));
        assert_eq!(sum.load(Ordering::SeqCst), n * (n - 1) / 2);
    }

    #[test]
    fn workers_stay_alive_across_many_jobs() {
        let pool = WorkerPool::new(2);
        let total = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let t = Arc::clone(&total);
            pool.run(Arc::new(move |_| {
                t.fetch_add(1, Ordering::SeqCst);
            }));
        }
        assert_eq!(total.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn job_panic_propagates_to_caller() {
        let pool = WorkerPool::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(Arc::new(|w| {
                if w == 1 {
                    panic!("boom");
                }
            }));
        }));
        assert!(r.is_err());
        // The pool survives a panicked job.
        let ok = Arc::new(AtomicUsize::new(0));
        let o = Arc::clone(&ok);
        pool.run(Arc::new(move |_| {
            o.fetch_add(1, Ordering::SeqCst);
        }));
        assert_eq!(ok.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn panic_payload_is_preserved() {
        // The original panic message must survive the pool round trip —
        // both through try_run and through run's resume_unwind.
        let pool = WorkerPool::new(3);
        let err = pool
            .try_run(Arc::new(|w| {
                if w == 2 {
                    panic!("boom-42 on worker {w}");
                }
            }))
            .expect_err("job panicked");
        assert_eq!(panic_message(&err), "boom-42 on worker 2");

        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(Arc::new(|w| {
                if w == 1 {
                    panic!("resumed payload");
                }
            }));
        }))
        .expect_err("run re-raises");
        assert_eq!(panic_message(&caught), "resumed payload");
    }

    #[test]
    fn local_participant_panic_is_preserved() {
        let pool = WorkerPool::new(2);
        let err = pool
            .try_run(Arc::new(|w| {
                if w == 0 {
                    panic!("local boom");
                }
            }))
            .expect_err("job panicked");
        assert_eq!(panic_message(&err), "local boom");
    }

    #[test]
    fn injected_fault_fires_once_then_clears() {
        let pool = WorkerPool::new(2);
        pool.inject_fault(1, 1);
        let err = pool
            .try_run(Arc::new(|_| {}))
            .expect_err("fault injected on worker 1");
        assert!(panic_message(&err).contains("injected pool fault"));
        // One-shot: the next job runs clean.
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        pool.try_run(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }))
        .expect("clean job");
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn injected_fault_on_local_participant() {
        let pool = WorkerPool::new(1);
        pool.inject_fault(1, 0);
        let err = pool.try_run(Arc::new(|_| {})).expect_err("local fault");
        assert!(panic_message(&err).contains("participant 0"));
        pool.try_run(Arc::new(|_| {})).expect("recovered");
    }

    #[test]
    fn supervised_pool_runs_every_participant() {
        let pool = WorkerPool::supervised(3);
        assert!(pool.is_supervised());
        assert_eq!(pool.threads(), 3);
        for _ in 0..5 {
            let hits = Arc::new(AtomicUsize::new(0));
            let h = Arc::clone(&hits);
            pool.try_run(Arc::new(move |_| {
                h.fetch_add(1, Ordering::SeqCst);
            }))
            .expect("clean job");
            assert_eq!(hits.load(Ordering::SeqCst), 3);
        }
    }

    #[test]
    fn supervised_pool_preserves_panic_payload() {
        let pool = WorkerPool::supervised(2);
        let err = pool
            .try_run(Arc::new(|w| {
                if w == 1 {
                    panic!("supervised boom");
                }
            }))
            .expect_err("job panicked");
        assert_eq!(panic_message(&err), "supervised boom");
        // Still usable after a panic (panic != stall).
        pool.try_run(Arc::new(|_| {})).expect("recovered");
        assert!(!pool.is_poisoned());
    }

    #[test]
    fn stalled_job_is_abandoned_and_pool_poisoned() {
        let pool = WorkerPool::supervised(2);
        let err = pool
            .try_run_for(
                Arc::new(|w| {
                    if w == 0 {
                        // Simulated wedge: long enough for the watchdog to
                        // trip, short enough for the detached worker to
                        // drain before the test process exits.
                        std::thread::sleep(Duration::from_millis(400));
                    }
                }),
                Some(Duration::from_millis(50)),
            )
            .expect_err("watchdog trips");
        assert!(matches!(err, RunError::Stalled { .. }), "got {err}");
        assert!(pool.is_poisoned());
        // Poisoned pools fail fast without running anything.
        let err2 = pool
            .try_run_for(Arc::new(|_| {}), None)
            .expect_err("poisoned pool rejects work");
        assert!(matches!(err2, RunError::Poisoned));
    }

    #[test]
    fn progressing_job_survives_the_watchdog() {
        let pool = Arc::new(WorkerPool::supervised(2));
        let p = Arc::clone(&pool);
        // Runs for ~100 ms, well past the 60 ms window, but beats every
        // 10 ms: slow-but-advancing work must not be declared stalled.
        pool.try_run_for(
            Arc::new(move |w| {
                for _ in 0..10 {
                    std::thread::sleep(Duration::from_millis(10));
                    p.beat(w);
                }
            }),
            Some(Duration::from_millis(60)),
        )
        .expect("progressing job is not a stall");
        assert!(!pool.is_poisoned());
    }

    #[test]
    fn ft_threads_env_overrides_default() {
        // Can't mutate the environment safely in-process across tests;
        // just check the fallback is sane.
        assert!(default_threads() >= 1);
        assert!(global().threads() >= 1);
    }
}
