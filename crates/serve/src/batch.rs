//! Batchability analysis and fused-batch construction.
//!
//! Dynamic batching (§ DESIGN.md §10) fuses K same-structure requests into
//! one launch by concatenating their inputs along the outermost
//! programmable dimension, running a single widened wavefront, and
//! splitting the outputs back per request. The legality analysis is
//! exactly shape polymorphism over the outer axis — a fused batch *is* the
//! program instantiated at a larger outer extent — so it lives in
//! [`ft_core::poly`] and is re-exported here under its serving-layer
//! names: [`analyze`] decides fusability and classifies each buffer as
//! **batched** (concatenate along the outer axis) or **shared** (one copy,
//! e.g. weights).
//!
//! Batches are *ragged*: member requests need not share an outer extent.
//! [`concat_outer`] fuses parts of any lengths and
//! [`split_outer_parts`] splits the fused outputs back using the
//! per-part extents recorded at concat time; [`split_outer`] remains the
//! equal-chunk fast case. Programs that fail the analysis (outer
//! scans/folds, strided outer access) are served per-request.

use ft_core::{CoreError, FractalTensor, Program};

pub use ft_core::poly::analyze_outer as analyze;
pub use ft_core::poly::OuterInfo as BatchInfo;

/// The fused program for total outer extent `B * k` (`k` equal-extent
/// requests): a [`ft_core::poly::with_outer_extent`] re-extent with a
/// batch-flavored debug name. For ragged batches, re-extent to the sum of
/// the parts' extents instead.
pub fn batched_program(program: &Program, info: &BatchInfo, k: usize) -> Program {
    let mut fused = ft_core::poly::with_outer_extent(program, info, info.batch_extent * k);
    fused.name = format!("{}[x{k}]", program.name);
    fused
}

/// Concatenates per-request FractalTensors along the outermost list.
/// Parts may have different outer lengths (ragged batching); record
/// `parts[i].len()` at concat time to split the result back with
/// [`split_outer_parts`].
pub fn concat_outer(parts: &[&FractalTensor]) -> ft_core::Result<FractalTensor> {
    let first = parts
        .first()
        .ok_or_else(|| CoreError::Adt("concat of zero parts".into()))?;
    match first {
        FractalTensor::Leaves(_) => {
            let mut leaves = Vec::new();
            for p in parts {
                match p {
                    FractalTensor::Leaves(v) => leaves.extend(v.iter().cloned()),
                    FractalTensor::Nested(_) => {
                        return Err(CoreError::Adt("concat parts differ in depth".into()))
                    }
                }
            }
            FractalTensor::from_tensors(leaves)
        }
        FractalTensor::Nested(_) => {
            let mut elems = Vec::new();
            for p in parts {
                match p {
                    FractalTensor::Nested(v) => elems.extend(v.iter().cloned()),
                    FractalTensor::Leaves(_) => {
                        return Err(CoreError::Adt("concat parts differ in depth".into()))
                    }
                }
            }
            FractalTensor::nested(elems)
        }
    }
}

/// Splits a fused output back into per-request chunks along the outermost
/// list, using the per-part outer extents recorded when the batch was
/// concatenated. Offset-aware: parts may differ (ragged batches); the sum
/// of `parts` must equal the fused outer length and no part may be empty.
pub fn split_outer_parts(
    ft: &FractalTensor,
    parts: &[usize],
) -> ft_core::Result<Vec<FractalTensor>> {
    let n = ft.len();
    let total: usize = parts.iter().sum();
    if parts.is_empty() || total != n || parts.contains(&0) {
        return Err(CoreError::Adt(format!(
            "cannot split outer length {n} into parts {parts:?}"
        )));
    }
    fn ranges<T: Clone>(v: &[T], parts: &[usize]) -> Vec<Vec<T>> {
        // Equal chunks — the identical-extent fast case.
        let chunk = parts[0];
        if parts.iter().all(|&p| p == chunk) {
            return v.chunks(chunk).map(<[T]>::to_vec).collect();
        }
        let mut out = Vec::with_capacity(parts.len());
        let mut off = 0usize;
        for &p in parts {
            out.push(v[off..off + p].to_vec());
            off += p;
        }
        out
    }
    match ft {
        FractalTensor::Leaves(v) => ranges(v, parts)
            .into_iter()
            .map(FractalTensor::from_tensors)
            .collect(),
        FractalTensor::Nested(v) => ranges(v, parts)
            .into_iter()
            .map(FractalTensor::nested)
            .collect(),
    }
}

/// Splits a fused output back into `k` equal per-request chunks along the
/// outermost list — the identical-extent fast case of
/// [`split_outer_parts`].
pub fn split_outer(ft: &FractalTensor, k: usize) -> ft_core::Result<Vec<FractalTensor>> {
    let n = ft.len();
    if k == 0 || !n.is_multiple_of(k) {
        return Err(CoreError::Adt(format!(
            "cannot split outer length {n} into {k} chunks"
        )));
    }
    split_outer_parts(ft, &vec![n / k; k])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::builders::stacked_rnn_program;
    use ft_tensor::Tensor;

    #[test]
    fn stacked_rnn_is_batchable() {
        let p = stacked_rnn_program(2, 3, 4, 8);
        let info = analyze(&p).expect("stacked RNN batches along the sequence dim");
        assert_eq!(info.batch_extent, 2);
        // xss (input sequences) and ysss (outputs) are batched; the weight
        // stack ws is shared.
        let by_name: Vec<(&str, bool)> = p
            .buffers
            .iter()
            .zip(&info.batched)
            .map(|(d, &b)| (d.name.as_str(), b))
            .collect();
        for (name, batched) in by_name {
            if name.contains("ws") {
                assert!(!batched, "weights must be shared, got batched {name}");
            } else {
                assert!(batched, "{name} should be batched");
            }
        }
    }

    #[test]
    fn lstm_is_batchable() {
        let p = ft_workloads::lstm::program(ft_workloads::lstm::LstmShape {
            batch: 2,
            hidden: 8,
            depth: 2,
            seq: 3,
        });
        assert!(analyze(&p).is_some());
    }

    #[test]
    fn outer_scan_is_not_batchable() {
        let mut p = stacked_rnn_program(2, 3, 4, 8);
        for nest in &mut p.nests {
            nest.ops[0] = ft_core::OpKind::ScanL;
        }
        assert!(analyze(&p).is_none());
    }

    #[test]
    fn mismatched_outer_extents_are_not_batchable() {
        let mut p = stacked_rnn_program(2, 3, 4, 8);
        if let Some(n) = p.nests.first_mut() {
            n.extents[0] = 3;
        }
        assert!(analyze(&p).is_none());
    }

    #[test]
    fn batched_program_scales_only_batched_dims() {
        let p = stacked_rnn_program(2, 3, 4, 8);
        let info = analyze(&p).unwrap();
        let fused = batched_program(&p, &info, 3);
        assert!(fused.validate().is_ok());
        for nest in &fused.nests {
            assert_eq!(nest.extents[0], 6);
        }
        for (decl, (orig, &b)) in fused
            .buffers
            .iter()
            .zip(p.buffers.iter().zip(&info.batched))
        {
            if b {
                assert_eq!(decl.dims[0], orig.dims[0] * 3);
            } else {
                assert_eq!(decl.dims, orig.dims);
            }
        }
        // The fused program must itself still compile.
        assert!(ft_passes::compile(&fused).is_ok());
    }

    fn seq(base: f32, outer: usize) -> FractalTensor {
        FractalTensor::nested(
            (0..outer)
                .map(|i| {
                    FractalTensor::from_tensors(vec![
                        Tensor::full(&[1, 2], base + 2.0 * i as f32),
                        Tensor::full(&[1, 2], base + 2.0 * i as f32 + 1.0),
                    ])
                    .unwrap()
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn concat_then_split_round_trips() {
        let a = seq(0.0, 2);
        let b = seq(10.0, 2);
        let cat = concat_outer(&[&a, &b]).unwrap();
        assert_eq!(cat.prog_dims(), vec![4, 2]);
        let back = split_outer(&cat, 2).unwrap();
        assert_eq!(back, vec![a, b]);
        assert!(split_outer(&cat, 3).is_err());
    }

    /// Regression: the old `split_outer` hard-errored unless the fused
    /// length divided evenly — unequal (ragged) members could not be split
    /// back at all.
    #[test]
    fn ragged_concat_then_split_round_trips() {
        let a = seq(0.0, 1);
        let b = seq(10.0, 3);
        let c = seq(100.0, 2);
        let cat = concat_outer(&[&a, &b, &c]).unwrap();
        assert_eq!(cat.len(), 6);
        // The equal-chunk API cannot express this split.
        assert!(split_outer(&cat, 4).is_err());
        let back = split_outer_parts(&cat, &[1, 3, 2]).unwrap();
        assert_eq!(back, vec![a, b, c]);
        // Wrong totals and zero-length parts are rejected.
        assert!(split_outer_parts(&cat, &[1, 3]).is_err());
        assert!(split_outer_parts(&cat, &[1, 3, 1]).is_err());
        assert!(split_outer_parts(&cat, &[0, 3, 3]).is_err());
    }

    #[test]
    fn split_outer_parts_handles_flat_leaf_lists() {
        let flat =
            FractalTensor::from_tensors((0..5).map(|i| Tensor::full(&[1, 2], i as f32)).collect())
                .unwrap();
        let back = split_outer_parts(&flat, &[2, 3]).unwrap();
        assert_eq!(back[0].len(), 2);
        assert_eq!(back[1].len(), 3);
    }
}
