//! Batchability analysis and fused-batch construction.
//!
//! Dynamic batching (§ DESIGN.md §10) fuses K same-plan requests into one
//! launch by concatenating their inputs along the outermost programmable
//! dimension, running a single widened wavefront, and splitting the outputs
//! back per request. That is only sound when the outermost dimension is
//! embarrassingly parallel and every cross-element access pattern is
//! preserved under concatenation:
//!
//! * every nest's outermost operator is `map` (no loop-carried dependence
//!   along the batch dimension) and all nests share one outer extent `B`;
//! * each buffer is either **batched** — its outer axis is indexed by
//!   exactly the outer iteration variable (`axes[0] == t0`) and no other
//!   axis mentions `t0`, so element `b` of request `r` maps 1:1 to element
//!   `r*B + b` of the fused buffer — or **shared** — no access mentions
//!   `t0` at all, so every request reads the same values (weights);
//! * every written buffer (outputs and intermediates) is batched, so the
//!   fused outputs split cleanly into K per-request chunks.
//!
//! Anything else (strided/windowed/constant outer access, a buffer used
//! both ways, outer scans/folds) makes the program non-batchable and the
//! runtime falls back to per-request execution.

use ft_core::{
    AccessSpec, AxisExpr, BufferKind, CarriedInit, CoreError, FractalTensor, OpKind, Program,
};

/// How each buffer of a batchable program participates in a fused batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchInfo {
    /// The per-request outer extent `B` shared by every nest.
    pub batch_extent: usize,
    /// Per buffer (indexed by `BufferId.0`): true = concatenate along the
    /// outer dimension, false = pass one shared copy.
    pub batched: Vec<bool>,
}

/// A buffer's observed role across all accesses.
#[derive(Clone, Copy, PartialEq)]
enum Role {
    Unseen,
    Batched,
    Shared,
}

fn uses_outer(axis: &AxisExpr) -> bool {
    axis.terms.iter().any(|&(d, c)| d == 0 && c != 0)
}

/// Classifies one access: `Some(true)` batched, `Some(false)` shared,
/// `None` incompatible with batching.
fn classify(spec: &AccessSpec) -> Option<bool> {
    if !spec.axes.iter().any(uses_outer) {
        return Some(false);
    }
    let first = spec.axes.first()?;
    let nonzero: Vec<(usize, i64)> = first
        .terms
        .iter()
        .copied()
        .filter(|&(_, c)| c != 0)
        .collect();
    let first_is_t0 = first.offset == 0 && nonzero == [(0, 1)];
    let rest_clean = spec.axes[1..].iter().all(|a| !uses_outer(a));
    if first_is_t0 && rest_clean {
        Some(true)
    } else {
        None
    }
}

fn merge(role: &mut Role, batched: bool) -> bool {
    let next = if batched { Role::Batched } else { Role::Shared };
    match *role {
        Role::Unseen => {
            *role = next;
            true
        }
        r => r == next,
    }
}

/// Decides whether `program` admits outer-dimension batching, and how.
///
/// Returns `None` when any rule in the module docs is violated; the caller
/// then serves requests individually.
pub fn analyze(program: &Program) -> Option<BatchInfo> {
    let first_nest = program.nests.first()?;
    if *first_nest.ops.first()? != OpKind::Map {
        return None;
    }
    let b = *first_nest.extents.first()?;
    let mut roles = vec![Role::Unseen; program.buffers.len()];
    for nest in &program.nests {
        if *nest.ops.first()? != OpKind::Map || *nest.extents.first()? != b {
            return None;
        }
        for read in &nest.reads {
            if !merge(&mut roles[read.buffer.0], classify(&read.access)?) {
                return None;
            }
            if let Some(CarriedInit::Buffer(init_buf, init_spec)) = &read.init {
                if !merge(&mut roles[init_buf.0], classify(init_spec)?) {
                    return None;
                }
            }
        }
        for write in &nest.writes {
            if !merge(&mut roles[write.buffer.0], classify(&write.access)?) {
                return None;
            }
        }
    }
    let mut batched = Vec::with_capacity(program.buffers.len());
    for (decl, role) in program.buffers.iter().zip(&roles) {
        let is_batched = match (decl.kind, role) {
            // Written buffers must split per request.
            (BufferKind::Output | BufferKind::Intermediate, Role::Batched) => true,
            (BufferKind::Output | BufferKind::Intermediate, _) => return None,
            (BufferKind::Input, Role::Batched) => true,
            // Unread inputs ride along as one shared copy.
            (BufferKind::Input, Role::Shared | Role::Unseen) => false,
        };
        // Concatenation semantics need the declared outer extent to equal
        // the batch extent exactly.
        if is_batched && decl.dims.first() != Some(&b) {
            return None;
        }
        batched.push(is_batched);
    }
    Some(BatchInfo {
        batch_extent: b,
        batched,
    })
}

/// The fused program for `k` requests: outer nest extents and batched
/// buffer extents scaled from `B` to `B * k`. Shared buffers keep their
/// shape. Structure is otherwise identical, so the fused plan caches under
/// its own signature.
pub fn batched_program(program: &Program, info: &BatchInfo, k: usize) -> Program {
    let mut fused = program.clone();
    fused.name = format!("{}[x{k}]", program.name);
    for (decl, &is_batched) in fused.buffers.iter_mut().zip(&info.batched) {
        if is_batched {
            if let Some(outer) = decl.dims.first_mut() {
                *outer = info.batch_extent * k;
            }
        }
    }
    for nest in &mut fused.nests {
        if let Some(outer) = nest.extents.first_mut() {
            *outer = info.batch_extent * k;
        }
    }
    fused
}

/// Concatenates per-request FractalTensors along the outermost list.
pub fn concat_outer(parts: &[&FractalTensor]) -> ft_core::Result<FractalTensor> {
    let first = parts
        .first()
        .ok_or_else(|| CoreError::Adt("concat of zero parts".into()))?;
    match first {
        FractalTensor::Leaves(_) => {
            let mut leaves = Vec::new();
            for p in parts {
                match p {
                    FractalTensor::Leaves(v) => leaves.extend(v.iter().cloned()),
                    FractalTensor::Nested(_) => {
                        return Err(CoreError::Adt("concat parts differ in depth".into()))
                    }
                }
            }
            FractalTensor::from_tensors(leaves)
        }
        FractalTensor::Nested(_) => {
            let mut elems = Vec::new();
            for p in parts {
                match p {
                    FractalTensor::Nested(v) => elems.extend(v.iter().cloned()),
                    FractalTensor::Leaves(_) => {
                        return Err(CoreError::Adt("concat parts differ in depth".into()))
                    }
                }
            }
            FractalTensor::nested(elems)
        }
    }
}

/// Splits a fused output back into `k` equal per-request chunks along the
/// outermost list.
pub fn split_outer(ft: &FractalTensor, k: usize) -> ft_core::Result<Vec<FractalTensor>> {
    let n = ft.len();
    if k == 0 || !n.is_multiple_of(k) {
        return Err(CoreError::Adt(format!(
            "cannot split outer length {n} into {k} chunks"
        )));
    }
    let chunk = n / k;
    match ft {
        FractalTensor::Leaves(v) => v
            .chunks(chunk)
            .map(|c| FractalTensor::from_tensors(c.to_vec()))
            .collect(),
        FractalTensor::Nested(v) => v
            .chunks(chunk)
            .map(|c| FractalTensor::nested(c.to_vec()))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::builders::stacked_rnn_program;
    use ft_tensor::Tensor;

    #[test]
    fn stacked_rnn_is_batchable() {
        let p = stacked_rnn_program(2, 3, 4, 8);
        let info = analyze(&p).expect("stacked RNN batches along the sequence dim");
        assert_eq!(info.batch_extent, 2);
        // xss (input sequences) and ysss (outputs) are batched; the weight
        // stack ws is shared.
        let by_name: Vec<(&str, bool)> = p
            .buffers
            .iter()
            .zip(&info.batched)
            .map(|(d, &b)| (d.name.as_str(), b))
            .collect();
        for (name, batched) in by_name {
            if name.contains("ws") {
                assert!(!batched, "weights must be shared, got batched {name}");
            } else {
                assert!(batched, "{name} should be batched");
            }
        }
    }

    #[test]
    fn lstm_is_batchable() {
        let p = ft_workloads::lstm::program(ft_workloads::lstm::LstmShape {
            batch: 2,
            hidden: 8,
            depth: 2,
            seq: 3,
        });
        assert!(analyze(&p).is_some());
    }

    #[test]
    fn outer_scan_is_not_batchable() {
        let mut p = stacked_rnn_program(2, 3, 4, 8);
        for nest in &mut p.nests {
            nest.ops[0] = ft_core::OpKind::ScanL;
        }
        assert!(analyze(&p).is_none());
    }

    #[test]
    fn mismatched_outer_extents_are_not_batchable() {
        let mut p = stacked_rnn_program(2, 3, 4, 8);
        if let Some(n) = p.nests.first_mut() {
            n.extents[0] = 3;
        }
        assert!(analyze(&p).is_none());
    }

    #[test]
    fn batched_program_scales_only_batched_dims() {
        let p = stacked_rnn_program(2, 3, 4, 8);
        let info = analyze(&p).unwrap();
        let fused = batched_program(&p, &info, 3);
        assert!(fused.validate().is_ok());
        for nest in &fused.nests {
            assert_eq!(nest.extents[0], 6);
        }
        for (decl, (orig, &b)) in fused
            .buffers
            .iter()
            .zip(p.buffers.iter().zip(&info.batched))
        {
            if b {
                assert_eq!(decl.dims[0], orig.dims[0] * 3);
            } else {
                assert_eq!(decl.dims, orig.dims);
            }
        }
        // The fused program must itself still compile.
        assert!(ft_passes::compile(&fused).is_ok());
    }

    #[test]
    fn concat_then_split_round_trips() {
        let mk = |base: f32| {
            FractalTensor::nested(vec![
                FractalTensor::from_tensors(vec![
                    Tensor::full(&[1, 2], base),
                    Tensor::full(&[1, 2], base + 1.0),
                ])
                .unwrap(),
                FractalTensor::from_tensors(vec![
                    Tensor::full(&[1, 2], base + 2.0),
                    Tensor::full(&[1, 2], base + 3.0),
                ])
                .unwrap(),
            ])
            .unwrap()
        };
        let a = mk(0.0);
        let b = mk(10.0);
        let cat = concat_outer(&[&a, &b]).unwrap();
        assert_eq!(cat.prog_dims(), vec![4, 2]);
        let back = split_outer(&cat, 2).unwrap();
        assert_eq!(back, vec![a, b]);
        assert!(split_outer(&cat, 3).is_err());
    }
}
