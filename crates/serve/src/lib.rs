//! # ft-serve
//!
//! A concurrent serving runtime for compiled FractalTensor programs.
//!
//! The ETDG schedule (§5) depends only on program structure, so a serving
//! process should pay for parse + coarsen + reorder + verify exactly once
//! per workload, and for thread spin-up exactly once per process. The
//! [`Runtime`] owns:
//!
//! * one persistent [`ft_pool::WorkerPool`] shared by every request (no
//!   per-run thread creation),
//! * a [`ft_passes::PlanCache`] keyed by the name-insensitive structural
//!   signature, so repeated submissions of a workload skip compilation and
//!   verification entirely,
//! * a bounded admission queue with backpressure ([`ServeError::QueueFull`]
//!   from [`Runtime::submit`], blocking from [`Runtime::submit_wait`]) and
//!   per-request deadlines ([`ServeError::Deadline`]),
//! * a scheduler thread that drains the queue, groups requests resolving to
//!   the same plan, and — when the program's outermost dimension is a pure
//!   `map` (see [`batch`]) — executes the group as **one fused launch**:
//!   inputs concatenated along the outer dimension, a single widened
//!   wavefront on the pool, outputs split back per request. Shape
//!   misalignment or a fused-execution failure falls back to per-request
//!   execution; batching is an optimization, never a correctness risk,
//! * shape-polymorphic serving ([`ServeConfig::poly`]): requests whose
//!   program has a legal polymorphic outer axis are keyed by their
//!   *structural* family ([`ft_core::StructKey`]) instead of their exact
//!   shape, so one cached [`ft_passes::PolyPlan`] serves every outer
//!   extent. The scheduler length-buckets queued family members
//!   (factor-of-4 extent classes) and fuses them **ragged** — inputs of
//!   different lengths concatenated with per-part extents recorded at
//!   concat time, one launch at the summed extent, outputs split back
//!   offset-aware ([`batch::split_outer_parts`]).
//!
//! Every failure is a typed [`ServeError`] delivered through the request's
//! [`Ticket`]; an expired or failed request never poisons the pool or the
//! cache, and subsequent requests are unaffected.

#![forbid(unsafe_code)]
// Serving keeps running through bad requests: non-test code in this crate
// is unwrap/expect-free.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod batch;
pub mod session;

pub use batch::BatchInfo;
pub use session::{SessionError, SessionSpec, StateBinding, StateOp};

use session::SessionEntry;

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, RwLock};

use ft_backend::{ExecError, Executor};

pub use ft_backend::FaultPlan;
use ft_core::{
    poly_split, program_signature, BufferId, BufferKind, FractalTensor, Program, ProgramSig,
    StructKey,
};
use ft_obs::{
    CompletionRecord, CompletionStatus, Counter, FuseDecision, Gauge, Histogram, Registry,
    TraceContext, TraceLog,
};
use ft_passes::{CompiledProgram, PlanCache, PolyCache, PolyPlan};
use ft_pool::WorkerPool;
use ft_verify::{build_poly_verified, compile_verified};

/// Errors a request can come back with.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The admission queue is at capacity; retry or use
    /// [`Runtime::submit_wait`].
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The request's deadline passed before execution finished starting.
    Deadline,
    /// The executor failed.
    Exec(ExecError),
    /// Compilation (or verification) of the submitted program failed.
    Compile(String),
    /// A declared input buffer was missing or malformed.
    Input(String),
    /// The runtime is shutting down.
    Shutdown,
    /// The scheduler thread could not be spawned at construction.
    Spawn(String),
    /// The scheduler thread panicked while this request was in flight;
    /// the supervisor failed the ticket, respawned the scheduler, and
    /// service continued. The request itself may be retried.
    SchedulerDown,
    /// The request's plan is quarantined: it failed too many consecutive
    /// executions and the circuit breaker is failing fast (no pool time
    /// burned) until a cooldown elapses and a half-open probe succeeds.
    Quarantined,
    /// Deadline-aware load shedding: the estimated queue wait plus
    /// service time already exceeds the request's deadline, so admission
    /// rejected it instead of queueing doomed work. Distinct from
    /// [`QueueFull`](ServeError::QueueFull) — the queue had room, the
    /// deadline did not.
    Shed {
        /// The wait estimate (µs) that made the deadline unmeetable.
        estimated_us: u64,
    },
    /// A stateful-session operation failed ([`SessionError`]). This class
    /// indicts the *session* — a strike toward its eviction — and is
    /// invisible to the plan's quarantine breaker: an abusive session can
    /// never quarantine a plan other sessions depend on.
    Session(SessionError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
            ServeError::Deadline => write!(f, "deadline expired before execution"),
            ServeError::Exec(e) => write!(f, "execution failed: {e}"),
            ServeError::Compile(m) => write!(f, "compilation failed: {m}"),
            ServeError::Input(m) => write!(f, "bad input: {m}"),
            ServeError::Shutdown => write!(f, "runtime is shut down"),
            ServeError::Spawn(m) => write!(f, "failed to spawn scheduler thread: {m}"),
            ServeError::SchedulerDown => {
                write!(
                    f,
                    "scheduler panicked with this request in flight (restarted)"
                )
            }
            ServeError::Quarantined => {
                write!(
                    f,
                    "plan quarantined after repeated failures; retry after cooldown"
                )
            }
            ServeError::Shed { estimated_us } => write!(
                f,
                "shed at admission: estimated wait {estimated_us} µs exceeds the deadline"
            ),
            ServeError::Session(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ExecError> for ServeError {
    fn from(e: ExecError) -> Self {
        ServeError::Exec(e)
    }
}

impl From<SessionError> for ServeError {
    fn from(e: SessionError) -> Self {
        ServeError::Session(e)
    }
}

/// What a fulfilled request resolves to.
pub type ServeResult = Result<HashMap<BufferId, FractalTensor>, ServeError>;

/// Runtime construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads in the shared pool (0 = [`ft_pool::default_threads`]).
    pub threads: usize,
    /// Admission queue bound; submissions beyond it are rejected
    /// ([`ServeError::QueueFull`]) or block ([`Runtime::submit_wait`]).
    pub queue_capacity: usize,
    /// Maximum requests fused into one launch.
    pub max_batch: usize,
    /// Whether to fuse same-plan requests at all.
    pub batching: bool,
    /// Run schedule-legality verification on cold compiles
    /// ([`ft_verify::compile_verified`]); cache hits never re-verify.
    pub verify: bool,
    /// Override the executor's runtime guard (`None` = inherit `FT_GUARD`).
    pub guard: Option<bool>,
    /// Override reference fallback (`None` = inherit `FT_FALLBACK`).
    pub fallback: Option<bool>,
    /// Deadline applied to requests that don't set their own.
    pub default_deadline: Option<Duration>,
    /// Consecutive execution failures of one plan before its circuit
    /// breaker opens and requests fail fast with
    /// [`ServeError::Quarantined`]. `0` disables quarantine.
    pub quarantine_threshold: u32,
    /// How long an open breaker fails fast before letting one half-open
    /// probe through to test whether the plan recovered.
    pub quarantine_cooldown: Duration,
    /// Deadline-aware load shedding at admission: when the estimated
    /// queue wait (from the live `serve.exec_us` histogram) already
    /// exceeds a request's deadline, reject it with [`ServeError::Shed`]
    /// instead of queueing doomed work. Requests without deadlines are
    /// never shed, and a cold runtime (no latency history yet) admits
    /// everything.
    pub shedding: bool,
    /// Stall watchdog: bound the wall time of each wavefront launch.
    /// When set, the pool runs supervised (workers only — the scheduler
    /// never executes job code) and a launch that makes no heartbeat
    /// progress for this long fails with [`ExecError::Stalled`]; the
    /// runtime then replaces the poisoned pool and keeps serving.
    /// `None` (the default) keeps the zero-overhead unsupervised pool.
    pub launch_timeout: Option<Duration>,
    /// Shape-polymorphic plan families: serve requests whose program has a
    /// legal polymorphic outer axis from one cached
    /// [`ft_passes::PolyPlan`] per *structure*, instantiated at each
    /// request's extent at dispatch, and fuse queued family members into
    /// ragged batches (length-bucketed, concat-with-offsets). Off, every
    /// distinct shape compiles (and verifies) its own plan.
    pub poly: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 0,
            queue_capacity: 256,
            max_batch: 8,
            batching: true,
            verify: true,
            guard: None,
            fallback: None,
            default_deadline: None,
            quarantine_threshold: 5,
            quarantine_cooldown: Duration::from_millis(500),
            shedding: true,
            launch_timeout: None,
            poly: true,
        }
    }
}

/// One unit of work: a program plus its input buffers.
#[derive(Debug, Clone)]
pub struct Request {
    /// The program to run. `Arc` so N same-workload submissions share one
    /// allocation; the plan cache keys on structure, not identity.
    pub program: Arc<Program>,
    /// Values for every `BufferKind::Input` declaration.
    pub inputs: HashMap<BufferId, FractalTensor>,
    /// Per-request deadline, measured from submission.
    pub deadline: Option<Duration>,
    /// Stateful-session id carried into the request's trace context.
    pub session: Option<u64>,
}

impl Request {
    /// A request with no deadline of its own.
    pub fn new(program: impl Into<Arc<Program>>, inputs: HashMap<BufferId, FractalTensor>) -> Self {
        Request {
            program: program.into(),
            inputs,
            deadline: None,
            session: None,
        }
    }

    /// Sets a deadline measured from submission time.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Tags the request with a session id (propagated into its
    /// [`CompletionRecord`]).
    pub fn with_session(mut self, session: u64) -> Self {
        self.session = Some(session);
        self
    }
}

#[derive(Default)]
struct TicketState {
    slot: Mutex<Option<ServeResult>>,
    done: Condvar,
}

/// A handle to one in-flight request.
#[derive(Clone)]
pub struct Ticket {
    state: Arc<TicketState>,
    request_id: u64,
}

impl Ticket {
    /// Blocks until the request is fulfilled.
    pub fn wait(self) -> ServeResult {
        let mut slot = self.state.slot.lock();
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.state.done.wait(slot);
        }
    }

    /// Takes the result if the request has already been fulfilled.
    pub fn try_take(&self) -> Option<ServeResult> {
        self.state.slot.lock().take()
    }

    /// The request id minted at admission — the key joining this ticket
    /// to its [`CompletionRecord`] and its Perfetto request span.
    pub fn request_id(&self) -> u64 {
        self.request_id
    }
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ready = self.state.slot.lock().is_some();
        f.debug_struct("Ticket")
            .field("request_id", &self.request_id)
            .field("ready", &ready)
            .finish()
    }
}

/// Shape-polymorphism identity minted at admission: the shape-insensitive
/// structural family key plus this request's concrete outer extent (the
/// shape tuple resolved at launch). `bucket` is the factor-of-4 length
/// class of the extent — the scheduler fuses queued family members of the
/// same bucket into one ragged launch, so nearby lengths share a
/// wavefront while a 1-row and a 4096-row request never do. Concat pads
/// nothing (the launch runs at the *summed* extent), so bucketing costs
/// no wasted compute; its only job is a latency guard — within a bucket a
/// member's batch-mates are at most ~4x its own width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PolyMeta {
    key: StructKey,
    extent: usize,
    bucket: u32,
}

/// The factor-of-4 length class used for ragged batch bucketing: extents
/// {1,2} share class 0, {3..8} class 1, {9..32} class 2, and so on.
fn extent_bucket(extent: usize) -> u32 {
    extent.next_power_of_two().trailing_zeros() / 2
}

struct Pending {
    sig: ProgramSig,
    program: Arc<Program>,
    inputs: HashMap<BufferId, FractalTensor>,
    submitted: Instant,
    deadline: Option<Instant>,
    ticket: Arc<TicketState>,
    /// Identity minted at admission; `batch_id` is filled at dispatch.
    ctx: TraceContext,
    /// Time spent in the admission queue, set when the scheduler pops the
    /// request into a group.
    queue_wait_us: f64,
    /// Shape-polymorphism identity, `None` when the program has no legal
    /// polymorphic outer axis (or [`ServeConfig::poly`] is off).
    poly: Option<PolyMeta>,
    /// Set when this request is a stateful-session decode step: on
    /// fulfillment the session's pinned state advances in place from the
    /// step's outputs ([`settle_session_step`]).
    session_step: Option<u64>,
}

/// What the scheduler coalesces on: shape-polymorphic requests group by
/// structural family and length bucket (ragged fusion), everything else by
/// exact program signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum GroupKey {
    Sig(ProgramSig),
    Poly { key: StructKey, bucket: u32 },
}

fn group_key(p: &Pending) -> GroupKey {
    match p.poly {
        Some(m) => GroupKey::Poly {
            key: m.key,
            bucket: m.bucket,
        },
        None => GroupKey::Sig(p.sig),
    }
}

/// The key a request's quarantine breaker lives under: poly requests share
/// one breaker per structural family (they share the plan that would be
/// failing), everything else breaks per exact signature.
fn quarantine_sig(p: &Pending) -> ProgramSig {
    match p.poly {
        Some(m) => ProgramSig(m.key.0),
        None => p.sig,
    }
}

/// Pre-registered handles into the runtime's [`Registry`]: every hot-path
/// update is a relaxed atomic op, no name lookup, no lock. Counters are
/// monotonic event totals, the queue depth is a point-in-time [`Gauge`],
/// and value distributions (latency, batch size, setup time) go to
/// log-bucket [`Histogram`]s that count **every** observation — `stats()`
/// percentiles are exact to within one bucket's ~9% relative width, not
/// sampled from a reservoir.
struct Metrics {
    submitted: Counter,
    rejected: Counter,
    completed: Counter,
    failed: Counter,
    deadline_expired: Counter,
    batches: Counter,
    batched_requests: Counter,
    batch_fallbacks: Counter,
    batch_ragged_fallback: Counter,
    scheduler_restarts: Counter,
    shed: Counter,
    retries: Counter,
    batch_bisections: Counter,
    quarantine_trips: Counter,
    quarantine_rejected: Counter,
    quarantine_probes: Counter,
    stalled: Counter,
    pool_replacements: Counter,
    queue_depth: Gauge,
    quarantined_plans: Gauge,
    latency_us: Arc<Histogram>,
    queue_wait_us: Arc<Histogram>,
    batch_size: Arc<Histogram>,
    setup_cold_us: Arc<Histogram>,
    setup_cached_us: Arc<Histogram>,
    exec_us: Arc<Histogram>,
    sessions_active: Gauge,
    pinned_bytes: Gauge,
    decode_steps: Counter,
    state_copies: Counter,
    session_errors: Counter,
    session_evictions: Counter,
}

impl Metrics {
    fn new(reg: &Registry) -> Self {
        Metrics {
            submitted: reg.counter("serve.submitted"),
            rejected: reg.counter("serve.rejected"),
            completed: reg.counter("serve.completed"),
            failed: reg.counter("serve.failed"),
            deadline_expired: reg.counter("serve.deadline_expired"),
            batches: reg.counter("serve.batches"),
            batched_requests: reg.counter("serve.batched_requests"),
            batch_fallbacks: reg.counter("serve.batch_fallbacks"),
            batch_ragged_fallback: reg.counter("serve.batch_ragged_fallback"),
            scheduler_restarts: reg.counter("serve.scheduler_restarts"),
            shed: reg.counter("serve.shed"),
            retries: reg.counter("serve.retries"),
            batch_bisections: reg.counter("serve.batch_bisections"),
            quarantine_trips: reg.counter("serve.quarantine_trips"),
            quarantine_rejected: reg.counter("serve.quarantine_rejected"),
            quarantine_probes: reg.counter("serve.quarantine_probes"),
            stalled: reg.counter("serve.stalled"),
            pool_replacements: reg.counter("serve.pool_replacements"),
            queue_depth: reg.gauge("serve.queue_depth"),
            quarantined_plans: reg.gauge("serve.quarantined_plans"),
            latency_us: reg.histogram("serve.latency_us"),
            queue_wait_us: reg.histogram("serve.queue_wait_us"),
            batch_size: reg.histogram("serve.batch_size"),
            setup_cold_us: reg.histogram("serve.setup_cold_us"),
            setup_cached_us: reg.histogram("serve.setup_cached_us"),
            exec_us: reg.histogram("serve.exec_us"),
            sessions_active: reg.gauge("serve.sessions_active"),
            pinned_bytes: reg.gauge("serve.pinned_bytes"),
            decode_steps: reg.counter("serve.decode_steps"),
            state_copies: reg.counter("serve.state_copies"),
            session_errors: reg.counter("serve.session_errors"),
            session_evictions: reg.counter("serve.session_evictions"),
        }
    }
}

/// Per-request phase breakdown accumulated through `process_group` and
/// handed to `fulfill`, which turns it into a [`CompletionRecord`].
#[derive(Clone)]
struct Phases {
    setup_us: f64,
    setup_cached: bool,
    fuse: FuseDecision,
    exec_us: f64,
    split_us: f64,
}

impl Default for Phases {
    fn default() -> Self {
        Phases {
            setup_us: 0.0,
            setup_cached: false,
            fuse: FuseDecision::Solo,
            exec_us: 0.0,
            split_us: 0.0,
        }
    }
}

/// A point-in-time snapshot of runtime counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests bounced with [`ServeError::QueueFull`].
    pub rejected: u64,
    /// Requests fulfilled successfully.
    pub completed: u64,
    /// Requests fulfilled with a non-deadline error.
    pub failed: u64,
    /// Requests fulfilled with [`ServeError::Deadline`].
    pub deadline_expired: u64,
    /// Fused launches executed.
    pub batches: u64,
    /// Requests served through fused launches.
    pub batched_requests: u64,
    /// Fused attempts that fell back to per-request execution.
    pub batch_fallbacks: u64,
    /// The subset of `batch_fallbacks` caused specifically by a
    /// mismatched outer extent (a request's batched input had the wrong
    /// outer length for its slot in the fused launch) — the length-mix
    /// signal, distinct from genuine shape errors.
    pub batch_ragged_fallbacks: u64,
    /// Times the supervisor respawned a panicked scheduler.
    pub scheduler_restarts: u64,
    /// Requests rejected at admission because their deadline was already
    /// unmeetable ([`ServeError::Shed`]).
    pub shed: u64,
    /// Solo re-executions performed to isolate a fused-batch fault.
    pub retries: u64,
    /// Fused launches whose execution failure triggered member-by-member
    /// solo retry (batch fault isolation).
    pub batch_bisections: u64,
    /// Circuit-breaker trips: plans moved into quarantine.
    pub quarantine_trips: u64,
    /// Requests failed fast with [`ServeError::Quarantined`].
    pub quarantine_rejected: u64,
    /// Plans currently quarantined (point-in-time gauge).
    pub quarantined_plans: i64,
    /// Launches that hit the stall watchdog ([`ExecError::Stalled`]).
    pub stalled: u64,
    /// Poisoned worker pools replaced with fresh ones.
    pub pool_replacements: u64,
    /// Worker threads in the current pool (full strength after any
    /// replacement).
    pub pool_workers: usize,
    /// Largest fused batch so far.
    pub max_batch: usize,
    /// Deepest the admission queue has been.
    pub peak_queue_depth: usize,
    /// Plan-cache hits (requests that skipped compile + verify), summed
    /// over the exact-shape cache and the shape-polymorphic family cache.
    pub cache_hits: u64,
    /// Plan-cache misses (cold compiles, including fused variants and
    /// family builds).
    pub cache_misses: u64,
    /// Distinct plans cached: exact-shape entries plus polymorphic
    /// families. One family counts once no matter how many extents it has
    /// served.
    pub cached_plans: usize,
    /// Median end-to-end latency of successful requests, microseconds.
    /// Computed over **every** completed request (log-bucket histogram,
    /// no sampling); exact to within one bucket's ~9% relative width.
    pub latency_p50_us: f64,
    /// 95th-percentile latency, microseconds (every request counted).
    pub latency_p95_us: f64,
    /// 99th-percentile latency, microseconds (every request counted).
    pub latency_p99_us: f64,
    /// Mean latency of successful requests, microseconds (exact).
    pub latency_mean_us: f64,
    /// Mean per-dispatch setup time when the plan was cold-compiled.
    pub cold_setup_mean_us: f64,
    /// Mean per-dispatch setup time when the plan came from the cache.
    pub cached_setup_mean_us: f64,
    /// Executor arena buffers handed out (one per execution).
    pub arena_acquires: u64,
    /// Arena acquires served from the pool without growing capacity. In
    /// steady state this tracks `arena_acquires` one-for-one: the runtime
    /// executes allocation-free after warmup.
    pub arena_reused: u64,
    /// Arena acquires that had to grow (or freshly allocate) a buffer —
    /// warmup and shape-mix changes only.
    pub arena_grows: u64,
    /// Leaf reads served as borrowed slices (never cloned tensors).
    pub leaf_borrows: u64,
    /// Leaf reads that fell back to cloning. Zero on the arena path.
    pub leaf_clones: u64,
    /// Stateful sessions currently open (point-in-time gauge).
    pub active_sessions: i64,
    /// Bytes pinned by open sessions' state buffers (point-in-time gauge).
    pub pinned_bytes: i64,
    /// Decode steps whose session state advanced successfully.
    pub decode_steps: u64,
    /// Deep copies performed while advancing session state. Zero on the
    /// well-formed path — every carry is a handle swap and every append an
    /// in-place row replacement — so a nonzero delta after warmup marks a
    /// regression (CI gates on this, like `leaf_clones`).
    pub state_copies: u64,
    /// Session-typed failures (overflow, shape violations). These strike
    /// the session, never the plan's quarantine breaker.
    pub session_errors: u64,
    /// Sessions evicted after repeated session errors.
    pub session_evictions: u64,
}

/// The executor and the pool it launches on, swapped atomically (behind
/// one `RwLock`) when a stalled launch poisons the pool. The executor's
/// arena and counters are carried across replacements — only the pool is
/// fresh — so warm buffers and cumulative stats survive.
struct Engine {
    pool: Arc<WorkerPool>,
    exec: Executor,
}

/// Per-plan circuit breaker: consecutive execution failures open it;
/// after a cooldown one half-open probe is let through and its outcome
/// decides between closing and re-opening.
#[derive(Default)]
struct Breaker {
    consecutive: u32,
    state: BreakerState,
}

#[derive(Default, Clone, Copy, PartialEq)]
enum BreakerState {
    #[default]
    Closed,
    Open {
        until: Instant,
    },
    HalfOpen,
}

/// What the supervisor needs to fail a ticket whose dispatch died mid
/// flight: the waiter's slot plus enough identity to emit an
/// attributable completion record.
struct Inflight {
    ticket: Arc<TicketState>,
    ctx: TraceContext,
    submitted: Instant,
    queue_wait_us: f64,
}

struct Inner {
    cfg: ServeConfig,
    queue: Mutex<VecDeque<Pending>>,
    not_empty: Condvar,
    space: Condvar,
    shutdown: AtomicBool,
    cache: PlanCache,
    /// Shape-polymorphic plan families, keyed by structural family
    /// ([`StructKey`]); one verified entry serves every outer extent.
    poly_cache: PolyCache,
    /// Memoized admission-time poly analysis, keyed by exact signature
    /// (same sig ⇒ same split outcome).
    poly_meta: Mutex<HashMap<ProgramSig, Option<PolyMeta>>>,
    batch_info: Mutex<HashMap<ProgramSig, Option<Arc<BatchInfo>>>>,
    /// Current pool + executor; replaced under the write lock when a
    /// stall poisons the pool.
    engine: RwLock<Engine>,
    /// Resolved pool width, kept so replacement pools restore full
    /// strength.
    pool_threads: usize,
    /// Tickets popped from the queue but not yet fulfilled, keyed by
    /// request id. The supervisor drains this on a scheduler panic so an
    /// admitted ticket can never hang.
    inflight: Mutex<HashMap<u64, Inflight>>,
    /// Per-plan circuit breakers ([`ServeError::Quarantined`]).
    quarantine: Mutex<HashMap<ProgramSig, Breaker>>,
    /// Open stateful sessions, keyed by the id minted at
    /// [`Runtime::open_session`].
    sessions: Mutex<HashMap<u64, SessionEntry>>,
    /// Mints session ids.
    next_session_id: AtomicU64,
    /// Per-group exec-time running means `(count, mean µs)` feeding the
    /// shed estimator: heterogeneous traffic (long prefill vs
    /// sub-millisecond decode steps) is priced per [`GroupKey`], not from
    /// one blended global mean.
    group_exec_us: Mutex<HashMap<GroupKey, (u64, f64)>>,
    /// Pending injected scheduler panics ([`Runtime::kill_scheduler`]).
    kill: AtomicU64,
    /// Per-runtime metrics registry (`serve.*` names); isolated per
    /// instance so concurrent runtimes (and tests) never mix counters.
    registry: Arc<Registry>,
    metrics: Metrics,
    /// Per-request completion records, drained by
    /// [`Runtime::take_completions`].
    trace: TraceLog,
    /// Mints ids for fused launches.
    next_batch_id: AtomicU64,
    peak_queue_depth: AtomicU64,
    max_batch: AtomicU64,
}

/// The serving runtime: shared pool + plan cache + admission queue +
/// batching scheduler. Cheap to share behind an `Arc`; dropping it drains
/// the queue and joins the scheduler.
pub struct Runtime {
    inner: Arc<Inner>,
    scheduler: Mutex<Option<JoinHandle<()>>>,
}

impl Runtime {
    /// Starts a runtime: spins up the worker pool and the scheduler thread.
    ///
    /// Test/bench convenience only — library code and long-running
    /// services should use [`Runtime::try_new`] and handle
    /// [`ServeError::Spawn`] instead of unwinding.
    ///
    /// # Panics
    ///
    /// Panics when the scheduler thread cannot be spawned (an OS resource
    /// failure): a runtime without its scheduler would accept submissions
    /// that nothing ever drains. Use [`Runtime::try_new`] to handle that
    /// case as a `Result` instead.
    pub fn new(cfg: ServeConfig) -> Self {
        match Runtime::try_new(cfg) {
            Ok(rt) => rt,
            Err(e) => panic!("ft-serve runtime construction failed: {e}"),
        }
    }

    /// Starts a runtime, surfacing scheduler-thread spawn failure as
    /// [`ServeError::Spawn`] instead of constructing a silently dead
    /// runtime whose tickets would never resolve.
    pub fn try_new(cfg: ServeConfig) -> Result<Self, ServeError> {
        let threads = if cfg.threads == 0 {
            ft_pool::default_threads()
        } else {
            cfg.threads
        };
        // The stall watchdog needs a supervised pool (the scheduler must
        // never run job code, or a wedged UDF would hang the watchdog's
        // own caller); without a timeout the unsupervised pool keeps its
        // zero-overhead caller-participates launch path.
        let pool = Arc::new(if cfg.launch_timeout.is_some() {
            WorkerPool::supervised(threads)
        } else {
            WorkerPool::new(threads)
        });
        let mut exec = Executor::new()
            .pool(Arc::clone(&pool))
            .launch_timeout(cfg.launch_timeout);
        if let Some(guard) = cfg.guard {
            exec = exec.guard(guard);
        }
        if let Some(fallback) = cfg.fallback {
            exec = exec.fallback(fallback);
        }
        let registry = Arc::new(Registry::new());
        let metrics = Metrics::new(&registry);
        let inner = Arc::new(Inner {
            cfg,
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            space: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cache: PlanCache::new(),
            poly_cache: PolyCache::new(),
            poly_meta: Mutex::new(HashMap::new()),
            batch_info: Mutex::new(HashMap::new()),
            engine: RwLock::new(Engine { pool, exec }),
            pool_threads: threads,
            inflight: Mutex::new(HashMap::new()),
            quarantine: Mutex::new(HashMap::new()),
            sessions: Mutex::new(HashMap::new()),
            next_session_id: AtomicU64::new(1),
            group_exec_us: Mutex::new(HashMap::new()),
            kill: AtomicU64::new(0),
            registry,
            metrics,
            trace: TraceLog::default(),
            next_batch_id: AtomicU64::new(1),
            peak_queue_depth: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
        });
        let sched_inner = Arc::clone(&inner);
        let scheduler = std::thread::Builder::new()
            .name("ft-serve-sched".into())
            .spawn(move || supervisor_loop(&sched_inner))
            .map_err(|e| ServeError::Spawn(e.to_string()))?;
        Ok(Runtime {
            inner,
            scheduler: Mutex::new(Some(scheduler)),
        })
    }

    /// A runtime with default configuration.
    pub fn with_defaults() -> Self {
        Runtime::new(ServeConfig::default())
    }

    /// Worker threads in the shared pool.
    pub fn threads(&self) -> usize {
        self.inner.engine.read().pool.threads()
    }

    /// Worker threads in the *current* pool — same as
    /// [`Runtime::threads`], spelled for chaos tests asserting the pool
    /// is back at full strength after a replacement.
    pub fn pool_workers(&self) -> usize {
        self.threads()
    }

    /// Chaos hook: make the scheduler panic when it dispatches its next
    /// group. The supervisor fails any in-flight tickets with
    /// [`ServeError::SchedulerDown`], respawns the loop, and bumps
    /// `serve.scheduler_restarts`. Takes effect at the next dispatch, not
    /// instantly — an idle scheduler dies on the first request after the
    /// call.
    pub fn kill_scheduler(&self) {
        self.inner.kill.fetch_add(1, Ordering::SeqCst);
    }

    /// Chaos hook: arm a one-shot [`FaultPlan`] on the current executor;
    /// the next launch consumes it. See [`Executor::arm_fault`].
    pub fn inject_exec_fault(&self, plan: FaultPlan) {
        self.inner.engine.read().exec.arm_fault(plan);
    }

    /// Chaos hook: schedule a worker panic inside the current pool,
    /// `jobs_from_now` launches ahead. See
    /// [`ft_pool::WorkerPool::inject_fault`].
    pub fn inject_pool_fault(&self, jobs_from_now: u64, participant: usize) {
        self.inner
            .engine
            .read()
            .pool
            .inject_fault(jobs_from_now, participant);
    }

    /// Enqueues a request, rejecting with [`ServeError::QueueFull`] when the
    /// admission queue is at capacity (backpressure the caller can see).
    pub fn submit(&self, request: Request) -> Result<Ticket, ServeError> {
        self.enqueue(request, false, None)
    }

    /// Enqueues a request, blocking while the queue is at capacity.
    pub fn submit_wait(&self, request: Request) -> Result<Ticket, ServeError> {
        self.enqueue(request, true, None)
    }

    /// Convenience: submit (blocking on backpressure) and wait for the
    /// result.
    pub fn run(&self, program: &Program, inputs: HashMap<BufferId, FractalTensor>) -> ServeResult {
        self.submit_wait(Request::new(program.clone(), inputs))?
            .wait()
    }

    fn enqueue(
        &self,
        request: Request,
        block: bool,
        session_step: Option<u64>,
    ) -> Result<Ticket, ServeError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::Shutdown);
        }
        let sig = program_signature(&request.program);
        // The identity tuple minted at admission and carried through the
        // whole pipeline; `batch_id` is attached at dispatch.
        let ctx = TraceContext {
            request_id: ft_obs::next_request_id(),
            session_id: request.session,
            plan_sig: sig.to_string(),
            batch_id: None,
        };
        let request_id = ctx.request_id;
        let submitted = Instant::now();
        let deadline = request
            .deadline
            .or(self.inner.cfg.default_deadline)
            .map(|d| submitted + d);
        let state = Arc::new(TicketState::default());
        let poly = poly_meta_for(&self.inner, sig, &request.program);
        let pending = Pending {
            sig,
            program: request.program,
            inputs: request.inputs,
            submitted,
            deadline,
            ticket: Arc::clone(&state),
            ctx,
            queue_wait_us: 0.0,
            poly,
            session_step,
        };
        let depth = {
            let mut queue = self.inner.queue.lock();
            while queue.len() >= self.inner.cfg.queue_capacity {
                if self.inner.shutdown.load(Ordering::Acquire) {
                    return Err(ServeError::Shutdown);
                }
                if !block {
                    self.inner.metrics.rejected.inc();
                    ft_probe::counter("serve.rejected", 1.0);
                    return Err(ServeError::QueueFull {
                        capacity: self.inner.cfg.queue_capacity,
                    });
                }
                queue = self.inner.space.wait(queue);
            }
            // Re-check under the queue lock: the scheduler's exit decision
            // (queue empty + shutdown set) is made under this same lock, so
            // a push that races shutdown() either lands before the
            // scheduler's final drain (and is processed) or is rejected
            // here — never parked forever on a dead queue.
            if self.inner.shutdown.load(Ordering::Acquire) {
                return Err(ServeError::Shutdown);
            }
            // Deadline-aware load shedding: if the live latency history
            // says the request cannot make its deadline even before it
            // queues, reject it now instead of burning queue space and
            // pool time on doomed work. Depth is read under this lock, so
            // the estimate matches the queue the request would join.
            if let Some(dl) = pending.deadline {
                if self.inner.cfg.shedding {
                    if let Some(estimated_us) = estimate_wait_us(&self.inner, &queue, &pending) {
                        if submitted + Duration::from_micros(estimated_us) > dl {
                            drop(queue);
                            self.inner.metrics.shed.inc();
                            ft_probe::counter("serve.shed", 1.0);
                            return Err(ServeError::Shed { estimated_us });
                        }
                    }
                }
            }
            queue.push_back(pending);
            // Set the gauge under the queue lock so it always reflects an
            // actual queue state (point-in-time, not a cumulative sum).
            self.inner.metrics.queue_depth.set(queue.len() as i64);
            queue.len()
        };
        self.inner.metrics.submitted.inc();
        self.inner
            .peak_queue_depth
            .fetch_max(depth as u64, Ordering::Relaxed);
        ft_probe::counter("serve.submitted", 1.0);
        self.inner.not_empty.notify_one();
        Ok(Ticket { state, request_id })
    }

    /// Opens a stateful session: verifies the state bindings against the
    /// pinned-region rules ([`ft_verify::verify_session_bindings`] — state
    /// must be extern-placed input, updates must be outputs, shapes must
    /// hold), pins the initial state server-side, and returns the session
    /// id for [`Runtime::decode_step`].
    pub fn open_session(&self, spec: SessionSpec) -> Result<u64, ServeError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::Shutdown);
        }
        let rules: Vec<ft_verify::SessionBinding> = spec
            .bindings
            .iter()
            .map(|b| ft_verify::SessionBinding {
                state: b.state,
                rule: match b.op {
                    StateOp::Carry { output } => ft_verify::StateRule::Carry { output },
                    StateOp::Append { output } => ft_verify::StateRule::Append { output },
                    StateOp::AppendFill { .. } => ft_verify::StateRule::Fill,
                },
            })
            .collect();
        ft_verify::verify_session_bindings(&spec.program, &rules, spec.capacity)
            .map_err(|e| ServeError::Session(SessionError::StateShape(e.to_string())))?;
        let entry = SessionEntry::open(spec).map_err(ServeError::Session)?;
        let sid = self.inner.next_session_id.fetch_add(1, Ordering::Relaxed);
        let mut sessions = self.inner.sessions.lock();
        sessions.insert(sid, entry);
        sync_session_gauges(&self.inner, &sessions);
        Ok(sid)
    }

    /// Submits one autoregressive decode step for `session`. The caller
    /// provides only the per-step inputs (the new token, the shared
    /// weights); the runtime injects the session's pinned state handles —
    /// cheap clones sharing storage, never data copies — and, when the
    /// step completes, advances the state **in place**
    /// ([`session::SessionEntry::advance`]). Steps are strictly sequential
    /// per session ([`SessionError::Busy`]); steps from *different*
    /// sessions queued together fuse into one wavefront launch via the
    /// ordinary batching path — that fusion is the continuous-batching
    /// tick.
    pub fn decode_step(
        &self,
        session: u64,
        mut inputs: HashMap<BufferId, FractalTensor>,
    ) -> Result<Ticket, ServeError> {
        let program = {
            let mut sessions = self.inner.sessions.lock();
            let entry = sessions
                .get_mut(&session)
                .ok_or(ServeError::Session(SessionError::NotFound(session)))?;
            if entry.inflight {
                return Err(ServeError::Session(SessionError::Busy(session)));
            }
            // Admission-time overflow check: a step past the reserved
            // append headroom is a malformed client, the session-state
            // analogue of `ExecError::Input`. It strikes the *session*
            // (eviction after repeats) and never reaches the plan's
            // quarantine breaker.
            if entry.appends() && entry.step >= entry.capacity {
                let capacity = entry.capacity;
                self.inner.metrics.session_errors.inc();
                ft_probe::counter("serve.session_errors", 1.0);
                entry.strikes += 1;
                if entry.strikes >= SESSION_STRIKE_LIMIT {
                    sessions.remove(&session);
                    self.inner.metrics.session_evictions.inc();
                    ft_probe::counter("serve.session_evictions", 1.0);
                    sync_session_gauges(&self.inner, &sessions);
                }
                return Err(ServeError::Session(SessionError::Overflow {
                    session,
                    capacity,
                }));
            }
            for (id, ft) in &entry.state {
                inputs.insert(*id, ft.clone());
            }
            entry.inflight = true;
            Arc::clone(&entry.program)
        };
        let request = Request {
            program,
            inputs,
            deadline: None,
            session: Some(session),
        };
        match self.enqueue(request, true, Some(session)) {
            Ok(t) => Ok(t),
            Err(e) => {
                // The step never entered the queue; reopen the session.
                let mut sessions = self.inner.sessions.lock();
                if let Some(entry) = sessions.get_mut(&session) {
                    entry.inflight = false;
                }
                Err(e)
            }
        }
    }

    /// Closes a session, releasing its pinned state. A step already in
    /// flight still resolves normally — its fulfillment simply finds no
    /// session to advance and delivers the outputs unchanged.
    pub fn close_session(&self, session: u64) -> Result<(), ServeError> {
        let mut sessions = self.inner.sessions.lock();
        if sessions.remove(&session).is_none() {
            return Err(ServeError::Session(SessionError::NotFound(session)));
        }
        sync_session_gauges(&self.inner, &sessions);
        Ok(())
    }

    /// A handle to one of `session`'s pinned state buffers (cheap clone,
    /// shares storage). Lets callers read the decoded state — the KV
    /// cache, the final hidden stack — without a round trip through a
    /// request.
    pub fn session_state(
        &self,
        session: u64,
        buffer: BufferId,
    ) -> Result<FractalTensor, ServeError> {
        let sessions = self.inner.sessions.lock();
        let entry = sessions
            .get(&session)
            .ok_or(ServeError::Session(SessionError::NotFound(session)))?;
        entry.state.get(&buffer).cloned().ok_or_else(|| {
            ServeError::Session(SessionError::StateShape(format!(
                "buffer {} is not a state binding of session {session}",
                buffer.0
            )))
        })
    }

    /// Decode steps `session` has completed (its next append row).
    pub fn session_steps(&self, session: u64) -> Result<usize, ServeError> {
        let sessions = self.inner.sessions.lock();
        sessions
            .get(&session)
            .map(|e| e.step)
            .ok_or(ServeError::Session(SessionError::NotFound(session)))
    }

    /// Counter snapshot. Latency percentiles cover **every** completed
    /// request (log-bucket histogram), not a sample.
    pub fn stats(&self) -> ServeStats {
        let m = &self.inner.metrics;
        let lat = m.latency_us.snapshot();
        let (arena, pool_workers) = {
            let eng = self.inner.engine.read();
            (eng.exec.arena_stats(), eng.pool.threads())
        };
        ServeStats {
            submitted: m.submitted.get(),
            rejected: m.rejected.get(),
            completed: m.completed.get(),
            failed: m.failed.get(),
            deadline_expired: m.deadline_expired.get(),
            batches: m.batches.get(),
            batched_requests: m.batched_requests.get(),
            batch_fallbacks: m.batch_fallbacks.get(),
            batch_ragged_fallbacks: m.batch_ragged_fallback.get(),
            scheduler_restarts: m.scheduler_restarts.get(),
            shed: m.shed.get(),
            retries: m.retries.get(),
            batch_bisections: m.batch_bisections.get(),
            quarantine_trips: m.quarantine_trips.get(),
            quarantine_rejected: m.quarantine_rejected.get(),
            quarantined_plans: m.quarantined_plans.get(),
            stalled: m.stalled.get(),
            pool_replacements: m.pool_replacements.get(),
            pool_workers,
            max_batch: self.inner.max_batch.load(Ordering::Relaxed) as usize,
            peak_queue_depth: self.inner.peak_queue_depth.load(Ordering::Relaxed) as usize,
            cache_hits: self.inner.cache.hits() + self.inner.poly_cache.hits(),
            cache_misses: self.inner.cache.misses() + self.inner.poly_cache.misses(),
            cached_plans: self.inner.cache.len() + self.inner.poly_cache.len(),
            latency_p50_us: lat.quantile(0.50),
            latency_p95_us: lat.quantile(0.95),
            latency_p99_us: lat.quantile(0.99),
            latency_mean_us: lat.mean(),
            cold_setup_mean_us: m.setup_cold_us.mean(),
            cached_setup_mean_us: m.setup_cached_us.mean(),
            arena_acquires: arena.acquires,
            arena_reused: arena.reused,
            arena_grows: arena.grows,
            leaf_borrows: arena.leaf_borrows,
            leaf_clones: arena.leaf_clones,
            active_sessions: m.sessions_active.get(),
            pinned_bytes: m.pinned_bytes.get(),
            decode_steps: m.decode_steps.get(),
            state_copies: m.state_copies.get(),
            session_errors: m.session_errors.get(),
            session_evictions: m.session_evictions.get(),
        }
    }

    /// The runtime's metrics registry (`serve.*` names). Hand it to an
    /// [`ft_obs::Exporter`] — together with [`Registry::global`] for the
    /// pool/executor/cache layers — to publish Prometheus text or JSONL.
    pub fn metrics(&self) -> Arc<Registry> {
        Arc::clone(&self.inner.registry)
    }

    /// Drains the per-request completion records collected since the last
    /// call (bounded ring; see [`Runtime::completions_dropped`]).
    pub fn take_completions(&self) -> Vec<CompletionRecord> {
        self.inner.trace.drain()
    }

    /// Completion records evicted from the bounded trace log before being
    /// drained.
    pub fn completions_dropped(&self) -> u64 {
        self.inner.trace.dropped()
    }

    /// Stops admission, drains already-queued requests, and joins the
    /// scheduler. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.not_empty.notify_all();
        self.inner.space.notify_all();
        let handle = self.scheduler.lock().take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
        // Belt and suspenders: the scheduler drains before exiting, but if
        // it died (panicked) anything still queued must fail its ticket
        // rather than leave waiters blocked forever.
        let leftovers: Vec<Pending> = {
            let mut queue = self.inner.queue.lock();
            queue.drain(..).collect()
        };
        for p in leftovers {
            fulfill(&self.inner, p, Err(ServeError::Shutdown), Phases::default());
        }
        // And anything popped but never fulfilled (the supervisor handles
        // this for panics; this covers the supervisor thread itself being
        // gone) resolves typed rather than hanging its waiter.
        let stranded: Vec<Inflight> = {
            let mut inflight = self.inner.inflight.lock();
            inflight.drain().map(|(_, e)| e).collect()
        };
        for e in stranded {
            resolve_inflight(&self.inner, e, ServeError::Shutdown);
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("threads", &self.threads())
            .field("cache", &self.inner.cache)
            .field("poly_cache", &self.inner.poly_cache)
            .finish()
    }
}

// ---------------------------------------------------------------------
// Scheduler.
// ---------------------------------------------------------------------

/// Per-group observations required before a group's own exec-time mean is
/// trusted over the global blend.
const GROUP_MIN_HISTORY: u64 = 8;

/// Folds one launch's exec time into its group's running mean, feeding
/// [`estimate_wait_us`]'s per-group pricing.
fn note_group_exec(inner: &Inner, key: GroupKey, exec_us: f64) {
    let mut groups = inner.group_exec_us.lock();
    let e = groups.entry(key).or_insert((0, 0.0));
    e.0 += 1;
    e.1 += (exec_us - e.1) / e.0 as f64;
}

/// Queue-wait estimate (µs) for `pending` joining `queue`, from the live
/// exec-time and batch-size histograms. `None` until enough launches have
/// completed to predict from — a cold runtime never sheds.
///
/// The queue is partitioned around the incoming request: work that would
/// be *co-scheduled* with it (same [`GroupKey`]) drains deterministically
/// at `max_batch` requests per fused launch, so a burst of same-plan
/// traffic at capacity costs `ceil((same+1)/max_batch)` launches — not
/// one launch per queued request, which is what the old depth-only
/// estimate charged and why batched traffic was over-shed. Unrelated
/// queued work drains at the *observed* batch-size mix (solo launches
/// record a batch size of 1, so the mean reflects real occupancy).
///
/// Each group's launches are priced at that **group's own** exec-time
/// mean once it has [`GROUP_MIN_HISTORY`] observations, falling back to
/// the global mean below that. One blended global mean mis-sheds
/// heterogeneous traffic in both directions: it admits doomed requests
/// queued behind long prefills (the blend under-prices them) and sheds
/// viable ones queued behind sub-millisecond decode steps (the blend
/// over-prices them).
fn estimate_wait_us(inner: &Inner, queue: &VecDeque<Pending>, pending: &Pending) -> Option<u64> {
    const MIN_HISTORY: u64 = 8;
    let exec = &inner.metrics.exec_us;
    if exec.count() < MIN_HISTORY {
        return None;
    }
    let global_us = exec.mean();
    let groups = inner.group_exec_us.lock();
    let mean_for = |k: &GroupKey| match groups.get(k) {
        Some(&(n, mean)) if n >= GROUP_MIN_HISTORY => mean,
        _ => global_us,
    };
    let key = group_key(pending);
    let mut same = 0usize;
    let mut others: HashMap<GroupKey, usize> = HashMap::new();
    for q in queue {
        let k = group_key(q);
        if k == key {
            same += 1;
        } else {
            *others.entry(k).or_insert(0) += 1;
        }
    }
    let total_us = if inner.cfg.batching {
        let max_batch = inner.cfg.max_batch.max(1) as f64;
        let mean_batch = inner.metrics.batch_size.mean().max(1.0);
        // +1: the incoming request rides one of its group's launches.
        let mut us = ((same + 1) as f64 / max_batch).ceil() * mean_for(&key);
        for (k, n) in &others {
            us += (*n as f64 / mean_batch).ceil() * mean_for(k);
        }
        us
    } else {
        let mut us = (same + 1) as f64 * mean_for(&key);
        for (k, n) in &others {
            us += *n as f64 * mean_for(k);
        }
        us
    };
    // The x2 safety margin keeps shedding deliberately conservative: a
    // shed request costs nothing, while an admitted-then-late request
    // burns pool time that on-deadline requests needed.
    Some((total_us * 2.0) as u64)
}

/// Consecutive session errors before the offending session is evicted.
const SESSION_STRIKE_LIMIT: u32 = 3;

/// Refreshes the point-in-time session gauges from the table (called
/// under the sessions lock, after any insert/remove).
fn sync_session_gauges(inner: &Inner, sessions: &HashMap<u64, SessionEntry>) {
    inner.metrics.sessions_active.set(sessions.len() as i64);
    let pinned: u64 = sessions.values().map(|s| s.pinned_bytes).sum();
    inner.metrics.pinned_bytes.set(pinned as i64);
}

/// Settles a decode step against its session at fulfillment: on success
/// the pinned state advances **in place** (handle swaps and row
/// replacements — `serve.state_copies` counts the defensive fallback
/// only); a session-typed failure strikes the session toward eviction.
/// Executor or deadline failures pass through untouched: they already
/// went to the plan's breaker, and charging them to the session too would
/// evict innocent sessions for a plan's bad day. A session closed while
/// the step was in flight simply delivers its outputs unchanged.
fn settle_session_step(inner: &Inner, sid: u64, result: ServeResult) -> ServeResult {
    let mut sessions = inner.sessions.lock();
    let Some(entry) = sessions.get_mut(&sid) else {
        return result;
    };
    entry.inflight = false;
    let outputs = result?;
    match entry.advance(&outputs) {
        Ok(copies) => {
            entry.strikes = 0;
            inner.metrics.state_copies.add(copies);
            inner.metrics.decode_steps.inc();
            ft_probe::counter("serve.decode_steps", 1.0);
            Ok(outputs)
        }
        Err(e) => {
            entry.strikes += 1;
            inner.metrics.session_errors.inc();
            ft_probe::counter("serve.session_errors", 1.0);
            if entry.strikes >= SESSION_STRIKE_LIMIT {
                sessions.remove(&sid);
                inner.metrics.session_evictions.inc();
                ft_probe::counter("serve.session_evictions", 1.0);
                sync_session_gauges(inner, &sessions);
            }
            Err(ServeError::Session(e))
        }
    }
}

/// Fails one stranded in-flight entry with `err`, emitting the metrics
/// and the attributable completion record `fulfill` would have.
fn resolve_inflight(inner: &Inner, entry: Inflight, err: ServeError) {
    inner.metrics.failed.inc();
    ft_probe::counter("serve.failed", 1.0);
    let total_us = entry.submitted.elapsed().as_secs_f64() * 1e6;
    let record = CompletionRecord {
        ctx: entry.ctx,
        queue_wait_us: entry.queue_wait_us,
        setup_us: 0.0,
        setup_cached: false,
        fuse: FuseDecision::Solo,
        exec_us: 0.0,
        split_us: 0.0,
        total_us,
        status: CompletionStatus::Error(err.to_string()),
    };
    record.emit_probe(ft_probe::now_us());
    inner.trace.push(record);
    let mut slot = entry.ticket.slot.lock();
    if slot.is_none() {
        *slot = Some(Err(err));
    }
    drop(slot);
    entry.ticket.done.notify_all();
}

/// Runs the dispatch loop under a panic supervisor. A scheduler panic —
/// a bug, or an injected [`Runtime::kill_scheduler`] — strands every
/// popped-but-unfulfilled ticket; the supervisor fails each one with a
/// typed [`ServeError::SchedulerDown`], bumps `serve.scheduler_restarts`,
/// and restarts the loop so the runtime keeps serving. Admitted tickets
/// can never hang.
fn supervisor_loop(inner: &Arc<Inner>) {
    loop {
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| scheduler_loop(inner)));
        match run {
            // Graceful exit: shutdown drained the queue.
            Ok(()) => return,
            Err(_) => {
                let stranded: Vec<Inflight> = {
                    let mut inflight = inner.inflight.lock();
                    inflight.drain().map(|(_, e)| e).collect()
                };
                for e in stranded {
                    resolve_inflight(inner, e, ServeError::SchedulerDown);
                }
                inner.metrics.scheduler_restarts.inc();
                ft_probe::counter("serve.scheduler_restarts", 1.0);
            }
        }
    }
}

fn scheduler_loop(inner: &Arc<Inner>) {
    loop {
        let mut group = {
            let mut queue = inner.queue.lock();
            loop {
                if !queue.is_empty() {
                    break;
                }
                // Graceful drain: exit only once the queue is empty.
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = inner.not_empty.wait(queue);
            }
            let mut group = Vec::new();
            if let Some(first) = queue.pop_front() {
                let key = group_key(&first);
                group.push(first);
                if inner.cfg.batching {
                    // Pull every queued same-group request (up to
                    // max_batch) regardless of position: batching is keyed
                    // on the plan — exact signature, or structural family
                    // + length bucket for shape-polymorphic requests — not
                    // adjacency.
                    let mut i = 0;
                    while i < queue.len() && group.len() < inner.cfg.max_batch {
                        if group_key(&queue[i]) == key {
                            if let Some(p) = queue.remove(i) {
                                group.push(p);
                            }
                        } else {
                            i += 1;
                        }
                    }
                }
            }
            // Register the group as in-flight under the queue lock:
            // from the waiter's perspective a ticket is always either
            // queued or in-flight, so a panic at any point between pop
            // and fulfill is covered by the supervisor.
            {
                let mut inflight = inner.inflight.lock();
                for p in &group {
                    inflight.insert(
                        p.ctx.request_id,
                        Inflight {
                            ticket: Arc::clone(&p.ticket),
                            ctx: p.ctx.clone(),
                            submitted: p.submitted,
                            queue_wait_us: 0.0,
                        },
                    );
                }
            }
            // Point-in-time depth after the pop, under the same lock.
            inner.metrics.queue_depth.set(queue.len() as i64);
            group
        };
        inner.space.notify_all();
        // Chaos hook: an injected kill lands after the group is popped
        // and registered — exactly the worst case the supervisor exists
        // for (tickets neither queued nor fulfilled).
        if inner.kill.swap(0, Ordering::SeqCst) > 0 {
            panic!("injected scheduler panic (kill_scheduler)");
        }
        if !group.is_empty() {
            // Queue wait ends here: everything after is setup + execution.
            let now = Instant::now();
            for p in &mut group {
                p.queue_wait_us = now.duration_since(p.submitted).as_secs_f64() * 1e6;
                inner.metrics.queue_wait_us.record(p.queue_wait_us);
            }
            // Each group reads the current engine: a stall in an earlier
            // group may have swapped in a fresh pool.
            let exec = inner.engine.read().exec.clone();
            process_group(inner, exec, group);
        }
    }
}

fn split_expired(group: Vec<Pending>) -> (Vec<Pending>, Vec<Pending>) {
    let now = Instant::now();
    group
        .into_iter()
        .partition(|p| p.deadline.is_some_and(|d| d <= now))
}

/// Records one execution (or compile) outcome of `sig` against its
/// circuit breaker. Successes close the breaker; `threshold` consecutive
/// failures open it, after which [`process_group`] fails requests fast
/// until the cooldown elapses and a half-open probe succeeds.
fn note_plan_outcome(inner: &Inner, sig: ProgramSig, ok: bool) {
    let threshold = inner.cfg.quarantine_threshold;
    if threshold == 0 {
        return;
    }
    let mut quarantine = inner.quarantine.lock();
    let b = quarantine.entry(sig).or_default();
    if ok {
        if !matches!(b.state, BreakerState::Closed) {
            inner.metrics.quarantined_plans.dec();
        }
        b.consecutive = 0;
        b.state = BreakerState::Closed;
        return;
    }
    b.consecutive = b.consecutive.saturating_add(1);
    match b.state {
        // A failed half-open probe re-opens with a fresh cooldown; the
        // plan never left quarantine, so no new trip is counted.
        BreakerState::HalfOpen => {
            b.state = BreakerState::Open {
                until: Instant::now() + inner.cfg.quarantine_cooldown,
            };
        }
        BreakerState::Closed if b.consecutive >= threshold => {
            b.state = BreakerState::Open {
                until: Instant::now() + inner.cfg.quarantine_cooldown,
            };
            inner.metrics.quarantine_trips.inc();
            inner.metrics.quarantined_plans.inc();
            ft_probe::counter("serve.quarantine_trips", 1.0);
        }
        _ => {}
    }
}

/// Does this executor error indict the *plan* (count against its
/// breaker)? Caller mistakes — missing or malformed inputs — don't.
fn indicts_plan(e: &ExecError) -> bool {
    !matches!(e, ExecError::Input(_))
}

/// Swaps a poisoned pool for a fresh one (same width, same supervision
/// mode) and rebinds `exec` to the replacement engine. The executor's
/// arena and counters carry over — only the pool is new. No-op if
/// another path already replaced it.
fn replace_engine(inner: &Inner, exec: &mut Executor) {
    let mut eng = inner.engine.write();
    if !eng.pool.is_poisoned() {
        *exec = eng.exec.clone();
        return;
    }
    let pool = Arc::new(if eng.pool.is_supervised() {
        WorkerPool::supervised(inner.pool_threads)
    } else {
        WorkerPool::new(inner.pool_threads)
    });
    eng.exec = eng.exec.clone().pool(Arc::clone(&pool));
    eng.pool = pool;
    *exec = eng.exec.clone();
    inner.metrics.pool_replacements.inc();
    ft_probe::counter("serve.pool_replacements", 1.0);
}

/// Notes a stall: meters it, and replaces the poisoned pool so the rest
/// of the group (and all later groups) run on a healthy engine.
fn recover_from_stall(inner: &Inner, exec: &mut Executor) {
    inner.metrics.stalled.inc();
    ft_probe::counter("serve.stalled", 1.0);
    replace_engine(inner, exec);
}

fn process_group(inner: &Inner, mut exec: Executor, group: Vec<Pending>) {
    let (expired, live) = split_expired(group);
    for p in expired {
        fulfill(inner, p, Err(ServeError::Deadline), Phases::default());
    }
    if live.is_empty() {
        return;
    }

    // Quarantine gate: an open breaker fails the whole group fast — no
    // compile, no pool time. Once the cooldown elapses, exactly one
    // group proceeds as the half-open probe; its outcome decides
    // between closing and re-opening. Poly groups share one breaker per
    // structural family (they share the plan).
    let sig = quarantine_sig(&live[0]);
    if inner.cfg.quarantine_threshold > 0 {
        let now = Instant::now();
        let mut quarantine = inner.quarantine.lock();
        if let Some(b) = quarantine.get_mut(&sig) {
            match b.state {
                BreakerState::Open { until } if now < until => {
                    drop(quarantine);
                    inner.metrics.quarantine_rejected.add(live.len() as u64);
                    ft_probe::counter("serve.quarantine_rejected", live.len() as f64);
                    for p in live {
                        fulfill(inner, p, Err(ServeError::Quarantined), Phases::default());
                    }
                    return;
                }
                BreakerState::Open { .. } => {
                    b.state = BreakerState::HalfOpen;
                    inner.metrics.quarantine_probes.inc();
                    ft_probe::counter("serve.quarantine_probes", 1.0);
                }
                _ => {}
            }
        }
    }

    // Plan acquisition: a cache hit skips compile AND verify. The time is
    // billed to every request in the group's phase breakdown (they share
    // one acquisition). Poly-eligible groups acquire the structural
    // *family* — one cached entry serves every outer extent — everything
    // else the exact-shape compiled plan.
    let setup_start = Instant::now();
    let acquired = if live[0].poly.is_some() {
        acquire_family(inner, &live[0].program).map(|(f, hit)| (Acquired::Family(f), hit))
    } else {
        acquire_plan(inner, &live[0].program).map(|(p, hit)| (Acquired::Plan(p), hit))
    };
    let setup_us = setup_start.elapsed().as_secs_f64() * 1e6;
    let (plan, hit) = match acquired {
        Ok(v) => v,
        Err(e) => {
            // A plan that won't compile (or verify) counts one failure
            // per dispatch attempt toward quarantine.
            note_plan_outcome(inner, sig, false);
            for p in live {
                fulfill(
                    inner,
                    p,
                    Err(e.clone()),
                    Phases {
                        setup_us,
                        setup_cached: false,
                        ..Phases::default()
                    },
                );
            }
            return;
        }
    };
    if hit {
        inner.metrics.setup_cached_us.record(setup_us);
        ft_probe::counter("serve.setup_cached", 1.0);
    } else {
        inner.metrics.setup_cold_us.record(setup_us);
        ft_probe::counter("serve.setup_cold", 1.0);
    }
    let phases = Phases {
        setup_us,
        setup_cached: hit,
        ..Phases::default()
    };

    // A cold compile can be slow; re-check deadlines before launching.
    let (expired, live) = split_expired(live);
    for p in expired {
        fulfill(inner, p, Err(ServeError::Deadline), phases.clone());
    }
    if live.is_empty() {
        return;
    }

    // Fusion attempt: mint a batch id up front so every span and record of
    // this launch shares it, success or fallback.
    let mut fallback_reason: Option<String> = None;
    let mut live = live;
    if live.len() > 1 {
        // Ragged poly groups fuse through the family (members may differ
        // in outer extent); fixed-shape groups through the re-extent
        // batched program.
        let fuse = match &plan {
            Acquired::Family(family) => Some(FusePath::Poly(Arc::clone(family))),
            Acquired::Plan(_) => batch_info_for(inner, &live[0]).map(FusePath::Fixed),
        };
        if let Some(fuse) = fuse {
            // Last deadline check before the batch geometry is fixed: a
            // request that expired while the group was being set up must
            // not widen the wavefront launch.
            let (expired, still_live) = split_expired(live);
            live = still_live;
            for p in expired {
                fulfill(inner, p, Err(ServeError::Deadline), phases.clone());
            }
            if live.is_empty() {
                return;
            }
            if live.len() > 1 {
                let batch_id = inner.next_batch_id.fetch_add(1, Ordering::Relaxed);
                let attempt = match &fuse {
                    FusePath::Poly(family) => run_fused_poly(inner, &exec, &live, family, batch_id),
                    FusePath::Fixed(info) => run_fused(inner, &exec, &live, info, batch_id),
                };
                match attempt {
                    Ok(fused) => {
                        let k = live.len();
                        inner.metrics.batches.inc();
                        inner.metrics.batched_requests.add(k as u64);
                        inner.metrics.batch_size.record(k as f64);
                        inner.max_batch.fetch_max(k as u64, Ordering::Relaxed);
                        ft_probe::counter("serve.batches", 1.0);
                        note_plan_outcome(inner, sig, true);
                        for (mut p, out) in live.into_iter().zip(fused.outputs) {
                            p.ctx.batch_id = Some(batch_id);
                            fulfill(
                                inner,
                                p,
                                Ok(out),
                                Phases {
                                    fuse: FuseDecision::Fused { size: k as u32 },
                                    exec_us: fused.exec_us,
                                    split_us: fused.split_us,
                                    ..phases.clone()
                                },
                            );
                        }
                        return;
                    }
                    Err(fail) => {
                        // Fused execution is best-effort; serve individually.
                        inner.metrics.batch_fallbacks.inc();
                        ft_probe::counter("serve.batch_fallbacks", 1.0);
                        let reason = match fail {
                            FusedFailure::Precondition { reason, ragged } => {
                                if ragged {
                                    // Length-mix fallback (mismatched
                                    // outer extent), distinct from genuine
                                    // shape errors.
                                    inner.metrics.batch_ragged_fallback.inc();
                                    ft_probe::counter("serve.batch_ragged_fallback", 1.0);
                                }
                                reason
                            }
                            FusedFailure::Exec(e) => {
                                // Batch fault isolation: the fused launch
                                // itself failed, so every member is re-run
                                // solo below and only the genuinely faulty
                                // request errors. Meter the isolation cost.
                                inner.metrics.batch_bisections.inc();
                                inner.metrics.retries.add(live.len() as u64);
                                ft_probe::counter("serve.batch_bisections", 1.0);
                                ft_probe::counter("serve.retries", live.len() as f64);
                                if matches!(e, ExecError::Stalled { .. }) {
                                    // The stall poisoned the pool; the solo
                                    // retries need a healthy one.
                                    recover_from_stall(inner, &mut exec);
                                }
                                format!("fused execution: {e}")
                            }
                        };
                        let mut span = ft_probe::span("serve", "batch_fallback");
                        if span.is_recording() {
                            span.field("reason", reason.as_str());
                            span.field("batch_id", batch_id);
                        }
                        fallback_reason = Some(reason);
                    }
                }
            }
        }
    }

    for p in live {
        // A member can expire while earlier members (or a failed fused
        // attempt) execute; bounce it without burning pool time.
        if p.deadline.is_some_and(|d| d <= Instant::now()) {
            fulfill(inner, p, Err(ServeError::Deadline), phases.clone());
            continue;
        }
        let exec_start = Instant::now();
        let result = match (&plan, p.poly) {
            (Acquired::Plan(compiled), _) => {
                exec.run(compiled, &p.inputs).map_err(ServeError::Exec)
            }
            (Acquired::Family(family), Some(m)) => exec
                .run_poly(family, m.extent, &p.inputs, None)
                .map_err(ServeError::Exec),
            // Unreachable by construction — a poly group only ever holds
            // poly requests — but typed rather than panicking.
            (Acquired::Family(_), None) => Err(ServeError::Input(
                "request without shape metadata in a polymorphic group".into(),
            )),
        };
        let exec_us = exec_start.elapsed().as_secs_f64() * 1e6;
        inner.metrics.exec_us.record(exec_us);
        note_group_exec(inner, group_key(&p), exec_us);
        // Solo launches count toward the realized batch-size mix too —
        // without them the mean only reflects fused successes and the
        // shedding estimator overestimates drain rates.
        inner.metrics.batch_size.record(1.0);
        match &result {
            Ok(_) => note_plan_outcome(inner, sig, true),
            Err(ServeError::Exec(e)) => {
                if indicts_plan(e) {
                    note_plan_outcome(inner, sig, false);
                }
                if matches!(e, ExecError::Stalled { .. }) {
                    recover_from_stall(inner, &mut exec);
                }
            }
            Err(_) => {}
        }
        fulfill(
            inner,
            p,
            result,
            Phases {
                fuse: match &fallback_reason {
                    Some(reason) => FuseDecision::Fallback(reason.clone()),
                    None => FuseDecision::Solo,
                },
                exec_us,
                ..phases.clone()
            },
        );
    }
}

/// The plan a group was acquired under: a fixed-shape compiled program,
/// or a shape-polymorphic family instantiated per extent at dispatch.
enum Acquired {
    Plan(Arc<CompiledProgram>),
    Family(Arc<PolyPlan>),
}

/// How a multi-request group fuses: through the family (ragged, members
/// may differ in outer extent) or the fixed-shape re-extent path.
enum FusePath {
    Poly(Arc<PolyPlan>),
    Fixed(Arc<BatchInfo>),
}

fn acquire_plan(
    inner: &Inner,
    program: &Program,
) -> Result<(Arc<CompiledProgram>, bool), ServeError> {
    let verify = inner.cfg.verify;
    inner.cache.get_or_compile_with(program, |p| {
        if verify {
            compile_verified(p)
                .map(|(compiled, _report)| compiled)
                .map_err(|e| ServeError::Compile(e.to_string()))
        } else {
            ft_passes::compile(p).map_err(|e| ServeError::Compile(e.to_string()))
        }
    })
}

/// The shape-polymorphic family for `program`'s structure, from the
/// family cache or built (and, per config, verified for extent
/// invariance) cold. The `bool` is true on a cache hit.
fn acquire_family(inner: &Inner, program: &Program) -> Result<(Arc<PolyPlan>, bool), ServeError> {
    // Admission already proved the split exists; recomputing it here is
    // one byte-serialization, far cheaper than a compile.
    let split = poly_split(program).ok_or_else(|| {
        ServeError::Compile("program lost its polymorphic outer axis".to_string())
    })?;
    let verify = inner.cfg.verify;
    inner.poly_cache.get_or_build_with(program, &split, |p| {
        if verify {
            build_poly_verified(p)
                .map(|(family, _report)| family)
                .map_err(|e| ServeError::Compile(e.to_string()))
        } else {
            match PolyPlan::build(p) {
                Ok(Some(family)) => Ok(family),
                Ok(None) => Err(ServeError::Compile(
                    "program lost its polymorphic outer axis".to_string(),
                )),
                Err(e) => Err(ServeError::Compile(e.to_string())),
            }
        }
    })
}

/// The request's shape-polymorphism identity, memoized by exact signature
/// (same sig ⇒ same split outcome). `None` when [`ServeConfig::poly`] is
/// off or the program has no legal polymorphic outer axis.
fn poly_meta_for(inner: &Inner, sig: ProgramSig, program: &Program) -> Option<PolyMeta> {
    if !inner.cfg.poly {
        return None;
    }
    if let Some(meta) = inner.poly_meta.lock().get(&sig) {
        return *meta;
    }
    let meta = poly_split(program).map(|s| PolyMeta {
        key: s.key,
        extent: s.outer_extent,
        bucket: extent_bucket(s.outer_extent),
    });
    inner.poly_meta.lock().insert(sig, meta);
    meta
}

fn batch_info_for(inner: &Inner, pending: &Pending) -> Option<Arc<BatchInfo>> {
    if let Some(cached) = inner.batch_info.lock().get(&pending.sig) {
        return cached.clone();
    }
    let info = batch::analyze(&pending.program).map(Arc::new);
    inner.batch_info.lock().insert(pending.sig, info.clone());
    info
}

/// What a successful fused launch hands back: per-request outputs plus
/// the phase timings shared by every request in the batch.
struct FusedOutcome {
    outputs: Vec<HashMap<BufferId, FractalTensor>>,
    /// Wavefront execution of the widened program, µs.
    exec_us: f64,
    /// Input concatenation + output splitting, µs.
    split_us: f64,
}

/// Why a fused attempt aborted — the caller's recovery differs.
enum FusedFailure {
    /// The batch could not even be assembled (shape mismatch, divergent
    /// shared inputs, fused compile failure). Nothing executed; the
    /// fallback is ordinary per-request serving, not fault isolation.
    /// `ragged` marks the specific sub-case of a mismatched *outer*
    /// extent (inner dims fine) so the length-mix fallback counter stays
    /// distinct from genuine shape errors.
    Precondition { reason: String, ragged: bool },
    /// The widened launch itself failed (worker panic, guard trip,
    /// stall). The caller re-runs each member solo to isolate the
    /// faulty request.
    Exec(ExecError),
}

impl FusedFailure {
    fn precondition(reason: impl Into<String>) -> Self {
        FusedFailure::Precondition {
            reason: reason.into(),
            ragged: false,
        }
    }
}

/// One fused launch for `live` (all same-signature): concatenate batched
/// inputs, run the widened program, split outputs per request. Any
/// precondition or execution failure aborts the whole attempt with a
/// typed [`FusedFailure`]; the caller falls back to per-request
/// execution.
fn run_fused(
    inner: &Inner,
    exec: &Executor,
    live: &[Pending],
    info: &BatchInfo,
    batch_id: u64,
) -> Result<FusedOutcome, FusedFailure> {
    let k = live.len();
    let base = &live[0].program;
    let fused_prog = batch::batched_program(base, info, k);
    let (fused_plan, _) = acquire_plan(inner, &fused_prog)
        .map_err(|e| FusedFailure::precondition(format!("fused compile: {e}")))?;

    let mut split_us = 0.0;
    let concat_start = Instant::now();
    let mut fused_inputs = HashMap::new();
    for (bi, decl) in base.buffers.iter().enumerate() {
        if decl.kind != BufferKind::Input {
            continue;
        }
        let id = BufferId(bi);
        if info.batched[bi] {
            let parts = live
                .iter()
                .map(|p| p.inputs.get(&id))
                .collect::<Option<Vec<_>>>()
                .ok_or_else(|| {
                    FusedFailure::precondition(format!("missing input '{}'", decl.name))
                })?;
            // Every per-request part must match the *base* declaration
            // exactly — the fused executor only sees the concatenated
            // total (B·k), so a short part and a long part that happen to
            // sum to B·k would otherwise pass validation and split_outer
            // would hand requests slices of each other's results. Reject
            // here so the per-request fallback returns each caller the
            // same typed `ExecError::Input` the unbatched path would.
            for part in &parts {
                let got = part.prog_dims();
                if got != decl.dims {
                    // An outer-only mismatch (inner dims fine) is the
                    // length-mix case — meter it apart from shape errors.
                    let ragged = got.len() == decl.dims.len() && got.get(1..) == decl.dims.get(1..);
                    return Err(FusedFailure::Precondition {
                        reason: format!(
                            "input '{}' dims {:?} != declared {:?}",
                            decl.name, got, decl.dims
                        ),
                        ragged,
                    });
                }
            }
            let fused = batch::concat_outer(&parts)
                .map_err(|e| FusedFailure::precondition(format!("concat '{}': {e}", decl.name)))?;
            fused_inputs.insert(id, fused);
        } else {
            // Shared buffers (weights) must be identical across the batch.
            let first = live[0].inputs.get(&id).ok_or_else(|| {
                FusedFailure::precondition(format!("missing input '{}'", decl.name))
            })?;
            for p in &live[1..] {
                if p.inputs.get(&id) != Some(first) {
                    return Err(FusedFailure::precondition(format!(
                        "shared input '{}' differs across batch",
                        decl.name
                    )));
                }
            }
            fused_inputs.insert(id, first.clone());
        }
    }

    split_us += concat_start.elapsed().as_secs_f64() * 1e6;

    let exec_start = Instant::now();
    let fused_out = exec
        .run_tagged(&fused_plan, &fused_inputs, Some(batch_id))
        .map_err(FusedFailure::Exec)?;
    let exec_us = exec_start.elapsed().as_secs_f64() * 1e6;
    inner.metrics.exec_us.record(exec_us);
    note_group_exec(inner, group_key(&live[0]), exec_us);

    let split_start = Instant::now();
    let mut per_request: Vec<HashMap<BufferId, FractalTensor>> =
        (0..k).map(|_| HashMap::new()).collect();
    for (id, ft) in fused_out {
        if info.batched.get(id.0).copied().unwrap_or(false) {
            let chunks = batch::split_outer(&ft, k)
                .map_err(|e| FusedFailure::precondition(format!("split output: {e}")))?;
            for (m, chunk) in per_request.iter_mut().zip(chunks) {
                m.insert(id, chunk);
            }
        } else {
            for m in per_request.iter_mut() {
                m.insert(id, ft.clone());
            }
        }
    }
    split_us += split_start.elapsed().as_secs_f64() * 1e6;
    Ok(FusedOutcome {
        outputs: per_request,
        exec_us,
        split_us,
    })
}

/// One **ragged** fused launch for a shape-polymorphic group: members may
/// differ in outer extent. Batched inputs are concatenated along the
/// outer axis with each member's extent recorded, the family is
/// instantiated at the summed extent and run once, and outputs are split
/// back offset-aware ([`batch::split_outer_parts`]) so every member gets
/// exactly its own rows.
fn run_fused_poly(
    inner: &Inner,
    exec: &Executor,
    live: &[Pending],
    family: &PolyPlan,
    batch_id: u64,
) -> Result<FusedOutcome, FusedFailure> {
    let info = family.info();
    let extents = live
        .iter()
        .map(|p| p.poly.map(|m| m.extent))
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| {
            FusedFailure::precondition("member without shape metadata in a polymorphic group")
        })?;
    let total: usize = extents.iter().sum();
    let k = live.len();

    let mut split_us = 0.0;
    let concat_start = Instant::now();
    // Inner dims are structural, so the group leader's declarations give
    // the expected shape of every member's part once the outer extent is
    // swapped for the member's own.
    let base = &live[0].program;
    let mut fused_inputs = HashMap::new();
    for (bi, decl) in base.buffers.iter().enumerate() {
        if decl.kind != BufferKind::Input {
            continue;
        }
        let id = BufferId(bi);
        if info.batched.get(bi).copied().unwrap_or(false) {
            let mut parts = Vec::with_capacity(k);
            for (p, &extent) in live.iter().zip(&extents) {
                let part = p.inputs.get(&id).ok_or_else(|| {
                    FusedFailure::precondition(format!("missing input '{}'", decl.name))
                })?;
                // Each part must carry exactly its request's extent over
                // the shared inner dims — a wrong-length part would shift
                // every later member's slice of the fused outputs.
                let got = part.prog_dims();
                if !(got.len() == decl.dims.len()
                    && got.first() == Some(&extent)
                    && got.get(1..) == decl.dims.get(1..))
                {
                    let ragged = got.len() == decl.dims.len() && got.get(1..) == decl.dims.get(1..);
                    return Err(FusedFailure::Precondition {
                        reason: format!(
                            "input '{}' dims {:?} != request extent {} over {:?}",
                            decl.name,
                            got,
                            extent,
                            decl.dims.get(1..).unwrap_or_default()
                        ),
                        ragged,
                    });
                }
                parts.push(part);
            }
            let fused = batch::concat_outer(&parts)
                .map_err(|e| FusedFailure::precondition(format!("concat '{}': {e}", decl.name)))?;
            fused_inputs.insert(id, fused);
        } else {
            // Shared buffers (weights) must be identical across the batch.
            let first = live[0].inputs.get(&id).ok_or_else(|| {
                FusedFailure::precondition(format!("missing input '{}'", decl.name))
            })?;
            for p in &live[1..] {
                if p.inputs.get(&id) != Some(first) {
                    return Err(FusedFailure::precondition(format!(
                        "shared input '{}' differs across batch",
                        decl.name
                    )));
                }
            }
            fused_inputs.insert(id, first.clone());
        }
    }
    split_us += concat_start.elapsed().as_secs_f64() * 1e6;

    let exec_start = Instant::now();
    let fused_out = exec
        .run_poly(family, total, &fused_inputs, Some(batch_id))
        .map_err(FusedFailure::Exec)?;
    let exec_us = exec_start.elapsed().as_secs_f64() * 1e6;
    inner.metrics.exec_us.record(exec_us);
    note_group_exec(inner, group_key(&live[0]), exec_us);

    let split_start = Instant::now();
    let mut per_request: Vec<HashMap<BufferId, FractalTensor>> =
        (0..k).map(|_| HashMap::new()).collect();
    for (id, ft) in fused_out {
        if info.batched.get(id.0).copied().unwrap_or(false) {
            let chunks = batch::split_outer_parts(&ft, &extents)
                .map_err(|e| FusedFailure::precondition(format!("split output: {e}")))?;
            for (m, chunk) in per_request.iter_mut().zip(chunks) {
                m.insert(id, chunk);
            }
        } else {
            for m in per_request.iter_mut() {
                m.insert(id, ft.clone());
            }
        }
    }
    split_us += split_start.elapsed().as_secs_f64() * 1e6;
    Ok(FusedOutcome {
        outputs: per_request,
        exec_us,
        split_us,
    })
}

/// Resolves one request: updates metrics, appends its attributable
/// [`CompletionRecord`] (mirrored to a Perfetto request span when tracing
/// is on), and wakes the ticket waiter.
fn fulfill(inner: &Inner, mut pending: Pending, result: ServeResult, phases: Phases) {
    // A decode step advances its session's pinned state before the
    // waiter is woken: by the time the ticket resolves, the state the
    // next step reads is already current. Runs after the breaker
    // bookkeeping in `process_group`, so a session-typed rewrite here
    // can never reach the plan's quarantine accounting.
    let result = match pending.session_step.take() {
        Some(sid) => settle_session_step(inner, sid, result),
        None => result,
    };
    // The ticket is resolving normally; the supervisor no longer needs
    // its in-flight entry. (Requests failed straight off the queue were
    // never registered — remove is a no-op for them.)
    inner.inflight.lock().remove(&pending.ctx.request_id);
    let latency_us = pending.submitted.elapsed().as_secs_f64() * 1e6;
    let status = match &result {
        Ok(_) => {
            inner.metrics.completed.inc();
            inner.metrics.latency_us.record(latency_us);
            ft_probe::counter("serve.completed", 1.0);
            CompletionStatus::Ok
        }
        Err(ServeError::Deadline) => {
            inner.metrics.deadline_expired.inc();
            ft_probe::counter("serve.deadline_expired", 1.0);
            CompletionStatus::Deadline
        }
        Err(e) => {
            inner.metrics.failed.inc();
            ft_probe::counter("serve.failed", 1.0);
            CompletionStatus::Error(e.to_string())
        }
    };
    let record = CompletionRecord {
        ctx: pending.ctx,
        queue_wait_us: pending.queue_wait_us,
        setup_us: phases.setup_us,
        setup_cached: phases.setup_cached,
        fuse: phases.fuse,
        exec_us: phases.exec_us,
        split_us: phases.split_us,
        total_us: latency_us,
        status,
    };
    record.emit_probe(ft_probe::now_us());
    inner.trace.push(record);
    let mut slot = pending.ticket.slot.lock();
    *slot = Some(result);
    pending.ticket.done.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_backend::execute_reference;
    use ft_core::builders::stacked_rnn_program;
    use ft_tensor::Tensor;

    fn rnn_case(seed: u64) -> (Program, HashMap<BufferId, FractalTensor>) {
        let (n, d, l, h) = (2usize, 2, 3, 8);
        let p = stacked_rnn_program(n, d, l, h);
        let mut inputs = HashMap::new();
        inputs.insert(
            BufferId(0),
            FractalTensor::from_flat(&Tensor::randn(&[n, l, 1, h], seed), 2).unwrap(),
        );
        inputs.insert(
            BufferId(1),
            FractalTensor::from_flat(&Tensor::randn(&[d, h, h], seed + 1).mul_scalar(0.2), 1)
                .unwrap(),
        );
        (p, inputs)
    }

    fn reference(
        p: &Program,
        inputs: &HashMap<BufferId, FractalTensor>,
    ) -> HashMap<BufferId, FractalTensor> {
        let compiled = ft_passes::compile(p).unwrap();
        execute_reference(&compiled, inputs, 1).unwrap()
    }

    #[test]
    fn single_request_matches_reference() {
        let rt = Runtime::new(ServeConfig {
            threads: 2,
            ..ServeConfig::default()
        });
        let (p, inputs) = rnn_case(7);
        let want = reference(&p, &inputs);
        let got = rt.run(&p, inputs).unwrap();
        assert_eq!(got, want);
        let stats = rt.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.cache_misses, 1);
    }

    #[test]
    fn resubmission_hits_the_plan_cache() {
        let rt = Runtime::new(ServeConfig {
            threads: 2,
            batching: false,
            ..ServeConfig::default()
        });
        let (p, inputs) = rnn_case(1);
        rt.run(&p, inputs.clone()).unwrap();
        rt.run(&p, inputs).unwrap();
        let stats = rt.stats();
        assert_eq!(stats.cache_misses, 1, "second run must not recompile");
        assert!(stats.cache_hits >= 1);
    }

    #[test]
    fn concurrent_same_plan_requests_get_batched_and_stay_exact() {
        let rt = Runtime::new(ServeConfig {
            threads: 2,
            max_batch: 4,
            ..ServeConfig::default()
        });
        let cases: Vec<_> = (0..4).map(rnn_case).collect();
        let tickets: Vec<_> = cases
            .iter()
            .map(|(p, inputs)| {
                rt.submit_wait(Request::new(p.clone(), inputs.clone()))
                    .unwrap()
            })
            .collect();
        for ((p, inputs), t) in cases.iter().zip(tickets) {
            let got = t.wait().unwrap();
            assert_eq!(
                got,
                reference(p, inputs),
                "batched output must be bitwise exact"
            );
        }
        let stats = rt.stats();
        assert_eq!(stats.completed, 4);
        // At least some requests were co-scheduled (the first may run solo
        // if the scheduler wins the race before the rest are queued).
        assert!(stats.batches >= 1 || stats.completed == 4);
    }

    #[test]
    fn deadline_expired_request_fails_cleanly_and_runtime_survives() {
        let rt = Runtime::new(ServeConfig {
            threads: 2,
            ..ServeConfig::default()
        });
        let (p, inputs) = rnn_case(3);
        // An already-expired deadline: the scheduler must bounce it.
        let ticket = rt
            .submit_wait(
                Request::new(p.clone(), inputs.clone()).with_deadline(Duration::from_nanos(1)),
            )
            .unwrap();
        assert_eq!(ticket.wait(), Err(ServeError::Deadline));
        // The pool is not poisoned: the next request is exact.
        let got = rt.run(&p, inputs.clone()).unwrap();
        assert_eq!(got, reference(&p, &inputs));
        let stats = rt.stats();
        assert_eq!(stats.deadline_expired, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn queue_full_is_reported_not_dropped() {
        let rt = Runtime::new(ServeConfig {
            threads: 1,
            queue_capacity: 1,
            ..ServeConfig::default()
        });
        let (p, inputs) = rnn_case(5);
        // Flood faster than the scheduler drains; at least one submission
        // must be rejected with QueueFull (capacity 1 and instant refills).
        let mut rejected = 0;
        let mut tickets = Vec::new();
        for _ in 0..64 {
            match rt.submit(Request::new(p.clone(), inputs.clone())) {
                Ok(t) => tickets.push(t),
                Err(ServeError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 1);
                    rejected += 1;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(rejected > 0, "backpressure never engaged");
        for t in tickets {
            t.wait().unwrap();
        }
        assert_eq!(rt.stats().rejected, rejected);
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let rt = Runtime::new(ServeConfig {
            threads: 1,
            ..ServeConfig::default()
        });
        rt.shutdown();
        let (p, inputs) = rnn_case(0);
        assert!(matches!(
            rt.submit(Request::new(p, inputs)),
            Err(ServeError::Shutdown)
        ));
    }

    #[test]
    fn bad_program_fails_without_poisoning() {
        let rt = Runtime::new(ServeConfig {
            threads: 2,
            ..ServeConfig::default()
        });
        let (p, inputs) = rnn_case(2);
        // Missing inputs: execution fails with a typed error.
        let err = rt.run(&p, HashMap::new()).unwrap_err();
        assert!(matches!(err, ServeError::Exec(_)));
        // And the runtime keeps serving.
        assert_eq!(rt.run(&p, inputs.clone()).unwrap(), reference(&p, &inputs));
    }

    /// The review-flagged cross-request mixing hazard: two requests whose
    /// batched inputs have the wrong outer lengths (1 and 3) that *sum* to
    /// the fused extent (2·2). Without per-part validation the fused path
    /// concatenates them, the executor sees a well-shaped B·k input, and
    /// split_outer hands each request slices computed from the other's
    /// data. Both must instead fail with the same typed input error the
    /// unbatched path produces, and never an `Ok`.
    #[test]
    fn mismatched_batch_inputs_fail_typed_never_mix() {
        let rt = Runtime::new(ServeConfig {
            threads: 2,
            max_batch: 4,
            ..ServeConfig::default()
        });
        let (n, d, l, h) = (2usize, 2, 3, 8);
        let p = stacked_rnn_program(n, d, l, h);
        // Identical weights across the group so the shared-input equality
        // check passes and the outer-length check is what must reject.
        let ws =
            FractalTensor::from_flat(&Tensor::randn(&[d, h, h], 99).mul_scalar(0.2), 1).unwrap();
        let mk = |outer: usize, seed: u64| {
            let mut inputs = HashMap::new();
            inputs.insert(
                BufferId(0),
                FractalTensor::from_flat(&Tensor::randn(&[outer, l, 1, h], seed), 2).unwrap(),
            );
            inputs.insert(BufferId(1), ws.clone());
            inputs
        };
        let tickets: Vec<_> = [mk(1, 21), mk(3, 22)]
            .into_iter()
            .map(|inputs| rt.submit_wait(Request::new(p.clone(), inputs)).unwrap())
            .collect();
        for t in tickets {
            assert!(
                matches!(t.wait(), Err(ServeError::Exec(ExecError::Input(_)))),
                "wrong-length batched input must fail typed, not execute"
            );
        }
        // And the runtime still serves well-formed requests exactly.
        let good = mk(n, 7);
        assert_eq!(rt.run(&p, good.clone()).unwrap(), reference(&p, &good));
    }

    /// Submissions racing shutdown() either land before the scheduler's
    /// final drain or are rejected — an admitted ticket must always
    /// resolve, never block forever on a dead queue.
    #[test]
    fn submissions_racing_shutdown_never_hang() {
        for round in 0..8u64 {
            let rt = Arc::new(Runtime::new(ServeConfig {
                threads: 1,
                ..ServeConfig::default()
            }));
            let (p, inputs) = rnn_case(round);
            let submitter = {
                let rt = Arc::clone(&rt);
                let p = p.clone();
                std::thread::spawn(move || {
                    let mut tickets = Vec::new();
                    for _ in 0..32 {
                        match rt.submit(Request::new(p.clone(), inputs.clone())) {
                            Ok(t) => tickets.push(t),
                            Err(_) => break,
                        }
                    }
                    tickets
                })
            };
            rt.shutdown();
            for t in submitter.join().unwrap() {
                // Success or ServeError::Shutdown are both fine; hanging
                // here is the regression.
                let _ = t.wait();
            }
        }
    }

    #[test]
    fn try_new_constructs_a_live_runtime() {
        let rt = Runtime::try_new(ServeConfig {
            threads: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let (p, inputs) = rnn_case(9);
        assert_eq!(rt.run(&p, inputs.clone()).unwrap(), reference(&p, &inputs));
    }

    /// The reservoir is gone: every completed request lands in the
    /// latency histogram, so percentiles are computed over the full
    /// history, and the queue-depth gauge reads a point-in-time value
    /// that returns to zero once the queue drains.
    #[test]
    fn stats_count_every_request_and_gauge_reads_now() {
        let rt = Runtime::new(ServeConfig {
            threads: 2,
            batching: false,
            ..ServeConfig::default()
        });
        let (p, inputs) = rnn_case(11);
        for _ in 0..6 {
            rt.run(&p, inputs.clone()).unwrap();
        }
        let stats = rt.stats();
        assert_eq!(stats.completed, 6);
        assert!(stats.latency_p50_us > 0.0);
        assert!(stats.latency_p50_us <= stats.latency_p95_us);
        assert!(stats.latency_p95_us <= stats.latency_p99_us);
        let snap = rt.metrics().snapshot();
        assert_eq!(
            snap.hists["serve.latency_us"].count, 6,
            "every request must be counted, not sampled"
        );
        assert_eq!(snap.hists["serve.queue_wait_us"].count, 6);
        assert_eq!(
            snap.gauges["serve.queue_depth"], 0,
            "drained queue must read depth 0 (gauge, not cumulative sum)"
        );
        assert_eq!(snap.counters["serve.submitted"], 6);
    }

    /// Every fulfilled request leaves one attributable completion record
    /// carrying the identity tuple minted at admission.
    #[test]
    fn completion_records_attribute_every_request() {
        let rt = Runtime::new(ServeConfig {
            threads: 2,
            ..ServeConfig::default()
        });
        let (p, inputs) = rnn_case(13);
        let sig = program_signature(&p).to_string();
        let tickets: Vec<_> = (0..4)
            .map(|_| {
                rt.submit_wait(Request::new(p.clone(), inputs.clone()).with_session(77))
                    .unwrap()
            })
            .collect();
        let mut ids: Vec<u64> = tickets.iter().map(|t| t.request_id()).collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let records = rt.take_completions();
        assert_eq!(records.len(), 4, "one record per request");
        let mut rec_ids: Vec<u64> = records.iter().map(|r| r.ctx.request_id).collect();
        ids.sort_unstable();
        rec_ids.sort_unstable();
        assert_eq!(rec_ids, ids, "records join tickets on request id");
        for r in &records {
            assert_eq!(r.ctx.plan_sig, sig);
            assert_eq!(r.ctx.session_id, Some(77));
            assert_eq!(r.status, ft_obs::CompletionStatus::Ok);
            assert!(r.queue_wait_us >= 0.0);
            assert!(r.total_us >= r.exec_us);
            if let FuseDecision::Fused { size } = r.fuse {
                assert!(r.ctx.batch_id.is_some(), "fused record must carry batch id");
                assert!(size >= 2);
            }
        }
        assert!(rt.take_completions().is_empty(), "drain is destructive");
    }

    /// One cached family serves every outer extent: N distinct-length
    /// submissions of one structure cost exactly one compile+verify, and
    /// a well-formed mixed-length group fuses ragged with bitwise-exact
    /// per-member outputs.
    #[test]
    fn ragged_mixed_extent_requests_fuse_and_stay_exact() {
        let rt = Runtime::new(ServeConfig {
            threads: 2,
            max_batch: 4,
            ..ServeConfig::default()
        });
        let (d, l, h) = (2usize, 3, 8);
        let ws =
            FractalTensor::from_flat(&Tensor::randn(&[d, h, h], 50).mul_scalar(0.2), 1).unwrap();
        let mk = |outer: usize, seed: u64| {
            let p = stacked_rnn_program(outer, d, l, h);
            let mut inputs = HashMap::new();
            inputs.insert(
                BufferId(0),
                FractalTensor::from_flat(&Tensor::randn(&[outer, l, 1, h], seed), 2).unwrap(),
            );
            inputs.insert(BufferId(1), ws.clone());
            (p, inputs)
        };
        // Occupy the scheduler with a same-family request of another
        // length bucket (extent 2): while its cold compile+verify runs,
        // the ragged group below queues up and is popped together.
        let (p0, in0) = mk(2, 59);
        let warm = rt
            .submit_wait(Request::new(p0.clone(), in0.clone()))
            .unwrap();
        // Extents 3 and 4 share one factor-of-4 length bucket; the three
        // requests have three *different* exact signatures.
        let cases: Vec<_> = [(3usize, 60u64), (4, 61), (3, 62)]
            .iter()
            .map(|&(o, s)| mk(o, s))
            .collect();
        let tickets: Vec<_> = cases
            .iter()
            .map(|(p, inputs)| {
                rt.submit_wait(Request::new(p.clone(), inputs.clone()))
                    .unwrap()
            })
            .collect();
        assert_eq!(warm.wait().unwrap(), reference(&p0, &in0));
        for ((p, inputs), t) in cases.iter().zip(tickets) {
            assert_eq!(
                t.wait().unwrap(),
                reference(p, inputs),
                "ragged member output must be bitwise exact"
            );
        }
        let stats = rt.stats();
        assert_eq!(stats.completed, 4);
        assert_eq!(
            stats.batch_ragged_fallbacks, 0,
            "a well-formed ragged batch must fuse, not fall back"
        );
        assert_eq!(
            stats.cached_plans, 1,
            "one polymorphic family must serve extents 2, 3 and 4"
        );
        assert_eq!(stats.cache_misses, 1, "exactly one cold family build");
    }

    /// Satellite regression: a fused attempt aborted by a *mismatched
    /// outer extent* (inner dims fine) is metered on the distinct
    /// `serve.batch_ragged_fallback` counter, not lumped into generic
    /// fallbacks.
    #[test]
    fn mismatched_extent_fallback_is_metered_distinctly() {
        let rt = Runtime::new(ServeConfig {
            threads: 2,
            max_batch: 4,
            ..ServeConfig::default()
        });
        let (n, d, l, h) = (2usize, 2, 3, 8);
        let p = stacked_rnn_program(n, d, l, h);
        let ws =
            FractalTensor::from_flat(&Tensor::randn(&[d, h, h], 99).mul_scalar(0.2), 1).unwrap();
        let mk = |outer: usize, seed: u64| {
            let mut inputs = HashMap::new();
            inputs.insert(
                BufferId(0),
                FractalTensor::from_flat(&Tensor::randn(&[outer, l, 1, h], seed), 2).unwrap(),
            );
            inputs.insert(BufferId(1), ws.clone());
            inputs
        };
        // Occupy the scheduler so the bad pair is popped as one group.
        let warm = rt.submit_wait(Request::new(p.clone(), mk(n, 31))).unwrap();
        let bad: Vec<_> = [mk(1, 32), mk(3, 33)]
            .into_iter()
            .map(|inputs| rt.submit_wait(Request::new(p.clone(), inputs)).unwrap())
            .collect();
        warm.wait().unwrap();
        for t in bad {
            assert!(matches!(
                t.wait(),
                Err(ServeError::Exec(ExecError::Input(_)))
            ));
        }
        let stats = rt.stats();
        assert!(
            stats.batch_ragged_fallbacks >= 1,
            "outer-extent mismatch must hit the ragged fallback counter"
        );
        assert!(stats.batch_fallbacks >= stats.batch_ragged_fallbacks);
        let snap = rt.metrics().snapshot();
        assert_eq!(
            snap.counters["serve.batch_ragged_fallback"],
            stats.batch_ragged_fallbacks
        );
    }

    /// Satellite regression: the wait estimator partitions the queue. A
    /// same-plan backlog drains `max_batch` per fused launch, so its
    /// estimate is launches-not-requests; with batching off every request
    /// is its own launch again.
    #[test]
    fn wait_estimator_accounts_for_batch_drain() {
        let mk_pending = |inner: &Inner, program: &Arc<Program>| {
            let sig = program_signature(program);
            Pending {
                sig,
                program: Arc::clone(program),
                inputs: HashMap::new(),
                submitted: Instant::now(),
                deadline: None,
                ticket: Arc::new(TicketState::default()),
                ctx: TraceContext {
                    request_id: 0,
                    session_id: None,
                    plan_sig: String::new(),
                    batch_id: None,
                },
                queue_wait_us: 0.0,
                poly: poly_meta_for(inner, sig, program),
                session_step: None,
            }
        };
        let program: Arc<Program> = Arc::new(stacked_rnn_program(2, 2, 3, 8));

        let rt = Runtime::new(ServeConfig {
            threads: 1,
            max_batch: 8,
            ..ServeConfig::default()
        });
        for _ in 0..8 {
            rt.inner.metrics.exec_us.record(1_000.0);
        }
        let mut queue = VecDeque::new();
        for _ in 0..7 {
            queue.push_back(mk_pending(&rt.inner, &program));
        }
        let est = estimate_wait_us(&rt.inner, &queue, &mk_pending(&rt.inner, &program))
            .expect("history is warm");
        // 7 queued + the incoming one fit in ceil(8/8) = 1 fused launch:
        // ~2x mean with the safety margin — not the ~16x a depth-only
        // estimate charges (which is what over-shed batched traffic).
        assert!(
            est <= 4_000,
            "batched same-plan backlog over-estimated: {est} µs"
        );

        // Unrelated queued work (a different family) still costs launches.
        let other: Arc<Program> = Arc::new(stacked_rnn_program(2, 3, 4, 16));
        let mut mixed = VecDeque::new();
        for _ in 0..7 {
            mixed.push_back(mk_pending(&rt.inner, &other));
        }
        let est_mixed = estimate_wait_us(&rt.inner, &mixed, &mk_pending(&rt.inner, &program))
            .expect("history is warm");
        assert!(
            est_mixed > est,
            "foreign backlog must cost more than a fusable one"
        );

        // Batching off: every request is its own launch again.
        let rt_nb = Runtime::new(ServeConfig {
            threads: 1,
            batching: false,
            ..ServeConfig::default()
        });
        for _ in 0..8 {
            rt_nb.inner.metrics.exec_us.record(1_000.0);
        }
        let mut queue_nb = VecDeque::new();
        for _ in 0..7 {
            queue_nb.push_back(mk_pending(&rt_nb.inner, &program));
        }
        let est_nb = estimate_wait_us(&rt_nb.inner, &queue_nb, &mk_pending(&rt_nb.inner, &program))
            .expect("history is warm");
        assert!(
            est_nb >= 10_000,
            "unbatched backlog must charge one launch per request: {est_nb} µs"
        );
    }

    /// Satellite regression: a same-plan burst that fused serving clears
    /// well within its deadline is admitted, even when the per-launch
    /// history is heavy — the old depth-only estimate shed it.
    #[test]
    fn batched_backlog_at_capacity_is_not_shed() {
        let rt = Runtime::new(ServeConfig {
            threads: 2,
            max_batch: 8,
            ..ServeConfig::default()
        });
        // Seed a heavy launch-time history (20 ms/launch): a depth-only
        // estimator charges a 12-deep same-plan burst ~480 ms and sheds
        // against a 300 ms deadline; the partitioned one charges
        // ceil(12/8) = 2 launches (~80 ms) and admits.
        for _ in 0..8 {
            rt.inner.metrics.exec_us.record(20_000.0);
        }
        let (p, inputs) = rnn_case(17);
        let tickets: Vec<_> = (0..12)
            .map(|_| {
                rt.submit_wait(
                    Request::new(p.clone(), inputs.clone())
                        .with_deadline(Duration::from_millis(300)),
                )
                .unwrap()
            })
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let stats = rt.stats();
        assert_eq!(
            stats.shed, 0,
            "same-plan burst within deadline must not be shed"
        );
        assert_eq!(stats.completed, 12);
    }

    /// Tentpole: K decode steps through a pinned-state session are
    /// bitwise-identical to the one-shot stacked RNN recomputed from
    /// scratch over the same tokens, and the state advances with zero
    /// deep copies.
    #[test]
    fn decode_loop_matches_one_shot_recompute() {
        use ft_core::builders::rnn_decode_step_program;
        let (d, h, k) = (2usize, 8usize, 5usize);
        let rt = Runtime::new(ServeConfig {
            threads: 2,
            ..ServeConfig::default()
        });
        let step = Arc::new(rnn_decode_step_program(d, h));
        let w_leaves: Vec<Tensor> = (0..d)
            .map(|j| Tensor::randn(&[h, h], 40 + j as u64).mul_scalar(0.2))
            .collect();
        let ws = FractalTensor::from_tensors(w_leaves).unwrap();
        let token_leaves: Vec<Tensor> = (0..k)
            .map(|t| Tensor::randn(&[1, h], 100 + t as u64))
            .collect();
        let hs0 = FractalTensor::nested(vec![FractalTensor::from_tensors(
            (0..d).map(|_| Tensor::zeros(&[1, h])).collect(),
        )
        .unwrap()])
        .unwrap();
        let sid = rt
            .open_session(SessionSpec {
                program: Arc::clone(&step),
                bindings: vec![StateBinding {
                    state: BufferId(2),
                    op: StateOp::Carry {
                        output: BufferId(3),
                    },
                }],
                capacity: 0,
                init: HashMap::from([(BufferId(2), hs0)]),
            })
            .unwrap();
        let mut per_step = Vec::new();
        for leaf in &token_leaves {
            let mut inputs = HashMap::new();
            inputs.insert(
                BufferId(0),
                FractalTensor::from_tensors(vec![leaf.clone()]).unwrap(),
            );
            inputs.insert(BufferId(1), ws.clone());
            let out = rt.decode_step(sid, inputs).unwrap().wait().unwrap();
            per_step.push(out[&BufferId(3)].clone());
        }
        // One-shot recompute from scratch: the same tokens through the
        // full stacked RNN; ysss[0][j][t] is layer j's state after step t.
        let one_shot = stacked_rnn_program(1, d, k, h);
        let xss = FractalTensor::nested(vec![
            FractalTensor::from_tensors(token_leaves.clone()).unwrap()
        ])
        .unwrap();
        let mut ref_inputs = HashMap::new();
        ref_inputs.insert(BufferId(0), xss);
        ref_inputs.insert(BufferId(1), ws.clone());
        let ysss = &reference(&one_shot, &ref_inputs)[&BufferId(2)];
        for (t, out) in per_step.iter().enumerate() {
            for j in 0..d {
                assert_eq!(
                    out.leaf_at(&[0, j]).unwrap(),
                    ysss.leaf_at(&[0, j, t]).unwrap(),
                    "decode step {t} layer {j} must be bitwise-identical to one-shot"
                );
            }
        }
        let hs = rt.session_state(sid, BufferId(2)).unwrap();
        for j in 0..d {
            assert_eq!(
                hs.leaf_at(&[0, j]).unwrap(),
                ysss.leaf_at(&[0, j, k - 1]).unwrap(),
                "pinned state layer {j} must equal the one-shot final step"
            );
        }
        let stats = rt.stats();
        assert_eq!(stats.decode_steps, k as u64);
        assert_eq!(
            stats.state_copies, 0,
            "a carry is a handle swap, never a copy"
        );
        assert_eq!(stats.active_sessions, 1);
        assert!(stats.pinned_bytes > 0);
        rt.close_session(sid).unwrap();
        let stats = rt.stats();
        assert_eq!(stats.active_sessions, 0);
        assert_eq!(
            stats.pinned_bytes, 0,
            "close must release the pinned region"
        );
    }

    /// Satellite regression: session-typed failures (append overflow from
    /// a malformed client) strike the *session* — eviction after repeats —
    /// and never the plan's quarantine breaker, so one abusive session
    /// cannot quarantine a plan other sessions depend on.
    #[test]
    fn abusive_session_is_evicted_without_quarantining_the_plan() {
        use ft_core::builders::rnn_decode_step_program;
        let (d, h) = (2usize, 8usize);
        let rt = Runtime::new(ServeConfig {
            threads: 2,
            quarantine_threshold: 2,
            ..ServeConfig::default()
        });
        let step = Arc::new(rnn_decode_step_program(d, h));
        let mk_session = |rt: &Runtime| {
            let hs0 = FractalTensor::nested(vec![FractalTensor::from_tensors(
                (0..d).map(|_| Tensor::zeros(&[1, h])).collect(),
            )
            .unwrap()])
            .unwrap();
            rt.open_session(SessionSpec {
                program: Arc::clone(&step),
                bindings: vec![StateBinding {
                    state: BufferId(2),
                    op: StateOp::Carry {
                        output: BufferId(3),
                    },
                }],
                capacity: 0,
                init: HashMap::from([(BufferId(2), hs0)]),
            })
            .unwrap()
        };
        let ws = FractalTensor::from_tensors(
            (0..d)
                .map(|j| Tensor::randn(&[h, h], 70 + j as u64).mul_scalar(0.2))
                .collect(),
        )
        .unwrap();
        let step_inputs = |seed: u64| {
            let mut m = HashMap::new();
            m.insert(
                BufferId(0),
                FractalTensor::from_tensors(vec![Tensor::randn(&[1, h], seed)]).unwrap(),
            );
            m.insert(BufferId(1), ws.clone());
            m
        };
        // The abuser: submits steps with the token input missing, so each
        // step fails. Executor input errors don't strike the session (or
        // the plan — they're caller mistakes), so abuse it with a
        // *session-typed* failure instead: a malformed state advance.
        // Simplest reliable trigger at this level: steps against a session
        // whose strikes accrue via the admission overflow path.
        let abuser = {
            let hs0 = FractalTensor::nested(vec![FractalTensor::from_tensors(
                (0..d).map(|_| Tensor::zeros(&[1, h])).collect(),
            )
            .unwrap()])
            .unwrap();
            // Declare hs an *append* target with zero headroom: every step
            // is an overflow — the moral equivalent of `ExecError::Input`
            // from a malformed client. (Bindings are verified, so reach
            // overflow via capacity 1 and one legitimate-looking step
            // being impossible: capacity 1 requires [1, C>=1] cache; use
            // the carry binding but exhaust via decode_step's check.)
            rt.open_session(SessionSpec {
                program: Arc::clone(&step),
                bindings: vec![StateBinding {
                    state: BufferId(2),
                    op: StateOp::Carry {
                        output: BufferId(3),
                    },
                }],
                capacity: 0,
                init: HashMap::from([(BufferId(2), hs0)]),
            })
            .unwrap()
        };
        // Force session-typed strikes on the abuser: settle steps whose
        // outputs are missing the carry buffer (a malformed advance).
        for _ in 0..SESSION_STRIKE_LIMIT {
            let r = settle_session_step(&rt.inner, abuser, Ok(HashMap::new()));
            assert!(matches!(r, Err(ServeError::Session(_))));
        }
        assert!(
            matches!(
                rt.session_steps(abuser),
                Err(ServeError::Session(SessionError::NotFound(_)))
            ),
            "repeated session errors must evict the session"
        );
        let stats = rt.stats();
        assert_eq!(stats.session_evictions, 1);
        assert!(stats.session_errors >= SESSION_STRIKE_LIMIT as u64);
        assert_eq!(
            stats.quarantine_trips, 0,
            "session errors must never trip the plan's breaker"
        );
        // The plan the abuser was hammering still serves other sessions.
        let victim = mk_session(&rt);
        let out = rt
            .decode_step(victim, step_inputs(91))
            .unwrap()
            .wait()
            .unwrap();
        assert!(out.contains_key(&BufferId(3)));
        assert_eq!(rt.stats().quarantine_rejected, 0);
    }

    /// Session admission contract: unknown ids are typed, a second step
    /// while one is in flight is `Busy`, and append overflow strikes
    /// toward eviction.
    #[test]
    fn session_admission_errors_are_typed() {
        use ft_core::builders::rnn_decode_step_program;
        let (d, h) = (2usize, 8usize);
        let rt = Runtime::new(ServeConfig {
            threads: 2,
            ..ServeConfig::default()
        });
        assert!(matches!(
            rt.decode_step(999, HashMap::new()),
            Err(ServeError::Session(SessionError::NotFound(999)))
        ));
        assert!(matches!(
            rt.close_session(999),
            Err(ServeError::Session(SessionError::NotFound(999)))
        ));
        // Opening with no bindings is rejected by the verifier.
        let step = Arc::new(rnn_decode_step_program(d, h));
        assert!(matches!(
            rt.open_session(SessionSpec {
                program: step,
                bindings: vec![],
                capacity: 0,
                init: HashMap::new(),
            }),
            Err(ServeError::Session(SessionError::StateShape(_)))
        ));
    }

    /// Satellite regression: the estimator prices each group's backlog at
    /// that group's *own* exec-time mean, not the global blend. A fast
    /// family queued behind its own traffic must not inherit a slow
    /// family's latencies (over-shedding), and a queue full of slow work
    /// must not be under-priced by the blend.
    #[test]
    fn wait_estimator_prices_groups_by_their_own_history() {
        let mk_pending = |inner: &Inner, program: &Arc<Program>| {
            let sig = program_signature(program);
            Pending {
                sig,
                program: Arc::clone(program),
                inputs: HashMap::new(),
                submitted: Instant::now(),
                deadline: None,
                ticket: Arc::new(TicketState::default()),
                ctx: TraceContext {
                    request_id: 0,
                    session_id: None,
                    plan_sig: String::new(),
                    batch_id: None,
                },
                queue_wait_us: 0.0,
                poly: poly_meta_for(inner, sig, program),
                session_step: None,
            }
        };
        let rt = Runtime::new(ServeConfig {
            threads: 1,
            batching: false,
            ..ServeConfig::default()
        });
        // Two families: sub-millisecond decode-like steps and 20 ms
        // prefill-like launches, blended global mean ~10 ms.
        let fast: Arc<Program> = Arc::new(stacked_rnn_program(2, 2, 3, 8));
        let slow: Arc<Program> = Arc::new(stacked_rnn_program(2, 3, 4, 16));
        let fast_key = group_key(&mk_pending(&rt.inner, &fast));
        let slow_key = group_key(&mk_pending(&rt.inner, &slow));
        assert_ne!(fast_key, slow_key);
        for _ in 0..4 {
            rt.inner.metrics.exec_us.record(100.0);
            rt.inner.metrics.exec_us.record(20_000.0);
        }
        for _ in 0..GROUP_MIN_HISTORY {
            note_group_exec(&rt.inner, fast_key, 100.0);
            note_group_exec(&rt.inner, slow_key, 20_000.0);
        }
        let queue_of = |inner: &Inner, program: &Arc<Program>, n: usize| {
            let mut q = VecDeque::new();
            for _ in 0..n {
                q.push_back(mk_pending(inner, program));
            }
            q
        };
        // Fast behind its own backlog: 5 fast launches ≈ 500 µs (x2
        // margin ⇒ ~1 ms). The global blend would charge ~100 ms.
        let fast_q = queue_of(&rt.inner, &fast, 4);
        let est = estimate_wait_us(&rt.inner, &fast_q, &mk_pending(&rt.inner, &fast))
            .expect("history is warm");
        assert!(
            est <= 2_000,
            "fast family over-priced by the global blend: {est} µs"
        );
        // Fast behind a slow backlog: the slow group's own mean must
        // dominate — 4 slow launches ≥ 80 ms, not the blend's discount.
        let slow_q = queue_of(&rt.inner, &slow, 4);
        let est_behind_slow = estimate_wait_us(&rt.inner, &slow_q, &mk_pending(&rt.inner, &fast))
            .expect("history is warm");
        assert!(
            est_behind_slow >= 80_000,
            "slow backlog under-priced: {est_behind_slow} µs"
        );
        // Slow behind its own backlog prices even higher (5 slow launches).
        let est_slow = estimate_wait_us(&rt.inner, &slow_q, &mk_pending(&rt.inner, &slow))
            .expect("history is warm");
        assert!(
            est_slow > est_behind_slow,
            "slow-behind-slow must exceed fast-behind-slow"
        );
        // A group below GROUP_MIN_HISTORY falls back to the global mean.
        let cold: Arc<Program> = Arc::new(stacked_rnn_program(3, 2, 2, 8));
        let cold_key = group_key(&mk_pending(&rt.inner, &cold));
        note_group_exec(&rt.inner, cold_key, 1.0);
        let cold_q = queue_of(&rt.inner, &cold, 4);
        let est_cold = estimate_wait_us(&rt.inner, &cold_q, &mk_pending(&rt.inner, &cold))
            .expect("history is warm");
        let global = rt.inner.metrics.exec_us.mean();
        assert!(
            (est_cold as f64) >= 5.0 * global,
            "below MIN_HISTORY the global mean must price the group: {est_cold} µs"
        );
    }

    #[test]
    fn runtime_and_compiled_program_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledProgram>();
        assert_send_sync::<Runtime>();
        assert_send_sync::<Ticket>();
        assert_send_sync::<ServeError>();
    }
}
