//! Stateful sessions: pinned decode state carried across requests.
//!
//! An autoregressive decode loop re-reads and advances the same state —
//! a KV cache, an RNN hidden stack — on every step. Round-tripping that
//! state through admission as fresh tensors would copy it twice per
//! token; a session instead *pins* it server-side. The runtime injects
//! the pinned handles into each step's inputs (handle clones whose
//! leaves share storage — the `Tensor` is copy-on-write) and advances
//! them **in place** when the step completes: a [`StateOp::Carry`] swaps
//! the whole handle for the step's output, a [`StateOp::Append`]
//! replaces exactly one row of the reserved-capacity cache, and a
//! [`StateOp::AppendFill`] flips one row to a cached constant leaf (the
//! attention-mask case). The well-formed path performs **zero deep
//! copies per step**; the one defensive re-materialization fallback is
//! counted on `serve.state_copies` so the CI gate catches any
//! regression that reintroduces per-step copying.
//!
//! Errors here are typed [`SessionError`]s. They indict the *session* —
//! a strike counter that evicts the offender — and are invisible to the
//! plan's quarantine breaker: a malformed client hammering append
//! overflows can never quarantine a plan other sessions depend on.

use std::collections::HashMap;
use std::sync::Arc;

use ft_core::{BufferId, FractalTensor, Program};
use ft_tensor::Tensor;

/// How one state buffer advances after each successful decode step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StateOp {
    /// The whole state handle is replaced by the step's `output` buffer
    /// (RNN hidden carry). A pointer swap, never a data copy.
    Carry {
        /// The output buffer whose handle becomes the next state.
        output: BufferId,
    },
    /// Row `step` of the `[1, C]` state cache is replaced by the step's
    /// single-leaf `[1]` output (KV-cache append into reserved headroom).
    Append {
        /// The output buffer providing the appended row.
        output: BufferId,
    },
    /// Row `step` is overwritten with a cached constant leaf built once
    /// at open (attention-mask flip: a position becomes visible as the
    /// cache fills).
    AppendFill {
        /// The value the flipped row is filled with.
        value: f32,
    },
}

/// Binds one state (input) buffer to its per-step update rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateBinding {
    /// The `BufferKind::Input` declaration the session injects each step.
    pub state: BufferId,
    /// How the state advances after a successful step.
    pub op: StateOp,
}

/// Everything needed to open a session: the decode-step program, the
/// state bindings, the reserved append capacity, and the initial state.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// The decode-step program every step of this session runs.
    pub program: Arc<Program>,
    /// The state buffers the session pins, with their update rules.
    pub bindings: Vec<StateBinding>,
    /// Append headroom: step `capacity` and beyond are refused with
    /// [`SessionError::Overflow`] instead of corrupting the cache.
    /// Ignored (may be 0) when no binding appends.
    pub capacity: usize,
    /// Initial value for every bound state buffer, shaped exactly as the
    /// program declares it.
    pub init: HashMap<BufferId, FractalTensor>,
}

/// Typed session errors — the class the quarantine breaker ignores. A
/// session error charges the offending session a strike (eviction after
/// repeats), never the shared plan's circuit breaker.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// No session with this id (never opened, closed, or evicted).
    NotFound(u64),
    /// The session already has a step in flight; decode steps are
    /// strictly sequential per session.
    Busy(u64),
    /// The session's append cache is full: step `capacity` was requested
    /// past the reserved headroom.
    Overflow {
        /// The offending session.
        session: u64,
        /// Its reserved append capacity.
        capacity: usize,
    },
    /// A state buffer or update output failed its shape contract.
    StateShape(String),
    /// The session was evicted after repeated session errors.
    Evicted(u64),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::NotFound(id) => write!(f, "session {id} not found"),
            SessionError::Busy(id) => write!(f, "session {id} already has a step in flight"),
            SessionError::Overflow { session, capacity } => write!(
                f,
                "session {session} overflowed its append capacity {capacity}"
            ),
            SessionError::StateShape(m) => write!(f, "session state shape violation: {m}"),
            SessionError::Evicted(id) => write!(f, "session {id} evicted after repeated errors"),
        }
    }
}

impl std::error::Error for SessionError {}

/// One live session: its pinned state, progress, and health.
pub(crate) struct SessionEntry {
    /// The decode-step program every step runs.
    pub(crate) program: Arc<Program>,
    pub(crate) bindings: Vec<StateBinding>,
    pub(crate) capacity: usize,
    /// The pinned state handles, injected into every step's inputs.
    pub(crate) state: HashMap<BufferId, FractalTensor>,
    /// Cached constant rows for [`StateOp::AppendFill`], built once.
    fill_rows: HashMap<BufferId, Tensor>,
    /// Steps successfully completed (also the next append row).
    pub(crate) step: usize,
    /// Whether a decode step is currently in flight.
    pub(crate) inflight: bool,
    /// Consecutive session errors; eviction at the strike limit.
    pub(crate) strikes: u32,
    /// Bytes pinned by this session's state (constant over its life:
    /// every update is shape-preserving).
    pub(crate) pinned_bytes: u64,
}

/// Total bytes held by a state handle (f32 leaves).
fn state_bytes(ft: &FractalTensor) -> u64 {
    let leaves: u64 = ft.prog_dims().iter().product::<usize>() as u64;
    leaves * ft.leaf_shape().numel() as u64 * 4
}

/// Replaces row `row` of a `[1, C]`-shaped state cache in place. A pure
/// handle move — the old row's storage is dropped, the new leaf's is
/// shared, nothing is copied.
fn set_row(state: &mut FractalTensor, row: usize, leaf: Tensor) -> Result<(), SessionError> {
    let rows = match state {
        FractalTensor::Nested(groups) if groups.len() == 1 => match &mut groups[0] {
            FractalTensor::Leaves(rows) => rows,
            _ => {
                return Err(SessionError::StateShape(
                    "append cache must be [1, C] over leaves".into(),
                ))
            }
        },
        _ => {
            return Err(SessionError::StateShape(
                "append cache must be a [1, C] nest".into(),
            ))
        }
    };
    match rows.get_mut(row) {
        Some(slot) => {
            *slot = leaf;
            Ok(())
        }
        None => Err(SessionError::StateShape(format!(
            "append row {row} outside cache of {} rows",
            rows.len()
        ))),
    }
}

/// Extracts the single `[1]` output leaf of an append source. The
/// well-formed path is a cheap handle clone; any other structure with
/// exactly one leaf is deep-materialized as a defensive fallback and
/// reported through `copies` so `serve.state_copies` (and its CI gate)
/// records the regression.
fn single_leaf(out: &FractalTensor, copies: &mut u64) -> Result<Tensor, SessionError> {
    if let FractalTensor::Leaves(v) = out {
        if let [leaf] = v.as_slice() {
            return Ok(leaf.clone());
        }
    }
    let dims = out.prog_dims();
    if dims.iter().product::<usize>() != 1 {
        return Err(SessionError::StateShape(format!(
            "append output must hold exactly one leaf, got dims {dims:?}"
        )));
    }
    let leaf = out
        .leaf_at(&vec![0; dims.len()])
        .map_err(|e| SessionError::StateShape(e.to_string()))?
        .to_contiguous();
    *copies += 1;
    Ok(leaf)
}

impl SessionEntry {
    /// Builds a session from its spec: checks every bound state's initial
    /// value against the program's declaration, caches the fill rows,
    /// and sums the pinned footprint.
    pub(crate) fn open(spec: SessionSpec) -> Result<SessionEntry, SessionError> {
        let mut state = HashMap::new();
        let mut fill_rows = HashMap::new();
        let mut pinned = 0u64;
        for b in &spec.bindings {
            let decl = spec
                .program
                .buffers
                .get(b.state.0)
                .ok_or_else(|| SessionError::StateShape(format!("no buffer {}", b.state.0)))?;
            let init = spec.init.get(&b.state).ok_or_else(|| {
                SessionError::StateShape(format!("missing initial state for '{}'", decl.name))
            })?;
            if init.prog_dims() != decl.dims || init.leaf_shape() != decl.leaf_shape {
                return Err(SessionError::StateShape(format!(
                    "initial state for '{}' is {:?}/{:?}, declared {:?}/{:?}",
                    decl.name,
                    init.prog_dims(),
                    init.leaf_shape(),
                    decl.dims,
                    decl.leaf_shape
                )));
            }
            if let StateOp::AppendFill { value } = b.op {
                fill_rows.insert(b.state, Tensor::full(decl.leaf_shape.dims(), value));
            }
            pinned += state_bytes(init);
            state.insert(b.state, init.clone());
        }
        Ok(SessionEntry {
            program: spec.program,
            bindings: spec.bindings,
            capacity: spec.capacity,
            state,
            fill_rows,
            step: 0,
            inflight: false,
            strikes: 0,
            pinned_bytes: pinned,
        })
    }

    /// Whether any binding consumes append capacity (gates the admission
    /// overflow check).
    pub(crate) fn appends(&self) -> bool {
        self.bindings
            .iter()
            .any(|b| !matches!(b.op, StateOp::Carry { .. }))
    }

    /// Advances the pinned state from a successful step's outputs:
    /// carries swap handles, appends replace row `step` in place.
    /// Returns the number of deep copies performed — zero on the
    /// well-formed path. Errors leave `step` unadvanced (the state may
    /// be partially updated; the caller strikes and eventually evicts
    /// the session, it never resubmits from a half-advanced cache).
    pub(crate) fn advance(
        &mut self,
        outputs: &HashMap<BufferId, FractalTensor>,
    ) -> Result<u64, SessionError> {
        let row = self.step;
        let mut copies = 0u64;
        for b in &self.bindings {
            let missing = |id: BufferId| {
                SessionError::StateShape(format!("step produced no output buffer {}", id.0))
            };
            match b.op {
                StateOp::Carry { output } => {
                    let out = outputs.get(&output).ok_or_else(|| missing(output))?;
                    let cur = self.state.get(&b.state).ok_or_else(|| missing(b.state))?;
                    if out.prog_dims() != cur.prog_dims() || out.leaf_shape() != cur.leaf_shape() {
                        return Err(SessionError::StateShape(format!(
                            "carry output {:?}/{:?} does not match state {:?}/{:?}",
                            out.prog_dims(),
                            out.leaf_shape(),
                            cur.prog_dims(),
                            cur.leaf_shape()
                        )));
                    }
                    self.state.insert(b.state, out.clone());
                }
                StateOp::Append { output } => {
                    let out = outputs.get(&output).ok_or_else(|| missing(output))?;
                    let leaf = single_leaf(out, &mut copies)?;
                    let cache = self
                        .state
                        .get_mut(&b.state)
                        .ok_or_else(|| missing(b.state))?;
                    if leaf.shape() != &cache.leaf_shape() {
                        return Err(SessionError::StateShape(format!(
                            "append row shape {:?} does not match cache leaf {:?}",
                            leaf.shape(),
                            cache.leaf_shape()
                        )));
                    }
                    set_row(cache, row, leaf)?;
                }
                StateOp::AppendFill { .. } => {
                    let leaf = self
                        .fill_rows
                        .get(&b.state)
                        .cloned()
                        .ok_or_else(|| missing(b.state))?;
                    let cache = self
                        .state
                        .get_mut(&b.state)
                        .ok_or_else(|| missing(b.state))?;
                    set_row(cache, row, leaf)?;
                }
            }
        }
        self.step += 1;
        Ok(copies)
    }
}
