//! # ft-verify
//!
//! Schedule-legality verification for compiled FractalTensor programs.
//!
//! The paper's transformations (§5.1–§5.3) are *provably safe* by
//! construction: the reordering matrix is unimodular, its Lamport-hyperplane
//! first row carries every dependence distance vector (Table 4), and fused
//! access maps stay inside their buffers' ranges. This crate re-checks
//! those invariants on the *output* of the pipeline, so a bug anywhere in
//! parsing, coarsening, or reordering — or a hand-mutated schedule — is
//! rejected with a structured [`VerifyError`] naming the offending group,
//! block, and buffer instead of corrupting an execution downstream.
//!
//! Four invariants are checked per [`ScheduledGroup`]:
//!
//! 1. **Unimodularity** — `T` is square with determinant ±1 and `T·T⁻¹ = I`
//!    (the stored inverse actually inverts the stored transform).
//! 2. **Dependence carrying** — row 0 of `T` has a strictly positive dot
//!    product with every dependence distance vector of every member, and a
//!    group with dependences has a sequential dimension at all.
//! 3. **Access-map range** — every read/write map evaluates in-bounds over
//!    the member's enumerated iteration domain, and the fused map
//!    `i = (M·T⁻¹)·j + o` agrees with the original map at every point
//!    (`j = T·t`), i.e. the executor's partially-evaluated plan computes
//!    the same indices the semantics demand.
//! 4. **Wavefront order** — every value read from a group-internal buffer
//!    was written at an earlier wavefront step, or at the same step by an
//!    earlier member at the same point (the scratch-slot forwarding case);
//!    with complete domain enumeration, reads of never-written indices are
//!    also rejected.
//!
//! Blocks that belong to no launch group (pure `Map` nests executed
//! through the interpreter path) still get invariant 3's range half: their
//! original access maps are enumerated and bounds-checked the same way.
//!
//! A fifth, graph-wide invariant covers the UDF rewriting passes (kernel
//! fusion): every block's UDF must still validate structurally, infer
//! shapes against the block's read leaf shapes, and produce outputs whose
//! shapes match the written buffers' leaf shapes. A fusion bug that drops
//! a temporary or mis-absorbs an epilogue is rejected as
//! [`VerifyError::UdfIllegal`] before the backend plans scratch from the
//! same inference.
//!
//! Domains are enumerated exhaustively up to [`POINT_CAP`] points per
//! member and sampled beyond that ([`VerifyReport::complete`] records
//! which); order violations are always detectable on the sampled subset,
//! unwritten-read detection needs the complete enumeration.

#![forbid(unsafe_code)]
// VerifyError carries full diagnostic context (points, indices, buffer
// dims) by value; it is built once on the cold rejection path, so the
// large-Err cost never matters.
#![allow(clippy::result_large_err)]

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use ft_affine::{AffineMap, IntMat};
use ft_etdg::{sample_points, BlockId, BlockNode, BufId, RegionRead};
use ft_passes::{compile, distance_vectors, CompiledProgram, ScheduledGroup};

/// Per-member domain enumeration cap: domains up to this many points are
/// checked exhaustively, larger ones are strided-sampled.
pub const POINT_CAP: usize = 4096;

/// Whether an access is a read or a write (diagnostic context).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A region read.
    Read,
    /// A region write.
    Write,
}

impl std::fmt::Display for AccessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

/// A schedule-legality violation. Every variant names the launch group and
/// lead block so the diagnostic can be traced back to the source nest.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// `compile()` itself failed (only from [`compile_verified`]).
    Compile(String),
    /// The schedule is malformed in a way that precedes the legality
    /// checks (dimension mismatches, affine arithmetic failures, ...).
    Structural {
        /// Launch group index (`None` for a block outside every group).
        group: Option<usize>,
        /// Lead block name.
        block: String,
        /// What went wrong.
        detail: String,
    },
    /// The transform matrix is not unimodular.
    NotUnimodular {
        /// Launch group index.
        group: usize,
        /// Lead block name.
        block: String,
        /// The offending determinant (0 when it could not be computed).
        det: i64,
    },
    /// The stored inverse does not invert the stored transform.
    InverseMismatch {
        /// Launch group index.
        group: usize,
        /// Lead block name.
        block: String,
    },
    /// The group carries dependences but has no sequential dimension.
    SequentialMissing {
        /// Launch group index.
        group: usize,
        /// Lead block name.
        block: String,
        /// How many distance vectors the group carries.
        distances: usize,
    },
    /// Row 0 of the transform fails to carry a dependence distance vector
    /// (`row₀·δ < 1` — iterations that must be ordered land on the same or
    /// an earlier wavefront step).
    UncarriedDistance {
        /// Launch group index.
        group: usize,
        /// Block whose dependence is dropped.
        block: String,
        /// Row 0 of the transform (the hyperplane schedule).
        hyperplane: Vec<i64>,
        /// The distance vector that is not carried.
        distance: Vec<i64>,
        /// The offending dot product.
        dot: i64,
    },
    /// An access map leaves its buffer's range somewhere in the domain.
    MapOutOfRange {
        /// Launch group index; `None` when the block belongs to no launch
        /// group and executes through the interpreter path.
        group: Option<usize>,
        /// Block issuing the access.
        block: String,
        /// Buffer accessed.
        buffer: String,
        /// Read or write.
        kind: AccessKind,
        /// Original-space iteration point.
        point: Vec<i64>,
        /// The out-of-range index the map produced.
        index: Vec<i64>,
        /// The buffer's declared extents.
        dims: Vec<usize>,
    },
    /// The fused map `(M·T⁻¹)·j + o` disagrees with the original map — the
    /// executor's partially-evaluated plan would touch the wrong data.
    FusedMapMismatch {
        /// Launch group index.
        group: usize,
        /// Block issuing the access.
        block: String,
        /// Buffer accessed.
        buffer: String,
        /// Original-space iteration point.
        point: Vec<i64>,
        /// Index from the original map.
        original: Vec<i64>,
        /// Index from the fused map at `j = T·t`.
        fused: Vec<i64>,
    },
    /// A read observes a value its writer has not produced yet in
    /// wavefront order (same or later step, and not forwardable from an
    /// earlier member at the same point).
    WavefrontOrder {
        /// Launch group index.
        group: usize,
        /// Reading block.
        block: String,
        /// Buffer read.
        buffer: String,
        /// Original-space point of the read.
        point: Vec<i64>,
        /// Buffer index read.
        index: Vec<i64>,
        /// Step the value is written at.
        write_step: i64,
        /// Step the read executes at.
        read_step: i64,
    },
    /// A read of a group-internal buffer index that no member ever writes
    /// (reported only under complete domain enumeration).
    UnwrittenRead {
        /// Launch group index.
        group: usize,
        /// Reading block.
        block: String,
        /// Buffer read.
        buffer: String,
        /// Original-space point of the read.
        point: Vec<i64>,
        /// Buffer index read.
        index: Vec<i64>,
    },
    /// The memory plan's layout for a buffer contradicts the graph or the
    /// arena: wrong placement for its role, a range escaping the arena, or
    /// two live buffers sharing arena space.
    Layout {
        /// Buffer whose layout is inconsistent.
        buffer: String,
        /// What went wrong.
        detail: String,
    },
    /// A block's UDF is no longer well-formed after the rewriting passes
    /// (kernel fusion): it fails structural validation, its shapes do not
    /// infer against the block's read leaf shapes, or an output shape
    /// disagrees with the written buffer's leaf shape.
    UdfIllegal {
        /// Block whose UDF is malformed.
        block: String,
        /// What went wrong.
        detail: String,
    },
    /// A shape-polymorphism invariant failed: the program has no
    /// polymorphic outer axis, the schedule structure is not invariant
    /// across extents, or the symbolic memory template drifted from the
    /// instance shapes (legality over parameterized extents,
    /// [`build_poly_verified`]).
    Poly {
        /// What went wrong.
        detail: String,
    },
    /// A stateful-session binding violates the pinned-region rules
    /// ([`verify_session_bindings`]): a state buffer that is not an
    /// extern-placed input, an update target that is not an output, a
    /// carry whose shapes disagree, or an append cache without the
    /// declared capacity.
    Session {
        /// What went wrong.
        detail: String,
    },
}

/// Pass A's write table: `(buffer id, data-space index)` mapped to the
/// `(wavefront step, member position, original point)` that produces it.
type WriterTable = HashMap<(usize, Vec<i64>), (i64, usize, Vec<i64>)>;

/// Renders an optional group index for diagnostics.
fn group_label(group: &Option<usize>) -> String {
    match group {
        Some(gi) => format!("group {gi}"),
        None => "ungrouped".to_string(),
    }
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Compile(m) => write!(f, "compile failed: {m}"),
            VerifyError::Structural {
                group,
                block,
                detail,
            } => write!(
                f,
                "{} ('{block}'): malformed schedule: {detail}",
                group_label(group)
            ),
            VerifyError::NotUnimodular { group, block, det } => write!(
                f,
                "group {group} ('{block}'): transform is not unimodular (det = {det})"
            ),
            VerifyError::InverseMismatch { group, block } => write!(
                f,
                "group {group} ('{block}'): stored inverse does not invert the transform"
            ),
            VerifyError::SequentialMissing {
                group,
                block,
                distances,
            } => write!(
                f,
                "group {group} ('{block}'): carries {distances} dependence distance vector(s) \
                 but has no sequential dimension"
            ),
            VerifyError::UncarriedDistance {
                group,
                block,
                hyperplane,
                distance,
                dot,
            } => write!(
                f,
                "group {group} ('{block}'): hyperplane {hyperplane:?} does not carry distance \
                 vector {distance:?} (dot = {dot}, need >= 1)"
            ),
            VerifyError::MapOutOfRange {
                group,
                block,
                buffer,
                kind,
                point,
                index,
                dims,
            } => write!(
                f,
                "{}, block '{block}': {kind} of buffer '{buffer}' out of range at \
                 point {point:?}: index {index:?} vs dims {dims:?}",
                group_label(group)
            ),
            VerifyError::FusedMapMismatch {
                group,
                block,
                buffer,
                point,
                original,
                fused,
            } => write!(
                f,
                "group {group}, block '{block}': fused access map for buffer '{buffer}' \
                 disagrees with the original at point {point:?}: {fused:?} != {original:?}"
            ),
            VerifyError::WavefrontOrder {
                group,
                block,
                buffer,
                point,
                index,
                write_step,
                read_step,
            } => write!(
                f,
                "group {group}, block '{block}': reads buffer '{buffer}'[{index:?}] at point \
                 {point:?} on step {read_step} but it is written on step {write_step}"
            ),
            VerifyError::UnwrittenRead {
                group,
                block,
                buffer,
                point,
                index,
            } => write!(
                f,
                "group {group}, block '{block}': reads buffer '{buffer}'[{index:?}] at point \
                 {point:?} but no member ever writes that index"
            ),
            VerifyError::Layout { buffer, detail } => {
                write!(f, "memory plan for buffer '{buffer}': {detail}")
            }
            VerifyError::UdfIllegal { block, detail } => {
                write!(f, "block '{block}': illegal UDF after rewriting: {detail}")
            }
            VerifyError::Poly { detail } => {
                write!(f, "shape-polymorphic plan rejected: {detail}")
            }
            VerifyError::Session { detail } => {
                write!(f, "session state binding rejected: {detail}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Statistics from a successful verification pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VerifyReport {
    /// Launch groups checked.
    pub groups: usize,
    /// Access maps validated (reads + writes, per member).
    pub maps: usize,
    /// Dependence distance vectors checked against the hyperplane.
    pub distances: usize,
    /// Iteration points enumerated across all members.
    pub points: usize,
    /// Block UDFs re-validated after the rewriting passes.
    pub udfs: usize,
    /// Legality-check wall time in microseconds.
    pub wall_us: f64,
    /// True when every member domain was enumerated exhaustively (points
    /// within [`POINT_CAP`]); false when sampling bounded the sweep.
    pub complete: bool,
}

/// Compiles a program and verifies the resulting schedule in one step.
pub fn compile_verified(
    program: &ft_core::Program,
) -> Result<(CompiledProgram, VerifyReport), VerifyError> {
    let compiled = compile(program).map_err(|e| VerifyError::Compile(e.to_string()))?;
    let report = verify(&compiled)?;
    Ok((compiled, report))
}

/// Builds a shape-polymorphic plan family and verifies its legality over
/// parameterized extents.
///
/// A [`ft_passes::PolyPlan`] claims one schedule serves *every* outer
/// extent. This checks the claim at two extents before the family is
/// trusted:
///
/// 1. the instance at the family's template extent passes the full
///    legality suite ([`verify`]);
/// 2. a probe instance at a second extent (template + 1 — deliberately
///    coprime with the template, so accidental divisibility can't mask
///    drift) passes the full suite too, **and** its schedule structure is
///    identical to the template's: same groups and members, same composed
///    operator vectors, same unimodular transforms. Anything the extent
///    *did* leak into (a split boundary, a changed fusion decision) is
///    rejected as [`VerifyError::Poly`] instead of surfacing as a wrong
///    answer at some unlucky length in production;
/// 3. the symbolic memory template's dispatch-time evaluation agreed with
///    both instances' real shapes (the family's internal cross-check
///    never fired).
pub fn build_poly_verified(
    program: &ft_core::Program,
) -> Result<(ft_passes::PolyPlan, VerifyReport), VerifyError> {
    let poly_err = |detail: String| VerifyError::Poly { detail };
    let family = ft_passes::PolyPlan::build(program)
        .map_err(|e| VerifyError::Compile(e.to_string()))?
        .ok_or_else(|| poly_err("program has no polymorphic outer axis".into()))?;
    let base_extent = family.template_extent();
    let base = family
        .instance(base_extent)
        .map_err(|e| VerifyError::Compile(e.to_string()))?;
    let report = verify(&base)?;

    let probe_extent = base_extent + 1;
    let probe = family
        .instance(probe_extent)
        .map_err(|e| VerifyError::Compile(e.to_string()))?;
    check_extent_invariance(&base, &probe, base_extent, probe_extent)?;
    verify(&probe)?;

    if family.template_fallbacks() > 0 {
        return Err(poly_err(format!(
            "symbolic memory template disagreed with instance shapes \
             ({} fallback(s) at extents {base_extent}/{probe_extent})",
            family.template_fallbacks()
        )));
    }
    Ok((family, report))
}

/// Everything about a schedule that must not depend on the polymorphic
/// extent: group decomposition, membership, composed operators, and the
/// reordering transforms themselves.
fn check_extent_invariance(
    base: &CompiledProgram,
    probe: &CompiledProgram,
    base_extent: usize,
    probe_extent: usize,
) -> Result<(), VerifyError> {
    let poly_err = |detail: String| VerifyError::Poly { detail };
    if base.groups.len() != probe.groups.len() {
        return Err(poly_err(format!(
            "launch-group count varies with the outer extent: \
             {} at L={base_extent} vs {} at L={probe_extent}",
            base.groups.len(),
            probe.groups.len()
        )));
    }
    for (gi, (a, b)) in base.groups.iter().zip(&probe.groups).enumerate() {
        if a.members != b.members {
            return Err(poly_err(format!(
                "group {gi} membership varies with the outer extent: \
                 {:?} at L={base_extent} vs {:?} at L={probe_extent}",
                a.members, b.members
            )));
        }
        if a.ops != b.ops {
            return Err(poly_err(format!(
                "group {gi} operator vector varies with the outer extent"
            )));
        }
        if a.reordering.sequential_dims != b.reordering.sequential_dims
            || a.reordering.t != b.reordering.t
            || a.reordering.hyperplane != b.reordering.hyperplane
        {
            return Err(poly_err(format!(
                "group {gi} reordering transform varies with the outer extent"
            )));
        }
    }
    Ok(())
}

/// How one stateful-session state buffer advances after a successful
/// decode step ([`verify_session_bindings`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateRule {
    /// `state := output` — the whole buffer is replaced by the step's
    /// output handle (RNN hidden carry).
    Carry {
        /// The output buffer whose handle becomes the next state.
        output: ft_core::BufferId,
    },
    /// `state[step] := output` — one row of the reserved-capacity cache
    /// is replaced by the step's single-leaf output (KV-cache append).
    Append {
        /// The output buffer providing the appended row.
        output: ft_core::BufferId,
    },
    /// `state[step] := constant` — one row is overwritten with a cached
    /// constant leaf (attention-mask flip as the cache fills).
    Fill,
}

/// One session state binding: the input buffer holding pinned state and
/// the rule advancing it each step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionBinding {
    /// The `BufferKind::Input` declaration the session injects each step.
    pub state: ft_core::BufferId,
    /// How the state advances from the step's outputs.
    pub rule: StateRule,
}

/// Checks the pinned-region rules for a decode-step program's session
/// state bindings, before any state is pinned.
///
/// The aliasing rule is placement-based: session state must live in
/// `BufferKind::Input` declarations, which the executor places *extern*
/// (borrowed from the caller) — never inside the transient arena — so a
/// pinned region held across requests can never overlap the arena's
/// first-fit reuse of per-launch scratch. A state buffer declared as an
/// intermediate would be arena-placed and aliasable; it is rejected
/// here. On top of placement, the shape contracts: carries must be
/// shape-preserving (`dims` and leaf shape equal), appends need a
/// `[1, C]` cache with `C >= capacity` and a single-leaf `[1]` output
/// row of the same leaf shape, and no two bindings may share a state or
/// an output buffer.
pub fn verify_session_bindings(
    program: &ft_core::Program,
    bindings: &[SessionBinding],
    capacity: usize,
) -> Result<(), VerifyError> {
    use ft_core::BufferKind;
    let err = |detail: String| VerifyError::Session { detail };
    let decl = |id: ft_core::BufferId, role: &str| {
        program
            .buffers
            .get(id.0)
            .ok_or_else(|| err(format!("{role} buffer {} is not declared", id.0)))
    };
    if bindings.is_empty() {
        return Err(err("session has no state bindings".into()));
    }
    let mut seen_states = HashSet::new();
    let mut seen_outputs = HashSet::new();
    for b in bindings {
        let state = decl(b.state, "state")?;
        if state.kind != BufferKind::Input {
            return Err(err(format!(
                "state buffer '{}' must be an input (extern-placed, outside \
                 the transient arena); {:?} declarations are arena-placed \
                 and could alias per-launch scratch",
                state.name, state.kind
            )));
        }
        if !seen_states.insert(b.state) {
            return Err(err(format!("state buffer '{}' is bound twice", state.name)));
        }
        let output = match b.rule {
            StateRule::Carry { output } | StateRule::Append { output } => {
                let out = decl(output, "update")?;
                if out.kind != BufferKind::Output {
                    return Err(err(format!(
                        "update source '{}' must be an output buffer, not {:?}",
                        out.name, out.kind
                    )));
                }
                if output == b.state {
                    return Err(err(format!(
                        "state '{}' cannot be its own update source",
                        state.name
                    )));
                }
                if !seen_outputs.insert(output) {
                    return Err(err(format!(
                        "output '{}' feeds two state bindings",
                        out.name
                    )));
                }
                Some(out)
            }
            StateRule::Fill => None,
        };
        match b.rule {
            StateRule::Carry { .. } => {
                let out = output.unwrap_or(state);
                if out.dims != state.dims || out.leaf_shape != state.leaf_shape {
                    return Err(err(format!(
                        "carry '{}' <- '{}' is not shape-preserving: \
                         {:?}/{:?} vs {:?}/{:?}",
                        state.name,
                        out.name,
                        state.dims,
                        state.leaf_shape,
                        out.dims,
                        out.leaf_shape
                    )));
                }
            }
            StateRule::Append { .. } | StateRule::Fill => {
                if capacity == 0 {
                    return Err(err(format!(
                        "append state '{}' needs capacity >= 1",
                        state.name
                    )));
                }
                let cache_ok =
                    state.dims.len() == 2 && state.dims[0] == 1 && state.dims[1] >= capacity;
                if !cache_ok {
                    return Err(err(format!(
                        "append state '{}' must be declared [1, C] with \
                         C >= capacity {capacity}, got {:?}",
                        state.name, state.dims
                    )));
                }
                if let Some(out) = output {
                    if out.dims != [1] || out.leaf_shape != state.leaf_shape {
                        return Err(err(format!(
                            "append row '{}' must be a single-leaf [1] output \
                             with the cache's leaf shape {:?}, got {:?}/{:?}",
                            out.name, state.leaf_shape, out.dims, out.leaf_shape
                        )));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Verifies every scheduled group of a compiled program, returning
/// statistics on success and the first violation found otherwise.
///
/// Stats flow into ft-probe (`verify.*` counters plus a
/// `verify/legality_check` span) so `trace_report` surfaces them.
pub fn verify(compiled: &CompiledProgram) -> Result<VerifyReport, VerifyError> {
    let t0 = Instant::now();
    let mut span = ft_probe::span("verify", "legality_check");
    let mut report = VerifyReport {
        complete: true,
        ..VerifyReport::default()
    };
    let outcome = check_all(compiled, &mut report);
    report.wall_us = t0.elapsed().as_secs_f64() * 1e6;
    if span.is_recording() {
        span.field("program", compiled.etdg.name.as_str());
        span.field("groups", report.groups);
        span.field("maps", report.maps);
        span.field("distances", report.distances);
        span.field("points", report.points);
        span.field("udfs", report.udfs);
        span.field("complete", report.complete);
        if let Err(e) = &outcome {
            span.field("violation", e.to_string());
        }
    }
    ft_probe::counter("verify.groups", report.groups as f64);
    ft_probe::counter("verify.maps", report.maps as f64);
    ft_probe::counter("verify.distances", report.distances as f64);
    ft_probe::counter("verify.points", report.points as f64);
    ft_probe::counter("verify.udfs", report.udfs as f64);
    ft_probe::counter("verify.wall_us", report.wall_us);
    if outcome.is_err() {
        ft_probe::counter("verify.violations", 1.0);
    }
    outcome.map(|()| report)
}

fn check_all(compiled: &CompiledProgram, report: &mut VerifyReport) -> Result<(), VerifyError> {
    check_layout(compiled)?;
    check_udfs(compiled, report)?;
    for (gi, group) in compiled.groups.iter().enumerate() {
        check_group(compiled, gi, group, report)?;
        report.groups += 1;
    }
    check_ungrouped(compiled, report)
}

/// Re-validates every block's UDF against the graph after the rewriting
/// passes. Kernel fusion replaces statement sequences with fused opcodes
/// (`FusedMatMul`, `EwChain`, `Silu`); a fusion bug — dangling temporary,
/// wrong arity, shape drift — must be caught here, before the backend
/// plans scratch offsets from the same shape inference.
fn check_udfs(compiled: &CompiledProgram, report: &mut VerifyReport) -> Result<(), VerifyError> {
    let etdg = &compiled.etdg;
    for block in &etdg.blocks {
        let illegal = |detail: String| VerifyError::UdfIllegal {
            block: block.name.clone(),
            detail,
        };
        block.udf.validate().map_err(|e| illegal(e.to_string()))?;
        let input_shapes: Vec<ft_tensor::Shape> = block
            .reads
            .iter()
            .map(|r| match r {
                RegionRead::Buffer { buffer, .. } => etdg.buffer(*buffer).leaf_shape.clone(),
                RegionRead::Fill { leaf_shape, .. } => leaf_shape.clone(),
            })
            .collect();
        let shapes = block
            .udf
            .infer_shapes(&input_shapes)
            .map_err(|e| illegal(e.to_string()))?;
        if shapes.outputs.len() != block.writes.len() {
            return Err(illegal(format!(
                "UDF produces {} output(s) but the block writes {} buffer(s)",
                shapes.outputs.len(),
                block.writes.len()
            )));
        }
        for (oi, (shape, w)) in shapes.outputs.iter().zip(block.writes.iter()).enumerate() {
            let buf = etdg.buffer(w.buffer);
            if shape.dims() != buf.leaf_shape.dims() {
                return Err(illegal(format!(
                    "output {oi} infers shape {:?} but buffer '{}' stores leaves of {:?}",
                    shape.dims(),
                    buf.name,
                    buf.leaf_shape.dims()
                )));
            }
        }
        report.udfs += 1;
    }
    Ok(())
}

/// Validates the plan-time memory layout the arena executor trusts blindly:
/// extern placement is reserved for (exactly) the graph's input buffers,
/// every arena range stays inside the arena and the written bitmap, and
/// two buffers may share arena space only when their live intervals are
/// disjoint — the condition under which the lifetime-reuse allocator is
/// allowed to overlap them.
fn check_layout(compiled: &CompiledProgram) -> Result<(), VerifyError> {
    let mem = &compiled.memory;
    let etdg = &compiled.etdg;
    if mem.buffers.len() != etdg.buffers.len() {
        return Err(VerifyError::Layout {
            buffer: String::new(),
            detail: format!(
                "plan covers {} buffers but the graph declares {}",
                mem.buffers.len(),
                etdg.buffers.len()
            ),
        });
    }
    // (buffer index, arena range, bitmap range, live interval) of every
    // arena-placed buffer, for the pairwise overlap check below.
    type Placed = (
        usize,
        std::ops::Range<usize>,
        std::ops::Range<usize>,
        (usize, usize),
    );
    let mut placed: Vec<Placed> = Vec::new();
    for (bi, layout) in mem.buffers.iter().enumerate() {
        let node = &etdg.buffers[bi];
        let err = |detail: String| VerifyError::Layout {
            buffer: node.name.clone(),
            detail,
        };
        let is_input = node.kind == ft_core::program::BufferKind::Input;
        match layout.placement {
            ft_passes::Placement::Extern => {
                if !is_input {
                    return Err(err(format!(
                        "{:?} buffer placed extern; only inputs may be borrowed",
                        node.kind
                    )));
                }
            }
            ft_passes::Placement::Arena { offset, slot_off } => {
                if is_input {
                    return Err(err(
                        "input buffer placed in the arena; inputs must be extern".into(),
                    ));
                }
                if offset + layout.len > mem.arena_len {
                    return Err(err(format!(
                        "arena range {}..{} escapes arena of {} elements",
                        offset,
                        offset + layout.len,
                        mem.arena_len
                    )));
                }
                if slot_off + layout.leaves > mem.slots_len {
                    return Err(err(format!(
                        "bitmap range {}..{} escapes bitmap of {} leaves",
                        slot_off,
                        slot_off + layout.leaves,
                        mem.slots_len
                    )));
                }
                if layout.len > 0 {
                    placed.push((
                        bi,
                        offset..offset + layout.len,
                        slot_off..slot_off + layout.leaves,
                        layout.live,
                    ));
                }
            }
        }
    }
    for (i, a) in placed.iter().enumerate() {
        for b in &placed[i + 1..] {
            let arena_overlap = a.1.start < b.1.end && b.1.start < a.1.end;
            let bitmap_overlap = a.2.start < b.2.end && b.2.start < a.2.end;
            if !(arena_overlap || bitmap_overlap) {
                continue;
            }
            let live_disjoint = a.3 .1 < b.3 .0 || b.3 .1 < a.3 .0;
            if !live_disjoint {
                return Err(VerifyError::Layout {
                    buffer: etdg.buffers[a.0].name.clone(),
                    detail: format!(
                        "shares {} range {:?} with simultaneously-live buffer '{}' \
                         ({:?}; live {:?} vs {:?})",
                        if arena_overlap { "arena" } else { "bitmap" },
                        a.1,
                        etdg.buffers[b.0].name,
                        b.1,
                        a.3,
                        b.3
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Range-checks the access maps of blocks that belong to no launch group.
/// Such blocks execute through the interpreter path — no reordering, no
/// fused maps, so invariants 1, 2, and 4 are vacuous — but a map that
/// walks out of its buffer must still be rejected before execution.
fn check_ungrouped(
    compiled: &CompiledProgram,
    report: &mut VerifyReport,
) -> Result<(), VerifyError> {
    let etdg = &compiled.etdg;
    let grouped: HashSet<BlockId> = compiled
        .groups
        .iter()
        .flat_map(|g| g.members.iter().copied())
        .collect();
    for (bi, block) in etdg.blocks.iter().enumerate() {
        if grouped.contains(&BlockId(bi)) {
            continue;
        }
        let total: usize = block.extents.iter().product();
        if total > POINT_CAP {
            report.complete = false;
        }
        let accesses: Vec<(BufId, &AffineMap, AccessKind)> = block
            .reads
            .iter()
            .filter_map(|rd| match rd {
                RegionRead::Buffer { buffer, map } => Some((*buffer, map, AccessKind::Read)),
                _ => None,
            })
            .chain(
                block
                    .writes
                    .iter()
                    .map(|w| (w.buffer, &w.map, AccessKind::Write)),
            )
            .collect();
        report.maps += accesses.len();
        for t in sample_points(&block.domain, &block.extents, POINT_CAP) {
            report.points += 1;
            for (buffer, map, kind) in &accesses {
                let idx = map.apply(&t).map_err(|e| VerifyError::Structural {
                    group: None,
                    block: block.name.clone(),
                    detail: e.to_string(),
                })?;
                let buf = etdg.buffer(*buffer);
                if !buf.in_domain(&idx) {
                    return Err(VerifyError::MapOutOfRange {
                        group: None,
                        block: block.name.clone(),
                        buffer: buf.name.clone(),
                        kind: *kind,
                        point: t.clone(),
                        index: idx,
                        dims: buf.dims.clone(),
                    });
                }
            }
        }
    }
    Ok(())
}

fn check_group(
    compiled: &CompiledProgram,
    gi: usize,
    group: &ScheduledGroup,
    report: &mut VerifyReport,
) -> Result<(), VerifyError> {
    let etdg = &compiled.etdg;
    let r = &group.reordering;
    let lead = etdg.block(group.members[0]).name.clone();
    let structural = |detail: String| VerifyError::Structural {
        group: Some(gi),
        block: lead.clone(),
        detail,
    };

    // 1. Unimodularity and inverse coherence.
    if !r.t.is_unimodular() {
        return Err(VerifyError::NotUnimodular {
            group: gi,
            block: lead,
            det: r.t.det().unwrap_or(0),
        });
    }
    let d = r.t.rows();
    let prod =
        r.t.matmul(&r.t_inv)
            .map_err(|e| structural(e.to_string()))?;
    if prod != IntMat::identity(d) {
        return Err(VerifyError::InverseMismatch {
            group: gi,
            block: lead,
        });
    }

    // 2. Every dependence distance vector is carried by row 0.
    let mut distances: Vec<Vec<i64>> = Vec::new();
    for &m in &group.members {
        for delta in distance_vectors(etdg, m).map_err(|e| structural(e.to_string()))? {
            if !distances.contains(&delta) {
                distances.push(delta);
            }
        }
    }
    if !distances.is_empty() {
        if r.sequential_dims == 0 {
            return Err(VerifyError::SequentialMissing {
                group: gi,
                block: lead,
                distances: distances.len(),
            });
        }
        let row0 = r.t.row(0).to_vec();
        for delta in &distances {
            if delta.len() != row0.len() {
                return Err(structural(format!(
                    "distance vector {delta:?} has {} entries but the transform has {} columns",
                    delta.len(),
                    row0.len()
                )));
            }
            let dot: i64 = row0.iter().zip(delta.iter()).map(|(a, b)| a * b).sum();
            report.distances += 1;
            if dot < 1 {
                return Err(VerifyError::UncarriedDistance {
                    group: gi,
                    block: lead,
                    hyperplane: row0,
                    distance: delta.clone(),
                    dot,
                });
            }
        }
    }

    // 3 + 4. Per-point map range / fused-map consistency, and the
    // wavefront write-before-read order over group-internal buffers.
    let member_set: HashSet<_> = group.members.iter().copied().collect();
    let group_owns = |b: BufId| -> bool {
        let writers = etdg.writers_of(b);
        !writers.is_empty() && writers.iter().all(|w| member_set.contains(w))
    };
    let step_of = |t: &[i64]| -> Result<i64, VerifyError> {
        if r.sequential_dims == 0 {
            return Ok(0);
        }
        let j = r.t.matvec(t).map_err(|e| structural(e.to_string()))?;
        Ok(j[0])
    };

    // Pass A: validate writes and record (buffer, index) -> writer.
    let mut complete = true;
    let mut written: WriterTable = HashMap::new();
    for (mi, &m) in group.members.iter().enumerate() {
        let block = etdg.block(m);
        let total: usize = block.extents.iter().product();
        if total > POINT_CAP {
            complete = false;
        }
        report.maps += block.writes.len();
        let fused: Vec<AffineMap> = block
            .writes
            .iter()
            .map(|w| r.transform_map(&w.map))
            .collect::<Result<_, _>>()
            .map_err(|e| structural(e.to_string()))?;
        for t in sample_points(&block.domain, &block.extents, POINT_CAP) {
            report.points += 1;
            let step = step_of(&t)?;
            for (w, fmap) in block.writes.iter().zip(fused.iter()) {
                let idx = check_access(
                    compiled,
                    gi,
                    block,
                    w.buffer,
                    &w.map,
                    fmap,
                    r,
                    &t,
                    AccessKind::Write,
                )?;
                written
                    .entry((w.buffer.0, idx))
                    .or_insert((step, mi, t.clone()));
            }
        }
    }

    // Pass B: validate reads and their ordering against the write table.
    for (mi, &m) in group.members.iter().enumerate() {
        let block = etdg.block(m);
        report.maps += block
            .reads
            .iter()
            .filter(|rd| matches!(rd, RegionRead::Buffer { .. }))
            .count();
        let fused: Vec<Option<AffineMap>> = block
            .reads
            .iter()
            .map(|rd| rd.map().map(|m| r.transform_map(m)).transpose())
            .collect::<Result<_, _>>()
            .map_err(|e| structural(e.to_string()))?;
        for t in sample_points(&block.domain, &block.extents, POINT_CAP) {
            report.points += 1;
            let read_step = step_of(&t)?;
            for (rd, fmap) in block.reads.iter().zip(fused.iter()) {
                let (RegionRead::Buffer { buffer, map }, Some(fmap)) = (rd, fmap) else {
                    continue;
                };
                let idx = check_access(
                    compiled,
                    gi,
                    block,
                    *buffer,
                    map,
                    fmap,
                    r,
                    &t,
                    AccessKind::Read,
                )?;
                if !group_owns(*buffer) {
                    // Produced by an earlier group (or an input): ordered
                    // by group execution order, not by this wavefront.
                    continue;
                }
                match written.get(&(buffer.0, idx.clone())) {
                    Some((write_step, w_mi, w_t)) => {
                        let ordered = *write_step < read_step
                            || (*write_step == read_step && w_t == &t && *w_mi < mi);
                        if !ordered {
                            return Err(VerifyError::WavefrontOrder {
                                group: gi,
                                block: block.name.clone(),
                                buffer: etdg.buffer(*buffer).name.clone(),
                                point: t.clone(),
                                index: idx,
                                write_step: *write_step,
                                read_step,
                            });
                        }
                    }
                    None if complete => {
                        return Err(VerifyError::UnwrittenRead {
                            group: gi,
                            block: block.name.clone(),
                            buffer: etdg.buffer(*buffer).name.clone(),
                            point: t.clone(),
                            index: idx,
                        });
                    }
                    None => {}
                }
            }
        }
    }
    if !complete {
        report.complete = false;
    }
    Ok(())
}

/// Evaluates one access at one point, checking range and fused-map
/// consistency; returns the data-space index.
#[allow(clippy::too_many_arguments)]
fn check_access(
    compiled: &CompiledProgram,
    gi: usize,
    block: &BlockNode,
    buffer: BufId,
    map: &AffineMap,
    fused: &AffineMap,
    r: &ft_passes::Reordering,
    t: &[i64],
    kind: AccessKind,
) -> Result<Vec<i64>, VerifyError> {
    let etdg = &compiled.etdg;
    let structural = |detail: String| VerifyError::Structural {
        group: Some(gi),
        block: block.name.clone(),
        detail,
    };
    let idx = map.apply(t).map_err(|e| structural(e.to_string()))?;
    let buf = etdg.buffer(buffer);
    if !buf.in_domain(&idx) {
        return Err(VerifyError::MapOutOfRange {
            group: Some(gi),
            block: block.name.clone(),
            buffer: buf.name.clone(),
            kind,
            point: t.to_vec(),
            index: idx,
            dims: buf.dims.clone(),
        });
    }
    let j = r.t.matvec(t).map_err(|e| structural(e.to_string()))?;
    let fidx = fused.apply(&j).map_err(|e| structural(e.to_string()))?;
    if fidx != idx {
        return Err(VerifyError::FusedMapMismatch {
            group: gi,
            block: block.name.clone(),
            buffer: buf.name.clone(),
            point: t.to_vec(),
            original: idx,
            fused: fidx,
        });
    }
    Ok(idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_affine::IntMat;
    use ft_core::builders::stacked_rnn_program;
    use ft_etdg::RegionRead;

    fn compiled_rnn() -> CompiledProgram {
        compile(&stacked_rnn_program(2, 3, 4, 4)).unwrap()
    }

    #[test]
    fn stacked_rnn_schedule_is_legal() {
        let report = verify(&compiled_rnn()).unwrap();
        assert_eq!(report.groups, 1);
        assert!(report.distances >= 1, "wavefront group must carry deps");
        assert!(report.maps > 0);
        assert!(report.points > 0);
        assert!(report.complete);
    }

    #[test]
    fn compile_verified_round_trips() {
        let (compiled, report) = compile_verified(&stacked_rnn_program(2, 2, 3, 4)).unwrap();
        assert_eq!(compiled.groups.len(), 1);
        assert!(report.groups == 1);
    }

    #[test]
    fn poly_family_verifies_and_serves_extents() {
        let (family, report) = build_poly_verified(&stacked_rnn_program(2, 2, 3, 4)).unwrap();
        assert_eq!(report.groups, 1);
        // Base + probe instances are already memoized; more stamp out fine.
        assert!(family.cached_instances() >= 2);
        let inst = family.instance(9).unwrap();
        assert_eq!(inst.groups.len(), 1);
        assert_eq!(family.template_fallbacks(), 0);
    }

    #[test]
    fn poly_rejects_programs_without_a_polymorphic_axis() {
        let mut p = stacked_rnn_program(2, 2, 3, 4);
        for nest in &mut p.nests {
            nest.ops[0] = ft_core::OpKind::ScanL;
        }
        match build_poly_verified(&p) {
            Err(VerifyError::Poly { detail }) => {
                assert!(detail.contains("no polymorphic outer axis"))
            }
            other => panic!("expected Poly rejection, got {other:?}"),
        }
    }

    #[test]
    fn extent_invariance_check_catches_structural_drift() {
        let family = ft_passes::PolyPlan::build(&stacked_rnn_program(2, 2, 3, 4))
            .unwrap()
            .unwrap();
        let base = family.instance(2).unwrap();
        let probe = family.instance(3).unwrap();
        // Identical structure passes.
        check_extent_invariance(&base, &probe, 2, 3).unwrap();
        // A schedule that leaks the extent into its transform is rejected.
        let mut drifted = (*probe).clone();
        let d = drifted.groups[0].reordering.t.rows();
        drifted.groups[0].reordering.t = IntMat::identity(d);
        drifted.groups[0].reordering.hyperplane = vec![9; d];
        match check_extent_invariance(&base, &drifted, 2, 3) {
            Err(VerifyError::Poly { detail }) => assert!(detail.contains("varies")),
            other => panic!("expected Poly, got {other:?}"),
        }
    }

    #[test]
    fn non_unimodular_transform_is_rejected() {
        let mut c = compiled_rnn();
        let d = c.groups[0].reordering.t.rows();
        c.groups[0].reordering.t = IntMat::zeros(d, d);
        match verify(&c) {
            Err(VerifyError::NotUnimodular { group: 0, det, .. }) => assert_eq!(det, 0),
            other => panic!("expected NotUnimodular, got {other:?}"),
        }
    }

    #[test]
    fn inconsistent_inverse_is_rejected() {
        let mut c = compiled_rnn();
        let d = c.groups[0].reordering.t.rows();
        // Keep T unimodular but break the stored inverse.
        let mut wrong = IntMat::identity(d);
        wrong.set(0, d - 1, 7);
        c.groups[0].reordering.t_inv = wrong;
        match verify(&c) {
            Err(VerifyError::InverseMismatch { group: 0, .. }) => {}
            Err(VerifyError::NotUnimodular { .. }) => {
                panic!("transform itself should still be unimodular")
            }
            other => panic!("expected InverseMismatch, got {other:?}"),
        }
    }

    #[test]
    fn uncarried_distance_is_rejected() {
        let mut c = compiled_rnn();
        let d = c.groups[0].reordering.t.rows();
        // The identity schedule orders by the first original dimension
        // only; the stacked RNN's wavefront carries dependences in two
        // dimensions, so at least one distance vector must be dropped.
        c.groups[0].reordering.t = IntMat::identity(d);
        c.groups[0].reordering.t_inv = IntMat::identity(d);
        match verify(&c) {
            Err(VerifyError::UncarriedDistance { group: 0, dot, .. }) => assert!(dot < 1),
            other => panic!("expected UncarriedDistance, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_map_is_rejected_naming_the_buffer() {
        let mut c = compiled_rnn();
        // Push an input-buffer read of the first member far out of range
        // (an input read carries no dependence, so the only possible
        // finding is the range violation itself).
        let inputs: Vec<bool> = c
            .etdg
            .buffers
            .iter()
            .map(|b| b.kind == ft_core::program::BufferKind::Input)
            .collect();
        let m = c.groups[0].members[0];
        let block = &mut c.etdg.blocks[m.0];
        let read = block
            .reads
            .iter_mut()
            .find_map(|rd| match rd {
                RegionRead::Buffer { buffer, map } if inputs[buffer.0] => Some(map),
                _ => None,
            })
            .expect("member reads an input buffer");
        let mut off = read.offset().to_vec();
        off[0] += 1_000_000;
        *read = AffineMap::new(read.matrix().clone(), off).unwrap();
        match verify(&c) {
            Err(VerifyError::MapOutOfRange {
                group: Some(0),
                buffer,
                index,
                ..
            }) => {
                assert!(!buffer.is_empty());
                assert!(index[0] >= 1_000_000);
            }
            other => panic!("expected MapOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn layout_violations_are_rejected() {
        // A clean compile passes the layout check (implicitly via verify).
        verify(&compiled_rnn()).unwrap();

        // An arena range escaping the arena is rejected by name.
        let mut c = compiled_rnn();
        let bi = c
            .memory
            .buffers
            .iter()
            .position(|l| matches!(l.placement, ft_passes::Placement::Arena { .. }) && l.len > 0)
            .expect("program has an arena-placed buffer");
        let arena_len = c.memory.arena_len;
        if let ft_passes::Placement::Arena { offset, .. } = &mut c.memory.buffers[bi].placement {
            *offset = arena_len;
        }
        match verify(&c) {
            Err(VerifyError::Layout { buffer, detail }) => {
                assert_eq!(buffer, c.etdg.buffers[bi].name);
                assert!(detail.contains("escapes arena"), "got: {detail}");
            }
            other => panic!("expected Layout, got {other:?}"),
        }

        // An input demoted to arena placement is rejected: the executor
        // would allocate and copy what it must borrow.
        let mut c = compiled_rnn();
        let ii = c
            .etdg
            .buffers
            .iter()
            .position(|b| b.kind == ft_core::program::BufferKind::Input)
            .expect("program has an input");
        c.memory.buffers[ii].placement = ft_passes::Placement::Arena {
            offset: 0,
            slot_off: 0,
        };
        match verify(&c) {
            Err(VerifyError::Layout { buffer, detail }) => {
                assert_eq!(buffer, c.etdg.buffers[ii].name);
                assert!(detail.contains("must be extern"), "got: {detail}");
            }
            other => panic!("expected Layout, got {other:?}"),
        }

        // Two simultaneously-live buffers aliasing one arena range are
        // rejected — the invariant the lifetime-reuse allocator must hold.
        // The stacked RNN plans a single arena buffer, so clone it into a
        // phantom sibling that claims the same range while live.
        let mut c = compiled_rnn();
        let a = c
            .memory
            .buffers
            .iter()
            .position(|l| matches!(l.placement, ft_passes::Placement::Arena { .. }) && l.len > 0)
            .expect("program has an arena-placed buffer");
        let mut node = c.etdg.buffers[a].clone();
        node.name = format!("{}_alias", node.name);
        c.etdg.buffers.push(node);
        let mut alias = c.memory.buffers[a].clone();
        alias.live = c.memory.buffers[a].live;
        c.memory.buffers.push(alias);
        match verify(&c) {
            Err(VerifyError::Layout { detail, .. }) => {
                assert!(detail.contains("simultaneously-live"), "got: {detail}");
            }
            other => panic!("expected Layout, got {other:?}"),
        }
    }

    #[test]
    fn ungrouped_blocks_still_get_range_checks() {
        // Strip the schedule entirely: every block now executes through
        // the interpreter path, and the verifier must still enumerate and
        // bounds-check its original access maps.
        let mut c = compiled_rnn();
        c.groups.clear();
        let report = verify(&c).unwrap();
        assert_eq!(report.groups, 0);
        assert!(report.maps > 0, "ungrouped maps must still be counted");
        assert!(report.points > 0);

        // And a corrupted map in an ungrouped block is rejected with the
        // group-free diagnostic.
        let block = &mut c.etdg.blocks[0];
        let read = block
            .reads
            .iter_mut()
            .find_map(|rd| match rd {
                RegionRead::Buffer { map, .. } => Some(map),
                _ => None,
            })
            .expect("block has a buffer read");
        let mut off = read.offset().to_vec();
        off[0] += 1_000_000;
        *read = AffineMap::new(read.matrix().clone(), off).unwrap();
        match verify(&c) {
            Err(VerifyError::MapOutOfRange { group: None, .. }) => {}
            other => panic!("expected ungrouped MapOutOfRange, got {other:?}"),
        }
        let msg = verify(&c).unwrap_err().to_string();
        assert!(msg.contains("ungrouped"), "{msg}");
    }

    #[test]
    fn rewritten_udfs_are_revalidated() {
        // A clean compile (which runs the fusion pass) passes the UDF
        // legality check and counts every block.
        let report = verify(&compiled_rnn()).unwrap();
        assert!(report.udfs > 0, "UDF check must cover the blocks");

        // A dangling output operand — the shape of bug a broken fusion
        // rewrite would introduce — is rejected naming the block.
        let mut c = compiled_rnn();
        c.etdg.blocks[0].udf.outputs[0] = ft_core::expr::Operand::Tmp(999);
        match verify(&c) {
            Err(VerifyError::UdfIllegal { block, .. }) => {
                assert_eq!(block, c.etdg.blocks[0].name);
            }
            other => panic!("expected UdfIllegal, got {other:?}"),
        }
    }

    #[test]
    fn report_displays_violations_with_context() {
        let mut c = compiled_rnn();
        let d = c.groups[0].reordering.t.rows();
        c.groups[0].reordering.t = IntMat::zeros(d, d);
        let e = verify(&c).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("group 0"), "diagnostic names the group: {msg}");
        assert!(msg.contains("unimodular"), "diagnostic says why: {msg}");
    }
}
